"""Property-based tests (hypothesis) for the async serving stack.

Random **arrival programs** — request shapes x arrival times x
priorities x deadlines x tenants x pool sizes x policies — drive the
front door, and three families of invariants must survive every draw:

* **no request is lost**: every submitted request comes back, exactly
  once, served to its full generation budget, whatever the policy
  decided about ordering, deferral or preemption;
* **solo-exactness**: each request's outputs, cycles and counters are
  bit-identical to running it alone through ``generate`` — scheduling
  is when, never what;
* **conservation of the event accounting**: the scheduler's deferral/
  preemption counters match the per-run deltas on the scheduler
  object, step timing covers every request, and the virtual clock
  never runs backwards (TTFT/latency are positive, measured from
  arrival, and ``sum(step_cycles) == packed_vector_cycles``).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import NovaConfig
from repro.core.decode import (
    ContinuousBatchScheduler,
    NovaDecodeEngine,
    SequenceMeta,
)
from repro.serving.policies import POLICIES, TenantFair
from repro.workloads.transformer import TransformerConfig, decode_request

#: Small geometry shared by every example (module scope: tables and
#: schedules compile once, each example only runs data).
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)
ENGINE = NovaDecodeEngine(SMALL)
MODEL = TransformerConfig(
    "toy", layers=1, hidden=16, heads=2, intermediate=64,
    seq_len=64, causal=True,
)

#: Solo references are cached per (seed, prompt, budget): hypothesis
#: revisits similar draws, and the reference is deterministic.
_SOLO_CACHE = {}


def solo(seed, prompt_len, max_new_tokens):
    key = (seed, prompt_len, max_new_tokens)
    if key not in _SOLO_CACHE:
        _SOLO_CACHE[key] = ENGINE.generate(
            decode_request(
                MODEL, prompt_len=prompt_len,
                max_new_tokens=max_new_tokens, seed=seed,
            )
        )
    return _SOLO_CACHE[key]


request_programs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),    # prompt_len
        st.integers(min_value=1, max_value=4),    # max_new_tokens
        st.integers(min_value=0, max_value=120),  # arrival (cycles)
        st.integers(min_value=0, max_value=3),    # priority
        st.one_of(                                # deadline slack or None
            st.none(), st.integers(min_value=1, max_value=400)
        ),
        st.sampled_from(["acme", "globex"]),      # tenant
    ),
    min_size=1,
    max_size=5,
)

policies = st.one_of(
    st.sampled_from(sorted(POLICIES)),
    st.just("tenant-fair-capped"),
)


def build_policy_under_test(name):
    if name == "tenant-fair-capped":
        return TenantFair(max_active_per_tenant=1)
    return POLICIES[name]()


class TestArrivalProgramProperties:
    @given(
        program=request_programs,
        policy_name=policies,
        max_active=st.integers(min_value=1, max_value=3),
        paged=st.booleans(),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_request_lost_and_solo_exact(
        self, program, policy_name, max_active, paged, data
    ):
        requests = [
            decode_request(
                MODEL, prompt_len=prompt, max_new_tokens=budget, seed=i
            )
            for i, (prompt, budget, _, _, _, _) in enumerate(program)
        ]
        meta = [
            SequenceMeta(
                arrival=float(arrival),
                priority=priority,
                tenant=tenant,
                deadline=(
                    None if slack is None else float(arrival + slack)
                ),
            )
            for (_, _, arrival, priority, slack, tenant) in program
        ]
        pool_blocks = None
        if paged:
            # Small enough to create admission pressure, but any
            # single request (capacity <= 8 tokens) always fits.
            pool_blocks = data.draw(
                st.integers(min_value=1, max_value=3), label="pool_blocks"
            )
        scheduler = ContinuousBatchScheduler(
            ENGINE,
            max_active=max_active,
            paged=paged,
            pool_blocks=pool_blocks,
            policy=build_policy_under_test(policy_name),
        )
        result = scheduler.run(requests, meta=meta)

        # No request lost: one result per request, full budget served.
        assert len(result.results) == len(requests)
        for i, (prompt, budget, _, _, _, _) in enumerate(program):
            got = result.results[i]
            assert got.n_generated == budget
            ref = solo(i, prompt, budget)
            assert np.array_equal(got.generated, ref.generated)
            assert got.vector_cycles == ref.vector_cycles
            assert got.counters.as_dict() == ref.counters.as_dict()

        # Conservation: the result's event counts are exactly this
        # run's deltas on the scheduler, and both are sane.
        assert result.deferrals == scheduler.deferrals
        assert result.preemptions == scheduler.preemptions
        assert result.deferrals >= 0 and result.preemptions >= 0
        if not paged and policy_name not in (
            "priority-preemptive",
        ):
            # Without memory pressure only priority challenges ever
            # preempt; everything else must run preemption-free.
            assert result.preemptions == 0

        # Step timing covers every request and the clock only moves
        # forward: land after arrival, finish no earlier than landing,
        # steps sum to the packed total.
        assert sum(result.step_cycles) == result.packed_vector_cycles
        assert len(result.step_cycles) == result.scheduler_steps
        for i, (_, _, arrival, _, _, _) in enumerate(program):
            assert 0 <= result.first_token_steps[i] <= (
                result.finish_steps[i]
            )
            assert result.first_token_times[i] > float(arrival)
            assert result.finish_times[i] >= result.first_token_times[i]
        assert result.peak_active <= max_active
