"""Unit tests for the multi-clock-domain cycle engine."""

import pytest

from repro.noc.engine import ClockDomain, CycleEngine, Tickable


class Recorder(Tickable):
    """Records the local cycles at which it ticked/committed."""

    def __init__(self):
        self.ticks = []
        self.commits = []

    def tick(self, local_cycle):
        self.ticks.append(local_cycle)

    def commit(self, local_cycle):
        self.commits.append(local_cycle)


class TestClockDomain:
    def test_period_one_always_active(self):
        d = ClockDomain("noc", period=1)
        assert all(d.active(c) for c in range(10))

    def test_period_two_alternates(self):
        d = ClockDomain("pe", period=2)
        assert [d.active(c) for c in range(4)] == [True, False, True, False]

    def test_phase_offsets_edges(self):
        d = ClockDomain("pe", period=2, phase=1)
        assert [d.active(c) for c in range(4)] == [False, True, False, True]

    def test_local_cycle_counts_own_edges(self):
        d = ClockDomain("pe", period=4)
        assert d.local_cycle(0) == 0
        assert d.local_cycle(4) == 1
        assert d.local_cycle(8) == 2

    def test_local_cycle_clamped_before_first_edge(self):
        # regression: engine_cycle < phase used to yield local cycle -1.
        # CycleEngine.step only queries local_cycle on active edges (which
        # start at `phase`), so the engine loop never saw the -1 — but any
        # direct caller probing a phased domain out of band did.
        d = ClockDomain("pe", period=2, phase=1)
        assert d.local_cycle(0) == 0
        assert d.local_cycle(1) == 0  # first rising edge
        assert d.local_cycle(3) == 1
        wide = ClockDomain("pe", period=4, phase=3)
        assert [wide.local_cycle(c) for c in range(4)] == [0, 0, 0, 0]
        assert wide.local_cycle(7) == 1

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ClockDomain("x", period=0)

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            ClockDomain("x", period=2, phase=2)


class TestCycleEngine:
    def test_fast_and_slow_domains(self):
        engine = CycleEngine()
        fast = Recorder()
        slow = Recorder()
        engine.add(ClockDomain("noc", period=1), fast)
        engine.add(ClockDomain("pe", period=2), slow)
        engine.run(4)
        assert fast.ticks == [0, 1, 2, 3]
        assert slow.ticks == [0, 1]

    def test_tick_before_commit_within_cycle(self):
        order = []

        class Ordered(Tickable):
            def __init__(self, name):
                self.name = name

            def tick(self, c):
                order.append((self.name, "tick", c))

            def commit(self, c):
                order.append((self.name, "commit", c))

        engine = CycleEngine()
        engine.add(ClockDomain("d", period=1), Ordered("a"))
        engine.add(ClockDomain("d", period=1), Ordered("b"))
        engine.run(1)
        # both ticks happen before either commit (two-phase update)
        assert order == [
            ("a", "tick", 0), ("b", "tick", 0),
            ("a", "commit", 0), ("b", "commit", 0),
        ]

    def test_phased_domain_sees_clean_local_cycles(self):
        # a component on a phased clock must observe local cycles
        # 0, 1, 2, ... starting at its first rising edge — never -1
        engine = CycleEngine()
        phased = Recorder()
        engine.add(ClockDomain("pe", period=2, phase=1), phased)
        engine.run(7)
        assert phased.ticks == [0, 1, 2]
        assert phased.commits == [0, 1, 2]
        assert all(c >= 0 for c in phased.ticks)

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            CycleEngine().run(-1)

    def test_engine_cycle_advances(self):
        engine = CycleEngine()
        engine.run(5)
        assert engine.engine_cycle == 5
