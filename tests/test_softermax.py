"""Tests for the Softermax baseline (base-2 softmax, online normaliser)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.approx.softermax import (
    OnlineNormalizerState,
    online_softmax,
    pow2_table,
    softermax,
)
from repro.approx.softmax import exact_softmax


class TestPow2Table:
    def test_domain_and_accuracy(self):
        table = pow2_table(16)
        rs = np.linspace(-1, 0, 512)
        assert np.max(np.abs(table.evaluate(rs) - np.exp2(rs))) < 2e-3

    def test_range_is_half_to_one(self):
        table = pow2_table(16)
        rs = np.linspace(-1, 0, 512)
        ys = table.evaluate(rs)
        assert ys.min() > 0.49 and ys.max() < 1.01


class TestSoftermax:
    def test_scaled_mode_matches_softmax(self):
        # with the log2(e) pre-scale, base-2 softmax IS softmax
        x = np.random.default_rng(0).normal(0, 3, size=(8, 32))
        out = softermax(x, scale_scores=True)
        exact = exact_softmax(x)
        assert np.max(np.abs(out - exact)) < 0.01

    def test_unscaled_mode_is_softer(self):
        # raw base-2 spreads probability mass (2^x grows slower than e^x)
        x = np.random.default_rng(1).normal(0, 3, size=(64, 16))
        soft = softermax(x, scale_scores=False)
        exact = exact_softmax(x)
        peak_soft = soft.max(axis=-1).mean()
        peak_exact = exact.max(axis=-1).mean()
        assert peak_soft < peak_exact

    def test_rows_are_distributions(self):
        x = np.random.default_rng(2).normal(0, 5, size=(4, 64))
        for mode in (True, False):
            out = softermax(x, scale_scores=mode)
            assert np.allclose(out.sum(axis=-1), 1.0)
            assert np.all(out >= 0)

    def test_argmax_preserved_in_both_modes(self):
        x = np.random.default_rng(3).normal(0, 3, size=(128, 10))
        exact = exact_softmax(x)
        for mode in (True, False):
            out = softermax(x, scale_scores=mode)
            assert np.array_equal(out.argmax(-1), exact.argmax(-1))

    def test_custom_pow2_approx_pluggable(self):
        # the 2^r table can be a NOVA quantised table — same machinery
        from repro.approx.quantize import QuantizedPwl

        table = QuantizedPwl(pow2_table(16))
        x = np.random.default_rng(4).normal(0, 2, size=(4, 16))
        out = softermax(x, pow2_approx=table.evaluate)
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_extreme_scores_stable(self):
        x = np.array([[0.0, -200.0, 50.0]])
        out = softermax(x)
        assert np.isfinite(out).all()
        assert out[0, 2] > 0.99


class TestOnlineNormalizer:
    def test_matches_two_pass(self):
        x = np.random.default_rng(5).normal(0, 3, size=64)
        online = online_softmax(x)
        two_pass = exact_softmax(x)
        assert np.allclose(online, two_pass, atol=1e-12)

    def test_order_invariance(self):
        x = np.random.default_rng(6).normal(0, 3, size=32)
        forward = online_softmax(x)
        # the running statistics are order-dependent internally but the
        # final distribution must not be
        perm = np.random.default_rng(7).permutation(32)
        permuted = online_softmax(x[perm])
        assert np.allclose(forward[perm], permuted, atol=1e-12)

    def test_state_update_rescales(self):
        state = OnlineNormalizerState()
        state.update(0.0)
        state.update(10.0)  # new max: old sum must rescale
        # sum = exp(0-10) + exp(0) = exp(-10) + 1
        assert state.running_max == 10.0
        assert state.running_sum == pytest.approx(1.0 + np.exp(-10.0))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            online_softmax(np.zeros((2, 2)))


@settings(max_examples=30)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(2, 32),
        elements=st.floats(min_value=-30, max_value=30, allow_nan=False),
    )
)
def test_online_equals_two_pass_property(x):
    assert np.allclose(online_softmax(x), exact_softmax(x), atol=1e-10)
