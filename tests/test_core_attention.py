"""Tests for the end-to-end attention engine (the paper's title claim)."""

import numpy as np
import pytest

from repro.core.attention import NovaAttentionEngine


@pytest.fixture(scope="module")
def engine():
    # small Jetson-like overlay (Table II preset) keeps the cycle sim fast
    return NovaAttentionEngine("jetson-nx")


@pytest.fixture(scope="module")
def layer_weights():
    rng = np.random.default_rng(0)
    hidden = 16
    scale = 1.0 / np.sqrt(hidden)
    return {
        name: rng.normal(0.0, scale, size=(hidden, hidden))
        for name in ("wq", "wk", "wv", "wo")
    }


class TestHardwareSoftmax:
    def test_rows_are_distributions(self, engine):
        scores = np.random.default_rng(1).normal(0, 2, size=(2, 8, 8))
        probs, cycles = engine.softmax(scores)
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)
        assert cycles > 0

    def test_close_to_exact(self, engine):
        from repro.approx.softmax import exact_softmax

        scores = np.random.default_rng(2).normal(0, 2, size=(2, 8, 8))
        probs, _ = engine.softmax(scores)
        exact = exact_softmax(scores, axis=-1)
        assert np.max(np.abs(probs - exact)) < 0.05
        assert np.array_equal(probs.argmax(-1), exact.argmax(-1))

    def test_vector_cycles_match_query_count(self, engine):
        # one query per lane per PE cycle: exp queries + recip queries
        scores = np.zeros((1, 8, 8))
        _, cycles = engine.softmax(scores)
        lanes = engine.n_lanes  # 32
        exp_batches = -(-64 // lanes)
        recip_batches = -(-8 // lanes)
        assert cycles == exp_batches + recip_batches


class TestHardwareGelu:
    def test_matches_table(self, engine):
        values = np.random.default_rng(3).normal(0, 2, size=(5, 7))
        out, _ = engine.gelu(values)
        expected = engine.tables["gelu"].evaluate(values)
        assert np.array_equal(out, expected)

    def test_padding_does_not_leak(self, engine):
        # a stream that does not fill the last lane batch
        values = np.random.default_rng(4).normal(0, 2, size=33)
        out, _ = engine.gelu(values)
        assert out.shape == (33,)
        expected = engine.tables["gelu"].evaluate(values)
        assert np.array_equal(out, expected)


class TestAttentionLayer:
    def test_output_close_to_exact(self, engine, layer_weights):
        x = np.random.default_rng(5).normal(0, 1, size=(8, 16))
        result = engine.attention_layer(x, n_heads=2, **layer_weights)
        exact = engine.exact_attention_layer(x, n_heads=2, **layer_weights)
        # attention outputs are weighted sums of value vectors; small
        # probability errors stay small in the output
        scale = np.max(np.abs(exact)) + 1e-9
        assert np.max(np.abs(result.outputs - exact)) / scale < 0.05

    def test_probabilities_shape(self, engine, layer_weights):
        x = np.random.default_rng(6).normal(size=(8, 16))
        result = engine.attention_layer(x, n_heads=2, **layer_weights)
        assert result.probabilities.shape == (2, 8, 8)

    def test_counters_accumulate_hardware_events(self, engine, layer_weights):
        x = np.random.default_rng(7).normal(size=(8, 16))
        result = engine.attention_layer(x, n_heads=2, **layer_weights)
        assert result.counters.get("mac_op") > 0
        assert result.counters.get("wire_hop") > 0
        assert result.counters.get("lut_read") == 0  # no SRAM anywhere

    def test_counters_are_per_call_not_lifetime(self, engine, layer_weights):
        # regression: results used to merge the units' *lifetime* counters,
        # double-counting every earlier call on the same engine
        x = np.random.default_rng(8).normal(size=(8, 16))
        first = engine.attention_layer(x, n_heads=2, **layer_weights)
        second = engine.attention_layer(x, n_heads=2, **layer_weights)
        assert second.counters.as_dict() == first.counters.as_dict()

    def test_counter_totals_exact(self, engine, layer_weights):
        # one layer's events, in closed form: each elementwise phase pads
        # to whole lane batches; exp and reciprocal run on separate units
        # and their counters merge without overlap
        x = np.random.default_rng(9).normal(size=(8, 16))
        result = engine.attention_layer(x, n_heads=2, **layer_weights)
        lanes = engine.n_lanes
        exp_batches = -(-(2 * 8 * 8) // lanes)
        recip_batches = -(-(2 * 8) // lanes)
        total_lanes = (exp_batches + recip_batches) * lanes
        assert result.vector_cycles == exp_batches + recip_batches
        assert result.counters.get("mac_op") == total_lanes
        assert result.counters.get("comparator_eval") == total_lanes
        assert result.counters.get("pair_capture") == total_lanes
        n_beats = engine.units["exp"].schedule.n_beats
        assert result.counters.get("beat_launch") == (
            (exp_batches + recip_batches) * n_beats
        )
        # per-call counters sum to the lifetime ledger across calls
        repeat = engine.attention_layer(x, n_heads=2, **layer_weights)
        assert repeat.counters.as_dict() == result.counters.as_dict()

    def test_head_divisibility_enforced(self, engine, layer_weights):
        x = np.zeros((8, 16))
        with pytest.raises(ValueError):
            engine.attention_layer(x, n_heads=3, **layer_weights)

    def test_table_switching_is_free(self, engine):
        # scheduling exp -> reciprocal -> gelu on NOVA costs no reloads
        from repro.workloads.ops import NonLinearOp, OpGraph

        graph = OpGraph("layer")
        graph.add(NonLinearOp("sm", "exp", queries=64))
        graph.add(NonLinearOp("norm", "reciprocal", queries=8))
        graph.add(NonLinearOp("act", "gelu", queries=64))
        report = engine.scheduler.schedule(graph)
        assert report.reload_cycles == 0
        assert report.function_switches() == 2
