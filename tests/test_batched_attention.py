"""Tests for the batched serving engine and the compile-time caches.

The contract under test: batching changes *when* work happens (packed
lane streams, shared tables, one overlay) but never *what* is computed —
outputs bit-identical, per-request cycle counts and event counters equal
to the sequential reference engine.
"""

import numpy as np
import pytest

from repro.approx.table_cache import (
    clear_table_cache,
    compiled_table,
    table_cache_info,
)
from repro.core.attention import NovaAttentionEngine
from repro.core.batched_attention import (
    AttentionRequest,
    BatchedNovaAttentionEngine,
)
from repro.core.config import NovaConfig
from repro.core.mapper import NovaMapper
from repro.workloads.bert import bert_attention_batch
from repro.workloads.transformer import TransformerConfig, attention_request

GEOMETRY = NovaConfig(
    n_routers=2, neurons_per_router=16, pe_frequency_ghz=1.4, hop_mm=0.5,
    seed=0,
)


@pytest.fixture(scope="module")
def engines():
    return (
        NovaAttentionEngine(GEOMETRY),
        BatchedNovaAttentionEngine(GEOMETRY),
    )


@pytest.fixture(scope="module")
def mixed_batch():
    # variable sequence lengths, including ones that leave a partially
    # filled final lane batch
    return bert_attention_batch("BERT-tiny", 4, seq_len=[8, 5, 12, 7], seed=3)


@pytest.fixture(scope="module")
def batch_result(engines, mixed_batch):
    _, batched = engines
    return batched.attention_batch(mixed_batch)


class TestBatchedEqualsSequential:
    def test_outputs_bit_identical(self, engines, mixed_batch, batch_result):
        sequential, _ = engines
        for req, got in zip(mixed_batch, batch_result.results):
            ref = sequential.attention_layer(
                req.x, req.wq, req.wk, req.wv, req.wo, n_heads=req.n_heads
            )
            assert np.array_equal(got.outputs, ref.outputs)
            assert np.array_equal(got.probabilities, ref.probabilities)

    def test_per_request_cycles_match_sequential(
        self, engines, mixed_batch, batch_result
    ):
        sequential, _ = engines
        for req, got in zip(mixed_batch, batch_result.results):
            ref = sequential.attention_layer(
                req.x, req.wq, req.wk, req.wv, req.wo, n_heads=req.n_heads
            )
            assert got.vector_cycles == ref.vector_cycles
            assert got.nonlinear_queries == ref.nonlinear_queries

    def test_per_request_counters_match_sequential(
        self, engines, mixed_batch, batch_result
    ):
        sequential, _ = engines
        for req, got in zip(mixed_batch, batch_result.results):
            ref = sequential.attention_layer(
                req.x, req.wq, req.wk, req.wv, req.wo, n_heads=req.n_heads
            )
            assert got.counters.as_dict() == ref.counters.as_dict()

    def test_packing_never_slower_than_sequential(self, batch_result):
        assert batch_result.packed_vector_cycles <= (
            batch_result.sequential_vector_cycles
        )
        assert batch_result.packing_speedup >= 1.0

    def test_batch_counters_are_the_shared_overlay_events(
        self, engines, mixed_batch, batch_result
    ):
        # lane-local events on the shared overlay equal the packed lane
        # count exactly: packed cycles x lanes, with only the phase tails
        # padded (not each request's tail)
        _, batched = engines
        packed_lanes = batch_result.packed_vector_cycles * batched.n_lanes
        for event in ("comparator_eval", "mac_op", "pair_capture"):
            assert batch_result.counters.get(event) == packed_lanes
            assert batch_result.counters.get(event) <= sum(
                r.counters.get(event) for r in batch_result.results
            )

    def test_empty_batch_rejected(self, engines):
        _, batched = engines
        with pytest.raises(ValueError):
            batched.attention_batch([])


class TestTableCache:
    def test_same_key_returns_same_object(self):
        a = compiled_table("exp", n_segments=16, seed=0)
        b = compiled_table("exp", n_segments=16, seed=0)
        assert a is b

    def test_distinct_seeds_distinct_objects(self):
        a = compiled_table("exp", n_segments=16, seed=0)
        b = compiled_table("exp", n_segments=16, seed=7)
        assert a is not b

    def test_distinct_segment_counts_distinct_objects(self):
        a = compiled_table("gelu", n_segments=16, seed=0)
        b = compiled_table("gelu", n_segments=8, seed=0)
        assert a is not b
        assert a.n_segments == 16 and b.n_segments == 8

    def test_engines_share_table_objects(self, engines):
        sequential, batched = engines
        for name in ("exp", "reciprocal", "gelu"):
            assert sequential.tables[name] is batched.tables[name]

    def test_cache_info_counts_hits(self):
        compiled_table("exp", n_segments=16, seed=0)  # prime (hit or miss)
        info0 = table_cache_info()
        compiled_table("exp", n_segments=16, seed=0)
        info1 = table_cache_info()
        assert info1["hits"] == info0["hits"] + 1
        assert info1["entries"] == info0["entries"]

    def test_clear_and_rebuild(self):
        before = compiled_table("reciprocal", n_segments=8, seed=1)
        clear_table_cache()
        assert table_cache_info()["entries"] == 0
        after = compiled_table("reciprocal", n_segments=8, seed=1)
        assert after is not before
        # retraining with the same seed is bit-identical
        assert np.array_equal(
            after.quantized_pwl.slopes, before.quantized_pwl.slopes
        )
        assert np.array_equal(after.quantized_pwl.cuts, before.quantized_pwl.cuts)

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            compiled_table("definitely_not_a_function")


class TestScheduleCache:
    def test_identical_geometries_share_schedule(self):
        a = NovaMapper().schedule(
            n_routers=3, pe_frequency_ghz=1.1, n_pairs=16, hop_mm=0.5
        )
        b = NovaMapper().schedule(
            n_routers=3, pe_frequency_ghz=1.1, n_pairs=16, hop_mm=0.5
        )
        assert a is b

    def test_distinct_geometries_distinct_schedules(self):
        a = NovaMapper().schedule(
            n_routers=3, pe_frequency_ghz=1.1, n_pairs=16, hop_mm=0.5
        )
        b = NovaMapper().schedule(
            n_routers=4, pe_frequency_ghz=1.1, n_pairs=16, hop_mm=0.5
        )
        assert a is not b

    def test_units_of_both_engines_share_schedules(self, engines):
        sequential, batched = engines
        batched.unit.retarget(batched.tables["exp"])
        assert sequential.units["exp"].schedule is batched.unit.schedule


class TestAttentionRequest:
    def test_builder_produces_valid_request(self):
        config = TransformerConfig(
            "toy", layers=1, hidden=16, heads=2, intermediate=32, seq_len=8
        )
        req = attention_request(config, seed=5)
        assert req.seq == 8 and req.hidden == 16 and req.n_heads == 2

    def test_builder_is_deterministic(self):
        config = TransformerConfig(
            "toy", layers=1, hidden=16, heads=2, intermediate=32, seq_len=8
        )
        a = attention_request(config, seed=5)
        b = attention_request(config, seed=5)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.wq, b.wq)

    def test_bad_shapes_rejected(self):
        good = np.zeros((4, 8))
        w = np.zeros((8, 8))
        with pytest.raises(ValueError):
            AttentionRequest(x=np.zeros(4), wq=w, wk=w, wv=w, wo=w, n_heads=2)
        with pytest.raises(ValueError):
            AttentionRequest(
                x=good, wq=np.zeros((8, 4)), wk=w, wv=w, wo=w, n_heads=2
            )
        with pytest.raises(ValueError):
            AttentionRequest(x=good, wq=w, wk=w, wv=w, wo=w, n_heads=3)
        with pytest.raises(ValueError):
            AttentionRequest(x=good, wq=w, wk=w, wv=w, wo=w, n_heads=0)

    def test_batch_builder_validates(self):
        with pytest.raises(ValueError):
            bert_attention_batch("BERT-tiny", 0)
        with pytest.raises(ValueError):
            bert_attention_batch("BERT-tiny", 3, seq_len=[8, 8])
        with pytest.raises(KeyError):
            bert_attention_batch("no-such-model", 2)
