"""Tests for the typed front door: NovaConfig, PRESETS and NovaSession.

The headline contract: an engine built from a :class:`NovaConfig` (or a
preset name, or through a :class:`NovaSession`) is bit-exact,
cycle-exact and counter-exact against the same engine built with the
legacy loose geometry kwargs — and the legacy path still works, but
emits a ``DeprecationWarning``.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.core.attention import NovaAttentionEngine
from repro.core.batched_attention import (
    AttentionRequest,
    BatchedNovaAttentionEngine,
)
from repro.core.config import (
    ENGINE_FIELDS,
    GEOMETRY_FIELDS,
    NovaConfig,
    PRESETS,
    as_config,
    preset,
)
from repro.core.session import NovaSession
from repro.core.vector_unit import NovaVectorUnit
from repro.eval.paper_data import TABLE2_CONFIGS
from repro.workloads.bert import bert_attention_batch


def legacy_kwargs(cfg: NovaConfig) -> dict:
    """The old-style engine kwargs equivalent to ``cfg``."""
    return dict(
        n_routers=cfg.n_routers,
        neurons_per_router=cfg.neurons_per_router,
        pe_frequency_ghz=cfg.pe_frequency_ghz,
        hop_mm=cfg.hop_mm,
        n_segments=cfg.n_segments,
        seed=cfg.seed,
    )


class TestNovaConfigValidation:
    def test_defaults_are_the_tpu_v4_geometry(self):
        cfg = NovaConfig()
        tpu = preset("tpu-v4")
        for name in ENGINE_FIELDS:
            assert getattr(cfg, name) == getattr(tpu, name)

    @pytest.mark.parametrize("field", ["n_routers", "neurons_per_router",
                                       "n_segments"])
    def test_nonpositive_counts_rejected(self, field):
        for bad in (0, -1):
            with pytest.raises(ValueError, match=field):
                NovaConfig(**{field: bad})

    @pytest.mark.parametrize("field", ["pe_frequency_ghz", "hop_mm"])
    def test_nonpositive_reals_rejected(self, field):
        for bad in (0.0, -0.5):
            with pytest.raises(ValueError, match=field):
                NovaConfig(**{field: bad})

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            NovaConfig(seed=-1)

    def test_wrong_types_rejected(self):
        with pytest.raises(TypeError):
            NovaConfig(n_routers=2.5)
        with pytest.raises(TypeError):
            NovaConfig(n_routers=True)
        with pytest.raises(TypeError):
            NovaConfig(pe_frequency_ghz="fast")
        with pytest.raises(TypeError):
            NovaConfig(host=7)

    def test_numpy_scalars_coerced(self):
        cfg = NovaConfig(n_routers=np.int64(3),
                         pe_frequency_ghz=np.float64(1.1))
        assert cfg.n_routers == 3 and isinstance(cfg.n_routers, int)
        assert cfg.pe_frequency_ghz == 1.1
        assert isinstance(cfg.pe_frequency_ghz, float)

    def test_derived_geometry(self):
        cfg = NovaConfig(n_routers=3, neurons_per_router=7)
        assert cfg.n_lanes == 21
        assert cfg.lane_shape == (3, 7)


class TestNovaConfigRoundTrip:
    def test_dict_round_trip(self):
        cfg = NovaConfig(n_routers=5, neurons_per_router=32,
                         pe_frequency_ghz=0.9, hop_mm=2.0, n_segments=8,
                         seed=3, host="REACT")
        assert NovaConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_round_trip(self):
        for name, cfg in PRESETS.items():
            assert NovaConfig.from_json(cfg.to_json()) == cfg, name

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="n_rooters"):
            NovaConfig.from_dict({"n_rooters": 4})

    def test_replace_revalidates(self):
        cfg = NovaConfig()
        assert cfg.replace(n_routers=2).n_routers == 2
        with pytest.raises(ValueError):
            cfg.replace(n_routers=0)

    def test_with_overrides_strings(self):
        cfg = NovaConfig().with_overrides(
            ["n_routers=16", "hop_mm=1.0", "host=none"]
        )
        assert cfg.n_routers == 16
        assert cfg.hop_mm == 1.0
        assert cfg.host is None

    def test_with_overrides_errors(self):
        with pytest.raises(ValueError, match="FIELD=VALUE"):
            NovaConfig().with_overrides(["n_routers"])
        with pytest.raises(ValueError, match="unknown"):
            NovaConfig().with_overrides(["lanes=4"])
        with pytest.raises(ValueError, match="bad value"):
            NovaConfig().with_overrides(["n_routers=four"])


class TestPresets:
    def test_registry_names(self):
        assert set(PRESETS) == {"jetson-nx", "react", "tpu-v3", "tpu-v4"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="available"):
            preset("jetson")

    def test_presets_match_table2(self):
        # every preset's geometry must agree with the paper_data
        # transcription of Table II for its host accelerator
        for name, cfg in PRESETS.items():
            acc = TABLE2_CONFIGS[cfg.host]
            assert cfg.n_routers == acc.n_routers, name
            assert cfg.neurons_per_router == acc.neurons_per_router, name
            assert cfg.pe_frequency_ghz == acc.frequency_ghz, name
            assert cfg.hop_mm == acc.hop_mm, name

    def test_presets_build_their_hosts(self):
        for name, cfg in PRESETS.items():
            host = cfg.build_host()
            assert host is not None, name

    def test_hostless_config_refuses_build_host(self):
        with pytest.raises(ValueError, match="host"):
            NovaConfig().build_host()

    def test_as_config_coercions(self):
        assert as_config(None) == NovaConfig()
        cfg = preset("react")
        assert as_config(cfg) is cfg
        assert as_config("react") is cfg
        assert as_config(cfg.to_dict()) == cfg
        with pytest.raises(TypeError):
            as_config(42)


class TestEngineShim:
    """Legacy kwargs warn but build the identical engine, per preset."""

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_engine_equals_legacy_engine(self, name):
        cfg = PRESETS[name]
        via_config = NovaAttentionEngine(cfg)
        with pytest.warns(DeprecationWarning):
            via_kwargs = NovaAttentionEngine(**legacy_kwargs(cfg))
        for fn in via_config.tables:
            # same compiled table *object* (shared cache) and the same
            # frozen broadcast schedule => identical outputs, cycles and
            # counters by construction
            assert via_config.tables[fn] is via_kwargs.tables[fn]
            assert (via_config.units[fn].schedule
                    is via_kwargs.units[fn].schedule)
        assert via_config.n_lanes == via_kwargs.n_lanes
        assert via_config._shape == via_kwargs._shape
        # host, kv_block_size and the speculative defaults are not
        # engine geometry (no legacy kwarg ever carried them), so
        # normalise them before comparing
        assert via_config.config == via_kwargs.config.replace(
            host=cfg.host, kv_block_size=cfg.kv_block_size,
            spec_k=cfg.spec_k, draft_kind=cfg.draft_kind,
        )

    def test_config_plus_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            NovaAttentionEngine("jetson-nx", n_routers=2)
        with pytest.raises(TypeError, match="not both"):
            BatchedNovaAttentionEngine(NovaConfig(), seed=1)
        table = NovaConfig(n_segments=8).table("gelu")
        with pytest.raises(TypeError, match="not both"):
            NovaVectorUnit(table, NovaConfig(), n_routers=2)

    def test_vector_unit_legacy_positional_identical(self):
        table = NovaConfig().table("gelu")
        via_config = NovaVectorUnit(table, NovaConfig(
            n_routers=2, neurons_per_router=4, pe_frequency_ghz=1.0,
            hop_mm=1.0))
        with pytest.warns(DeprecationWarning):
            via_kwargs = NovaVectorUnit(table, 2, 4, 1.0)
        assert via_kwargs.schedule is via_config.schedule
        x = np.random.default_rng(0).normal(0, 2, size=(2, 4))
        a = via_config.approximate(x)
        b = via_kwargs.approximate(x)
        assert np.array_equal(a.outputs, b.outputs)
        assert a.latency_pe_cycles == b.latency_pe_cycles
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_vector_unit_preset_name(self):
        table = NovaConfig().table("exp")
        unit = NovaVectorUnit(table, "jetson-nx")
        assert unit.n_routers == 2 and unit.neurons_per_router == 16

    def test_vector_unit_requires_geometry(self):
        table = NovaConfig().table("exp")
        with pytest.raises(TypeError, match="NovaConfig"):
            NovaVectorUnit(table)


class TestBitExactEquivalence:
    """Deep equality at the (fast) Jetson-like geometry: outputs, cycles
    and counters of the config-built engines equal the legacy-built
    engines', and the batched path still matches the sequential one."""

    @pytest.fixture(scope="class")
    def request_batch(self):
        return bert_attention_batch("BERT-tiny", 2, seq_len=[6, 9], seed=1)

    def test_sequential_engine_bit_cycle_counter_exact(self):
        cfg = preset("jetson-nx")
        via_config = NovaAttentionEngine(cfg)
        with pytest.warns(DeprecationWarning):
            via_kwargs = NovaAttentionEngine(**legacy_kwargs(cfg))
        rng = np.random.default_rng(7)
        hidden, seq = 16, 8
        x = rng.normal(0, 1, size=(seq, hidden))
        w = {
            name: rng.normal(0, 1 / np.sqrt(hidden), size=(hidden, hidden))
            for name in ("wq", "wk", "wv", "wo")
        }
        a = via_config.attention_layer(x, n_heads=2, **w)
        b = via_kwargs.attention_layer(x, n_heads=2, **w)
        assert np.array_equal(a.outputs, b.outputs)
        assert np.array_equal(a.probabilities, b.probabilities)
        assert a.vector_cycles == b.vector_cycles
        assert a.nonlinear_queries == b.nonlinear_queries
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_batched_engine_bit_cycle_counter_exact(self, request_batch):
        cfg = preset("jetson-nx")
        via_config = BatchedNovaAttentionEngine(cfg)
        with pytest.warns(DeprecationWarning):
            via_kwargs = BatchedNovaAttentionEngine(**legacy_kwargs(cfg))
        a = via_config.attention_batch(request_batch)
        b = via_kwargs.attention_batch(request_batch)
        assert a.packed_vector_cycles == b.packed_vector_cycles
        assert a.sequential_vector_cycles == b.sequential_vector_cycles
        assert a.counters.as_dict() == b.counters.as_dict()
        for ra, rb in zip(a.results, b.results):
            assert np.array_equal(ra.outputs, rb.outputs)
            assert ra.vector_cycles == rb.vector_cycles
            assert ra.counters.as_dict() == rb.counters.as_dict()


class TestNovaSession:
    @pytest.fixture(scope="class")
    def session(self):
        return NovaSession("jetson-nx")

    def test_engines_lazy_and_cached(self, session):
        assert session.reference is session.reference
        assert session.server is session.server
        assert session.unit("exp") is session.unit("exp")

    def test_session_shares_compiled_tables_with_engines(self, session):
        assert session.unit("exp").table is session.reference.tables["exp"]
        assert session.unit("exp").table is session.server.tables["exp"]

    def test_attention_layer_matches_direct_engine(self, session):
        rng = np.random.default_rng(3)
        hidden = 16
        x = rng.normal(0, 1, size=(4, hidden))
        w = {
            name: rng.normal(0, 1 / np.sqrt(hidden), size=(hidden, hidden))
            for name in ("wq", "wk", "wv", "wo")
        }
        direct = NovaAttentionEngine(session.config)
        a = session.attention_layer(x, n_heads=2, **w)
        b = direct.attention_layer(x, n_heads=2, **w)
        assert np.array_equal(a.outputs, b.outputs)
        assert a.counters.as_dict() == b.counters.as_dict()
        exact = session.exact_attention_layer(x, n_heads=2, **w)
        assert exact.shape == (4, hidden)

    def test_serve_matches_reference(self, session):
        batch = bert_attention_batch("BERT-tiny", 2, seq_len=[5, 8], seed=4)
        result = session.serve(batch)
        for req, got in zip(batch, result.results):
            ref = session.attention_layer(
                req.x, req.wq, req.wk, req.wv, req.wo, n_heads=req.n_heads
            )
            assert np.array_equal(got.outputs, ref.outputs)
            assert got.vector_cycles == ref.vector_cycles
            assert got.counters.as_dict() == ref.counters.as_dict()

    def test_unit_unknown_function_rejected(self, session):
        with pytest.raises(KeyError):
            session.unit("definitely_not_a_function")

    def test_cache_info_shape(self, session):
        session.unit("gelu")
        info = session.cache_info()
        assert info["tables"]["entries"] >= 1
        assert info["schedules"] >= 1

    def test_session_accepts_config_and_none(self):
        assert NovaSession().config == NovaConfig()
        cfg = NovaConfig(n_routers=2, neurons_per_router=4)
        assert NovaSession(cfg).config is cfg
        assert NovaSession(cfg.to_dict()).config == cfg

    def test_repr_mentions_geometry(self, session):
        text = repr(session)
        assert "2x16" in text
        assert "1.4 GHz" in text


class TestAttentionRequestValidation:
    def test_empty_sequence_rejected(self):
        w = np.zeros((8, 8))
        with pytest.raises(ValueError, match="empty sequence"):
            AttentionRequest(
                x=np.zeros((0, 8)), wq=w, wk=w, wv=w, wo=w, n_heads=2
            )

    def test_zero_hidden_rejected(self):
        w = np.zeros((0, 0))
        with pytest.raises(ValueError, match="hidden width"):
            AttentionRequest(
                x=np.zeros((4, 0)), wq=w, wk=w, wv=w, wo=w, n_heads=1
            )

    def test_mismatched_hidden_rejected(self):
        w = np.zeros((8, 8))
        with pytest.raises(ValueError, match="wk"):
            AttentionRequest(
                x=np.zeros((4, 8)), wq=w, wk=np.zeros((4, 8)), wv=w, wo=w,
                n_heads=2,
            )
