"""Speculative decode: draft-and-verify over paged KV, pinned end to end.

The contract under test (see :mod:`repro.core.speculative`): for *any*
draft model, speculative generation produces bit-identical tokens, an
identical final KV state and the identical closed-form
sequential-equivalent cycle bill as plain
:meth:`~repro.core.decode.NovaDecodeEngine.generate` — drafts only
change how many overlay passes it takes.  Around that sit the rollback
mechanics (``truncate`` on both cache layouts, atomic
``BlockPoolExhausted`` handling mid-draft), the acceptance accounting,
the continuous batcher's speculative mode (solo-equivalent per request)
and the config/session/workload/experiment wiring.
"""

import numpy as np
import pytest

from repro.core.config import DRAFT_KINDS, NovaConfig, PRESETS, preset
from repro.core.decode import (
    ContinuousBatchScheduler,
    DecodeRequest,
    KVCache,
    KVCacheOverflow,
    NovaDecodeEngine,
)
from repro.core.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    pool_cache_info,
    worst_case_blocks,
)
from repro.core.session import NovaSession
from repro.core.speculative import (
    DraftModel,
    NGramDraft,
    ScheduledDraft,
    SpeculativeDecodeEngine,
    TruncatedTableDraft,
    build_draft,
    host_step_output,
)
from repro.workloads.bert import fidelity_for_acceptance, speculative_decode_batch
from repro.workloads.transformer import TransformerConfig, decode_request

#: Small shared geometry: tables/schedules compile once per module.
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)
ENGINE = NovaDecodeEngine(SMALL)


def toy_model(hidden=16, heads=2, seq_len=64):
    return TransformerConfig(
        "spec-toy", layers=1, hidden=hidden, heads=heads,
        intermediate=4 * hidden, seq_len=seq_len, causal=True,
    )


def toy_request(prompt_len=5, max_new_tokens=6, seed=0, window=None,
                **model_kwargs):
    return decode_request(
        toy_model(**model_kwargs), prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed, window=window,
    )


# ----------------------------------------------------------------------
# Rollback primitive: truncate on both cache layouts.
# ----------------------------------------------------------------------


class TestTruncate:
    def test_contiguous_truncate_drops_newest(self):
        cache = KVCache(2, 3, capacity=8)
        rows = [
            (np.full((2, 3), i), np.full((2, 3), -i)) for i in range(5)
        ]
        for k, v in rows:
            cache.append(k, v)
        cache.truncate(2)
        assert cache.length == 3
        assert cache.start_position == 0
        assert np.array_equal(cache.keys[0, -1], rows[2][0][0])
        # the next append overwrites the rolled-back slot
        cache.append(*rows[0])
        assert cache.length == 4
        assert np.array_equal(cache.keys[0, -1], rows[0][0][0])

    def test_paged_truncate_frees_tail_blocks(self):
        pool = BlockPool(1, 2, block_size=2, n_blocks=4)
        cache = PagedKVCache(pool, capacity=8)
        for i in range(5):
            cache.append(np.full((1, 2), i), np.full((1, 2), i))
        assert cache.blocks_in_use == 3    # 5 tokens over 2-slot blocks
        cache.truncate(1)                  # 4 tokens -> 2 blocks
        assert cache.blocks_in_use == 2
        assert pool.in_use == 2
        assert pool.live_tokens == 4
        cache.truncate(3)                  # 1 token -> 1 block
        assert cache.blocks_in_use == 1
        assert np.array_equal(cache.keys, np.zeros((1, 1, 2)))
        cache.truncate(1)                  # empty -> everything freed
        assert cache.blocks_in_use == 0
        assert pool.in_use == 0
        assert pool.live_tokens == 0

    def test_truncate_validation(self):
        cache = KVCache(1, 1, capacity=2)
        cache.append(np.ones((1, 1)), np.ones((1, 1)))
        with pytest.raises(ValueError, match="cannot truncate"):
            cache.truncate(2)
        pool = BlockPool(1, 1, 2, 2)
        paged = PagedKVCache(pool, capacity=2)
        with pytest.raises(ValueError, match="cannot truncate"):
            paged.truncate(1)
        paged.truncate(0)  # no-op
        assert pool.in_use == 0

    def test_rollback_and_eviction_frees_count_identically(self):
        """The satellite bugfix pin: blocks freed by speculative
        rollback (truncate) and by window eviction go through the same
        pool accounting — cumulative totals, live_tokens and the
        ``allocated - freed == in_use`` invariant agree whichever path
        freed the block."""
        def drive(free_via_truncate: bool) -> dict:
            pool = BlockPool(1, 1, block_size=2, n_blocks=4)
            cache = PagedKVCache(
                pool, capacity=8, window=4 if not free_via_truncate else None
            )
            one = np.ones((1, 1))
            for _ in range(6):
                if free_via_truncate and cache.length == 4:
                    cache.truncate(2)
                cache.append(one, one)
            info = pool.pool_info()
            assert (
                info["blocks_allocated"] - info["blocks_freed"]
                == info["in_use"]
            )
            return info

        evicted = drive(free_via_truncate=False)
        truncated = drive(free_via_truncate=True)
        assert evicted["blocks_freed"] >= 1
        assert truncated["blocks_freed"] >= 1
        for info in (evicted, truncated):
            assert info["live_tokens"] <= info["in_use"] * info["block_size"]

    def test_pool_cache_info_reports_cumulative_totals(self):
        before = pool_cache_info()
        for key in ("blocks_allocated", "blocks_freed", "peak_in_use"):
            assert key in before
        pool = BlockPool(1, 1, 2, 2)
        cache = PagedKVCache(pool, capacity=4)
        cache.append(np.ones((1, 1)), np.ones((1, 1)))
        cache.truncate(1)
        after = pool_cache_info()
        assert after["blocks_allocated"] >= before["blocks_allocated"] + 1
        assert after["blocks_freed"] >= before["blocks_freed"] + 1
        assert after["blocks_allocated"] - after["blocks_freed"] == after["in_use"]


# ----------------------------------------------------------------------
# Draft models.
# ----------------------------------------------------------------------


class TestDraftModels:
    def test_shipped_drafts_satisfy_the_protocol(self):
        for draft in (
            TruncatedTableDraft(SMALL),
            NGramDraft(),
            ScheduledDraft(SMALL, [True]),
        ):
            assert isinstance(draft, DraftModel)

    def test_exact_truncated_table_draft_matches_the_overlay(self):
        """fidelity=1.0 proposals are bit-identical to the verification
        outputs, so every draft is accepted."""
        request = toy_request()
        spec = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL, fidelity=1.0)
        ).generate(request)
        assert spec.acceptance_rate == 1.0
        assert spec.rolled_back_tokens == 0
        assert spec.verify_passes < request.max_new_tokens

    def test_zero_fidelity_draft_rejects_everything_but_stays_exact(self):
        request = toy_request()
        plain = ENGINE.generate(request)
        spec = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL, fidelity=0.0)
        ).generate(request)
        assert spec.accepted_tokens == 0
        assert spec.rolled_back_tokens == spec.drafted_tokens
        assert spec.verify_passes == request.max_new_tokens
        assert np.array_equal(spec.generated, plain.generated)

    def test_host_step_output_matches_decode_step(self):
        """The draft substrate reproduces one decode step bit-exactly."""
        request = toy_request()
        state = ENGINE.start(request)
        pre = ENGINE.prefill(state)
        x_t = pre.outputs[-1]
        # mirror the engine: append first, then compute on the cache
        shadow = ENGINE.start(request)
        ENGINE.prefill(shadow)
        from repro.core.decode import project_token

        _, k, v = project_token(
            x_t, request.wq, request.wk, request.wv, request.n_heads
        )
        shadow.cache.append(k, v)
        predicted = host_step_output(
            request, shadow.cache, x_t,
            SMALL.table("exp"), SMALL.table("reciprocal"),
        )
        step = ENGINE.decode_step(state, x_t)
        assert np.array_equal(predicted, step.output)

    def test_ngram_draft_replays_observed_followers(self):
        draft = NGramDraft()
        x = np.array([0.25, -1.5])
        y = np.array([1.0, 2.0])
        request = None
        assert np.array_equal(draft.propose(request, None, x, 0), x)
        draft.observe(x, y, 0)
        assert np.array_equal(draft.propose(request, None, x, 1), y)
        draft.reset()
        assert np.array_equal(draft.propose(request, None, x, 2), x)

    def test_draft_validation(self):
        with pytest.raises(ValueError, match="fidelity"):
            TruncatedTableDraft(SMALL, fidelity=1.5)
        with pytest.raises(ValueError, match="reduced_bits"):
            TruncatedTableDraft(SMALL, reduced_bits=-1)
        with pytest.raises(ValueError, match="key_bits"):
            NGramDraft(key_bits=-1)
        with pytest.raises(ValueError, match="max_history"):
            NGramDraft(max_history=0)
        with pytest.raises(ValueError, match="at least one decision"):
            ScheduledDraft(SMALL, [])
        with pytest.raises(ValueError, match="unknown draft kind"):
            build_draft("oracle", SMALL)

    def test_build_draft_constructs_every_registered_kind(self):
        for kind in DRAFT_KINDS:
            assert isinstance(build_draft(kind, SMALL), DraftModel)

    def test_draft_reprs_are_informative(self):
        assert "fidelity=0.5" in repr(TruncatedTableDraft(SMALL, fidelity=0.5))
        assert "history=0" in repr(NGramDraft())
        assert "program=101" in repr(
            ScheduledDraft(SMALL, (True, False, True))
        )

    def test_ngram_history_is_bounded(self):
        draft = NGramDraft(max_history=2)
        for i in range(3):
            draft.observe(np.array([float(i)]), np.array([float(-i)]), i)
        assert len(draft._history) <= 2

    def test_ngram_eviction_is_oldest_first_not_a_wipe(self):
        """The satellite bugfix pin: crossing ``max_history`` evicts the
        single oldest entry (dict insertion order), not the whole
        history — a full wipe cratered acceptance to zero every time a
        long generation crossed the boundary."""
        draft = NGramDraft(max_history=3)
        keys = [np.array([float(i)]) for i in range(4)]
        for i, x in enumerate(keys[:3]):
            draft.observe(x, np.array([float(-i)]), i)
        draft.observe(keys[3], np.array([-3.0]), 3)
        assert len(draft._history) == 3
        # oldest (keys[0]) evicted: proposal falls back to persistence
        assert np.array_equal(draft.propose(None, None, keys[0], 4), keys[0])
        # the two younger survivors and the newcomer still replay
        for i in (1, 2, 3):
            assert np.array_equal(
                draft.propose(None, None, keys[i], 4),
                np.array([float(-i)]),
            )
        # re-observing a resident key refreshes, never evicts
        draft.observe(keys[1], np.array([9.0]), 5)
        assert len(draft._history) == 3
        assert np.array_equal(
            draft.propose(None, None, keys[2], 6), np.array([-2.0])
        )

    def test_ngram_acceptance_survives_crossing_max_history(self):
        """A trajectory that settles into a cycle keeps earning
        verify-style hits after its history crosses ``max_history``:
        the cycle's keys are re-observed every lap so they stay young,
        and only the stale preamble falls out.  (The old ``clear()``
        eviction wiped the cycle along with the preamble, so hits
        collapsed every time the boundary was crossed.)"""
        draft = NGramDraft(max_history=4)
        # 4 distinct transient states, then a 3-state cycle: 7 distinct
        # keys force evictions with max_history=4
        preamble = [np.array([100.0 + i]) for i in range(4)]
        cycle = [np.array([float(i)]) for i in range(3)]
        trajectory = preamble + cycle * 5
        hits = 0
        for position, (x, nxt) in enumerate(
            zip(trajectory, trajectory[1:])
        ):
            # a proposal equal to the true next output is what the
            # verify pass would accept
            if np.array_equal(draft.propose(None, None, x, position), nxt):
                hits += 1
            draft.observe(x, nxt, position)
        # after one learning lap, every later lap replays perfectly
        assert hits >= 3 * 3
        assert len(draft._history) == 4
        # the preamble is what got evicted, not the live cycle
        assert np.array_equal(
            draft.propose(None, None, preamble[0], 99), preamble[0]
        )
        assert np.array_equal(
            draft.propose(None, None, cycle[0], 99), cycle[1]
        )


# ----------------------------------------------------------------------
# The engine: bit-exactness, accounting, windows.
# ----------------------------------------------------------------------


class TestSpeculativeEngine:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    def test_bit_exact_vs_plain_generate_on_every_preset(self, preset_name):
        session = NovaSession(preset_name)
        request = toy_request(prompt_len=4, max_new_tokens=5, seed=3)
        plain = session.generate(request)
        spec = session.generate(
            request, speculative=True,
            draft=ScheduledDraft(session.config, (True, False, True)),
        )
        assert np.array_equal(spec.generated, plain.generated)
        assert np.array_equal(spec.prefill.outputs, plain.prefill.outputs)
        assert spec.sequential_vector_cycles == plain.vector_cycles

    def test_exact_draft_saves_overlay_cycles(self):
        request = toy_request(prompt_len=4, max_new_tokens=8)
        plain = ENGINE.generate(request)
        spec = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL), spec_k=4
        ).generate(request)
        assert spec.vector_cycles < plain.vector_cycles
        assert spec.cycle_speedup > 1.0
        assert spec.tokens_per_pass > 1.0

    def test_windowed_request_stays_exact_and_never_evicts_drafts(self):
        request = toy_request(prompt_len=5, max_new_tokens=6, window=4)
        plain_state = ENGINE.start(request)
        plain = ENGINE.generate(request, state=plain_state)
        spec_engine = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL), spec_k=3
        )
        spec_state = spec_engine.start(request)
        spec = spec_engine.generate(request, state=spec_state)
        assert np.array_equal(spec.generated, plain.generated)
        assert spec.sequential_vector_cycles == plain.vector_cycles
        assert spec_state.cache.start_position == plain_state.cache.start_position
        assert np.array_equal(spec_state.cache.keys, plain_state.cache.keys)
        # at the window limit every pass is draft-free (provisional
        # tokens may never evict), so the run degrades gracefully
        assert all(p.tokens == 1 for p in spec.passes[1:])

    def test_committed_steps_mirror_plain_step_accounting(self):
        request = toy_request(prompt_len=3, max_new_tokens=4)
        plain = ENGINE.generate(request)
        spec = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL)
        ).generate(request)
        for plain_step, spec_step in zip(plain.steps, spec.steps):
            assert spec_step.position == plain_step.position
            assert spec_step.kv_length == plain_step.kv_length
            assert spec_step.vector_cycles == plain_step.vector_cycles
            assert spec_step.nonlinear_queries == plain_step.nonlinear_queries
            assert np.array_equal(spec_step.output, plain_step.output)
            assert np.array_equal(
                spec_step.probabilities, plain_step.probabilities
            )

    def test_zero_budget_runs_prefill_only(self):
        request = toy_request(max_new_tokens=0)
        spec = SpeculativeDecodeEngine(ENGINE).generate(request)
        assert spec.n_generated == 0
        assert spec.verify_passes == 0
        assert spec.vector_cycles == spec.prefill.vector_cycles

    def test_spec_k_validation(self):
        with pytest.raises(ValueError, match="spec_k must be >= 1"):
            SpeculativeDecodeEngine(ENGINE, spec_k=0)
        with pytest.raises(ValueError, match="spec_k must be >= 1"):
            NovaConfig(spec_k=0)
        with pytest.raises(ValueError, match="unknown draft_kind"):
            NovaConfig(draft_kind="oracle")
        with pytest.raises(TypeError, match="draft_kind"):
            NovaConfig(draft_kind=3)

    def test_config_overrides_reach_the_speculative_fields(self):
        cfg = preset("jetson-nx").with_overrides(
            ["spec_k=7", "draft_kind=ngram"]
        )
        assert cfg.spec_k == 7
        assert cfg.draft_kind == "ngram"
        engine = SpeculativeDecodeEngine(cfg)
        assert engine.spec_k == 7
        assert isinstance(engine.draft, NGramDraft)

    def test_budget_overflow_rejected_at_admission(self):
        request = toy_request(prompt_len=4, max_new_tokens=2)
        with pytest.raises(KVCacheOverflow):
            SpeculativeDecodeEngine(ENGINE).generate(
                request, max_new_tokens=10 ** 6
            )
        with pytest.raises(ValueError, match="max_new_tokens"):
            SpeculativeDecodeEngine(ENGINE).generate(
                request, max_new_tokens=-1
            )


# ----------------------------------------------------------------------
# Error paths: atomicity of the verification-pass plan.
# ----------------------------------------------------------------------


class _WrongShapeDraft:
    def propose(self, request, cache, x_t, position):
        return np.zeros(3)

    def observe(self, x_t, output, position):
        pass

    def reset(self):
        pass


class TestErrorPaths:
    def _paged_state_after_prefill(self, spec_engine, request, n_blocks):
        pool = BlockPool(
            request.n_heads, request.head_dim, 2, n_blocks=n_blocks
        )
        state = spec_engine.start(request, pool=pool)
        spec_engine.engine.prefill(state)
        return state, pool

    def test_pool_exhaustion_mid_draft_is_atomic(self):
        """Running out of blocks while appending *provisional* tokens
        rolls the whole pass back: cache, position and pool return to
        their pre-pass state before the exception propagates."""
        request = toy_request(prompt_len=2, max_new_tokens=6)
        spec_engine = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL), spec_k=4
        )
        # prompt fills 1 block; 1 spare block holds u_0 + one draft,
        # the second draft's block allocation must fail mid-pass
        state, pool = self._paged_state_after_prefill(
            spec_engine, request, n_blocks=2
        )
        x_t = np.zeros(request.hidden)
        baseline = (state.cache.length, state.position, pool.in_use,
                    pool.live_tokens)
        with pytest.raises(BlockPoolExhausted):
            spec_engine.plan_verify_pass(state, x_t, budget=6)
        assert (state.cache.length, state.position, pool.in_use,
                pool.live_tokens) == baseline

    def test_fallback_degrades_to_a_draft_free_pass(self):
        request = toy_request(prompt_len=2, max_new_tokens=6)
        spec_engine = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL), spec_k=4
        )
        state, pool = self._paged_state_after_prefill(
            spec_engine, request, n_blocks=2
        )
        spec_pass = spec_engine.plan_with_fallback(
            state, np.zeros(request.hidden), budget=6
        )
        assert len(spec_pass.job.tokens) >= 1
        assert len(spec_pass.drafts) < 4  # could not fit the full depth

    def test_wrong_shape_draft_raises_with_no_net_state_change(self):
        request = toy_request(prompt_len=3, max_new_tokens=4)
        spec_engine = SpeculativeDecodeEngine(
            ENGINE, draft=_WrongShapeDraft(), spec_k=2
        )
        state = spec_engine.start(request)
        ENGINE.prefill(state)
        baseline = (state.cache.length, state.position)
        with pytest.raises(ValueError, match="draft proposed"):
            spec_engine.plan_verify_pass(
                state, np.zeros(request.hidden), budget=4
            )
        assert (state.cache.length, state.position) == baseline

    def test_bad_input_embedding_raises_before_any_state_change(self):
        request = toy_request(prompt_len=3, max_new_tokens=4)
        spec_engine = SpeculativeDecodeEngine(ENGINE)
        state = spec_engine.start(request)
        ENGINE.prefill(state)
        baseline = (state.cache.length, state.position)
        with pytest.raises(ValueError, match="hidden width"):
            spec_engine.plan_verify_pass(state, np.zeros(3), budget=4)
        assert (state.cache.length, state.position) == baseline

    def test_pass_budget_validation(self):
        request = toy_request()
        spec_engine = SpeculativeDecodeEngine(ENGINE)
        state = spec_engine.start(request)
        ENGINE.prefill(state)
        with pytest.raises(ValueError, match="budget"):
            spec_engine.plan_verify_pass(
                state, np.zeros(request.hidden), budget=0
            )

    def test_fallback_propagates_when_even_u0_cannot_allocate(self):
        """When the committed token itself cannot get a block, the
        draft-free fallback fails too and the exhaustion propagates
        with cache and pool untouched — the scheduler's defer signal."""
        request = toy_request(prompt_len=2, max_new_tokens=4)
        spec_engine = SpeculativeDecodeEngine(
            ENGINE, draft=TruncatedTableDraft(SMALL)
        )
        state, pool = self._paged_state_after_prefill(
            spec_engine, request, n_blocks=1
        )
        assert pool.free_blocks == 0
        baseline = (state.cache.length, state.position, pool.in_use)
        with pytest.raises(BlockPoolExhausted):
            spec_engine.plan_with_fallback(
                state, np.zeros(request.hidden), budget=4
            )
        assert (state.cache.length, state.position, pool.in_use) == baseline


# ----------------------------------------------------------------------
# Continuous batching with verification passes in the stream.
# ----------------------------------------------------------------------


class TestSchedulerSpeculative:
    def _requests(self, budgets=(5, 2, 7), prompts=(3, 5, 4), seed=0):
        return [
            toy_request(prompt_len=p, max_new_tokens=b, seed=seed + i)
            for i, (p, b) in enumerate(zip(prompts, budgets))
        ]

    def _factory(self, fidelity=0.8, seed=9):
        def factory():
            return TruncatedTableDraft(SMALL, fidelity=fidelity, seed=seed)

        return factory

    def _solo(self, requests, factory):
        speculator = SpeculativeDecodeEngine(ENGINE)
        return [
            speculator.generate(r, draft=factory()) for r in requests
        ]

    def assert_solo_equivalent(self, solo, batch):
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(got.generated, ref.generated)
            assert got.vector_cycles == ref.vector_cycles
            assert got.sequential_vector_cycles == ref.sequential_vector_cycles
            assert got.verify_passes == ref.verify_passes
            assert got.drafted_tokens == ref.drafted_tokens
            assert got.accepted_tokens == ref.accepted_tokens
            assert got.rolled_back_tokens == ref.rolled_back_tokens
            assert got.counters.as_dict() == ref.counters.as_dict()

    def test_interleaved_passes_match_solo_exactly(self):
        """Requests joining and leaving mid-stream (mixed prompts and
        budgets, max_active below the batch size) stay token-, cycle-
        and counter-exact against solo speculative generation."""
        requests = self._requests(budgets=(5, 2, 7, 3), prompts=(3, 5, 4, 2))
        factory = self._factory()
        solo = self._solo(requests, factory)
        scheduler = ContinuousBatchScheduler(
            ENGINE, max_active=2, speculative=True, draft_factory=factory
        )
        batch = scheduler.run(requests)
        self.assert_solo_equivalent(solo, batch)
        assert batch.scheduler_steps < sum(r.verify_passes for r in solo) + len(
            requests
        )

    def test_paged_speculative_serving_matches_solo(self):
        requests = self._requests()
        factory = self._factory()
        solo = self._solo(requests, factory)
        scheduler = ContinuousBatchScheduler(
            ENGINE, max_active=3, speculative=True, paged=True,
            block_size=4, draft_factory=factory,
        )
        batch = scheduler.run(requests)
        self.assert_solo_equivalent(solo, batch)
        assert batch.paging is not None
        assert batch.paging["in_use"] == 0
        assert (
            batch.paging["blocks_allocated"] == batch.paging["blocks_freed"]
        )

    def test_tight_pool_defers_but_stays_exact(self):
        """A pool too small for every sequence's drafts forces
        draft-free passes and deferrals; results stay solo-exact (the
        per-request pass structure may differ, so only tokens and the
        sequential-equivalent bill are compared)."""
        requests = self._requests(budgets=(6, 6), prompts=(3, 3))
        factory = self._factory(fidelity=1.0)
        solo = self._solo(requests, factory)
        scheduler = ContinuousBatchScheduler(
            ENGINE, max_active=2, speculative=True, paged=True,
            block_size=2, pool_blocks=6, draft_factory=factory,
        )
        batch = scheduler.run(requests)
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(got.generated, ref.generated)
            assert (
                got.sequential_vector_cycles == ref.sequential_vector_cycles
            )

    def test_preemption_under_speculation_recomputes_exactly(self):
        """A pool that cannot hold two speculating sequences forces
        deferrals and a preemption-by-recomputation; the preempted
        request restarts from its prompt (draft reset included) and
        still finishes bit-identical to solo speculative generation."""
        requests = self._requests(budgets=(6, 6), prompts=(3, 3))
        factory = self._factory(fidelity=1.0)
        solo = self._solo(requests, factory)
        scheduler = ContinuousBatchScheduler(
            ENGINE, max_active=2, speculative=True, paged=True,
            block_size=2, pool_blocks=5, draft_factory=factory,
        )
        batch = scheduler.run(requests)
        assert batch.deferrals > 0
        assert batch.preemptions > 0
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(got.generated, ref.generated)
            assert (
                got.sequential_vector_cycles == ref.sequential_vector_cycles
            )

    def test_speculative_kwargs_need_speculative_mode(self):
        with pytest.raises(ValueError, match="speculative scheduler"):
            ContinuousBatchScheduler(ENGINE, spec_k=4)
        with pytest.raises(ValueError, match="speculative scheduler"):
            ContinuousBatchScheduler(ENGINE, draft_kind="ngram")
        with pytest.raises(ValueError, match="speculative scheduler"):
            ContinuousBatchScheduler(ENGINE, draft_factory=lambda: None)


# ----------------------------------------------------------------------
# Session, workloads, experiment wiring.
# ----------------------------------------------------------------------


class TestSessionAndWorkloads:
    def test_session_generate_speculative_kwargs_validated(self):
        session = NovaSession(SMALL)
        request = toy_request()
        with pytest.raises(ValueError, match="speculative=True"):
            session.generate(request, spec_k=4)
        with pytest.raises(ValueError, match="speculative=True"):
            session.generate(request, draft=NGramDraft())

    def test_session_speculator_is_cached_and_shares_the_decoder(self):
        session = NovaSession(SMALL)
        speculator = session.speculator
        assert speculator is session.speculator
        assert speculator.engine is session.decoder

    def test_session_serve_decode_speculative(self):
        session = NovaSession(SMALL)
        requests = [
            toy_request(prompt_len=3, max_new_tokens=4, seed=i)
            for i in range(3)
        ]
        batch = session.serve_decode(requests, speculative=True)
        for request, result in zip(requests, batch.results):
            plain = session.generate(request)
            assert np.array_equal(result.generated, plain.generated)
            assert result.sequential_vector_cycles == plain.vector_cycles

    def test_fidelity_for_acceptance_inverts_the_pass_model(self):
        for target, k in ((0.5, 4), (0.8, 8), (0.95, 2)):
            f = fidelity_for_acceptance(target, k)
            expected = sum(f ** i for i in range(1, k + 1)) / k
            assert expected == pytest.approx(target, abs=1e-9)
        assert fidelity_for_acceptance(0.0, 4) == 0.0
        assert fidelity_for_acceptance(1.0, 4) == 1.0
        with pytest.raises(ValueError, match="acceptance_rate"):
            fidelity_for_acceptance(1.5, 4)
        with pytest.raises(ValueError, match="spec_k"):
            fidelity_for_acceptance(0.5, 0)

    def test_speculative_decode_batch_builds_tuned_drafts(self):
        requests, factory = speculative_decode_batch(
            toy_model(), 3, acceptance_rate=0.9, prompt_len=4,
            max_new_tokens=5, seed=1, config=SMALL, spec_k=4,
        )
        assert len(requests) == 3
        draft = factory()
        assert isinstance(draft, TruncatedTableDraft)
        assert draft.fidelity == pytest.approx(
            fidelity_for_acceptance(0.9, 4)
        )
        # one fresh draft per sequence, each with its own coin seed (a
        # shared seed would replay one short coin sequence batch-wide
        # and make the measured acceptance a single sample)
        second = factory()
        assert second is not draft
        assert draft.seed == 1
        assert second.seed == 2

    def test_speculative_experiment_smoke(self):
        from repro.eval.experiments import speculative_decode_speedup

        result = speculative_decode_speedup(
            model_name=toy_model(), batch_size=2, prompt_len=3,
            max_new_tokens=4, config=SMALL, spec_k=3, warmup=False,
        )
        assert len(result.rows) == 3
        assert result.rows[0][0].startswith("plain")

    def test_speculative_experiment_rejects_zero_budget(self):
        from repro.eval.experiments import speculative_decode_speedup

        with pytest.raises(ValueError, match="max_new_tokens"):
            speculative_decode_speedup(max_new_tokens=0)
