"""Tests for multi-function table scheduling (reload-stall accounting)."""

import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.core.table_scheduler import (
    TableScheduler,
    reconfiguration_cycles,
)
from repro.workloads.bert import bert_graph
from repro.workloads.ops import MatMulOp, NonLinearOp, OpGraph


def make_tables(n_segments=16):
    tables = {}
    for name in ("exp", "gelu", "rsqrt", "reciprocal"):
        spec = get_function(name)
        tables[name] = QuantizedPwl(
            PiecewiseLinear.fit(spec.fn, spec.domain, n_segments)
        )
    return tables


class TestReconfigurationCost:
    def test_nova_free(self):
        assert reconfiguration_cycles("nova", 16) == 0

    def test_lut_pays_two_words_per_entry(self):
        assert reconfiguration_cycles("per_neuron_lut", 16) == 32
        assert reconfiguration_cycles("per_core_lut", 8) == 16
        assert reconfiguration_cycles("nvdla_sdp", 16) == 32

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            reconfiguration_cycles("tpu", 16)


class TestScheduler:
    def simple_graph(self):
        graph = OpGraph("g")
        graph.add(NonLinearOp("sm1", "exp", queries=1024))
        graph.add(MatMulOp("mm", 8, 8, 8))
        graph.add(NonLinearOp("act", "gelu", queries=512))
        graph.add(NonLinearOp("sm2", "exp", queries=1024))
        return graph

    def test_nova_schedule_no_reloads(self):
        scheduler = TableScheduler(make_tables(), n_lanes=256, unit_kind="nova")
        report = scheduler.schedule(self.simple_graph())
        assert report.reload_cycles == 0
        assert report.compute_cycles == 4 + 2 + 4

    def test_lut_schedule_pays_on_switches(self):
        scheduler = TableScheduler(
            make_tables(), n_lanes=256, unit_kind="per_neuron_lut"
        )
        report = scheduler.schedule(self.simple_graph())
        # exp -> gelu -> exp: two switches, 32 cycles each
        assert report.function_switches() == 2
        assert report.reload_cycles == 64
        assert report.total_cycles == report.compute_cycles + 64

    def test_first_phase_needs_no_reload(self):
        graph = OpGraph("g")
        graph.add(NonLinearOp("only", "exp", queries=100))
        scheduler = TableScheduler(
            make_tables(), n_lanes=100, unit_kind="per_core_lut"
        )
        assert scheduler.schedule(graph).reload_cycles == 0

    def test_same_function_runs_need_no_reload(self):
        graph = OpGraph("g")
        graph.add(NonLinearOp("a", "exp", queries=100))
        graph.add(NonLinearOp("b", "exp", queries=100))
        scheduler = TableScheduler(
            make_tables(), n_lanes=100, unit_kind="per_neuron_lut"
        )
        assert scheduler.schedule(graph).reload_cycles == 0

    def test_relu_is_free_and_tableless(self):
        graph = OpGraph("g")
        graph.add(NonLinearOp("r", "relu", queries=100))
        scheduler = TableScheduler(make_tables(), n_lanes=10, unit_kind="nova")
        report = scheduler.schedule(graph)
        assert report.phases == []

    def test_missing_table_raises(self):
        graph = OpGraph("g")
        graph.add(NonLinearOp("t", "tanh", queries=10))
        scheduler = TableScheduler(make_tables(), n_lanes=10)
        with pytest.raises(KeyError, match="tanh"):
            scheduler.schedule(graph)

    def test_validation(self):
        with pytest.raises(ValueError):
            TableScheduler(make_tables(), n_lanes=0)
        with pytest.raises(ValueError):
            TableScheduler({}, n_lanes=10)
        with pytest.raises(ValueError):
            TableScheduler(make_tables(), n_lanes=10, unit_kind="bad")


class TestBertScheduling:
    """The ablation the paper implies: per-layer function switching."""

    def test_bert_layer_switch_pattern(self):
        # per encoder layer: exp -> recip -> rsqrt -> gelu -> rsqrt
        tables = make_tables()
        scheduler = TableScheduler(tables, n_lanes=1024, unit_kind="nova")
        report = scheduler.schedule(bert_graph("BERT-tiny", seq_len=128))
        # 2 layers x 5 table-using phases
        assert len(report.phases) == 10
        assert report.reload_cycles == 0

    def test_lut_reload_overhead_meaningful_at_short_seq(self):
        tables = make_tables()
        nova = TableScheduler(tables, n_lanes=2560, unit_kind="nova")
        lut = TableScheduler(tables, n_lanes=2560, unit_kind="per_neuron_lut")
        graph = bert_graph("BERT-tiny", seq_len=128)
        nova_report = nova.schedule(graph)
        lut_report = lut.schedule(graph)
        assert nova_report.compute_cycles == lut_report.compute_cycles
        assert lut_report.reload_cycles > 0
        # at REACT's edge geometry (2560 lanes, seq 128) reloads are a
        # double-digit percentage of the vector unit's work
        assert lut_report.reload_overhead > 0.1

    def test_reload_overhead_shrinks_with_seq_len(self):
        tables = make_tables()
        lut = TableScheduler(tables, n_lanes=1024, unit_kind="per_neuron_lut")
        short = lut.schedule(bert_graph("BERT-tiny", seq_len=128))
        long = lut.schedule(bert_graph("BERT-tiny", seq_len=1024))
        assert long.reload_overhead < short.reload_overhead
