"""Edge cases of the serving workload generator (repro.serving.arrivals).

The trace builder's interesting inputs are the degenerate ones: empty
and single-request traces, collapsed Pareto bounds (``lo == hi``), and
deadline scaling at extreme ``cycles_per_token`` values — the places
where an off-by-one or a division would silently produce an unservable
trace.  Everything here is seeded, so every assertion is exact.
"""

import numpy as np
import pytest

from repro.core.config import NovaConfig
from repro.core.decode import NovaDecodeEngine
from repro.serving.arrivals import (
    bounded_pareto,
    bursty_arrivals,
    build_trace,
    estimate_cycles_per_token,
    poisson_arrivals,
)
from repro.utils.rng import make_rng

SMALL = NovaConfig(n_routers=2, neurons_per_router=8)
ENGINE = NovaDecodeEngine(SMALL)


class TestBoundedPareto:
    def test_zero_draws_is_an_empty_list(self):
        assert bounded_pareto(make_rng(0), 0, alpha=1.1, lo=1, hi=8) == []

    def test_collapsed_bounds_are_deterministic(self):
        """lo == hi skips sampling entirely: every draw is the bound."""
        assert bounded_pareto(
            make_rng(0), 5, alpha=1.1, lo=3, hi=3
        ) == [3, 3, 3, 3, 3]

    def test_draws_stay_in_bounds_and_skew_low(self):
        draws = bounded_pareto(make_rng(7), 500, alpha=1.1, lo=2, hi=64)
        assert all(2 <= d <= 64 for d in draws)
        # Heavy tail: mass concentrates at the low bound.
        assert sorted(draws)[len(draws) // 2] < 8

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(n=-1, alpha=1.1, lo=1, hi=8), "n must be >= 0"),
            (dict(n=1, alpha=0.0, lo=1, hi=8), "alpha must be > 0"),
            (dict(n=1, alpha=1.1, lo=0, hi=8), "1 <= lo <= hi"),
            (dict(n=1, alpha=1.1, lo=9, hi=8), "1 <= lo <= hi"),
        ],
    )
    def test_validation(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            bounded_pareto(make_rng(0), **kwargs)


class TestArrivalProcesses:
    def test_zero_request_traces_are_empty(self):
        assert poisson_arrivals(make_rng(0), 0, mean_gap=10.0) == []
        assert bursty_arrivals(make_rng(0), 0, mean_gap=10.0) == []

    def test_arrivals_are_positive_and_nondecreasing(self):
        for times in (
            poisson_arrivals(make_rng(3), 50, mean_gap=5.0),
            bursty_arrivals(make_rng(3), 50, mean_gap=5.0),
        ):
            assert len(times) == 50
            assert times[0] > 0.0
            assert all(a <= b for a, b in zip(times, times[1:]))

    def test_bursts_share_an_arrival_instant(self):
        times = bursty_arrivals(
            make_rng(1), 64, mean_gap=100.0, burst_alpha=0.5, max_burst=8
        )
        # A heavy burst tail at 64 requests must produce at least one
        # simultaneous pair (distinct instants < requests).
        assert len(set(times)) < len(times)

    @pytest.mark.parametrize("fn", [poisson_arrivals, bursty_arrivals])
    def test_gap_validation(self, fn):
        with pytest.raises(ValueError, match="mean_gap must be > 0"):
            fn(make_rng(0), 1, mean_gap=0.0)
        with pytest.raises(ValueError, match="n must be >= 0"):
            fn(make_rng(0), -1, mean_gap=1.0)

    def test_burst_size_validation(self):
        with pytest.raises(ValueError, match="max_burst must be >= 1"):
            bursty_arrivals(make_rng(0), 1, mean_gap=1.0, max_burst=0)


class TestBuildTrace:
    def test_single_request_trace(self):
        trace = build_trace(1, hidden=4, n_heads=2, seed=5)
        assert len(trace) == 1
        serving = trace[0]
        assert serving.request_id == 0
        assert serving.arrival > 0.0
        assert serving.deadline is None
        assert serving.request.x.shape[1] == 4
        # Pure function of its arguments: same seed, same trace.
        again = build_trace(1, hidden=4, n_heads=2, seed=5)[0]
        assert np.array_equal(serving.request.x, again.request.x)
        assert serving.arrival == again.arrival

    def test_zero_requests_is_rejected(self):
        with pytest.raises(ValueError, match="n_requests must be >= 1"):
            build_trace(0)

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(process="uniform"), "poisson"),
            (dict(tenants=()), "at least one tenant"),
            (dict(priorities=()), "at least one priority"),
            (dict(deadline_slack=-1.0), "deadline_slack must be >= 0"),
            (dict(deadline_slack=2.0), "needs cycles_per_token"),
        ],
    )
    def test_validation(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            build_trace(4, **kwargs)

    def test_deadline_scales_linearly_with_cycles_per_token(self):
        base = build_trace(
            4, hidden=4, n_heads=2, deadline_slack=2.0,
            cycles_per_token=10.0, seed=9,
        )
        scaled = build_trace(
            4, hidden=4, n_heads=2, deadline_slack=2.0,
            cycles_per_token=20.0, seed=9,
        )
        for a, b in zip(base, scaled):
            assert a.deadline is not None and b.deadline is not None
            assert a.deadline > a.arrival
            # Doubling cycles_per_token doubles the post-arrival slack.
            assert b.deadline - b.arrival == pytest.approx(
                2.0 * (a.deadline - a.arrival)
            )

    def test_deadlines_survive_extreme_cycles_per_token(self):
        """A tiny estimate must still give a strictly-after-arrival
        deadline (SequenceMeta validation would reject deadline <=
        arrival) and a huge one must stay finite."""
        tiny = build_trace(
            3, hidden=4, n_heads=2, deadline_slack=1.0,
            cycles_per_token=1e-9, seed=2,
        )
        huge = build_trace(
            3, hidden=4, n_heads=2, deadline_slack=1.0,
            cycles_per_token=1e12, seed=2,
        )
        for serving in tiny + huge:
            assert serving.deadline is not None
            assert serving.deadline > serving.arrival
            assert np.isfinite(serving.deadline)

    def test_measured_estimate_plugs_into_deadlines(self):
        cpt = estimate_cycles_per_token(ENGINE, hidden=4, n_heads=2)
        assert cpt > 0.0
        # Deterministic: the probe is seeded and cycles architectural.
        assert cpt == estimate_cycles_per_token(ENGINE, hidden=4, n_heads=2)
        trace = build_trace(
            2, hidden=4, n_heads=2, deadline_slack=3.0,
            cycles_per_token=cpt, seed=4,
        )
        for serving in trace:
            budget = serving.request.max_new_tokens
            prompt = len(serving.request.x)
            assert serving.deadline == pytest.approx(
                serving.arrival + 3.0 * cpt * (prompt + budget)
            )
