"""Unit + equivalence tests for the NOVA vector unit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.core.config import NovaConfig
from repro.core.vector_unit import NovaVectorUnit


def make_unit(n_routers=4, neurons=8, n_segments=16, pe_ghz=1.0, name="gelu",
              hop_mm=1.0):
    spec = get_function(name)
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, n_segments))
    return NovaVectorUnit(
        table,
        NovaConfig(n_routers=n_routers, neurons_per_router=neurons,
                   pe_frequency_ghz=pe_ghz, hop_mm=hop_mm),
    )


class TestFunctionalVerification:
    """Stands in for the paper's Synopsys VCS verification (§V-A)."""

    def test_bit_exact_vs_golden(self):
        unit = make_unit()
        x = np.random.default_rng(0).normal(0, 3, size=(4, 8))
        assert np.array_equal(unit.approximate(x).outputs, unit.golden_reference(x))

    def test_bit_exact_with_8_segment_table(self):
        unit = make_unit(n_segments=8)
        x = np.random.default_rng(1).normal(0, 3, size=(4, 8))
        assert np.array_equal(unit.approximate(x).outputs, unit.golden_reference(x))

    def test_bit_exact_multi_cycle_traversal(self):
        unit = make_unit(n_routers=25, neurons=2, pe_ghz=0.75)
        assert unit.schedule.traversal_segments > 1
        x = np.random.default_rng(2).normal(0, 3, size=(25, 2))
        assert np.array_equal(unit.approximate(x).outputs, unit.golden_reference(x))

    def test_out_of_domain_inputs_clamped(self):
        unit = make_unit()
        x = np.array([[100.0, -100.0] + [0.0] * 6] * 4)
        out = unit.approximate(x).outputs
        assert np.array_equal(out, unit.golden_reference(x))


class TestTiming:
    def test_latency_two_pe_cycles_at_paper_operating_point(self):
        unit = make_unit(n_routers=8, neurons=128, pe_ghz=1.4, hop_mm=0.5)
        result = unit.approximate(np.zeros((8, 128)))
        assert result.latency_pe_cycles == 2
        assert result.noc_cycles == 2  # 2 beats, single NoC cycle each

    def test_stream_pipeline_cycles(self):
        unit = make_unit()
        xs = np.random.default_rng(3).normal(size=(10, 4, 8))
        stream = unit.run_stream(xs)
        # 10 batches through a 2-stage pipeline: 11 PE cycles
        assert stream.total_pe_cycles == 11

    def test_stream_outputs_match_golden(self):
        unit = make_unit()
        xs = np.random.default_rng(4).normal(size=(5, 4, 8))
        stream = unit.run_stream(xs)
        for t in range(5):
            assert np.array_equal(stream.outputs[t], unit.golden_reference(xs[t]))


class TestEventCounting:
    def test_per_batch_counts(self):
        unit = make_unit(n_routers=4, neurons=8)
        result = unit.approximate(np.zeros((4, 8)))
        c = result.counters
        assert c.get("comparator_eval") == 32
        assert c.get("mac_op") == 32
        assert c.get("pair_capture") == 32
        assert c.get("wire_hop") == 2 * 4  # 2 beats x 4 routers
        assert c.get("beat_launch") == 2

    def test_stream_counters_scale_linearly(self):
        unit = make_unit()
        xs = np.zeros((3, 4, 8))
        stream = unit.run_stream(xs)
        assert stream.counters.get("mac_op") == 3 * 32
        assert stream.counters.get("beat_launch") == 6


class TestValidation:
    def test_input_shape(self):
        unit = make_unit()
        with pytest.raises(ValueError):
            unit.approximate(np.zeros((3, 8)))

    def test_stream_dims(self):
        unit = make_unit()
        with pytest.raises(ValueError):
            unit.run_stream(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            unit.run_stream(np.zeros((0, 4, 8)))

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            NovaConfig(n_routers=4, neurons_per_router=0,
                       pe_frequency_ghz=1.0)
        spec = get_function("gelu")
        table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                NovaVectorUnit(table, 4, 0, 1.0)

    def test_bad_router_count(self):
        # regression: a zero/negative router count must fail fast in the
        # constructor, not deep inside the mapper or topology
        spec = get_function("gelu")
        table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
        for n_routers in (0, -1):
            with pytest.raises(ValueError, match="n_routers"):
                NovaConfig(n_routers=n_routers, neurons_per_router=8,
                           pe_frequency_ghz=1.0)
            with pytest.warns(DeprecationWarning):
                with pytest.raises(ValueError, match="n_routers"):
                    NovaVectorUnit(table, n_routers, 8, 1.0)

    def test_stream_batch_shape_checked(self):
        unit = make_unit()
        with pytest.raises(ValueError):
            unit.run_stream(np.zeros((2, 3, 8)))


class TestVectorizedStream:
    """The fast path must be indistinguishable from the cycle sim."""

    @pytest.mark.parametrize(
        "n_routers,neurons,n_segments,pe_ghz",
        [(4, 8, 16, 1.0), (25, 2, 16, 0.75), (3, 5, 8, 0.5)],
    )
    def test_matches_simulated_path(self, n_routers, neurons, n_segments, pe_ghz):
        xs = np.random.default_rng(7).normal(
            0, 3, size=(6, n_routers, neurons)
        )
        fast = make_unit(n_routers, neurons, n_segments, pe_ghz)
        slow = make_unit(n_routers, neurons, n_segments, pe_ghz)
        a = fast.run_stream(xs)
        b = slow.run_stream(xs, simulate=True)
        assert np.array_equal(a.outputs, b.outputs)
        assert a.total_pe_cycles == b.total_pe_cycles
        assert a.batch_latency_pe_cycles == b.batch_latency_pe_cycles
        # exact counter parity, including the address-dependent tag_match
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_addresses_reported_on_fast_path(self):
        unit = make_unit()
        xs = np.random.default_rng(8).normal(0, 3, size=(3, 4, 8))
        stream = unit.run_stream(xs)
        assert stream.addresses is not None
        assert np.array_equal(stream.addresses, unit.table.segment_index(xs))

    def test_lifetime_counters_consistent_across_modes(self):
        # interleaving fast streams with per-batch approximate() must keep
        # one monotonic lifetime ledger
        unit = make_unit()
        xs = np.random.default_rng(9).normal(0, 3, size=(2, 4, 8))
        before = unit._lifetime_counters()
        unit.run_stream(xs)
        unit.approximate(xs[0])
        unit.run_stream(xs, simulate=True)
        delta = unit._lifetime_counters().diff(before)
        assert delta.get("mac_op") == 5 * 32  # 2 + 1 + 2 batches of 32 lanes
        assert delta.get("beat_launch") == 5 * 2


class TestRetarget:
    def test_retarget_switches_function_in_place(self):
        gelu = make_unit()
        spec = get_function("exp")
        exp_table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
        x = np.random.default_rng(10).normal(0, 2, size=(4, 8))
        gelu.retarget(exp_table)
        assert np.array_equal(
            gelu.approximate(x).outputs, exp_table.evaluate(x)
        )

    def test_retarget_across_segment_counts_reschedules(self):
        unit = make_unit(n_segments=16)
        assert unit.schedule.n_beats == 2
        spec = get_function("exp")
        t8 = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 8))
        unit.retarget(t8)
        assert unit.schedule.n_beats == 1
        x = np.random.default_rng(11).normal(0, 2, size=(4, 8))
        assert np.array_equal(unit.approximate(x).outputs, t8.evaluate(x))

    def test_retarget_preserves_counters(self):
        unit = make_unit()
        unit.run_stream(np.zeros((2, 4, 8)))
        lifetime = unit._lifetime_counters()
        spec = get_function("exp")
        unit.retarget(QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16)))
        assert unit._lifetime_counters().as_dict() == lifetime.as_dict()


@settings(max_examples=25, deadline=None)
@given(
    x=hnp.arrays(
        dtype=np.float64,
        shape=(3, 5),
        elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
)
def test_hardware_equals_golden_property(x):
    """The cycle-accurate pipeline is bit-exact for any input whatsoever."""
    spec = get_function("tanh")
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
    unit = NovaVectorUnit(table, NovaConfig(
        n_routers=3, neurons_per_router=5, pe_frequency_ghz=0.5, hop_mm=1.0))
    assert np.array_equal(unit.approximate(x).outputs, unit.golden_reference(x))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_mlp_trained_tables_also_exact(seed):
    spec = get_function("exp")
    mlp = train_nnlut_mlp(spec, n_segments=16, seed=seed, epochs=40)
    table = QuantizedPwl(mlp.to_piecewise_linear(n_segments=16))
    unit = NovaVectorUnit(table, NovaConfig(
        n_routers=2, neurons_per_router=4, pe_frequency_ghz=1.0, hop_mm=1.0))
    x = np.random.default_rng(seed).uniform(-20, 4, size=(2, 4))
    assert np.array_equal(unit.approximate(x).outputs, unit.golden_reference(x))
