"""Cross-module integration tests.

These are the repository's 'testbench' suite: they wire the compile-time
flow (MLP -> table -> beats), the three hardware implementations, the
accelerator timing models and the energy accounting together and check
the end-to-end invariants the paper relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.approx.quantize import QuantizedPwl
from repro.approx.softmax import approx_softmax, exact_softmax
from repro.core.config import NovaConfig
from repro.core.vector_unit import NovaVectorUnit
from repro.luts.per_core import PerCoreLutUnit
from repro.luts.per_neuron import PerNeuronLutUnit
from repro.workloads.traces import activation_trace, attention_logit_trace


@pytest.fixture(scope="module")
def gelu_table():
    spec = get_function("gelu")
    mlp = train_nnlut_mlp(spec, n_segments=16, seed=0)
    return QuantizedPwl(mlp.to_piecewise_linear(n_segments=16))


@pytest.fixture(scope="module")
def exp_table():
    spec = get_function("exp")
    mlp = train_nnlut_mlp(spec, n_segments=16, seed=0)
    return QuantizedPwl(mlp.to_piecewise_linear(n_segments=16))


class TestCompileToHardwareFlow:
    """NN-LUT MLP -> PWL -> quantised table -> all three hardware units."""

    def test_three_implementations_bit_identical(self, gelu_table):
        x = activation_trace(4 * 32, scale=2.5, seed=1).reshape(4, 32)
        nova = NovaVectorUnit(gelu_table, NovaConfig(
            n_routers=4, neurons_per_router=32, pe_frequency_ghz=1.0,
            hop_mm=1.0))
        pn = PerNeuronLutUnit(gelu_table, 4, 32)
        pc = PerCoreLutUnit(gelu_table, 4, 32)
        golden = gelu_table.evaluate(x)
        assert np.array_equal(nova.approximate(x).outputs, golden)
        assert np.array_equal(pn.approximate(x).outputs, golden)
        assert np.array_equal(pc.approximate(x).outputs, golden)

    def test_equal_latency(self, gelu_table):
        # §V-B: both LUT baselines and NOVA present the same 2-cycle latency
        x = np.zeros((4, 32))
        nova = NovaVectorUnit(gelu_table, NovaConfig(
            n_routers=4, neurons_per_router=32, pe_frequency_ghz=1.4,
            hop_mm=0.5))
        pn = PerNeuronLutUnit(gelu_table, 4, 32)
        assert (nova.approximate(x).latency_pe_cycles
                == pn.approximate(x).latency_pe_cycles == 2)

    def test_accuracy_unaffected_by_implementation(self, exp_table):
        """Softmax through the cycle-accurate NOVA == functional approx."""
        logits = attention_logit_trace(64 * 8, seq_len=64, seed=2).reshape(8, 64)
        unit = NovaVectorUnit(exp_table, NovaConfig(
            n_routers=8, neurons_per_router=64, pe_frequency_ghz=1.4,
            hop_mm=0.5))
        hw_exp = unit.approximate(logits).outputs
        hw_softmax = np.maximum(hw_exp, 0.0)
        hw_softmax = hw_softmax / hw_softmax.sum(axis=-1, keepdims=True)
        functional = approx_softmax(logits, exp_table.evaluate, axis=-1)
        assert np.allclose(hw_softmax, functional, atol=1e-12)


class TestAttentionOnSystolicHost:
    """An attention layer's softmax running through the TPU overlay."""

    def test_mxu_drain_softmax(self, exp_table):
        from repro.core.overlay import SystolicOverlay

        n_mxus, cols, rows = 4, 64, 16
        unit = NovaVectorUnit(exp_table, NovaConfig(
            n_routers=n_mxus, neurons_per_router=cols,
            pe_frequency_ghz=1.4, hop_mm=0.5))
        overlay = SystolicOverlay(unit=unit, systolic_cols=cols)
        logits = attention_logit_trace(
            rows * n_mxus * cols, seq_len=cols, seed=3
        ).reshape(rows, n_mxus, cols)
        stream = overlay.process_mxu_drain(logits)
        # one row drained per PE cycle, 2-stage pipeline
        assert stream.total_pe_cycles == rows + 1
        probs = np.maximum(stream.outputs, 0.0)
        probs = probs / probs.sum(axis=-1, keepdims=True)
        exact = exact_softmax(logits, axis=-1)
        # per-element exp error accumulates in the denominator of peaked
        # 64-wide rows; the attention ordering is what must survive
        assert np.max(np.abs(probs - exact)) < 0.15
        assert np.array_equal(probs.argmax(-1), exact.argmax(-1))


class TestEnergyAccountingEndToEnd:
    def test_more_queries_more_energy(self, gelu_table):
        from repro.hw.energy import EnergyModel

        unit = NovaVectorUnit(gelu_table, NovaConfig(
            n_routers=2, neurons_per_router=8, pe_frequency_ghz=1.0,
            hop_mm=1.0))
        model = EnergyModel(n_segments=16, hop_mm=1.0)
        short = unit.run_stream(np.zeros((2, 2, 8)))
        long = unit.run_stream(np.zeros((8, 2, 8)))
        assert model.energy_pj(long.counters) == pytest.approx(
            4 * model.energy_pj(short.counters), rel=0.01
        )

    def test_nova_spends_no_lut_read_energy(self, gelu_table):
        unit = NovaVectorUnit(gelu_table, NovaConfig(
            n_routers=2, neurons_per_router=8, pe_frequency_ghz=1.0,
            hop_mm=1.0))
        stream = unit.run_stream(np.zeros((3, 2, 8)))
        assert stream.counters.get("lut_read") == 0
        assert stream.counters.get("wire_hop") > 0

    def test_lut_unit_spends_no_wire_energy(self, gelu_table):
        unit = PerNeuronLutUnit(gelu_table, 2, 8)
        before = unit.lifetime_counters()
        unit.approximate(np.zeros((2, 8)))
        counters = unit.lifetime_counters().diff(before)
        assert counters.get("wire_hop") == 0
        assert counters.get("lut_read") == 16


class TestWorkloadThroughFullStack:
    def test_bert_tiny_attention_block_numbers(self):
        """One BERT-tiny attention block: queries through the hardware
        match the op-graph's predicted count."""
        from repro.workloads.bert import bert_graph

        graph = bert_graph("BERT-tiny", seq_len=64)
        exp_queries = graph.queries_by_function()["exp"]
        # layers * heads * S^2 = 2 * 2 * 64 * 64
        assert exp_queries == 2 * 2 * 64 * 64


@settings(max_examples=20, deadline=None)
@given(
    n_segments=st.sampled_from([8, 16]),
    n_routers=st.integers(min_value=1, max_value=10),
    neurons=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=100),
)
def test_equivalence_property_across_geometries(
    n_segments, n_routers, neurons, seed
):
    """NOVA == per-neuron LUT == per-core LUT == golden, for any geometry,
    table size and input values — the repository's central invariant."""
    spec = get_function("tanh")
    from repro.approx.pwl import PiecewiseLinear

    table = QuantizedPwl(
        PiecewiseLinear.fit(spec.fn, spec.domain, n_segments)
    )
    rng = np.random.default_rng(seed)
    x = rng.uniform(-10, 10, size=(n_routers, neurons))
    golden = table.evaluate(x)
    nova = NovaVectorUnit(table, NovaConfig(
        n_routers=n_routers, neurons_per_router=neurons,
        pe_frequency_ghz=0.5, hop_mm=1.0))
    pn = PerNeuronLutUnit(table, n_routers, neurons)
    pc = PerCoreLutUnit(table, n_routers, neurons)
    assert np.array_equal(nova.approximate(x).outputs, golden)
    assert np.array_equal(pn.approximate(x).outputs, golden)
    assert np.array_equal(pc.approximate(x).outputs, golden)
