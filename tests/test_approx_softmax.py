"""Unit tests for approximate softmax / GeLU composition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.approx.error import error_report, max_abs_error, mean_abs_error, rmse
from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.softmax import (
    approx_gelu,
    approx_softmax,
    exact_softmax,
    make_softmax_approximator,
)


class TestExactSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 16))
        assert np.allclose(exact_softmax(x).sum(axis=-1), 1.0)

    def test_stable_for_large_inputs(self):
        out = exact_softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(out, [0.5, 0.5])

    def test_axis_argument(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        assert np.allclose(exact_softmax(x, axis=0).sum(axis=0), 1.0)


class TestApproxSoftmax:
    def test_close_to_exact(self):
        # classifier-width rows (10-way): tail error of the exp table
        # barely accumulates in the normaliser
        sm = make_softmax_approximator(16, use_mlp=False)
        x = np.random.default_rng(2).normal(scale=3.0, size=(32, 10))
        diff = np.abs(sm(x) - exact_softmax(x))
        assert diff.max() < 0.03

    def test_error_grows_mildly_with_row_width(self):
        # attention-width rows (64-way): per-element exp error accumulates
        # in the denominator, but stays within a few percent of probability
        sm = make_softmax_approximator(16, use_mlp=False)
        x = np.random.default_rng(2).normal(scale=3.0, size=(8, 64))
        diff = np.abs(sm(x) - exact_softmax(x))
        assert diff.max() < 0.1

    def test_sums_close_to_one(self):
        sm = make_softmax_approximator(16, use_mlp=False)
        x = np.random.default_rng(3).normal(scale=2.0, size=(4, 32))
        assert np.allclose(sm(x).sum(axis=-1), 1.0, atol=1e-9)

    def test_outputs_non_negative(self):
        sm = make_softmax_approximator(8, use_mlp=False)
        x = np.random.default_rng(4).normal(scale=5.0, size=(4, 32))
        assert np.all(sm(x) >= 0.0)

    def test_argmax_preserved(self):
        # PWL exp is monotone, so the ordering (and argmax) is preserved
        sm = make_softmax_approximator(16, use_mlp=True, seed=1)
        x = np.random.default_rng(5).normal(scale=3.0, size=(64, 10))
        assert np.array_equal(
            sm(x).argmax(axis=-1), exact_softmax(x).argmax(axis=-1)
        )

    def test_approximate_reciprocal_path(self):
        sm = make_softmax_approximator(
            16, use_mlp=False, approximate_reciprocal=True
        )
        assert sm.recip_table is not None
        x = np.random.default_rng(6).normal(scale=2.0, size=(4, 16))
        diff = np.abs(sm(x) - exact_softmax(x))
        assert diff.max() < 0.05

    def test_underflow_fallback_uniform(self):
        # all elements far below the exp table's domain -> uniform output
        exp_table = PiecewiseLinear.fit(np.exp, (-16.0, 0.0), 16)

        def always_zero(x):
            return np.zeros_like(np.asarray(x))

        out = approx_softmax(np.array([[1.0, 2.0, 3.0]]), always_zero)
        assert np.allclose(out, 1.0 / 3.0)
        del exp_table

    def test_mlp_flow_matches_paper_budget(self):
        sm = make_softmax_approximator(16, use_mlp=True, seed=0)
        assert sm.n_segments == 16
        assert sm.exp_table.n_segments == 16


class TestApproxGelu:
    def test_wrapper(self):
        spec = get_function("gelu")
        table = PiecewiseLinear.fit(spec.fn, spec.domain, 16)
        xs = np.linspace(-8, 8, 101)
        assert np.array_equal(approx_gelu(xs, table.evaluate), table.evaluate(xs))


class TestErrorMetrics:
    def test_zero_for_identical(self):
        f = np.tanh
        assert max_abs_error(f, f, (-2, 2)) == 0.0
        assert mean_abs_error(f, f, (-2, 2)) == 0.0
        assert rmse(f, f, (-2, 2)) == 0.0

    def test_constant_offset(self):
        f = np.tanh
        g = lambda x: np.tanh(x) + 0.5
        assert max_abs_error(g, f, (-2, 2)) == pytest.approx(0.5)
        assert mean_abs_error(g, f, (-2, 2)) == pytest.approx(0.5)
        assert rmse(g, f, (-2, 2)) == pytest.approx(0.5)

    def test_report_keys(self):
        report = error_report(np.tanh, np.tanh, (-1, 1))
        assert set(report) == {"max_abs_error", "mean_abs_error", "rmse"}

    def test_rmse_between_mean_and_max(self):
        g = lambda x: np.tanh(x) + np.sin(10 * x) * 0.1
        lo = mean_abs_error(g, np.tanh, (-2, 2))
        hi = max_abs_error(g, np.tanh, (-2, 2))
        mid = rmse(g, np.tanh, (-2, 2))
        assert lo <= mid <= hi


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 16)),
        elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
)
def test_approx_softmax_is_distribution(x):
    sm = make_softmax_approximator(16, use_mlp=False)
    out = sm(x)
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-9)
