"""Tests for the quantised-table format validation paths."""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.utils.fixed_point import FixedPointFormat, Q1_14


class TestFormatValidation:
    def test_saturating_format_rejected_with_hint(self):
        spec = get_function("gelu")  # domain (-8, 8)
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 16)
        with pytest.raises(ValueError, match="more integer bits"):
            QuantizedPwl(pwl, input_format=Q1_14)  # range (-2, 2)

    def test_edge_saturation_is_fine(self):
        # Q3.12 tops out at 8 - LSB; the domain edge saturating is
        # harmless because cuts are strictly interior
        spec = get_function("gelu")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 16)
        table = QuantizedPwl(pwl, input_format=FixedPointFormat(3, 12))
        xs = np.linspace(-8, 8, 257)
        assert np.all(np.isfinite(table.evaluate(xs)))

    def test_insufficient_resolution_rejected_with_hint(self):
        # a coarse format collapses adjacent cuts of a dense table:
        # exp's 64-segment fit has cuts ~0.03 apart near 0, far below a
        # 1/8 LSB
        spec = get_function("exp")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 64)
        coarse = FixedPointFormat(12, 3)  # LSB = 1/8
        with pytest.raises(ValueError, match="resolve adjacent cut"):
            QuantizedPwl(pwl, input_format=coarse)

    def test_distinct_formats_per_field(self):
        spec = get_function("tanh")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 8)
        table = QuantizedPwl(
            pwl,
            input_format=FixedPointFormat(5, 10),
            coeff_format=FixedPointFormat(1, 14),
            output_format=FixedPointFormat(1, 14),
        )
        # tanh slopes/biases/outputs all fit in (-2, 2): this must work
        xs = np.linspace(-6, 6, 100)
        assert np.max(np.abs(table.evaluate(xs) - spec.fn(xs))) < 0.05

    def test_quantized_cuts_remain_increasing(self):
        spec = get_function("exp")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 16)
        table = QuantizedPwl(pwl)
        assert np.all(np.diff(table.quantized_pwl.cuts) > 0)
