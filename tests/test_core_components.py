"""Unit tests for the comparator bank, MAC lane and overlay adapters."""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.core.comparator import ComparatorBank
from repro.core.mac import MacLane
from repro.core.overlay import NvdlaOverlay, ReactOverlay, SystolicOverlay
from repro.core.config import NovaConfig
from repro.core.vector_unit import NovaVectorUnit


def make_table(n_segments=16, name="sigmoid"):
    spec = get_function(name)
    return QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, n_segments))


class TestComparatorBank:
    def test_addresses_match_table(self):
        table = make_table()
        bank = ComparatorBank(table=table, n_neurons=16)
        x = np.linspace(-8, 8, 16)
        assert np.array_equal(bank.lookup_addresses(x), table.segment_index(x))

    def test_comparator_count(self):
        bank = ComparatorBank(table=make_table(16), n_neurons=4)
        assert bank.n_comparators == 15

    def test_event_counting(self):
        bank = ComparatorBank(table=make_table(), n_neurons=8)
        bank.lookup_addresses(np.zeros(8))
        bank.lookup_addresses(np.zeros(8))
        assert bank.counters.get("comparator_eval") == 16

    def test_shape_validation(self):
        bank = ComparatorBank(table=make_table(), n_neurons=8)
        with pytest.raises(ValueError):
            bank.lookup_addresses(np.zeros(7))

    def test_invalid_neurons(self):
        with pytest.raises(ValueError):
            ComparatorBank(table=make_table(), n_neurons=0)


class TestMacLane:
    def test_fixed_point_mac(self):
        lane = MacLane(n_neurons=3)
        out = lane.approximate(
            np.array([1.0, 0.5, -2.0]),
            np.array([2.0, 4.0, 1.0]),
            np.array([0.0, 0.25, 0.125]),
        )
        expected = lane.output_format.quantize(
            np.array([2.0, 2.25, -1.875])
        )
        assert np.array_equal(out, expected)

    def test_event_counting(self):
        lane = MacLane(n_neurons=4)
        lane.approximate(np.ones(4), np.ones(4), np.ones(4))
        assert lane.counters.get("mac_op") == 4

    def test_shape_validation(self):
        lane = MacLane(n_neurons=4)
        with pytest.raises(ValueError, match="slopes"):
            lane.approximate(np.ones(3), np.ones(4), np.ones(4))
        with pytest.raises(ValueError, match="x"):
            lane.approximate(np.ones(4), np.ones(3), np.ones(4))


class TestOverlays:
    def make_unit(self, n_routers=4, neurons=8):
        return NovaVectorUnit(
            make_table(),
            NovaConfig(n_routers=n_routers, neurons_per_router=neurons,
                       pe_frequency_ghz=1.0, hop_mm=1.0),
        )

    def test_generic_process_single_batch(self):
        overlay = SystolicOverlay(unit=self.make_unit(), systolic_cols=8)
        x = np.random.default_rng(0).normal(size=(4, 8))
        stream = overlay.process(x)
        assert stream.outputs.shape == (1, 4, 8)

    def test_react_attachment_declares_crossbars(self):
        overlay = ReactOverlay(unit=self.make_unit())
        attachment = overlay.attachment()
        assert attachment.host == "REACT"
        specs = [(x.in_ports, x.out_ports) for x in attachment.crossbars_per_router]
        assert specs == [(6, 2), (2, 6)]  # Fig. 5a: 6x2 in, 2x6 out

    def test_react_bypass_passthrough(self):
        overlay = ReactOverlay(unit=self.make_unit())
        x = np.random.default_rng(1).normal(size=(4, 8))
        bypass = np.zeros_like(x, dtype=bool)
        bypass[:, ::2] = True
        out = overlay.process_with_bypass(x, bypass)
        assert np.array_equal(out[bypass], x[bypass])
        golden = overlay.unit.golden_reference(x)
        assert np.array_equal(out[~bypass], golden[~bypass])
        assert overlay.bypassed_values == int(bypass.sum())

    def test_react_bypass_shape_check(self):
        overlay = ReactOverlay(unit=self.make_unit())
        with pytest.raises(ValueError):
            overlay.process_with_bypass(np.zeros((4, 8)), np.zeros((4, 7), bool))

    def test_systolic_mxu_drain(self):
        overlay = SystolicOverlay(unit=self.make_unit(), systolic_cols=8)
        tile = np.random.default_rng(2).normal(size=(16, 4, 8))
        stream = overlay.process_mxu_drain(tile)
        assert stream.outputs.shape == (16, 4, 8)
        # 16 rows through the 2-stage pipeline
        assert stream.total_pe_cycles == 17

    def test_systolic_drain_shape_check(self):
        overlay = SystolicOverlay(unit=self.make_unit(), systolic_cols=8)
        with pytest.raises(ValueError):
            overlay.process_mxu_drain(np.zeros((16, 4, 7)))

    def test_nvdla_attachment(self):
        overlay = NvdlaOverlay(unit=self.make_unit(n_routers=2, neurons=16))
        attachment = overlay.attachment()
        assert attachment.host == "NVDLA"
        assert "SDP" in attachment.notes

    def test_process_rejects_bad_rank(self):
        overlay = SystolicOverlay(unit=self.make_unit(), systolic_cols=8)
        with pytest.raises(ValueError):
            overlay.process(np.zeros(8))
