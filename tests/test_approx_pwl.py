"""Unit tests for repro.approx.pwl (+ breakpoints)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.breakpoints import curvature_cuts, quantile_cuts, uniform_cuts
from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear


def simple_pwl():
    """y = -x on x<0 ; y = 2x on x>=0 over [-4, 4]."""
    return PiecewiseLinear(
        cuts=np.array([0.0]),
        slopes=np.array([-1.0, 2.0]),
        biases=np.array([0.0, 0.0]),
        domain=(-4.0, 4.0),
    )


class TestConstruction:
    def test_valid(self):
        pwl = simple_pwl()
        assert pwl.n_segments == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(np.array([0.0]), np.ones(3), np.ones(2), (-1, 1))
        with pytest.raises(ValueError):
            PiecewiseLinear(np.array([0.0, 0.5]), np.ones(2), np.ones(2), (-1, 1))

    def test_unsorted_cuts_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(
                np.array([0.5, 0.0]), np.ones(3), np.ones(3), (-1.0, 1.0)
            )

    def test_cut_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(np.array([2.0]), np.ones(2), np.ones(2), (-1.0, 1.0))

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(np.zeros(0), np.ones(1), np.ones(1), (1.0, -1.0))

    def test_single_segment_no_cuts(self):
        pwl = PiecewiseLinear(np.zeros(0), np.array([2.0]), np.array([1.0]),
                              (-1.0, 1.0))
        assert pwl.evaluate(0.5) == pytest.approx(2.0)


class TestSegmentLookup:
    def test_comparator_counts_cuts(self):
        pwl = simple_pwl()
        assert pwl.segment_index(-1.0) == 0
        assert pwl.segment_index(1.0) == 1
        # at the cut itself the comparator (<=) selects the upper segment
        assert pwl.segment_index(0.0) == 1

    def test_clamping(self):
        pwl = simple_pwl()
        assert pwl.segment_index(-100.0) == 0
        assert pwl.segment_index(100.0) == 1

    def test_evaluate_piecewise(self):
        pwl = simple_pwl()
        assert pwl.evaluate(-2.0) == pytest.approx(2.0)
        assert pwl.evaluate(3.0) == pytest.approx(6.0)

    def test_evaluate_clamps_inputs(self):
        pwl = simple_pwl()
        assert pwl.evaluate(100.0) == pytest.approx(pwl.evaluate(4.0))

    def test_callable_alias(self):
        pwl = simple_pwl()
        assert pwl(1.0) == pwl.evaluate(1.0)


class TestFitting:
    @pytest.mark.parametrize("strategy", ["uniform", "curvature", "quantile"])
    def test_fit_strategies(self, strategy):
        spec = get_function("tanh")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 16, strategy=strategy)
        assert pwl.n_segments == 16
        # quantile (output-variation) placement is the weakest baseline:
        # it starves the flat tails of tanh, so it gets a looser bound.
        bound = 0.1 if strategy == "quantile" else 0.05
        assert pwl.max_error(spec.fn) < bound

    def test_curvature_beats_uniform_on_exp(self):
        spec = get_function("exp")
        uniform = PiecewiseLinear.fit(spec.fn, spec.domain, 16, strategy="uniform")
        curved = PiecewiseLinear.fit(spec.fn, spec.domain, 16, strategy="curvature")
        assert curved.max_error(spec.fn) < uniform.max_error(spec.fn)

    def test_lstsq_lower_rmse_than_interpolation(self):
        spec = get_function("sigmoid")
        interp = PiecewiseLinear.fit(spec.fn, spec.domain, 8, method="interpolate")
        lstsq = PiecewiseLinear.fit(spec.fn, spec.domain, 8, method="lstsq")
        xs = np.linspace(*spec.domain, 2048)
        rmse_i = np.sqrt(np.mean((interp(xs) - spec.fn(xs)) ** 2))
        rmse_l = np.sqrt(np.mean((lstsq(xs) - spec.fn(xs)) ** 2))
        assert rmse_l <= rmse_i + 1e-12

    def test_interpolation_is_continuous(self):
        spec = get_function("gelu")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 16, method="interpolate")
        assert np.max(pwl.continuity_gaps()) < 1e-9

    def test_unknown_strategy_rejected(self):
        spec = get_function("tanh")
        with pytest.raises(ValueError):
            PiecewiseLinear.fit(spec.fn, spec.domain, 8, strategy="magic")

    def test_unknown_method_rejected(self):
        spec = get_function("tanh")
        with pytest.raises(ValueError):
            PiecewiseLinear.fit(spec.fn, spec.domain, 8, method="magic")

    def test_error_decreases_with_segments(self):
        spec = get_function("gelu")
        errors = [
            PiecewiseLinear.fit(spec.fn, spec.domain, n).max_error(spec.fn)
            for n in (4, 8, 16, 32)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_table_rows_shape(self):
        pwl = simple_pwl()
        rows = pwl.table_rows()
        assert len(rows) == 2
        address, lo, hi, slope, bias = rows[0]
        assert address == 0 and lo == -4.0 and hi == 0.0 and slope == -1.0

    def test_edges(self):
        pwl = simple_pwl()
        assert pwl.edges().tolist() == [-4.0, 0.0, 4.0]


class TestBreakpointPlacement:
    def test_uniform_count_and_bounds(self):
        cuts = uniform_cuts((-2.0, 2.0), 8)
        assert len(cuts) == 7
        assert cuts[0] > -2.0 and cuts[-1] < 2.0

    def test_uniform_single_segment(self):
        assert len(uniform_cuts((-1.0, 1.0), 1)) == 0

    def test_curvature_concentrates_near_high_curvature(self):
        spec = get_function("exp")  # curvature mass near 0 (right edge)
        cuts = curvature_cuts(spec.fn, spec.domain, 16)
        assert np.median(cuts) > -4.0  # most cuts in the right quarter

    def test_curvature_on_linear_function_falls_back_uniform(self):
        cuts = curvature_cuts(lambda x: 3.0 * x, (-1.0, 1.0), 8)
        assert len(cuts) == 7
        assert np.all(np.diff(cuts) > 0)

    def test_quantile_monotone(self):
        spec = get_function("sigmoid")
        cuts = quantile_cuts(spec.fn, spec.domain, 16)
        assert np.all(np.diff(cuts) > 0)

    @pytest.mark.parametrize("maker", [uniform_cuts])
    def test_invalid_segment_count(self, maker):
        with pytest.raises(ValueError):
            maker((-1.0, 1.0), 0)


@settings(max_examples=50)
@given(
    n_segments=st.integers(min_value=2, max_value=32),
    x=st.floats(min_value=-20.0, max_value=5.0, allow_nan=False),
)
def test_segment_index_always_valid(n_segments, x):
    spec = get_function("exp")
    pwl = PiecewiseLinear.fit(spec.fn, spec.domain, n_segments)
    idx = int(pwl.segment_index(x))
    assert 0 <= idx < n_segments


@settings(max_examples=30)
@given(n_segments=st.integers(min_value=4, max_value=64))
def test_interpolation_exact_at_edges(n_segments):
    spec = get_function("tanh")
    pwl = PiecewiseLinear.fit(spec.fn, spec.domain, n_segments,
                              method="interpolate")
    edges = pwl.edges()
    # interpolation passes through the function at every segment edge
    interior = edges[1:-1]
    if len(interior):
        # evaluate just left of each cut to stay in the lower segment
        eps = 1e-9
        ys = pwl.evaluate(interior - eps)
        assert np.allclose(ys, spec.fn(interior - eps), atol=1e-6)
