"""Tests for the experiment harness (table/figure regeneration)."""

import pytest

from repro.eval import paper_data
from repro.eval.experiments import (
    ExperimentResult,
    fig6_area_scaling,
    fig7_power_scaling,
    fig8_energy,
    nvdla_duty_cycle_estimate,
    scalability_sweep,
    table2_configs,
    table3_overhead,
    table4_related_work,
)
from repro.eval.report import render_experiment


def ratios(column):
    """Parse '3.34x'-style cells into floats."""
    return [float(str(c).rstrip("x")) for c in column]


class TestTable2:
    def test_rows_match_paper_configs(self):
        result = table2_configs()
        assert len(result.rows) == 4
        assert result.column("Accelerator") == [
            "REACT", "TPU v3-like", "TPU v4-like", "Jetson Xavier NX",
        ]

    def test_all_configs_single_cycle(self):
        # §V-A: "all the above NOVA configurations ... having <=10 routers
        # can complete a broadcast traversal within a cycle"
        assert all(table2_configs().column("Single-cycle"))

    def test_two_beats_at_16_breakpoints(self):
        result = table2_configs()
        assert all(b == 2 for b in result.column("Beats"))
        for freq, noc in zip(result.column("Freq (MHz)"),
                             result.column("NoC clock (MHz)")):
            assert noc == 2 * freq  # "2x the frequency of the base"


class TestTable3:
    def test_covers_all_paper_cells(self):
        result = table3_overhead()
        assert len(result.rows) == len(paper_data.TABLE3_OVERHEAD)

    def test_nova_always_smallest(self):
        result = table3_overhead()
        by_acc = {}
        for row in result.rows:
            by_acc.setdefault(row[0], {})[row[1]] = (row[2], row[4])
        for acc, units in by_acc.items():
            nova_area, nova_power = units["nova"]
            for unit, (area, power) in units.items():
                if unit == "nova":
                    continue
                assert nova_area < area, (acc, unit)
                assert nova_power < power, (acc, unit)

    def test_react_area_savings_in_paper_band(self):
        result = table3_overhead()
        cells = {(r[0], r[1]): r[2] for r in result.rows}
        saving_pn = cells[("REACT", "per_neuron_lut")] / cells[("REACT", "nova")]
        saving_pc = cells[("REACT", "per_core_lut")] / cells[("REACT", "nova")]
        # paper: 3.34x and 1.78x — require the right ballpark and ordering
        assert 2.0 < saving_pn < 5.0
        assert 1.2 < saving_pc < 3.5
        assert saving_pn > saving_pc

    def test_tpu_power_savings_exceed_3x(self):
        result = table3_overhead()
        cells = {(r[0], r[1]): r[4] for r in result.rows}
        for acc in ("TPU v3-like", "TPU v4-like"):
            ratio = cells[(acc, "per_core_lut")] / cells[(acc, "nova")]
            assert ratio > 3.0  # paper: >9.4x with their per-core number

    def test_nvdla_power_saving_large(self):
        result = table3_overhead()
        cells = {(r[0], r[1]): r[4] for r in result.rows}
        ratio = (cells[("Jetson Xavier NX", "nvdla_sdp")]
                 / cells[("Jetson Xavier NX", "nova")])
        assert ratio > 10.0  # paper: 37.8x

    def test_raw_mode_differs_from_calibrated(self):
        raw = table3_overhead(calibrated=False)
        cal = table3_overhead(calibrated=True)
        assert raw.rows != cal.rows


class TestFigs67:
    def test_fig6_nova_flattest(self):
        result = fig6_area_scaling()
        nova = result.column("NOVA router")
        pn = result.column("Per-neuron LUT")
        growth_nova = nova[-1] / nova[0]
        growth_pn = pn[-1] / pn[0]
        assert growth_nova < 0.5 * growth_pn

    def test_fig6_savings_grow_with_neurons(self):
        savings = ratios(fig6_area_scaling().column("NOVA saving vs per-neuron"))
        assert savings == sorted(savings)
        assert savings[-1] > 3.0  # paper: avg 3.23x

    def test_fig7_per_core_crossover(self):
        # per-core wins at few neurons, NOVA wins big at many (paper §V-B:
        # NOVA "scales better with neuron count")
        savings = ratios(fig7_power_scaling().column("NOVA saving vs per-core"))
        assert savings[0] < 1.0
        assert savings[-1] > 5.0

    def test_fig7_monotone_curves(self):
        result = fig7_power_scaling()
        for column in ("NOVA router", "Per-neuron LUT", "Per-core LUT"):
            values = result.column(column)
            assert values == sorted(values), column


class TestFig8:
    def test_covers_all_benchmarks_and_hosts(self):
        result = fig8_energy()
        assert len(result.rows) == 3 * 5  # 3 hosts x 5 benchmarks

    def test_seq_lens_follow_paper(self):
        result = fig8_energy()
        for acc, seq in zip(result.column("Accelerator"),
                            result.column("Seq len")):
            assert seq == paper_data.FIG8_SEQ_LEN[acc]

    def test_nova_always_lowest_energy(self):
        result = fig8_energy()
        for row in result.rows:
            nova, pn, pc = row[3], row[4], row[5]
            assert nova < pn and nova < pc

    def test_paper_method_ratios_match_power_ratios(self):
        # under the paper's method the energy ratio equals the Table III
        # power ratio — TPU-v4 rows must exceed 3x (per-neuron) and 5x
        # (per-core)
        result = fig8_energy()
        for row in result.rows:
            if row[0] != "TPU v4-like":
                continue
            pn_ratio = float(str(row[8]).rstrip("x"))
            pc_ratio = float(str(row[9]).rstrip("x"))
            assert pn_ratio > 3.0
            assert pc_ratio > 5.0

    def test_tpu_overhead_percent_small(self):
        # paper §V-F: NOVA's energy overhead on TPU-v4 is ~0.5%
        result = fig8_energy()
        for row in result.rows:
            if row[0].startswith("TPU"):
                assert row[10] < 5.0


class TestOthers:
    def test_scalability_paper_point(self):
        result = scalability_sweep()
        cells = {row[0]: row[1] for row in result.rows}
        assert cells[1.5] == 10  # the §V-A claim

    def test_scalability_monotone(self):
        reach = scalability_sweep().column("Max routers in one cycle")
        assert reach == sorted(reach, reverse=True)

    def test_table4_nova_lane_smaller_than_ibert(self):
        result = table4_related_work()
        cells = {row[0]: row for row in result.rows}
        nova_area = cells["NOVA"][2]
        assert nova_area < cells["I-BERT"][3]  # our lane < I-BERT's paper area
        assert nova_area < cells["NACU"][3]

    def test_nvdla_duty_estimate_low(self):
        assert nvdla_duty_cycle_estimate() < 0.1

    def test_batched_serving_throughput_rows(self):
        from repro.eval.experiments import batched_serving_throughput

        result = batched_serving_throughput(
            model_name="BERT-tiny", batch_size=2, seq_len=16,
            config="jetson-nx",
        )
        assert result.column("Path") == [
            "sequential (cycle-accurate)", "batched (lane-packed)",
        ]
        # the experiment asserts output/cycle equality internally; the
        # table itself must carry positive throughput on both rows
        assert all(r > 0 for r in result.column("Requests/s"))

    def test_paged_decode_utilization_rows(self):
        from repro.eval.experiments import paged_decode_utilization
        from repro.workloads.transformer import TransformerConfig

        model = TransformerConfig(
            "paged-smoke", layers=1, hidden=16, heads=2, intermediate=64,
            seq_len=32, causal=True,
        )
        result = paged_decode_utilization(
            model_name=model, batch_size=4, config="jetson-nx",
            pool_pages=2, block_size=4, prompt_lens=(2, 3),
            new_tokens=(1, 2), warmup=False,
        )
        assert result.column("Memory model") == [
            "contiguous pages", "paged KV blocks",
        ]
        contiguous, paged = result.column("Peak concurrent")
        # the experiment asserts bit-exactness internally; the table
        # must show the admission-capacity win at the same byte budget
        assert contiguous == 2
        assert paged > contiguous
        assert result.column("Admission gain")[0] == "1.00x"

    def test_paged_decode_utilization_validation(self):
        from repro.eval.experiments import paged_decode_utilization

        with pytest.raises(ValueError, match="pool_pages"):
            paged_decode_utilization(pool_pages=0)

    def test_prefix_caching_residency_rows(self):
        from repro.eval.experiments import prefix_caching_residency
        from repro.workloads.transformer import TransformerConfig

        model = TransformerConfig(
            "prefix-smoke", layers=1, hidden=8, heads=2, intermediate=32,
            seq_len=64, causal=True,
        )
        result = prefix_caching_residency(
            model_name=model, batch_size=4, prefix_tokens=8,
            suffix_tokens=1, max_new_tokens=2, config="jetson-nx",
            block_size=4, warmup=False,
        )
        assert result.column("Memory model") == [
            "paged, no sharing", "paged + prefix cache",
        ]
        plain_peak, cached_peak = result.column("Peak KV slots")
        # bit-exactness is asserted inside the experiment; the table
        # must show the residency win and the sharing counters
        assert cached_peak < plain_peak
        assert result.column("Prefix hits") == [0, 3 * 2]
        assert result.column("Blocks shared")[1] >= 6
        assert result.column("Residency")[0] == "1.00x"
        assert result.column("Residency")[1].endswith("x")

    def test_prefix_caching_residency_validation(self):
        from repro.eval.experiments import prefix_caching_residency

        with pytest.raises(ValueError, match="batch_size"):
            prefix_caching_residency(batch_size=1)
        with pytest.raises(ValueError, match="full block"):
            prefix_caching_residency(prefix_tokens=4, block_size=8)

    def test_render_experiment(self):
        text = render_experiment(table2_configs())
        assert "Table II" in text
        assert "REACT" in text
        assert "Notes:" in text

    def test_column_accessor(self):
        result = ExperimentResult("X", "t", ["a", "b"], [[1, 2], [3, 4]])
        assert result.column("b") == [2, 4]
        with pytest.raises(KeyError):
            result.column("c")


class TestCli:
    def test_cli_runs_fast_experiments(self, capsys):
        from repro.eval.cli import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_cli_all_without_table1(self, capsys):
        from repro.eval.cli import main

        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "Fig 8" in out and "Table I:" not in out
