"""Unit tests for the NOVA mapper (broadcast scheduling)."""

import pytest

from repro.core.mapper import NovaMapper
from repro.noc.link import RepeatedWire


class TestBeatCounts:
    def test_paper_budgets(self):
        mapper = NovaMapper()
        assert mapper.n_beats_for(8) == 1
        assert mapper.n_beats_for(16) == 2

    def test_power_of_two_padding(self):
        mapper = NovaMapper()
        assert mapper.n_beats_for(17) == 4
        assert mapper.n_beats_for(24) == 4
        assert mapper.n_beats_for(33) == 8

    def test_tiny_tables_single_beat(self):
        mapper = NovaMapper()
        for n in range(1, 9):
            assert mapper.n_beats_for(n) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            NovaMapper().n_beats_for(0)


class TestSchedule:
    def test_react_configuration(self):
        # REACT: 10 routers @ 240 MHz, 16 pairs -> NoC at 480 MHz,
        # single-cycle traversal, 2-cycle total latency (fetch + MAC)
        schedule = NovaMapper().schedule(10, 0.24, n_pairs=16, hop_mm=1.0)
        assert schedule.n_beats == 2
        assert schedule.clock_multiplier == 2
        assert schedule.noc_frequency_ghz == pytest.approx(0.48)
        assert schedule.single_cycle_broadcast
        assert schedule.buffering_routers == ()
        assert schedule.noc_cycles_per_lookup == 2
        assert schedule.fetch_pe_cycles == 1
        assert schedule.total_latency_pe_cycles == 2

    def test_paper_scalability_point(self):
        # NoC at 1.5 GHz (PE at 0.75 with 16 pairs): 10 routers max
        mapper = NovaMapper()
        assert mapper.max_single_cycle_routers(0.75, 16, 1.0) == 10

    def test_beyond_envelope_multi_cycle(self):
        schedule = NovaMapper().schedule(15, 0.75, n_pairs=16, hop_mm=1.0)
        assert not schedule.single_cycle_broadcast
        assert schedule.traversal_segments == 2
        assert schedule.buffering_routers == (10,)
        assert schedule.noc_cycles_per_lookup == 3  # 2 beats + 1 extra segment
        assert schedule.fetch_pe_cycles == 2
        assert schedule.total_latency_pe_cycles == 3

    def test_eight_pair_table_runs_at_pe_clock(self):
        schedule = NovaMapper().schedule(8, 1.0, n_pairs=8)
        assert schedule.n_beats == 1
        assert schedule.clock_multiplier == 1
        assert schedule.noc_frequency_ghz == pytest.approx(1.0)

    def test_latency_matches_lut_baseline_when_single_cycle(self):
        # §V-B: "NOVA's latency is identical to that of the baseline" (2cyc)
        for n_routers, pe_ghz, hop in [(10, 0.24, 1.0), (4, 1.4, 0.5),
                                       (8, 1.4, 0.5), (2, 1.4, 0.5)]:
            schedule = NovaMapper().schedule(n_routers, pe_ghz, 16, hop)
            assert schedule.total_latency_pe_cycles == 2, (n_routers, pe_ghz)

    def test_infeasible_clock_raises(self):
        wire = RepeatedWire()
        mapper = NovaMapper(wire=wire)
        with pytest.raises(ValueError, match="infeasible"):
            mapper.schedule(4, 20.0, n_pairs=16, hop_mm=1.0)

    def test_invalid_args(self):
        mapper = NovaMapper()
        with pytest.raises(ValueError):
            mapper.schedule(0, 1.0)
        with pytest.raises(ValueError):
            mapper.schedule(4, -1.0)
        with pytest.raises(ValueError):
            NovaMapper(pairs_per_beat=0)

    def test_buffering_router_spacing(self):
        schedule = NovaMapper().schedule(40, 0.75, n_pairs=16, hop_mm=1.0)
        # max 10 hops/cycle -> buffers at 10, 20, 30
        assert schedule.buffering_routers == (10, 20, 30)
        assert schedule.traversal_segments == 4
