"""Unit tests for op graphs, transformer lowering and workload registries."""

import numpy as np
import pytest

from repro.workloads.bert import BERT_MODELS, bert_graph
from repro.workloads.cnn import CNN_MODELS, cnn_graph
from repro.workloads.ops import MatMulOp, NonLinearOp, OpGraph
from repro.workloads.traces import activation_trace, attention_logit_trace
from repro.workloads.transformer import TransformerConfig, build_encoder_graph


class TestOps:
    def test_matmul_macs(self):
        assert MatMulOp("g", 2, 3, 4).macs == 24
        assert MatMulOp("g", 2, 3, 4).output_elements == 8

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MatMulOp("g", 0, 1, 1)
        with pytest.raises(ValueError):
            NonLinearOp("n", "exp", queries=0)

    def test_graph_totals(self):
        graph = OpGraph("g")
        graph.add(MatMulOp("a", 2, 2, 2))
        graph.add(NonLinearOp("n", "exp", queries=10))
        graph.add(NonLinearOp("m", "gelu", queries=5))
        assert graph.total_macs == 8
        assert graph.total_nonlinear_queries == 15
        assert graph.queries_by_function() == {"exp": 10, "gelu": 5}

    def test_nonlinear_fraction(self):
        graph = OpGraph("g")
        graph.add(MatMulOp("a", 10, 10, 10))
        graph.add(NonLinearOp("n", "exp", queries=100))
        assert graph.nonlinear_fraction() == pytest.approx(0.1)


class TestTransformerLowering:
    def config(self, seq=32):
        return TransformerConfig("t", layers=2, hidden=64, heads=4,
                                 intermediate=256, seq_len=seq)

    def test_softmax_query_count(self):
        # A * S^2 exp queries per layer (the dominant non-linear op)
        graph = build_encoder_graph(self.config())
        exp_queries = graph.queries_by_function()["exp"]
        assert exp_queries == 2 * 4 * 32 * 32

    def test_gelu_query_count(self):
        graph = build_encoder_graph(self.config())
        assert graph.queries_by_function()["gelu"] == 2 * 32 * 256

    def test_qkv_macs(self):
        graph = build_encoder_graph(self.config())
        qkv = [op for op in graph.matmuls if "_proj" in op.name
               and "out" not in op.name]
        assert len(qkv) == 6  # 3 per layer x 2 layers
        assert all(op.macs == 32 * 64 * 64 for op in qkv)

    def test_per_head_score_gemms(self):
        graph = build_encoder_graph(self.config())
        scores = [op for op in graph.matmuls if "scores" in op.name]
        assert len(scores) == 8  # 4 heads x 2 layers
        assert all(op.m == 32 and op.k == 16 and op.n == 32 for op in scores)

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", 1, 65, 4, 128, 32)

    def test_quadratic_softmax_scaling(self):
        short = build_encoder_graph(self.config(seq=32))
        long = build_encoder_graph(self.config(seq=64))
        ratio = (long.queries_by_function()["exp"]
                 / short.queries_by_function()["exp"])
        assert ratio == pytest.approx(4.0)


class TestBertRegistry:
    def test_all_five_fig8_models(self):
        assert set(BERT_MODELS) == {
            "BERT-tiny", "BERT-mini", "MobileBERT-tiny", "MobileBERT-base",
            "RoBERTa",
        }

    def test_published_dims(self):
        tiny = BERT_MODELS["BERT-tiny"]
        assert (tiny.layers, tiny.hidden, tiny.heads) == (2, 128, 2)
        roberta = BERT_MODELS["RoBERTa"]
        assert (roberta.layers, roberta.hidden, roberta.intermediate) == (
            12, 768, 3072,
        )
        mobile = BERT_MODELS["MobileBERT-base"]
        assert mobile.layers == 24

    def test_seq_len_override(self):
        graph = bert_graph("BERT-tiny", seq_len=128)
        scores = [op for op in graph.matmuls if "scores" in op.name]
        assert scores[0].n == 128

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="BERT-tiny"):
            bert_graph("GPT-5")

    def test_model_size_ordering(self):
        # RoBERTa is by far the largest Fig. 8 benchmark
        macs = {name: bert_graph(name, seq_len=256).total_macs
                for name in BERT_MODELS}
        assert macs["RoBERTa"] == max(macs.values())
        assert macs["BERT-tiny"] == min(macs.values())


class TestCnnRegistry:
    def test_table1_families(self):
        assert set(CNN_MODELS) == {"MLP", "CNN", "MobileNet v1", "VGG-16"}

    def test_breakpoint_budgets(self):
        # Table I: CIFAR-10 models use 8 breakpoints, MNIST uses 16
        assert CNN_MODELS["MLP"].softmax_breakpoints == 16
        assert CNN_MODELS["CNN"].softmax_breakpoints == 8

    def test_graph_lowering(self):
        graph = cnn_graph("CNN")
        assert graph.total_macs > 0
        assert "exp" in graph.queries_by_function()  # classifier softmax

    def test_depthwise_cheaper_than_dense(self):
        mobile = CNN_MODELS["MobileNet v1"]
        dw = [l for l in mobile.layers if l.depthwise]
        assert dw, "MobileNet spec must contain depthwise layers"
        for layer in dw:
            dense_macs = (layer.in_channels * layer.out_channels
                          * layer.spatial ** 2 * 9)
            assert layer.macs < dense_macs

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            cnn_graph("ResNet")


class TestTraces:
    def test_attention_trace_non_positive(self):
        trace = attention_logit_trace(1000, seed=0)
        assert trace.shape == (1000,)
        assert np.all(trace <= 0.0)

    def test_attention_trace_has_zero_per_row(self):
        # every row's max shifts to exactly 0
        trace = attention_logit_trace(640, seq_len=64, seed=1)
        rows = trace.reshape(10, 64)
        assert np.allclose(rows.max(axis=1), 0.0)

    def test_traces_deterministic(self):
        a = activation_trace(100, seed=3)
        b = activation_trace(100, seed=3)
        assert np.array_equal(a, b)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            attention_logit_trace(0)
        with pytest.raises(ValueError):
            activation_trace(0)
