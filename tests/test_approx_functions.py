"""Unit tests for repro.approx.functions."""

import numpy as np
import pytest
from scipy import special

from repro.approx import functions as fn
from repro.approx.functions import FUNCTIONS, FunctionSpec, get_function


class TestReferenceImplementations:
    def test_exp_matches_numpy(self):
        xs = np.linspace(-16, 0, 101)
        assert np.allclose(fn.exp(xs), np.exp(xs))

    def test_erf_matches_scipy(self):
        xs = np.linspace(-4, 4, 401)
        assert np.allclose(fn.erf(xs), special.erf(xs), atol=2e-7)

    def test_gelu_matches_scipy_form(self):
        xs = np.linspace(-8, 8, 401)
        expected = 0.5 * xs * (1 + special.erf(xs / np.sqrt(2)))
        assert np.allclose(fn.gelu(xs), expected, atol=1e-6)

    def test_gelu_tanh_close_to_exact(self):
        xs = np.linspace(-4, 4, 401)
        assert np.max(np.abs(fn.gelu_tanh(xs) - fn.gelu(xs))) < 5e-3

    def test_sigmoid_stable_at_extremes(self):
        assert fn.sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
        assert fn.sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)

    def test_sigmoid_symmetry(self):
        xs = np.linspace(-8, 8, 101)
        assert np.allclose(fn.sigmoid(xs) + fn.sigmoid(-xs), 1.0)

    def test_silu_is_x_times_sigmoid(self):
        xs = np.linspace(-8, 8, 101)
        assert np.allclose(fn.silu(xs), xs * fn.sigmoid(xs))

    def test_relu(self):
        assert np.array_equal(
            fn.relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0])
        )

    def test_reciprocal_and_rsqrt(self):
        xs = np.array([0.25, 1.0, 4.0])
        assert np.allclose(fn.reciprocal(xs), [4.0, 1.0, 0.25])
        assert np.allclose(fn.rsqrt(xs), [2.0, 1.0, 0.5])

    def test_softplus_stable(self):
        assert fn.softplus(np.array([1000.0]))[0] == pytest.approx(1000.0)
        assert fn.softplus(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_tanh(self):
        xs = np.linspace(-6, 6, 101)
        assert np.allclose(fn.tanh(xs), np.tanh(xs))


class TestRegistry:
    def test_expected_functions_present(self):
        for name in ("exp", "gelu", "tanh", "sigmoid", "relu", "reciprocal",
                     "rsqrt", "silu", "erf", "softplus", "gelu_tanh"):
            assert name in FUNCTIONS

    def test_get_function(self):
        spec = get_function("exp")
        assert spec.name == "exp"
        assert spec.domain == (-16.0, 0.0)

    def test_get_function_unknown_lists_available(self):
        with pytest.raises(KeyError, match="gelu"):
            get_function("not-a-function")

    def test_exp_domain_one_sided(self):
        # softmax arguments are always <= 0 after max subtraction
        low, high = get_function("exp").domain
        assert high == 0.0 and low < 0

    def test_spec_sample_grid(self):
        spec = get_function("tanh")
        grid = spec.sample(11)
        assert grid[0] == spec.domain[0]
        assert grid[-1] == spec.domain[1]
        assert len(grid) == 11

    def test_spec_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            FunctionSpec("bad", fn.exp, (1.0, 1.0), "degenerate domain")

    def test_all_specs_evaluate_on_domain(self):
        for spec in FUNCTIONS.values():
            ys = spec.fn(spec.sample(64))
            assert np.all(np.isfinite(ys)), spec.name
