"""Public API surface tests: everything in __all__ imports and exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.approx",
    "repro.core",
    "repro.noc",
    "repro.luts",
    "repro.hw",
    "repro.accelerators",
    "repro.workloads",
    "repro.ml",
    "repro.eval",
    "repro.serving",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    """Every name a package advertises must actually be importable."""
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_quickstart_path():
    """The README quickstart's imports, verbatim."""
    from repro import (
        get_function,
        train_nnlut_mlp,
        NovaConfig,
        QuantizedPwl,
        NovaVectorUnit,
    )

    spec = get_function("gelu")
    mlp = train_nnlut_mlp(spec, n_segments=8, seed=0, epochs=20)
    table = QuantizedPwl(mlp.to_piecewise_linear(n_segments=8))
    unit = NovaVectorUnit(table, NovaConfig(
        n_routers=2, neurons_per_router=4, pe_frequency_ghz=1.0,
        hop_mm=1.0))
    import numpy as np

    result = unit.approximate(np.zeros((2, 4)))
    assert result.outputs.shape == (2, 4)


def test_version_string():
    import repro

    assert repro.__version__ == "1.0.0"


def test_extension_symbols_reachable():
    """The extension features are first-class API, not buried internals."""
    from repro.approx import ibert_exp, softermax, encode_beat
    from repro.noc import LinkFault, compare_topologies
    from repro.core import NovaAttentionEngine, TableScheduler
    from repro.ml import quantize_model

    assert callable(ibert_exp) and callable(softermax)
    assert callable(encode_beat) and callable(compare_topologies)
    assert callable(quantize_model)
    assert LinkFault is not None
    assert NovaAttentionEngine is not None and TableScheduler is not None
