"""Unit tests for component costs and vector-unit cost composition."""

import pytest

from repro.hw.components import (
    comparator_bank_cost,
    crossbar_cost,
    link_wire_cost,
    mac_lane_cost,
    register_bank_cost,
    repeater_cost,
    sram_bank_cost,
    tag_match_cost,
)
from repro.hw.costs import (
    LINK_BITS,
    nova_router_cost,
    per_core_lut_cost,
    per_neuron_lut_cost,
    sdp_cost,
    unit_cost,
)


class TestComponents:
    def test_comparator_scales_with_cuts(self):
        c15 = comparator_bank_cost(15)
        c7 = comparator_bank_cost(7)
        assert c15.area_um2 > c7.area_um2
        assert c15.energy_per_op_pj > c7.energy_per_op_pj

    def test_zero_cuts_free(self):
        c = comparator_bank_cost(0)
        assert c.area_um2 == 0.0 and c.energy_per_op_pj == 0.0

    def test_mac_quadratic_in_width(self):
        assert mac_lane_cost(32).area_um2 == pytest.approx(
            4 * mac_lane_cost(16).area_um2
        )

    def test_register_bank_linear(self):
        assert register_bank_cost(64).area_um2 == pytest.approx(
            2 * register_bank_cost(32).area_um2
        )

    def test_link_wires_linear_in_length(self):
        w1 = link_wire_cost(LINK_BITS, 1.0)
        w2 = link_wire_cost(LINK_BITS, 2.0)
        assert w2.area_um2 == pytest.approx(2 * w1.area_um2)
        assert w2.energy_per_op_pj == pytest.approx(2 * w1.energy_per_op_pj)

    def test_repeaters_energy_free_area_positive(self):
        r = repeater_cost(LINK_BITS)
        assert r.area_um2 > 0 and r.energy_per_op_pj == 0.0

    def test_crossbar_dimensions(self):
        small = crossbar_cost(2, 2, 16)
        big = crossbar_cost(6, 2, 16)
        assert big.area_um2 > small.area_um2

    def test_sram_bank_wraps_macro(self):
        bank = sram_bank_cost(64, 1)
        assert bank.area_um2 > 0 and bank.energy_per_op_pj > 0

    def test_scaled(self):
        c = comparator_bank_cost(15).scaled(10)
        assert c.area_um2 == pytest.approx(10 * comparator_bank_cost(15).area_um2)

    def test_validation(self):
        with pytest.raises(ValueError):
            comparator_bank_cost(-1)
        with pytest.raises(ValueError):
            link_wire_cost(0, 1.0)
        with pytest.raises(ValueError):
            link_wire_cost(10, 0.0)
        with pytest.raises(ValueError):
            crossbar_cost(0, 2, 16)
        with pytest.raises(ValueError):
            comparator_bank_cost(15).scaled(-1)


class TestUnitCosts:
    def test_orderings_at_128_neurons(self):
        # the paper's structural result: nova < per-core < per-neuron area;
        # nova << per-neuron < per-core power at TPU-like scale
        nova = nova_router_cost(128, pe_frequency_ghz=1.4, hop_mm=0.5)
        pn = per_neuron_lut_cost(128, pe_frequency_ghz=1.4)
        pc = per_core_lut_cost(128, pe_frequency_ghz=1.4)
        assert nova.area_um2 < pc.area_um2 < pn.area_um2
        assert nova.power_mw() < pn.power_mw() < pc.power_mw()

    def test_nova_scales_best_with_neurons(self):
        # Fig. 6 shape: NOVA's area grows far slower than the baselines'
        def growth(cost_fn, **kw):
            return cost_fn(256, **kw).area_um2 / cost_fn(16, **kw).area_um2

        assert growth(nova_router_cost, hop_mm=1.0) < growth(per_neuron_lut_cost)
        assert growth(nova_router_cost, hop_mm=1.0) < growth(per_core_lut_cost)

    def test_per_neuron_perfectly_linear(self):
        a16 = per_neuron_lut_cost(16).area_um2
        a256 = per_neuron_lut_cost(256).area_um2
        assert a256 == pytest.approx(16 * a16, rel=1e-9)

    def test_nova_wire_area_scales_with_hop(self):
        short = nova_router_cost(128, hop_mm=0.5)
        long = nova_router_cost(128, hop_mm=1.0)
        assert long.area_breakdown["link_wires"] == pytest.approx(
            2 * short.area_breakdown["link_wires"]
        )

    def test_nova_has_no_sram_term(self):
        nova = nova_router_cost(128)
        assert "sram_banks" not in nova.area_breakdown
        assert "link_wires" in nova.area_breakdown

    def test_lut_units_have_no_wire_term(self):
        pn = per_neuron_lut_cost(128)
        assert "link_wires" not in pn.area_breakdown
        assert "sram_banks" in pn.area_breakdown

    def test_clocked_vs_active_split(self):
        nova = nova_router_cost(128)
        # NOVA's clocked share is small (east regs + pipeline clock pins)
        assert nova.clocked_energy_pj < 0.2 * nova.active_energy_pj

    def test_power_utilization_interpolates(self):
        nova = nova_router_cost(128, pe_frequency_ghz=1.0)
        p0 = nova.power_mw(0.0)
        p1 = nova.power_mw(1.0)
        p_half = nova.power_mw(0.5)
        assert p0 < p_half < p1
        assert p_half == pytest.approx((p0 + p1) / 2, rel=1e-9)

    def test_dynamic_power_unit_conversion(self):
        # pJ/cycle x GHz = mW exactly
        nova = nova_router_cost(64, pe_frequency_ghz=2.0)
        assert nova.dynamic_power_mw(1.0) == pytest.approx(
            nova.cycle_energy_pj * 2.0
        )

    def test_sdp_carries_engine_overheads(self):
        sdp = sdp_cost(16, pe_frequency_ghz=1.4)
        assert "sdp_control" in sdp.area_breakdown
        assert "sdp_control" in sdp.clocked_energy_breakdown_pj
        pc = per_core_lut_cost(16, pe_frequency_ghz=1.4)
        assert sdp.power_mw() > pc.power_mw()

    def test_react_crossbars_add_area(self):
        plain = nova_router_cost(256, hop_mm=1.0)
        react = nova_router_cost(
            256, hop_mm=1.0, extra_crossbars=((6, 2, 16), (2, 6, 16))
        )
        assert react.area_um2 > plain.area_um2

    def test_dispatcher(self):
        for name in ("nova", "per_neuron_lut", "per_core_lut", "nvdla_sdp"):
            assert unit_cost(name, 16).unit_name == name
        with pytest.raises(ValueError):
            unit_cost("mystery", 16)

    def test_energy_per_query(self):
        nova = nova_router_cost(128)
        assert nova.energy_per_query_pj() == pytest.approx(
            nova.cycle_energy_pj / 128
        )

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            nova_router_cost(16).dynamic_power_mw(1.5)

    def test_scaling_helpers(self):
        nova = nova_router_cost(16)
        assert nova.scaled_area(2.0).area_um2 == pytest.approx(2 * nova.area_um2)
        assert nova.scaled_energy(0.5).cycle_energy_pj == pytest.approx(
            0.5 * nova.cycle_energy_pj
        )
