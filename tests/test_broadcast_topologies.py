"""Tests for the broadcast-topology comparison (line vs tree vs star)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.broadcast_topologies import (
    compare_topologies,
    line_broadcast,
    star_broadcast,
    tree_broadcast,
)


class TestLine:
    def test_wire_linear_in_routers(self):
        assert line_broadcast(10).total_wire_mm == pytest.approx(10.0)
        assert line_broadcast(20).total_wire_mm == pytest.approx(20.0)

    def test_single_input_port(self):
        assert line_broadcast(10).router_ports == 1

    def test_critical_path_is_full_line(self):
        topo = line_broadcast(10, pitch_mm=0.5)
        assert topo.critical_path_mm == pytest.approx(5.0)


class TestTree:
    def test_wire_n_log_n_plus_stubs(self):
        # (N*p/2) per level x log2(N) levels + N/2 of leaf stubs
        topo = tree_broadcast(16, pitch_mm=1.0)
        assert topo.total_wire_mm == pytest.approx(8.0 * 4 + 8.0)

    def test_critical_path_shorter_than_row(self):
        # sum of spans: N*p * (1/2 + 1/4 + ...) + stub -> under N*p
        topo = tree_broadcast(16, pitch_mm=1.0)
        assert 8.0 < topo.critical_path_mm < 16.0

    def test_single_router(self):
        assert tree_broadcast(1).n_routers == 1


class TestStar:
    def test_wire_quadratic(self):
        topo = star_broadcast(10, pitch_mm=1.0)
        assert topo.total_wire_mm == pytest.approx(55.0)  # 1+2+...+10


class TestComparison:
    def test_line_minimises_wire_on_a_row(self):
        """The quantitative version of the paper's §III-A topology claim."""
        for n in (4, 8, 10, 16, 32):
            line, tree, star = compare_topologies(n)
            assert line.total_wire_mm <= tree.total_wire_mm
            assert tree.total_wire_mm <= star.total_wire_mm

    def test_tree_critical_path_shorter_but_within_2x(self):
        for n in (8, 16, 32):
            line, tree, _ = compare_topologies(n)
            assert tree.critical_path_mm < line.critical_path_mm
            assert line.critical_path_mm < 2.0 * tree.critical_path_mm + 1e-9

    def test_delays_ordered_by_critical_path(self):
        line, tree, star = compare_topologies(16)
        assert tree.critical_delay_ps() < line.critical_delay_ps()
        # star's critical path equals the line's full row
        assert star.critical_delay_ps() <= line.critical_delay_ps() + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            line_broadcast(0)
        with pytest.raises(ValueError):
            tree_broadcast(4, pitch_mm=0.0)


@settings(max_examples=40)
@given(n=st.integers(min_value=2, max_value=128))
def test_line_wire_optimality_property(n):
    """For any row length, the line's total wire is minimal among the
    three schemes — NOVA's topology choice is wire-optimal."""
    line, tree, star = compare_topologies(n)
    assert line.total_wire_mm <= tree.total_wire_mm <= star.total_wire_mm
