"""Tests for the CLI's experiment registry and group handling."""

import pytest

from repro.eval.cli import (
    EXPERIMENTS,
    EXTENSION_EXPERIMENTS,
    PAPER_EXPERIMENTS,
    main,
)


class TestRegistry:
    def test_paper_experiments_cover_every_table_and_figure(self):
        assert set(PAPER_EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig6", "fig7", "fig8", "scalability",
        }

    def test_extensions_registered(self):
        assert "ablation-breakpoints" in EXTENSION_EXPERIMENTS
        assert "ablation-related-softmax" in EXTENSION_EXPERIMENTS
        assert "sweep-seqlen" in EXTENSION_EXPERIMENTS
        assert "sweep-memory" in EXTENSION_EXPERIMENTS

    def test_no_name_collisions(self):
        assert len(EXPERIMENTS) == len(PAPER_EXPERIMENTS) + len(
            EXTENSION_EXPERIMENTS
        )


class TestMain:
    def test_single_fast_experiment(self, capsys):
        assert main(["scalability"]) == 0
        assert "1.5" in capsys.readouterr().out

    def test_sweeps_group(self, capsys):
        assert main(["sweeps"]) == 0
        out = capsys.readouterr().out
        assert "Sweep S1" in out and "Sweep S2" in out

    def test_all_excludes_table1_and_extensions(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table I:" not in out
        assert "Ablation" not in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_fast_ablation(self, capsys):
        assert main(["ablation-hop"]) == 0
        assert "hop" in capsys.readouterr().out.lower()
