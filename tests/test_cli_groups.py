"""Tests for the CLI's experiment registry and group handling."""

import pytest

from repro.eval.cli import (
    EXPERIMENTS,
    EXTENSION_EXPERIMENTS,
    PAPER_EXPERIMENTS,
    main,
)


class TestRegistry:
    def test_paper_experiments_cover_every_table_and_figure(self):
        assert set(PAPER_EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig6", "fig7", "fig8", "scalability",
        }

    def test_extensions_registered(self):
        assert "ablation-breakpoints" in EXTENSION_EXPERIMENTS
        assert "ablation-related-softmax" in EXTENSION_EXPERIMENTS
        assert "sweep-seqlen" in EXTENSION_EXPERIMENTS
        assert "sweep-memory" in EXTENSION_EXPERIMENTS

    def test_no_name_collisions(self):
        assert len(EXPERIMENTS) == len(PAPER_EXPERIMENTS) + len(
            EXTENSION_EXPERIMENTS
        )


class TestMain:
    def test_single_fast_experiment(self, capsys):
        assert main(["scalability"]) == 0
        assert "1.5" in capsys.readouterr().out

    def test_sweeps_group(self, capsys):
        assert main(["sweeps"]) == 0
        out = capsys.readouterr().out
        assert "Sweep S1" in out and "Sweep S2" in out

    def test_all_excludes_table1_and_extensions(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table I:" not in out
        assert "Ablation" not in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_fast_ablation(self, capsys):
        assert main(["ablation-hop"]) == 0
        assert "hop" in capsys.readouterr().out.lower()


class TestGeometryFlags:
    def test_geometries_lists_every_preset(self, capsys):
        from repro.core.config import PRESETS

        assert main(["geometries"]) == 0
        out = capsys.readouterr().out
        for name, cfg in PRESETS.items():
            assert name in out
            assert (cfg.host or "-") in out

    def test_geometry_flag_rejected_for_fixed_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["table2", "--geometry", "jetson-nx"])
        assert "config-aware" in capsys.readouterr().err

    def test_override_flag_rejected_for_fixed_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["scalability", "--override", "n_routers=4"])
        assert "config-aware" in capsys.readouterr().err

    def test_unknown_geometry_rejected(self):
        with pytest.raises(SystemExit):
            main(["serving-batched", "--geometry", "jetson"])

    def test_bad_override_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serving-batched", "--override", "lanes=4"])
        assert "unknown" in capsys.readouterr().err

    def test_paged_flag_only_applies_to_serve_decode(self, capsys):
        with pytest.raises(SystemExit):
            main(["serving-batched", "--paged"])
        assert "serve-decode" in capsys.readouterr().err

    def test_serve_decode_paged_routes_to_utilization(self, capsys):
        from repro.eval import cli

        seen = {}

        def fake_utilization(config=None):
            seen["config"] = config
            return cli.experiments.ExperimentResult(
                experiment_id="Paged KV", title="stub",
                headers=["Memory model"], rows=[["stub"]],
            )

        original = cli.experiments.paged_decode_utilization
        cli.experiments.paged_decode_utilization = fake_utilization
        try:
            assert main(["serve-decode", "--paged"]) == 0
        finally:
            cli.experiments.paged_decode_utilization = original
        assert "config" in seen
        assert "Paged KV" in capsys.readouterr().out

    def test_speculative_flag_only_applies_to_serve_decode(self, capsys):
        with pytest.raises(SystemExit):
            main(["serving-batched", "--speculative"])
        assert "serve-decode" in capsys.readouterr().err

    def test_paged_and_speculative_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-decode", "--paged", "--speculative"])
        assert "not both" in capsys.readouterr().err

    def test_serve_decode_speculative_routes_to_speedup_study(self, capsys):
        from repro.eval import cli

        seen = {}

        def fake_speedup(config=None):
            seen["config"] = config
            return cli.experiments.ExperimentResult(
                experiment_id="Speculative decode", title="stub",
                headers=["Path"], rows=[["stub"]],
            )

        original = cli.experiments.speculative_decode_speedup
        cli.experiments.speculative_decode_speedup = fake_speedup
        try:
            assert main(["serve-decode", "--speculative"]) == 0
        finally:
            cli.experiments.speculative_decode_speedup = original
        assert "config" in seen
        assert "Speculative decode" in capsys.readouterr().out

    def test_prefix_caching_flag_only_applies_to_serve_decode(self, capsys):
        with pytest.raises(SystemExit):
            main(["serving-batched", "--prefix-caching"])
        assert "serve-decode" in capsys.readouterr().err

    def test_prefix_caching_excludes_the_other_studies(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-decode", "--paged", "--prefix-caching"])
        assert "not both" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["serve-decode", "--speculative", "--prefix-caching"])
        assert "not both" in capsys.readouterr().err

    def test_serve_decode_prefix_caching_routes_to_residency_study(
        self, capsys
    ):
        from repro.eval import cli

        seen = {}

        def fake_residency(config=None):
            seen["config"] = config
            return cli.experiments.ExperimentResult(
                experiment_id="Prefix caching", title="stub",
                headers=["Memory model"], rows=[["stub"]],
            )

        original = cli.experiments.prefix_caching_residency
        cli.experiments.prefix_caching_residency = fake_residency
        try:
            assert main(["serve-decode", "--prefix-caching"]) == 0
        finally:
            cli.experiments.prefix_caching_residency = original
        assert "config" in seen
        assert "Prefix caching" in capsys.readouterr().out

    def test_serving_batched_accepts_geometry_and_override(self, capsys):
        # tiny workload keeps the cycle-accurate reference loop fast
        from repro.core.config import preset
        from repro.eval import cli

        seen = {}

        def fake_serving(config=None):
            seen["config"] = config
            return cli.experiments.ExperimentResult(
                experiment_id="Serving", title="stub",
                headers=["Path"], rows=[["stub"]],
            )

        original = cli.EXPERIMENTS["serving-batched"]
        cli.EXPERIMENTS["serving-batched"] = fake_serving
        try:
            assert main([
                "serving-batched", "--geometry", "jetson-nx",
                "--override", "n_routers=4",
            ]) == 0
        finally:
            cli.EXPERIMENTS["serving-batched"] = original
        assert seen["config"] == preset("jetson-nx").with_overrides(
            ["n_routers=4"]
        )
