"""Tests for causal (GPT-style) attention workloads."""

import pytest

from repro.workloads.transformer import TransformerConfig, build_encoder_graph


def config(causal, seq=64):
    return TransformerConfig(
        "t", layers=2, hidden=64, heads=4, intermediate=256, seq_len=seq,
        causal=causal,
    )


class TestCausalQueries:
    def test_causal_halves_softmax_queries(self):
        full = config(False).softmax_queries_per_layer
        causal = config(True).softmax_queries_per_layer
        # lower triangle incl. diagonal: S(S+1)/2 of S^2
        assert causal == pytest.approx(full * (64 + 1) / (2 * 64))

    def test_graph_reflects_causal_count(self):
        graph = build_encoder_graph(config(True))
        exp_queries = graph.queries_by_function()["exp"]
        assert exp_queries == 2 * 4 * 64 * 65 // 2

    def test_gemm_work_unchanged_by_masking(self):
        # systolic arrays compute full score tiles; masking discards
        full = build_encoder_graph(config(False))
        causal = build_encoder_graph(config(True))
        assert full.total_macs == causal.total_macs

    def test_gelu_and_norm_queries_unchanged(self):
        full = build_encoder_graph(config(False)).queries_by_function()
        causal = build_encoder_graph(config(True)).queries_by_function()
        assert full["gelu"] == causal["gelu"]
        assert full["rsqrt"] == causal["rsqrt"]

    def test_causal_converges_to_half_at_long_seq(self):
        ratio = (
            config(True, seq=2048).softmax_queries_per_layer
            / config(False, seq=2048).softmax_queries_per_layer
        )
        assert 0.5 < ratio < 0.51

    def test_default_is_full_attention(self):
        assert not config(False).causal
        assert TransformerConfig("t", 1, 8, 2, 8, 4).causal is False
