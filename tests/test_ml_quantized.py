"""Tests for post-training INT8 quantisation + PWL softmax composition."""

import numpy as np
import pytest

from repro.ml.datasets import make_mnist_like
from repro.ml.layers import InferenceContext
from repro.ml.models import build_mlp
from repro.ml.quantized import quantize_model
from repro.ml.train import TrainConfig, evaluate_accuracy, train_classifier


@pytest.fixture(scope="module")
def trained_mlp():
    dataset = make_mnist_like(n_samples=800, seed=11)
    model = build_mlp(seed=11)
    train_classifier(model, dataset, TrainConfig(epochs=5, seed=11))
    return model, dataset


class TestQuantizedInference:
    def test_close_to_float_model(self, trained_mlp):
        model, dataset = trained_mlp
        quantized = quantize_model(model, dataset.x_train[:128])
        float_logits = model.forward(dataset.x_test[:32], InferenceContext())
        int8_logits = quantized.forward(dataset.x_test[:32])
        # INT8 noise is small relative to the logit scale
        scale = np.max(np.abs(float_logits))
        assert np.max(np.abs(int8_logits - float_logits)) / scale < 0.1

    def test_accuracy_within_two_points(self, trained_mlp):
        model, dataset = trained_mlp
        quantized = quantize_model(model, dataset.x_train[:128])
        float_acc = evaluate_accuracy(model, dataset.x_test, dataset.y_test)
        int8_acc = quantized.accuracy(dataset.x_test, dataset.y_test)
        assert abs(int8_acc - float_acc) < 0.02

    def test_weights_restored_after_forward(self, trained_mlp):
        model, dataset = trained_mlp
        before = [p.value.copy() for p in model.params()]
        quantized = quantize_model(model, dataset.x_train[:64])
        quantized.forward(dataset.x_test[:8])
        after = [p.value for p in model.params()]
        for b, a in zip(before, after):
            assert np.array_equal(b, a)

    def test_weight_codes_are_int8_grid(self, trained_mlp):
        model, dataset = trained_mlp
        quantized = quantize_model(model, dataset.x_train[:64])
        for record in quantized._quantized.values():
            codes = record.w_int
            assert np.array_equal(codes, np.rint(codes))
            assert codes.max() <= 127 and codes.min() >= -128

    def test_compound_with_approx_softmax(self, trained_mlp):
        """The edge deployment setting: INT8 weights + PWL softmax.

        The PWL softmax's argmax invariance means the compound accuracy
        equals the INT8 accuracy exactly — the Table I property survives
        quantisation."""
        from repro.ml.approx_inference import _approx_context

        model, dataset = trained_mlp
        quantized = quantize_model(model, dataset.x_train[:128])
        int8_acc = quantized.accuracy(dataset.x_test, dataset.y_test)
        compound_acc = quantized.accuracy(
            dataset.x_test, dataset.y_test, ctx=_approx_context(16)
        )
        assert compound_acc == pytest.approx(int8_acc, abs=1e-12)
