"""Serving metrics: percentile edges and empty-report degradation.

The satellite bugfix pin: a :class:`~repro.serving.metrics.ServingReport`
over **zero requests** must degrade, not crash — the percentile
properties return ``None`` (a percentile of an empty sample is
undefined), ``as_dict``/``to_json`` serialize that as null, and
:func:`~repro.serving.metrics.build_report` folds an empty trace into a
well-formed report.  Around it sit the nearest-rank ``percentile``
edge cases (pct 0/100, single sample) and ``build_report`` over a
mixed finished/deadline-missing batch.
"""

import json

import numpy as np
import pytest

from repro.core.config import NovaConfig
from repro.core.decode import ContinuousBatchResult, NovaDecodeEngine
from repro.noc.stats import EventCounters
from repro.serving.frontdoor import FrontDoor
from repro.serving.metrics import (
    RequestMetrics,
    ServingReport,
    build_report,
    percentile,
)
from repro.workloads.transformer import TransformerConfig, decode_request

SMALL = NovaConfig(n_routers=2, neurons_per_router=8)


def toy_request(seed=0, prompt_len=3, max_new_tokens=3):
    model = TransformerConfig(
        "metrics-toy", layers=1, hidden=16, heads=2, intermediate=64,
        seq_len=64, causal=True,
    )
    return decode_request(
        model, prompt_len=prompt_len, max_new_tokens=max_new_tokens,
        seed=seed,
    )


def empty_result() -> ContinuousBatchResult:
    return ContinuousBatchResult(
        results=(),
        packed_vector_cycles=0,
        sequential_vector_cycles=0,
        scheduler_steps=0,
        counters=EventCounters(),
        pages_allocated=0,
        pages_recycled=0,
    )


class TestPercentileEdges:
    def test_pct_bounds_hit_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_single_element_is_every_percentile(self):
        for pct in (0.0, 50.0, 99.0, 100.0):
            assert percentile([42.0], pct) == 42.0

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 99.0)
        with pytest.raises(ValueError, match="pct"):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError, match="pct"):
            percentile([1.0], 100.1)


class TestEmptyReportDegradation:
    def _empty_report(self) -> ServingReport:
        return ServingReport(
            policy="fcfs",
            requests=(),
            scheduler_steps=0,
            deferrals=0,
            preemptions=0,
            packed_vector_cycles=0,
            sequential_vector_cycles=0,
            makespan_cycles=0.0,
        )

    def test_percentile_properties_degrade_to_none(self):
        report = self._empty_report()
        assert report.p50_ttft is None
        assert report.p99_ttft is None
        assert report.p50_latency is None
        assert report.p99_latency is None

    def test_aggregates_stay_well_defined(self):
        report = self._empty_report()
        assert report.n_requests == 0
        assert report.total_tokens == 0
        assert report.slo_attainment == 1.0
        assert report.goodput_tokens_per_kcycle == 0.0
        assert report.throughput_tokens_per_kcycle == 0.0
        assert report.deferral_rate == 0.0
        assert report.preemption_rate == 0.0
        assert report.tenant_tokens() == {}

    def test_as_dict_and_json_serialize_none(self):
        doc = json.loads(self._empty_report().to_json())
        assert doc["p50_ttft"] is None
        assert doc["p99_ttft"] is None
        assert doc["p50_latency"] is None
        assert doc["p99_latency"] is None
        assert doc["n_requests"] == 0
        assert doc["requests"] == []

    def test_build_report_on_an_empty_trace_is_well_formed(self):
        report = build_report([], empty_result(), "slo-aware")
        assert report.policy == "slo-aware"
        assert report.requests == ()
        assert report.makespan_cycles == 0.0
        assert report.p99_ttft is None
        # and it still serializes end to end
        assert json.loads(report.to_json())["makespan_cycles"] == 0.0

    def test_build_report_still_validates_alignment(self):
        with pytest.raises(ValueError, match="trace has"):
            build_report(
                [FrontDoor(NovaDecodeEngine(SMALL))], empty_result(), "fcfs"
            )


class TestBuildReportMixedOutcomes:
    def test_mixed_finished_and_deadline_missing_requests(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine, max_active=2)
        door.submit(toy_request(seed=0), tenant="a", deadline=10_000.0)
        door.submit(toy_request(seed=1), tenant="b", deadline=1e-9)
        door.submit(toy_request(seed=2), tenant="a")
        report = door.serve()
        met, missed, open_ended = report.requests
        assert met.met_deadline
        assert not missed.met_deadline
        assert open_ended.met_deadline and open_ended.deadline is None
        assert report.slo_attainment == pytest.approx(2.0 / 3.0)
        # percentiles exist and bound each other on a non-empty batch
        assert report.p50_ttft is not None
        assert report.p99_ttft >= report.p50_ttft
        assert report.p99_latency >= report.p50_latency
        # goodput only counts deadline-meeting tokens
        good = (met.tokens + open_ended.tokens) * 1000.0
        assert report.goodput_tokens_per_kcycle == pytest.approx(
            good / report.makespan_cycles
        )
        doc = json.loads(report.to_json())
        assert doc["p50_ttft"] == report.p50_ttft
        assert doc["slo_attainment"] == pytest.approx(report.slo_attainment)

    def test_metrics_match_the_virtual_clock(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine)
        door.submit(toy_request(seed=0), arrival=100.0)
        report = door.serve()
        (req,) = report.requests
        assert isinstance(req, RequestMetrics)
        assert req.ttft >= 0.0
        assert req.latency >= req.ttft
        assert report.makespan_cycles >= req.latency + 100.0 - 100.0
        assert np.isfinite(report.makespan_cycles)
