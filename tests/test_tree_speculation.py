"""Tree speculation: a draft tree scored in one packed verification pass.

The contract under test (see :mod:`repro.core.speculative`): for *any*
:class:`~repro.core.speculative.DraftTree` — any branching plan, any
accept/reject pattern — tree-speculative generation produces
bit-identical tokens to plain
:meth:`~repro.core.decode.NovaDecodeEngine.generate`, the degenerate
width-1 tree stays exactly the historical linear chain, sibling
branches live on copy-on-write block-table forks whose blocks are all
returned (zero leaked pool blocks for any accept pattern), and the
commit step keeps the longest accepted branch while truncating every
other branch through the existing rollback path.  Around that sit the
``spec_tree`` config/session/scheduler/front-door wiring and the
structural tree-causal mask.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import NovaConfig, parse_tree_spec, preset
from repro.core.decode import (
    ContinuousBatchScheduler,
    NovaDecodeEngine,
)
from repro.core.paging import BlockPool, BlockPoolExhausted
from repro.core.session import NovaSession
from repro.core.speculative import (
    DraftTree,
    NGramDraft,
    ScheduledDraft,
    SpeculativeDecodeEngine,
    TruncatedTableDraft,
    tree_causal_mask,
)
from repro.serving.frontdoor import FrontDoor
from repro.workloads.transformer import TransformerConfig, decode_request

#: Small shared geometry: tables/schedules compile once per module.
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)
ENGINE = NovaDecodeEngine(SMALL)


def toy_model(hidden=16, heads=2, seq_len=64):
    return TransformerConfig(
        "tree-toy", layers=1, hidden=hidden, heads=heads,
        intermediate=4 * hidden, seq_len=seq_len, causal=True,
    )


def toy_request(prompt_len=4, max_new_tokens=6, seed=0, window=None,
                **model_kwargs):
    return decode_request(
        toy_model(**model_kwargs), prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed, window=window,
    )


# ----------------------------------------------------------------------
# The spec syntax and the DraftTree value object.
# ----------------------------------------------------------------------


class TestDraftTreeSpec:
    def test_parse_tree_spec_segments(self):
        assert parse_tree_spec("2x2") == (2, 2)
        assert parse_tree_spec("1x4") == (1, 1, 1, 1)
        assert parse_tree_spec("3,2x2,1") == (3, 2, 2, 1)
        assert parse_tree_spec(" 2 , 1x2 ") == (2, 1, 1)

    def test_parse_tree_spec_rejects_malformed(self):
        for bad in ("", ",", "2x", "x2", "0x3", "2x0", "-1", "a", "2x2x2"):
            with pytest.raises(ValueError):
                parse_tree_spec(bad)
        with pytest.raises(TypeError):
            parse_tree_spec(4)

    def test_parse_tree_spec_caps_total_nodes(self):
        # 16 + 16*16 = 272 cumulative nodes > the 256 cap
        with pytest.raises(ValueError, match="node"):
            parse_tree_spec("16x2")
        assert parse_tree_spec("256x1") == (256,)

    def test_spec_round_trips_canonically(self):
        for spec, widths in (
            ("2x2", (2, 2)),
            ("4x1,2x1,1x1", (4, 2, 1)),
            ("1x4", (1, 1, 1, 1)),
        ):
            tree = DraftTree.parse(spec)
            assert tree.widths == widths
            assert DraftTree.parse(tree.spec).widths == widths
        assert DraftTree((2, 2, 1, 1)).spec == "2x2,1x2"
        assert str(DraftTree((3, 1))) == "3x1,1x1"

    def test_linear_is_the_degenerate_tree(self):
        tree = DraftTree.linear(4)
        assert tree.widths == (1, 1, 1, 1)
        assert tree.is_linear
        assert tree.depth == 4
        assert tree.max_nodes == 4
        assert not DraftTree((1, 2)).is_linear
        with pytest.raises(ValueError, match="k >= 1"):
            DraftTree.linear(0)

    def test_max_nodes_is_the_cumulative_branch_count(self):
        assert DraftTree((4, 2, 1)).max_nodes == 4 + 8 + 8
        assert DraftTree((2, 2)).max_nodes == 6

    def test_widths_validation(self):
        with pytest.raises(ValueError, match="at least one level"):
            DraftTree(())
        with pytest.raises(ValueError, match=">= 1"):
            DraftTree((2, 0))

    def test_config_field_validates_and_overrides(self):
        assert NovaConfig(spec_tree="2x2").spec_tree == "2x2"
        assert NovaConfig().spec_tree is None
        with pytest.raises(ValueError):
            NovaConfig(spec_tree="0x2")
        cfg = preset("jetson-nx").with_overrides(["spec_tree=2x2,1x2"])
        assert cfg.spec_tree == "2x2,1x2"
        assert preset("jetson-nx").with_overrides(
            ["spec_tree=none"]
        ).spec_tree is None

    def test_engine_tree_resolution_order(self):
        # explicit argument > config.spec_tree > linear(spec_k)
        cfg = SMALL.replace(spec_tree="2x2")
        assert SpeculativeDecodeEngine(
            NovaDecodeEngine(cfg), tree="3x1,1x1"
        ).tree.widths == (3, 1)
        assert SpeculativeDecodeEngine(
            NovaDecodeEngine(cfg)
        ).tree.widths == (2, 2)
        assert SpeculativeDecodeEngine(ENGINE).tree == DraftTree.linear(
            SMALL.spec_k
        )
        assert SpeculativeDecodeEngine(
            ENGINE, tree=DraftTree((2, 1))
        ).tree.widths == (2, 1)


# ----------------------------------------------------------------------
# Bit-exactness: any tree, any draft, both cache layouts.
# ----------------------------------------------------------------------


TREES = ["1x3", "2x2", "3x1,1x2", "2x1,1x3", "2x3"]


class TestTreeBitExactness:
    @pytest.mark.parametrize("spec", TREES)
    @pytest.mark.parametrize("fidelity", [1.0, 0.55, 0.0])
    def test_contiguous_matches_plain_generate(self, spec, fidelity):
        request = toy_request(prompt_len=4, max_new_tokens=7)
        plain = ENGINE.generate(request)
        spec_engine = SpeculativeDecodeEngine(ENGINE, tree=spec)
        result = spec_engine.generate(
            request, draft=TruncatedTableDraft(SMALL, fidelity=fidelity)
        )
        assert np.array_equal(result.generated, plain.generated)
        assert result.sequential_vector_cycles == plain.vector_cycles
        assert result.n_generated == request.max_new_tokens
        assert (
            result.rolled_back_tokens
            == result.drafted_tokens - result.accepted_tokens
        )

    @pytest.mark.parametrize("spec", TREES)
    def test_paged_matches_plain_and_leaks_no_blocks(self, spec):
        request = toy_request(prompt_len=4, max_new_tokens=7)
        plain = ENGINE.generate(request)
        pool = BlockPool(request.n_heads, request.head_dim, 2, n_blocks=64)
        spec_engine = SpeculativeDecodeEngine(ENGINE, tree=spec)
        state = spec_engine.start(request, pool=pool)
        result = spec_engine.generate(
            request, state=state,
            draft=TruncatedTableDraft(SMALL, fidelity=0.55),
        )
        assert np.array_equal(result.generated, plain.generated)
        # every fork's blocks came back: only the live cache holds refs
        assert pool.in_use == state.cache.blocks_in_use
        assert pool.live_tokens == state.cache.length
        state.cache.reset()
        assert pool.in_use == 0
        assert pool.live_tokens == 0

    def test_final_kv_state_matches_plain(self):
        request = toy_request(prompt_len=3, max_new_tokens=6)
        plain_state = ENGINE.start(request)
        ENGINE.generate(request, state=plain_state)
        spec_engine = SpeculativeDecodeEngine(ENGINE, tree="2x2")
        spec_state = spec_engine.start(request)
        spec_engine.generate(
            request, state=spec_state,
            draft=TruncatedTableDraft(SMALL, fidelity=0.6),
        )
        assert spec_state.position == plain_state.position
        assert np.array_equal(spec_state.cache.keys, plain_state.cache.keys)
        assert np.array_equal(
            spec_state.cache.values, plain_state.cache.values
        )

    def test_windowed_request_stays_exact(self):
        request = toy_request(prompt_len=5, max_new_tokens=6, window=4)
        plain = ENGINE.generate(request)
        result = SpeculativeDecodeEngine(ENGINE, tree="2x2").generate(
            request, draft=TruncatedTableDraft(SMALL, fidelity=1.0)
        )
        assert np.array_equal(result.generated, plain.generated)
        assert result.sequential_vector_cycles == plain.vector_cycles

    def test_ngram_draft_proposes_tree_candidates(self):
        request = toy_request(prompt_len=4, max_new_tokens=8)
        plain = ENGINE.generate(request)
        result = SpeculativeDecodeEngine(ENGINE, tree="2x2").generate(
            request, draft=NGramDraft()
        )
        assert np.array_equal(result.generated, plain.generated)

    def test_linear_tree_is_bit_and_accounting_identical_to_spec_k(self):
        """The degenerate tree pins backward compatibility: same passes,
        same drafts, same cycles, same counters as the spec_k chain."""
        request = toy_request(prompt_len=4, max_new_tokens=7)
        chain = SpeculativeDecodeEngine(ENGINE, spec_k=3).generate(
            request, draft=TruncatedTableDraft(SMALL, fidelity=0.7, seed=2)
        )
        tree = SpeculativeDecodeEngine(ENGINE, tree="1x3").generate(
            request, draft=TruncatedTableDraft(SMALL, fidelity=0.7, seed=2)
        )
        assert np.array_equal(tree.generated, chain.generated)
        assert tree.vector_cycles == chain.vector_cycles
        assert tree.verify_passes == chain.verify_passes
        assert tree.drafted_tokens == chain.drafted_tokens
        assert tree.accepted_tokens == chain.accepted_tokens
        assert tree.rolled_back_tokens == chain.rolled_back_tokens
        assert tree.counters.as_dict() == chain.counters.as_dict()


# ----------------------------------------------------------------------
# The structural tree-causal mask and fork accounting of one pass.
# ----------------------------------------------------------------------


class TestTreeCausalMask:
    def _plan_pass(self, spec, program, pool_blocks=None):
        request = toy_request(prompt_len=4, max_new_tokens=8)
        spec_engine = SpeculativeDecodeEngine(ENGINE, tree=spec)
        pool = (
            BlockPool(request.n_heads, request.head_dim, 2, pool_blocks)
            if pool_blocks
            else None
        )
        state = spec_engine.start(request, pool=pool)
        pre = ENGINE.prefill(state)
        draft = ScheduledDraft(SMALL, program)
        spec_pass = spec_engine.plan_verify_pass(
            state, pre.outputs[-1], budget=8, draft=draft
        )
        return spec_engine, state, spec_pass, draft, pool

    def test_mask_is_the_ancestor_matrix(self):
        # alternating program -> distinct siblings survive dedup
        _, _, spec_pass, _, _ = self._plan_pass("2x2", (True, False))
        mask = tree_causal_mask(spec_pass)
        n = len(spec_pass.nodes)
        assert mask.shape == (n, n)
        assert n == 7  # root + 2 + 4
        # diagonal: every token attends to itself; column 0: the root
        # is an ancestor of every pass token
        assert mask.diagonal().all()
        assert mask[:, 0].all()
        # planning is level-ordered, so the mask is lower-triangular
        assert not np.triu(mask, k=1).any()
        # each row's ancestor chain matches the node's parent links
        for node in spec_pass.nodes:
            expected = np.zeros(n, dtype=bool)
            cursor = node
            while cursor is not None:
                expected[cursor.token_index] = True
                cursor = cursor.parent
            assert np.array_equal(mask[node.token_index], expected)
        # siblings never attend to each other
        first_level = spec_pass.root.children
        assert len(first_level) == 2
        a, b = (n.token_index for n in first_level)
        assert not mask[a, b] and not mask[b, a]

    def test_one_packed_job_covers_every_branch(self):
        _, state, spec_pass, _, _ = self._plan_pass("2x2", (True, False))
        assert spec_pass.job.state is state
        assert len(spec_pass.job.tokens) == len(spec_pass.nodes)
        assert len(spec_pass.drafts) == len(spec_pass.nodes) - 1

    def test_forks_are_released_and_longest_branch_committed(self):
        spec_engine, state, spec_pass, draft, pool = self._plan_pass(
            "2x2", (True, True, False, False), pool_blocks=32
        )
        assert len(spec_pass.forks) > 0
        in_use_during = pool.in_use
        (result,), _ = ENGINE._execute([spec_pass.job])
        steps, pass_result = spec_engine.finish_verify_pass(
            spec_pass, result, draft=draft
        )
        assert pass_result.committed == pass_result.accepted + 1
        assert len(steps) == pass_result.committed
        # every fork block returned; only the live branch remains
        assert pool.in_use <= in_use_during
        assert pool.in_use == state.cache.blocks_in_use
        assert pool.live_tokens == state.cache.length
        assert state.cache.length == 4 + pass_result.committed


# ----------------------------------------------------------------------
# Error paths: atomicity with forks in flight.
# ----------------------------------------------------------------------


class TestTreeErrorPaths:
    def _paged_state(self, spec_engine, request, n_blocks):
        pool = BlockPool(
            request.n_heads, request.head_dim, 2, n_blocks=n_blocks
        )
        state = spec_engine.start(request, pool=pool)
        spec_engine.engine.prefill(state)
        return state, pool

    def test_pool_exhaustion_mid_tree_is_atomic(self):
        request = toy_request(prompt_len=2, max_new_tokens=6)
        spec_engine = SpeculativeDecodeEngine(ENGINE, tree="2x2")
        state, pool = self._paged_state(spec_engine, request, n_blocks=2)
        baseline = (state.cache.length, state.position, pool.in_use,
                    pool.live_tokens)
        with pytest.raises(BlockPoolExhausted):
            spec_engine.plan_verify_pass(
                state, np.zeros(request.hidden), budget=6,
                draft=TruncatedTableDraft(SMALL, fidelity=0.5),
            )
        assert (state.cache.length, state.position, pool.in_use,
                pool.live_tokens) == baseline

    def test_fallback_degrades_to_a_draft_free_pass(self):
        request = toy_request(prompt_len=2, max_new_tokens=6)
        spec_engine = SpeculativeDecodeEngine(ENGINE, tree="2x2")
        state, pool = self._paged_state(spec_engine, request, n_blocks=2)
        spec_pass = spec_engine.plan_with_fallback(
            state, np.zeros(request.hidden), budget=6,
            draft=TruncatedTableDraft(SMALL, fidelity=0.5),
        )
        assert len(spec_pass.job.tokens) >= 1
        assert len(spec_pass.forks) == 0

    def test_tight_pool_generation_still_exact_and_leak_free(self):
        request = toy_request(prompt_len=2, max_new_tokens=6)
        plain = ENGINE.generate(request)
        spec_engine = SpeculativeDecodeEngine(ENGINE, tree="2x2")
        pool = BlockPool(request.n_heads, request.head_dim, 2, n_blocks=6)
        state = spec_engine.start(request, pool=pool)
        result = spec_engine.generate(
            request, state=state,
            draft=TruncatedTableDraft(SMALL, fidelity=0.6),
        )
        assert np.array_equal(result.generated, plain.generated)
        state.cache.reset()
        assert pool.in_use == 0
        assert pool.live_tokens == 0


# ----------------------------------------------------------------------
# Scheduler, session and front-door wiring.
# ----------------------------------------------------------------------


class TestTreeWiring:
    def _requests(self, budgets=(5, 2, 7), prompts=(3, 5, 4), seed=0):
        return [
            toy_request(prompt_len=p, max_new_tokens=b, seed=seed + i)
            for i, (p, b) in enumerate(zip(prompts, budgets))
        ]

    def _factory(self, fidelity=0.6, seed=9):
        def factory():
            return TruncatedTableDraft(SMALL, fidelity=fidelity, seed=seed)

        return factory

    def test_scheduler_tree_matches_solo_tree(self):
        requests = self._requests()
        factory = self._factory()
        speculator = SpeculativeDecodeEngine(ENGINE, tree="2x2")
        solo = [speculator.generate(r, draft=factory()) for r in requests]
        scheduler = ContinuousBatchScheduler(
            ENGINE, max_active=2, speculative=True, spec_tree="2x2",
            draft_factory=factory,
        )
        batch = scheduler.run(requests)
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(got.generated, ref.generated)
            assert got.vector_cycles == ref.vector_cycles
            assert got.verify_passes == ref.verify_passes
            assert got.drafted_tokens == ref.drafted_tokens
            assert got.accepted_tokens == ref.accepted_tokens
            assert got.counters.as_dict() == ref.counters.as_dict()

    def test_paged_scheduler_tree_frees_every_block(self):
        requests = self._requests()
        scheduler = ContinuousBatchScheduler(
            ENGINE, max_active=3, speculative=True, spec_tree="2x1,1x2",
            paged=True, block_size=4, draft_factory=self._factory(),
        )
        batch = scheduler.run(requests)
        assert batch.paging is not None
        assert batch.paging["in_use"] == 0
        assert batch.paging["blocks_allocated"] == batch.paging["blocks_freed"]
        plain = [ENGINE.generate(r) for r in requests]
        for ref, got in zip(plain, batch.results):
            assert np.array_equal(got.generated, ref.generated)

    def test_spec_tree_kwarg_needs_speculative_mode(self):
        with pytest.raises(ValueError, match="speculative scheduler"):
            ContinuousBatchScheduler(ENGINE, spec_tree="2x2")

    def test_session_generate_spec_tree(self):
        session = NovaSession(SMALL)
        request = toy_request(prompt_len=4, max_new_tokens=5)
        plain = session.generate(request)
        spec = session.generate(
            request, speculative=True, spec_tree="2x2",
            draft=ScheduledDraft(SMALL, (True, False, True)),
        )
        assert np.array_equal(spec.generated, plain.generated)
        with pytest.raises(ValueError, match="speculative"):
            session.generate(request, spec_tree="2x2")

    def test_frontdoor_spec_tree_matches_solo(self):
        requests = self._requests()
        factory = self._factory()
        speculator = SpeculativeDecodeEngine(ENGINE, tree="2x2")
        solo = [speculator.generate(r, draft=factory()) for r in requests]
        door = FrontDoor(
            ENGINE, speculative=True, spec_tree="2x2",
            draft_factory=factory,
        )
        for i, r in enumerate(requests):
            door.submit(r, arrival=float(i))
        report = door.serve()
        assert report.n_requests == len(requests)
        for rid, got in door.last_results().items():
            assert np.array_equal(got.generated, solo[rid].generated)


# ----------------------------------------------------------------------
# The property: any tree x any accept/reject program, still exact.
# ----------------------------------------------------------------------


class TestTreeProperties:
    @given(
        widths=st.lists(st.integers(1, 3), min_size=1, max_size=3),
        program=st.lists(st.booleans(), min_size=1, max_size=10),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_tree_any_program_matches_plain(self, widths, program, seed):
        request = toy_request(prompt_len=3, max_new_tokens=5, seed=seed)
        plain = ENGINE.generate(request)
        result = SpeculativeDecodeEngine(
            ENGINE, tree=DraftTree(tuple(widths))
        ).generate(request, draft=ScheduledDraft(SMALL, program))
        assert np.array_equal(result.generated, plain.generated)
        assert result.sequential_vector_cycles == plain.vector_cycles
        assert result.n_generated == request.max_new_tokens
        assert (
            result.rolled_back_tokens
            == result.drafted_tokens - result.accepted_tokens
        )

    @given(
        widths=st.lists(st.integers(1, 3), min_size=1, max_size=2),
        program=st.lists(st.booleans(), min_size=1, max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_tree_any_program_leaks_no_pool_blocks(self, widths, program):
        request = toy_request(prompt_len=3, max_new_tokens=5)
        plain = ENGINE.generate(request)
        pool = BlockPool(request.n_heads, request.head_dim, 2, n_blocks=48)
        spec_engine = SpeculativeDecodeEngine(
            ENGINE, tree=DraftTree(tuple(widths))
        )
        state = spec_engine.start(request, pool=pool)
        result = spec_engine.generate(
            request, state=state, draft=ScheduledDraft(SMALL, program)
        )
        assert np.array_equal(result.generated, plain.generated)
        assert pool.in_use == state.cache.blocks_in_use
        assert pool.live_tokens == state.cache.length
        state.cache.reset()
        assert pool.in_use == 0
        assert pool.live_tokens == 0
