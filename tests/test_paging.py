"""Tests for the paged KV cache (repro.core.paging) and its scheduler.

The headline contracts:

* a :class:`PagedKVCache` presents byte-identical ``keys`` / ``values``
  to a contiguous :class:`KVCache` for the same appended tokens, for
  every block size, including ones that do not divide the window;
* decode over a paged cache is **bit-, cycle- and counter-exact**
  against the contiguous cache on every Table II preset (the
  equivalence gate: paging moves K/V rows, nothing else);
* the paged :class:`ContinuousBatchScheduler` admits by free blocks,
  defers starved sequences instead of crashing when the pool runs dry
  mid-step, preempts (by deterministic recomputation) when nothing can
  progress, and still returns bit-identical per-request results;
* pool accounting obeys ``n_blocks == in_use + free`` and
  ``blocks_allocated - blocks_freed == in_use`` at every point, and
  double-frees fail loudly.
"""

import numpy as np
import pytest

from repro.core.config import PRESETS, NovaConfig
from repro.core.decode import (
    ContinuousBatchScheduler,
    KVCache,
    KVCacheOverflow,
    NovaDecodeEngine,
)
from repro.core.paging import (
    BlockPool,
    BlockPoolExhausted,
    BlockTable,
    PagedKVCache,
    blocks_needed,
    pool_cache_info,
    worst_case_blocks,
)
from repro.core.session import NovaSession
from repro.workloads.bert import decode_batch, mixed_decode_batch
from repro.workloads.transformer import TransformerConfig, decode_request

#: Small geometry for fast unit-level checks.
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)


def toy_model(hidden=16, heads=2, seq_len=64):
    return TransformerConfig(
        "toy", layers=1, hidden=hidden, heads=heads,
        intermediate=4 * hidden, seq_len=seq_len, causal=True,
    )


def token(i, n_heads=2, head_dim=4):
    """A distinguishable per-token (k, v) pair."""
    base = np.arange(n_heads * head_dim, dtype=float).reshape(
        n_heads, head_dim
    )
    return base + 100.0 * i, base - 100.0 * i


# ----------------------------------------------------------------------
# BlockPool.
# ----------------------------------------------------------------------


class TestBlockPool:
    def test_allocate_free_roundtrip_and_accounting(self):
        pool = BlockPool(2, 4, block_size=8, n_blocks=3)
        a = pool.allocate()
        b = pool.allocate()
        assert a != b
        assert pool.in_use == 2 and pool.free_blocks == 1
        assert pool.blocks_allocated == 2 and pool.blocks_freed == 0
        pool.free(a)
        assert pool.in_use == 1 and pool.free_blocks == 2
        assert pool.blocks_freed == 1
        assert pool.peak_in_use == 2
        info = pool.pool_info()
        assert info["n_blocks"] == info["in_use"] + info["free"]
        assert info["blocks_allocated"] - info["blocks_freed"] == info["in_use"]

    def test_exhaustion_raises(self):
        pool = BlockPool(1, 1, block_size=2, n_blocks=1)
        pool.allocate()
        with pytest.raises(BlockPoolExhausted, match="dry"):
            pool.allocate()

    def test_double_free_raises(self):
        pool = BlockPool(1, 1, block_size=2, n_blocks=2)
        block = pool.allocate()
        pool.free(block)
        with pytest.raises(ValueError, match="double free"):
            pool.free(block)
        with pytest.raises(ValueError, match="outside pool"):
            pool.free(99)

    def test_constructor_validation(self):
        for field, kwargs in [
            ("n_heads", dict(n_heads=0, head_dim=1, block_size=1, n_blocks=1)),
            ("head_dim", dict(n_heads=1, head_dim=0, block_size=1, n_blocks=1)),
            ("block_size", dict(n_heads=1, head_dim=1, block_size=0, n_blocks=1)),
            ("n_blocks", dict(n_heads=1, head_dim=1, block_size=1, n_blocks=0)),
        ]:
            with pytest.raises(ValueError, match=field):
                BlockPool(**kwargs)

    def test_from_bytes_sizes_the_pool(self):
        # one block = 2 * 8 * 2 heads * 4 tokens * 3 dim = 384 bytes
        pool = BlockPool.from_bytes(2, 3, block_size=4, pool_bytes=1000)
        assert pool.block_bytes == 384
        assert pool.n_blocks == 2
        with pytest.raises(ValueError, match="smaller than one"):
            BlockPool.from_bytes(2, 3, block_size=4, pool_bytes=100)

    def test_pool_cache_info_aggregates_live_pools(self):
        before = pool_cache_info()
        pool = BlockPool(1, 2, block_size=4, n_blocks=5)
        pool.allocate()
        after = pool_cache_info()
        assert after["pools_created"] == before["pools_created"] + 1
        assert after["n_blocks"] >= before["n_blocks"] + 5
        assert after["n_blocks"] == after["in_use"] + after["free"]

    def test_blocks_needed_and_worst_case(self):
        assert blocks_needed(1, 16) == 1
        assert blocks_needed(16, 16) == 1
        assert blocks_needed(17, 16) == 2
        assert worst_case_blocks(20, None, 16) == 2
        # windowed: window straddle costs at most one extra block...
        assert worst_case_blocks(100, 5, 4) == 3
        # ...but never more than holding every token would
        assert worst_case_blocks(6, 5, 4) == 2


# ----------------------------------------------------------------------
# PagedKVCache vs the contiguous KVCache.
# ----------------------------------------------------------------------


def paired_caches(n_heads=2, head_dim=4, capacity=32, window=None,
                  block_size=3, n_blocks=32):
    pool = BlockPool(n_heads, head_dim, block_size, n_blocks)
    return (
        KVCache(n_heads, head_dim, capacity, window=window),
        PagedKVCache(pool, capacity, window=window),
        pool,
    )


class TestPagedKVCache:
    @pytest.mark.parametrize("block_size", [1, 2, 3, 5, 8])
    def test_gather_matches_contiguous(self, block_size):
        ref, paged, _ = paired_caches(block_size=block_size)
        for i in range(13):
            k, v = token(i)
            ref.append(k, v)
            paged.append(k, v)
        assert np.array_equal(ref.keys, paged.keys)
        assert np.array_equal(ref.values, paged.values)
        assert np.array_equal(
            ref.values_snapshot(7), paged.values_snapshot(7)
        )
        assert paged.length == ref.length == 13
        assert paged.blocks_in_use == blocks_needed(13, block_size)

    @pytest.mark.parametrize("block_size", [2, 3, 4])
    def test_window_eviction_matches_and_frees_blocks(self, block_size):
        # window 5 with block sizes that do and do not divide it
        ref, paged, pool = paired_caches(window=5, block_size=block_size)
        for i in range(17):
            k, v = token(i)
            ref.append(k, v)
            paged.append(k, v)
            assert np.array_equal(ref.keys, paged.keys)
            assert np.array_equal(ref.values, paged.values)
            assert ref.length == paged.length
            assert ref.start_position == paged.start_position
            assert ref.evictions == paged.evictions
            assert paged.blocks_in_use <= worst_case_blocks(
                17, 5, block_size
            )
        # eviction returned head blocks to the pool
        assert pool.blocks_freed > 0
        assert pool.in_use == paged.blocks_in_use

    def test_explicit_evict_and_drain(self):
        ref, paged, pool = paired_caches(block_size=4)
        for i in range(10):
            k, v = token(i)
            ref.append(k, v)
            paged.append(k, v)
        ref.evict(6)
        paged.evict(6)
        assert np.array_equal(ref.keys, paged.keys)
        assert paged.start_position == 6
        # evicting everything releases every block
        paged.evict(paged.length)
        assert paged.blocks_in_use == 0
        assert pool.in_use == 0
        with pytest.raises(ValueError, match="cannot evict"):
            paged.evict(1)

    def test_append_after_drain_restarts_cleanly(self):
        ref, paged, _ = paired_caches(block_size=4)
        for i in range(6):
            k, v = token(i)
            ref.append(k, v)
            paged.append(k, v)
        ref.evict(6)
        paged.evict(6)
        for i in range(6, 9):
            k, v = token(i)
            ref.append(k, v)
            paged.append(k, v)
        assert np.array_equal(ref.keys, paged.keys)
        assert ref.start_position == paged.start_position == 6

    def test_reset_frees_all_blocks(self):
        _, paged, pool = paired_caches(block_size=2)
        for i in range(7):
            paged.append(*token(i))
        assert pool.in_use == 4
        paged.reset()
        assert pool.in_use == 0
        assert pool.live_tokens == 0
        assert paged.length == 0 and paged.start_position == 0
        info = pool.pool_info()
        assert info["blocks_allocated"] - info["blocks_freed"] == 0

    def test_overflow_matches_contiguous_contract(self):
        _, paged, _ = paired_caches(capacity=3, n_blocks=4)
        for i in range(3):
            paged.append(*token(i))
        with pytest.raises(KVCacheOverflow, match="full at capacity 3"):
            paged.append(*token(3))

    def test_append_is_atomic_on_pool_exhaustion(self):
        pool = BlockPool(2, 4, block_size=2, n_blocks=1)
        paged = PagedKVCache(pool, capacity=32)
        paged.append(*token(0))
        paged.append(*token(1))
        before = (paged.length, paged.blocks_in_use, pool.live_tokens)
        with pytest.raises(BlockPoolExhausted):
            paged.append(*token(2))
        assert (paged.length, paged.blocks_in_use, pool.live_tokens) == before
        # the cache is still usable once blocks free up elsewhere
        other = PagedKVCache(pool, capacity=32)
        with pytest.raises(BlockPoolExhausted):
            other.append(*token(9))

    def test_windowed_append_is_atomic_on_pool_exhaustion(self):
        # two caches share a 2-block pool; the windowed one needs its
        # straddle block while the other holds the last free block
        pool = BlockPool(2, 4, block_size=4, n_blocks=2)
        windowed = PagedKVCache(pool, capacity=16, window=4)
        hog = PagedKVCache(pool, capacity=16)
        for i in range(4):
            windowed.append(*token(i))
        hog.append(*token(99))
        ref_keys = windowed.keys
        before = (windowed.length, windowed.start_position,
                  windowed.evictions, pool.live_tokens)
        with pytest.raises(BlockPoolExhausted):
            windowed.append(*token(4))  # tail crosses into a new block
        assert (windowed.length, windowed.start_position,
                windowed.evictions, pool.live_tokens) == before
        assert np.array_equal(windowed.keys, ref_keys)

    def test_validation(self):
        pool = BlockPool(2, 4, block_size=2, n_blocks=2)
        with pytest.raises(ValueError, match="capacity"):
            PagedKVCache(pool, capacity=0)
        with pytest.raises(ValueError, match="window"):
            PagedKVCache(pool, capacity=4, window=0)
        with pytest.raises(ValueError, match="window"):
            PagedKVCache(pool, capacity=4, window=8)
        paged = PagedKVCache(pool, capacity=4)
        with pytest.raises(ValueError, match="shape"):
            paged.append(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_can_serve(self):
        pool = BlockPool(2, 4, block_size=2, n_blocks=2)
        paged = PagedKVCache(pool, capacity=8)
        assert paged.can_serve(2, 4, 8)
        assert paged.can_serve(2, 4, 4)
        assert not paged.can_serve(2, 4, 9)
        assert not paged.can_serve(3, 4, 4)

    def test_block_table_physical_mapping(self):
        table = BlockTable()
        table.blocks.extend([7, 3, 9])
        assert table.physical(0, 4) == (7, 0)
        assert table.physical(5, 4) == (3, 1)
        assert table.physical(11, 4) == (9, 3)
        assert table.n_blocks == 3


# ----------------------------------------------------------------------
# The equivalence gate: paged decode vs contiguous decode, per preset.
# ----------------------------------------------------------------------


class TestPagedDecodeEquivalence:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    def test_bit_cycle_counter_exact_on_every_preset(self, preset_name):
        """Paging must change *where* K/V rows live, never the numerics
        or the hardware accounting — on every Table II geometry."""
        session = NovaSession(preset_name)
        engine = session.decoder
        request = decode_request(
            toy_model(), prompt_len=6, max_new_tokens=4, seed=11
        )
        contiguous = engine.generate(request)
        pool = BlockPool(
            request.n_heads, request.head_dim,
            session.config.kv_block_size,
            n_blocks=worst_case_blocks(
                request.total_tokens, request.window,
                session.config.kv_block_size,
            ),
        )
        paged = engine.generate(
            request, state=engine.start(request, pool=pool)
        )
        assert np.array_equal(contiguous.generated, paged.generated)
        assert np.array_equal(
            contiguous.prefill.outputs, paged.prefill.outputs
        )
        assert np.array_equal(
            contiguous.prefill.probabilities, paged.prefill.probabilities
        )
        assert contiguous.vector_cycles == paged.vector_cycles
        assert contiguous.counters.as_dict() == paged.counters.as_dict()
        for a, b in zip(contiguous.steps, paged.steps):
            assert np.array_equal(a.probabilities, b.probabilities)
            assert a.vector_cycles == b.vector_cycles
            assert a.counters.as_dict() == b.counters.as_dict()

    def test_windowed_paged_decode_matches(self):
        engine = NovaDecodeEngine(SMALL)
        request = decode_request(
            toy_model(), prompt_len=7, max_new_tokens=4, seed=3, window=5
        )
        contiguous = engine.generate(request)
        pool = BlockPool(request.n_heads, request.head_dim, 2, n_blocks=4)
        paged = engine.generate(
            request, state=engine.start(request, pool=pool)
        )
        assert np.array_equal(contiguous.generated, paged.generated)
        assert contiguous.counters.as_dict() == paged.counters.as_dict()

    def test_start_rejects_pool_geometry_mismatch(self):
        engine = NovaDecodeEngine(SMALL)
        request = decode_request(toy_model(), prompt_len=3)
        wrong = BlockPool(
            request.n_heads + 1, request.head_dim, 4, n_blocks=4
        )
        with pytest.raises(ValueError, match="does not match"):
            engine.start(request, pool=wrong)
        good = BlockPool(request.n_heads, request.head_dim, 4, n_blocks=4)
        cache = KVCache(request.n_heads, request.head_dim, request.capacity)
        with pytest.raises(ValueError, match="not both"):
            engine.start(request, cache=cache, pool=good)


# ----------------------------------------------------------------------
# Paged continuous batching.
# ----------------------------------------------------------------------


class TestPagedScheduler:
    def test_bit_exact_vs_one_at_a_time(self):
        model = toy_model()
        requests = decode_batch(model, 5, prompt_len=3, max_new_tokens=4,
                                seed=0)
        engine = NovaDecodeEngine(SMALL)
        solo = [engine.generate(r) for r in requests]
        batch = ContinuousBatchScheduler(
            engine, max_active=3, paged=True, block_size=4
        ).run(requests)
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(ref.generated, got.generated)
            assert ref.vector_cycles == got.vector_cycles
            assert ref.counters.as_dict() == got.counters.as_dict()
        assert batch.paging is not None
        assert batch.paging["in_use"] == 0  # every block returned
        assert batch.pages_allocated == 0 and batch.pages_recycled == 0

    def test_pool_exhaustion_mid_step_defers_not_crashes(self):
        """A pool too small for every sequence's next block must defer
        the starved sequences and still finish bit-exact."""
        model = toy_model()
        requests = decode_batch(model, 5, prompt_len=3, max_new_tokens=4,
                                seed=0)
        engine = NovaDecodeEngine(SMALL)
        solo = [engine.generate(r) for r in requests]
        scheduler = ContinuousBatchScheduler(
            engine, max_active=5, paged=True, block_size=4, pool_blocks=4
        )
        batch = scheduler.run(requests)
        assert batch.deferrals > 0
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(ref.generated, got.generated)
            assert ref.counters.as_dict() == got.counters.as_dict()

    def test_preemption_recomputes_bit_exact(self):
        """With only enough blocks for one sequence's worst case at a
        time, the scheduler must preempt and still converge on
        bit-identical results."""
        model = toy_model()
        requests = decode_batch(model, 4, prompt_len=3, max_new_tokens=4,
                                seed=0)
        engine = NovaDecodeEngine(SMALL)
        solo = [engine.generate(r) for r in requests]
        scheduler = ContinuousBatchScheduler(
            engine, max_active=4, paged=True, block_size=4, pool_blocks=2
        )
        batch = scheduler.run(requests)
        assert batch.preemptions > 0
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(ref.generated, got.generated)
            assert ref.vector_cycles == got.vector_cycles
            assert ref.counters.as_dict() == got.counters.as_dict()
        # preempted work was recomputed: the overlay spent more than the
        # per-request sequential-equivalent total
        assert batch.counters.as_dict() != ContinuousBatchScheduler(
            engine, max_active=4, paged=True
        ).run(requests).counters.as_dict()

    def test_infeasible_request_raises_up_front(self):
        model = toy_model()
        requests = decode_batch(model, 2, prompt_len=6, max_new_tokens=4,
                                seed=0)
        engine = NovaDecodeEngine(SMALL)
        scheduler = ContinuousBatchScheduler(
            engine, max_active=2, paged=True, block_size=4, pool_blocks=1
        )
        before = engine.unit._lifetime_counters()
        with pytest.raises(BlockPoolExhausted, match="running alone"):
            scheduler.run(requests)
        assert engine.unit._lifetime_counters().as_dict() == before.as_dict()

    def test_heterogeneous_head_geometry_rejected(self):
        engine = NovaDecodeEngine(SMALL)
        a = decode_request(toy_model(hidden=16, heads=2), prompt_len=3)
        b = decode_request(toy_model(hidden=16, heads=4), prompt_len=3)
        scheduler = ContinuousBatchScheduler(engine, paged=True)
        with pytest.raises(ValueError, match="head geometry"):
            scheduler.run([a, b])

    def test_paged_only_knobs_rejected_in_contiguous_mode(self):
        engine = NovaDecodeEngine(SMALL)
        with pytest.raises(ValueError, match="paged"):
            ContinuousBatchScheduler(engine, block_size=8)
        with pytest.raises(ValueError, match="paged"):
            ContinuousBatchScheduler(engine, pool_blocks=8)
        with pytest.raises(ValueError, match="not both"):
            ContinuousBatchScheduler(
                engine, paged=True, pool_blocks=4, pool_bytes=1024
            )
        with pytest.raises(ValueError, match="block_size"):
            ContinuousBatchScheduler(engine, paged=True, block_size=0)

    def test_block_size_defaults_to_config(self):
        engine = NovaDecodeEngine(SMALL)
        scheduler = ContinuousBatchScheduler(engine, paged=True)
        assert scheduler.block_size == SMALL.kv_block_size

    def test_admits_more_than_contiguous_at_same_bytes(self):
        """The tentpole claim, in miniature: mixed-length requests at a
        fixed byte budget — paged admission beats whole pages."""
        model = toy_model(seq_len=64)
        requests = mixed_decode_batch(
            model, 8, prompt_lens=(2, 3, 4), new_tokens=(2, 3), seed=0
        )
        engine = NovaDecodeEngine(SMALL)
        page_bytes = 2 * 8 * model.hidden * model.seq_len
        budget = 2 * page_bytes
        contiguous = ContinuousBatchScheduler(
            engine, max_active=8, pool_bytes=budget
        ).run(requests)
        paged = ContinuousBatchScheduler(
            engine, max_active=8, paged=True, block_size=4,
            pool_bytes=budget,
        ).run(requests)
        assert contiguous.peak_active == 2
        assert paged.peak_active >= 1.5 * contiguous.peak_active
        assert paged.peak_fragmentation_slots < \
            contiguous.peak_fragmentation_slots
        for ref, got in zip(contiguous.results, paged.results):
            assert np.array_equal(ref.generated, got.generated)

    def test_contiguous_budget_reclaims_retired_page_bytes(self):
        """Regression: a retired small page's bytes must return to the
        budget when they cannot serve the next request — otherwise a
        feasible larger request wedges the scheduler."""
        engine = NovaDecodeEngine(SMALL)
        small = decode_request(toy_model(seq_len=8), prompt_len=2,
                               max_new_tokens=1, seed=0)
        big = decode_request(toy_model(seq_len=64), prompt_len=3,
                             max_new_tokens=2, seed=1)
        page_bytes = 2 * 8 * big.hidden * 64
        scheduler = ContinuousBatchScheduler(
            engine, max_active=2, pool_bytes=page_bytes
        )
        batch = scheduler.run([small, big])  # must not wedge
        assert batch.n_requests == 2
        assert np.array_equal(
            batch.results[1].generated, engine.generate(big).generated
        )

    def test_contiguous_budget_defers_then_raises_when_infeasible(self):
        model = toy_model(seq_len=64)
        engine = NovaDecodeEngine(SMALL)
        request = decode_request(model, prompt_len=3, max_new_tokens=2)
        page_bytes = 2 * 8 * model.hidden * model.seq_len
        tight = ContinuousBatchScheduler(
            engine, max_active=4, pool_bytes=page_bytes - 1
        )
        with pytest.raises(BlockPoolExhausted, match="running alone"):
            tight.run([request])

    def test_session_serve_decode_paged(self):
        model = toy_model()
        requests = decode_batch(model, 3, prompt_len=3, max_new_tokens=2,
                                seed=0)
        session = NovaSession(SMALL)
        batch = session.serve_decode(requests, max_active=2, paged=True)
        solo = session.generate(requests[1])
        assert np.array_equal(batch.results[1].generated, solo.generated)
        assert batch.paging is not None
        assert batch.paging["n_blocks"] == (
            batch.paging["in_use"] + batch.paging["free"]
        )

    def test_cache_info_reports_paging(self):
        info = NovaSession.cache_info()
        paging = info["paging"]
        assert paging["n_blocks"] == paging["in_use"] + paging["free"]
        assert {"pools_created", "live_pools", "fragmentation_slots"} <= set(
            paging
        )


# ----------------------------------------------------------------------
# NovaConfig.kv_block_size.
# ----------------------------------------------------------------------


class TestKvBlockSizeConfig:
    def test_zero_negative_rejected(self):
        for bad in (0, -1, -16):
            with pytest.raises(ValueError, match="kv_block_size"):
                NovaConfig(kv_block_size=bad)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError, match="kv_block_size"):
            NovaConfig(kv_block_size=2.5)
        with pytest.raises(TypeError, match="kv_block_size"):
            NovaConfig(kv_block_size=True)
        with pytest.raises(TypeError, match="kv_block_size"):
            NovaConfig(kv_block_size="16")

    def test_presets_carry_defaults_and_override_works(self):
        for name, cfg in PRESETS.items():
            assert cfg.kv_block_size >= 1, name
        assert PRESETS["jetson-nx"].kv_block_size == 16
        cfg = NovaConfig().with_overrides(["kv_block_size=64"])
        assert cfg.kv_block_size == 64
        assert NovaConfig.from_dict(cfg.to_dict()) == cfg


# ----------------------------------------------------------------------
# Legacy contiguous pool: capacity >= reuse (regression).
# ----------------------------------------------------------------------


class TestLegacyPoolReuse:
    def test_bigger_recycled_page_serves_smaller_request(self):
        """Regression: the pool used to key on exact capacity, so a pool
        full of 2048-token pages could not serve a 512-token request."""
        engine = NovaDecodeEngine(SMALL)
        scheduler = ContinuousBatchScheduler(engine, max_active=1)
        big = decode_request(
            toy_model(seq_len=64), prompt_len=4, max_new_tokens=2, seed=0
        )
        small = decode_request(
            toy_model(seq_len=16), prompt_len=3, max_new_tokens=1, seed=1
        )
        first = scheduler.run([big])
        assert (first.pages_allocated, first.pages_recycled) == (1, 0)
        second = scheduler.run([small])
        assert (second.pages_allocated, second.pages_recycled) == (0, 1)
        # and the recycled page produces the right numerics
        assert np.array_equal(
            second.results[0].generated, engine.generate(small).generated
        )

    def test_best_fit_prefers_the_smallest_sufficient_page(self):
        engine = NovaDecodeEngine(SMALL)
        scheduler = ContinuousBatchScheduler(engine, max_active=2)
        reqs = [
            decode_request(toy_model(seq_len=64), prompt_len=3,
                           max_new_tokens=1, seed=0),
            decode_request(toy_model(seq_len=16), prompt_len=3,
                           max_new_tokens=1, seed=1),
        ]
        scheduler.run(reqs)  # pools a 64-page and a 16-page
        pages = scheduler._pool[(reqs[0].n_heads, reqs[0].head_dim)]
        assert sorted(p.capacity for p in pages) == [16, 64]
        small = decode_request(toy_model(seq_len=16), prompt_len=2,
                               max_new_tokens=1, seed=2)
        page = scheduler._acquire_page(small)
        assert page.capacity == 16  # best fit, not the 64-page

    def test_recycled_page_adopts_the_new_window(self):
        engine = NovaDecodeEngine(SMALL)
        request = decode_request(
            toy_model(), prompt_len=4, max_new_tokens=2, seed=0
        )
        windowed = decode_request(
            toy_model(), prompt_len=4, max_new_tokens=2, seed=0, window=3
        )
        page = KVCache(request.n_heads, request.head_dim, 64)
        state = engine.start(windowed, cache=page)
        assert state.cache is page
        assert page.window == 3
        gen = engine.generate(windowed, state=state)
        assert np.array_equal(
            gen.generated, engine.generate(windowed).generated
        )
