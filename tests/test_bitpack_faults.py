"""Tests for the bit-true wire image and link fault injection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.bitpack import (
    LINK_WIDTH_BITS,
    bit_field_of,
    decode_beat,
    encode_beat,
    flip_bit,
)
from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import LinkBeat, QuantizedPwl, pack_beats
from repro.core.config import NovaConfig
from repro.core.vector_unit import NovaVectorUnit
from repro.noc.faults import LinkFault, affected_addresses, apply_fault


def make_unit(n_routers=4, neurons=8, n_segments=16):
    spec = get_function("sigmoid")
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, n_segments))
    return NovaVectorUnit(table, NovaConfig(
        n_routers=n_routers, neurons_per_router=neurons,
        pe_frequency_ghz=0.5, hop_mm=1.0)), table


class TestWireImage:
    def test_encode_decode_round_trip(self):
        _, table = make_unit()
        for beat in pack_beats(table):
            assert decode_beat(encode_beat(beat)) == beat

    def test_width_is_257(self):
        _, table = make_unit()
        image = encode_beat(pack_beats(table)[1])
        assert image < (1 << LINK_WIDTH_BITS)
        assert LINK_WIDTH_BITS == 257

    def test_tag_is_lsb(self):
        _, table = make_unit()
        beats = pack_beats(table)
        assert encode_beat(beats[0]) & 1 == 0
        assert encode_beat(beats[1]) & 1 == 1

    def test_negative_codes_two_complement(self):
        beat = LinkBeat(tag=0, pairs=((-1, -32768),) + ((0, 0),) * 7)
        decoded = decode_beat(encode_beat(beat))
        assert decoded.pairs[0] == (-1, -32768)

    def test_wide_tag_rejected(self):
        beat = LinkBeat(tag=2, pairs=((0, 0),) * 8)
        with pytest.raises(ValueError, match="tag"):
            encode_beat(beat)

    def test_flip_bit_involution(self):
        image = 0b1011
        assert flip_bit(flip_bit(image, 2), 2) == image

    def test_flip_bit_bounds(self):
        with pytest.raises(ValueError):
            flip_bit(0, 257)
        with pytest.raises(ValueError):
            flip_bit(0, -1)

    def test_bit_field_layout(self):
        assert bit_field_of(0) == ("tag", 0)
        assert bit_field_of(1) == ("slope", 0)
        assert bit_field_of(16) == ("slope", 0)
        assert bit_field_of(17) == ("bias", 0)
        assert bit_field_of(33) == ("slope", 1)
        assert bit_field_of(256) == ("bias", 7)


class TestApplyFault:
    def test_payload_flip_changes_one_word(self):
        _, table = make_unit()
        beat = pack_beats(table)[0]
        fault = LinkFault(beat_index=0, bit=1)  # pair 0 slope, LSB
        corrupted = apply_fault(beat, fault)
        diffs = [
            i for i in range(8) if corrupted.pairs[i] != beat.pairs[i]
        ]
        assert diffs == [0]
        assert corrupted.tag == beat.tag

    def test_tag_flip_changes_only_tag(self):
        _, table = make_unit()
        beat = pack_beats(table)[0]
        corrupted = apply_fault(beat, LinkFault(beat_index=0, bit=0))
        assert corrupted.tag == 1 - beat.tag
        assert corrupted.pairs == beat.pairs


class TestAffectedAddresses:
    def test_payload_fault_hits_one_address(self):
        # pair 3 of beat 1 in a 16-entry/2-beat table = address 3*2+1 = 7
        fault = LinkFault(beat_index=1, bit=1 + 3 * 32)  # pair 3 slope
        assert affected_addresses(fault, 16, 2) == {7}

    def test_tag_fault_hits_whole_table(self):
        fault = LinkFault(beat_index=0, bit=0)
        assert affected_addresses(fault, 16, 2) == set(range(16))

    def test_unused_slot_fault_hits_nothing(self):
        # 5-entry table in 1 beat: pair 6 is a zero-filled slot
        fault = LinkFault(beat_index=0, bit=1 + 6 * 32)
        assert affected_addresses(fault, 5, 1) == set()


class TestFaultContainment:
    """The central robustness property: a payload-wire flip corrupts at
    most the lanes whose address selects the faulted (beat, pair)."""

    def test_payload_fault_containment(self):
        unit, table = make_unit(n_routers=4, neurons=16)
        x = np.linspace(-7.9, 7.9, 64).reshape(4, 16)
        addresses = table.segment_index(x)
        fault = LinkFault(beat_index=0, bit=5)  # pair 0 slope, beat 0
        result = unit.approximate_with_fault(x, fault)
        may_differ = affected_addresses(fault, 16, 2)
        victims = np.isin(addresses, list(may_differ))
        # every corrupted lane is a predicted victim
        assert np.all(~result.corrupted_lanes | victims)
        # lanes outside the victim set match golden exactly
        assert np.array_equal(
            result.outputs[~victims], result.golden[~victims]
        )

    def test_fault_only_downstream_of_segment(self):
        unit, table = make_unit(n_routers=4, neurons=16)
        x = np.linspace(-7.9, 7.9, 64).reshape(4, 16)
        fault = LinkFault(beat_index=0, bit=5, from_router=2)
        result = unit.approximate_with_fault(x, fault)
        # routers 0 and 1 observe the clean beat
        assert not np.any(result.corrupted_lanes[:2])

    def test_tag_fault_reported_via_mask(self):
        unit, table = make_unit(n_routers=2, neurons=16)
        x = np.linspace(-7.9, 7.9, 32).reshape(2, 16)
        addresses = table.segment_index(x)
        fault = LinkFault(beat_index=0, bit=0)  # flip beat 0's tag
        result = unit.approximate_with_fault(x, fault)
        even_lanes = addresses % 2 == 0
        # even-address lanes never see a tag-0 beat: mask must expose them
        assert not np.any(result.captured[even_lanes])

    def test_no_fault_path_unchanged(self):
        unit, _ = make_unit()
        x = np.random.default_rng(0).normal(size=(4, 8))
        clean = unit.approximate(x).outputs
        assert np.array_equal(clean, unit.golden_reference(x))

    def test_fault_validation(self):
        unit, _ = make_unit()
        x = np.zeros((4, 8))
        with pytest.raises(ValueError, match="beats"):
            unit.approximate_with_fault(x, LinkFault(beat_index=5, bit=0))
        with pytest.raises(ValueError):
            LinkFault(beat_index=-1, bit=0)
        with pytest.raises(ValueError):
            LinkFault(beat_index=0, bit=0, from_router=-1)


@settings(max_examples=40, deadline=None)
@given(bit=st.integers(min_value=0, max_value=256))
def test_single_bit_fault_never_escapes_prediction(bit):
    """For every one of the 257 wires: corrupted lanes are a subset of the
    statically predicted victim set."""
    spec = get_function("sigmoid")
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
    unit = NovaVectorUnit(table, NovaConfig(
        n_routers=2, neurons_per_router=16, pe_frequency_ghz=0.5,
        hop_mm=1.0))
    x = np.linspace(-7.9, 7.9, 32).reshape(2, 16)
    addresses = table.segment_index(x)
    fault = LinkFault(beat_index=0, bit=bit)
    result = unit.approximate_with_fault(x, fault)
    victims = np.isin(addresses, list(affected_addresses(fault, 16, 2)))
    assert np.all(~result.corrupted_lanes | victims)
