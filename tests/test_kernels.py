"""Kernel backends: registry, equivalence, and the serving surface.

The pluggable backends (:mod:`repro.core.kernels`) are an execution
strategy, never a numerics choice: every backend must produce
bit-identical outputs, addresses and event-counter totals to the
beat-level simulation, on every preset geometry, under every serving
mode.  Four test families pin that contract:

* whole-stream equivalence — ``run_stream`` through each installed
  backend vs ``simulate=True`` on every preset, exact in outputs,
  addresses and counters, plus a hypothesis property sweeping random
  stream shapes and out-of-domain values,
* scheduler-step equivalence — contiguous, paged, prefix-cached and
  speculative decode runs bit/cycle/counter-identical across backends,
* the registry — unknown names fail fast with the known list, missing
  optional dependencies degrade to numpy with a ``RuntimeWarning``,
  and the config/registry name sets never drift apart,
* the surface — ``NovaConfig`` validation, ``--override`` parsing, and
  the launch tallies in ``NovaSession.cache_info()["kernels"]``.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

import repro.core.kernels as kernels
from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.core.config import KERNEL_BACKENDS, PRESETS, NovaConfig
from repro.core.decode import (
    ContinuousBatchScheduler,
    DecodeRequest,
    NovaDecodeEngine,
)
from repro.core.kernels import (
    BACKENDS,
    available_backends,
    kernel_cache_info,
    resolve_backend,
)
from repro.core.session import NovaSession
from repro.core.speculative import ScheduledDraft
from repro.core.vector_unit import NovaVectorUnit

INSTALLED = available_backends()

#: Small geometry for the data-heavy tests (tables compile once).
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)

_UNIT_CACHE: dict = {}


def make_unit(cfg: NovaConfig, n_segments: int = 16) -> NovaVectorUnit:
    key = (cfg.n_routers, cfg.neurons_per_router, cfg.pe_frequency_ghz,
           cfg.hop_mm, cfg.kernel_backend, n_segments)
    if key not in _UNIT_CACHE:
        spec = get_function("gelu")
        table = QuantizedPwl(
            PiecewiseLinear.fit(spec.fn, spec.domain, n_segments)
        )
        _UNIT_CACHE[key] = NovaVectorUnit(table, cfg)
    return _UNIT_CACHE[key]


def toy_requests(
    n: int = 2,
    prompt_len: int = 6,
    new_tokens: int = 4,
    hidden: int = 4,
    n_heads: int = 2,
    seed: int = 0,
) -> list[DecodeRequest]:
    """Small causal decode requests sharing one set of weights."""
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden)
    weights = {
        name: rng.normal(0.0, scale, size=(hidden, hidden))
        for name in ("wq", "wk", "wv", "wo")
    }
    return [
        DecodeRequest(
            x=rng.normal(0.0, 1.0, size=(prompt_len, hidden)),
            n_heads=n_heads,
            max_new_tokens=new_tokens,
            max_seq_len=prompt_len + new_tokens + 2,
            **weights,
        )
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# Whole-stream equivalence: every backend vs the beat-level simulation.
# ----------------------------------------------------------------------


class TestStreamEquivalence:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    @pytest.mark.parametrize("backend", INSTALLED)
    def test_run_stream_matches_simulation(self, backend, preset_name):
        cfg = PRESETS[preset_name].replace(kernel_backend=backend)
        unit = make_unit(cfg)
        xs = np.random.default_rng(7).normal(
            0.0, 3.0, size=(4, cfg.n_routers, cfg.neurons_per_router)
        )
        vec = unit.run_stream(xs)
        sim = unit.run_stream(xs, simulate=True)
        assert np.array_equal(vec.outputs, sim.outputs)
        assert vec.addresses is not None and sim.addresses is not None
        assert np.array_equal(vec.addresses, sim.addresses)
        assert vec.counters.as_dict() == sim.counters.as_dict()
        assert vec.total_pe_cycles == sim.total_pe_cycles

    @pytest.mark.parametrize("backend", INSTALLED)
    def test_out_of_domain_values_clamp_identically(self, backend):
        unit = make_unit(SMALL.replace(kernel_backend=backend))
        xs = np.array(
            [[[1e9, -1e9, 0.0, 1e-300, -1e-300, 2.5, -2.5, 0.1]] * 2]
        )
        vec = unit.run_stream(xs)
        sim = unit.run_stream(xs, simulate=True)
        assert np.array_equal(vec.outputs, sim.outputs)
        assert np.array_equal(vec.addresses, sim.addresses)

    @pytest.mark.parametrize("backend", INSTALLED)
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_property_vectorised_equals_simulated(self, backend, data):
        n_batches = data.draw(st.integers(1, 4), label="n_batches")
        xs = data.draw(
            hnp.arrays(
                np.float64,
                (n_batches, 2, 8),
                elements=st.floats(
                    -100.0, 100.0, allow_nan=False, allow_infinity=False
                ),
            ),
            label="xs",
        )
        unit = make_unit(SMALL.replace(kernel_backend=backend))
        vec = unit.run_stream(xs)
        sim = unit.run_stream(xs, simulate=True)
        assert np.array_equal(vec.outputs, sim.outputs)
        assert np.array_equal(vec.addresses, sim.addresses)
        assert vec.counters.as_dict() == sim.counters.as_dict()

    def test_simulate_path_populates_addresses(self):
        # Satellite regression: the cycle-simulated path used to leave
        # StreamResult.addresses as None, forcing consumers to branch.
        unit = make_unit(SMALL)
        xs = np.random.default_rng(11).normal(size=(3, 2, 8))
        sim = unit.run_stream(xs, simulate=True)
        assert sim.addresses is not None
        assert np.array_equal(sim.addresses, unit.table.segment_index(xs))


# ----------------------------------------------------------------------
# Scheduler-step equivalence across backends, under every serving mode.
# ----------------------------------------------------------------------


def _run_mode(cfg: NovaConfig, mode: str):
    engine = NovaDecodeEngine(cfg)
    requests = toy_requests()
    if mode == "contiguous":
        sched = ContinuousBatchScheduler(engine)
    elif mode == "paged":
        sched = ContinuousBatchScheduler(engine, paged=True, block_size=4)
    elif mode == "prefix-cached":
        sched = ContinuousBatchScheduler(
            engine, paged=True, block_size=4, prefix_caching=True
        )
    else:
        raise AssertionError(mode)
    return sched.run(requests)


@pytest.mark.parametrize("mode", ["contiguous", "paged", "prefix-cached"])
@pytest.mark.parametrize(
    "backend", [name for name in INSTALLED if name != "numpy"]
)
def test_scheduler_steps_bit_exact_across_backends(backend, mode):
    want = _run_mode(SMALL.replace(kernel_backend="numpy"), mode)
    got = _run_mode(SMALL.replace(kernel_backend=backend), mode)
    for ref, out in zip(want.results, got.results):
        assert np.array_equal(out.generated, ref.generated)
        assert np.array_equal(out.prefill.outputs, ref.prefill.outputs)
        assert out.vector_cycles == ref.vector_cycles
        assert out.counters.as_dict() == ref.counters.as_dict()
    assert got.packed_vector_cycles == want.packed_vector_cycles


@pytest.mark.parametrize(
    "backend", [name for name in INSTALLED if name != "numpy"]
)
def test_speculative_decode_bit_exact_across_backends(backend):
    request = toy_requests(n=1)[0]

    def run(name):
        cfg = SMALL.replace(kernel_backend=name)
        session = NovaSession(cfg)
        return session.generate(
            request,
            speculative=True,
            draft=ScheduledDraft(cfg, (True, False, True)),
        )

    want, got = run("numpy"), run(backend)
    assert np.array_equal(got.generated, want.generated)
    assert got.vector_cycles == want.vector_cycles
    assert got.counters.as_dict() == want.counters.as_dict()


# ----------------------------------------------------------------------
# The registry: names, fallback, and the config pin.
# ----------------------------------------------------------------------


class TestRegistry:
    def test_registry_and_config_names_never_drift(self):
        assert set(BACKENDS) == set(KERNEL_BACKENDS)

    def test_unknown_backend_lists_the_registry(self):
        with pytest.raises(ValueError, match="jax.*loopback.*numba.*numpy"):
            resolve_backend("bogus")

    def test_numpy_and_loopback_always_available(self):
        assert {"numpy", "loopback"} <= set(INSTALLED)

    def test_available_backends_is_a_registry_subset(self):
        assert set(INSTALLED) <= set(BACKENDS)

    def test_resolved_instances_are_memoised(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    @pytest.mark.parametrize("missing", ["numba", "jax"])
    def test_missing_optional_dep_degrades_to_numpy(self, missing):
        if missing in INSTALLED:
            pytest.skip(f"{missing} is installed in this process")
        kernels._INSTANCES.pop(missing, None)
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = resolve_backend(missing)
        assert backend.name == "numpy"
        # the fallback is memoised too: the warning fires once
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend(missing).name == "numpy"
        kernels._INSTANCES.pop(missing, None)

    def test_fallback_instances_do_not_count_as_available(self):
        for name in BACKENDS:
            cached = kernels._INSTANCES.get(name)
            if cached is not None and cached.name != name:
                assert name not in available_backends()


# ----------------------------------------------------------------------
# The surface: config validation, overrides, session cache_info.
# ----------------------------------------------------------------------


class TestSurface:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            NovaConfig(n_routers=2, neurons_per_router=8,
                       kernel_backend="bogus")

    def test_config_rejects_non_string_backend(self):
        with pytest.raises(TypeError):
            NovaConfig(n_routers=2, neurons_per_router=8, kernel_backend=3)

    def test_override_parses_the_knob(self):
        cfg = SMALL.with_overrides(["kernel_backend=loopback"])
        assert cfg.kernel_backend == "loopback"
        with pytest.raises(ValueError):
            SMALL.with_overrides(["kernel_backend=bogus"])

    def test_unit_resolves_the_configured_backend(self):
        unit = make_unit(SMALL.replace(kernel_backend="loopback"))
        assert unit.backend.name == "loopback"

    def test_unavailable_backend_resolves_to_numpy_on_the_unit(self):
        if "jax" in INSTALLED:
            pytest.skip("jax is installed in this process")
        kernels._INSTANCES.pop("jax", None)
        with pytest.warns(RuntimeWarning, match="falling back"):
            unit = make_unit(SMALL.replace(kernel_backend="jax"))
        assert unit.backend.name == "numpy"
        kernels._INSTANCES.pop("jax", None)

    def test_session_cache_info_surfaces_kernel_stats(self):
        session = NovaSession(SMALL)
        info = session.cache_info()["kernels"]
        assert info["registered"] == sorted(BACKENDS)
        assert set(info["available"]) == set(INSTALLED)
        before = info["backends"].get("numpy", {}).get("launches", 0)
        session.generate(toy_requests(n=1)[0])
        after = session.cache_info()["kernels"]["backends"]["numpy"]
        assert after["launches"] > before
        assert after["elements"] > 0

    def test_kernel_cache_info_stats_are_copies(self):
        resolve_backend("numpy")
        info = kernel_cache_info()
        for stats in info["backends"].values():
            stats["launches"] = -1
        fresh = kernel_cache_info()
        assert all(
            stats["launches"] >= 0 for stats in fresh["backends"].values()
        )
