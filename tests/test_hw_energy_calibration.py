"""Tests for the event-energy model and the Table III calibration."""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.core.config import NovaConfig
from repro.core.vector_unit import NovaVectorUnit
from repro.eval.paper_data import TABLE2_CONFIGS, TABLE3_OVERHEAD
from repro.hw.calibration import CALIBRATION_FACTORS, calibrated_cost
from repro.hw.costs import unit_cost
from repro.hw.energy import EnergyModel
from repro.noc.stats import EventCounters


class TestEnergyModel:
    def test_all_simulator_events_priced(self):
        model = EnergyModel(n_segments=16, hop_mm=1.0, sram_ports=1)
        for event in (
            "comparator_eval", "mac_op", "tag_match", "pair_capture",
            "wire_hop", "register_write", "beat_launch", "lut_read",
            "postscale_op",
        ):
            assert model.event_energy_pj(event) >= 0.0

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            EnergyModel().event_energy_pj("mystery_event")

    def test_total_energy_linear_in_counts(self):
        model = EnergyModel()
        one = EventCounters({"mac_op": 1})
        ten = EventCounters({"mac_op": 10})
        assert model.energy_pj(ten) == pytest.approx(10 * model.energy_pj(one))

    def test_multiport_reads_cost_more(self):
        single = EnergyModel(sram_ports=1).event_energy_pj("lut_read")
        multi = EnergyModel(sram_ports=128).event_energy_pj("lut_read")
        assert multi > single

    def test_average_power(self):
        model = EnergyModel()
        counters = EventCounters({"mac_op": 1000})
        p = model.average_power_mw(counters, elapsed_cycles=1000, frequency_ghz=1.0)
        # 1000 ops over 1000 cycles at 1 GHz: power = E(mac)/cycle * f
        assert p == pytest.approx(model.event_energy_pj("mac_op"))

    def test_average_power_validation(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.average_power_mw(EventCounters(), 0, 1.0)
        with pytest.raises(ValueError):
            model.average_power_mw(EventCounters(), 10, 0.0)


class TestSimulationVsClosedForm:
    """Pricing simulated counters must agree with the closed-form cost."""

    def test_nova_simulated_energy_matches_cost_model(self):
        spec = get_function("gelu")
        table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
        n_routers, neurons = 4, 16
        unit = NovaVectorUnit(
            table,
            NovaConfig(n_routers=n_routers, neurons_per_router=neurons,
                       pe_frequency_ghz=1.0, hop_mm=1.0),
        )
        n_batches = 10
        xs = np.random.default_rng(0).normal(0, 3, size=(n_batches, n_routers, neurons))
        stream = unit.run_stream(xs)
        model = EnergyModel(n_segments=16, hop_mm=1.0)
        simulated_pj = model.energy_pj(stream.counters)

        cost = unit_cost("nova", neurons, 16, 1.0, hop_mm=1.0)
        closed_form_pj = cost.active_energy_pj * n_routers * n_batches
        # tag-match counts depend on address mix (pending lanes per beat), so
        # allow a modest envelope; everything else is exact.
        assert simulated_pj == pytest.approx(closed_form_pj, rel=0.25)

    def test_lut_simulated_energy_matches_cost_model(self):
        from repro.luts.per_neuron import PerNeuronLutUnit

        spec = get_function("gelu")
        table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
        unit = PerNeuronLutUnit(table, n_cores=2, neurons_per_core=8)
        before = unit.lifetime_counters()
        for _ in range(5):
            unit.approximate(np.random.default_rng(1).normal(0, 2, size=(2, 8)))
        counters = unit.lifetime_counters().diff(before)
        model = EnergyModel(n_segments=16, sram_ports=1)
        simulated_pj = model.energy_pj(counters)
        cost = unit_cost("per_neuron_lut", 8, 16, 1.0)
        closed_form_pj = cost.active_energy_pj * 2 * 5
        assert simulated_pj == pytest.approx(closed_form_pj, rel=0.05)


class TestCalibration:
    def test_frozen_factors_match_fit_provenance(self):
        """The hardcoded table must equal what the fit re-derives; a tech
        constant changed without re-running benchmarks/fit_calibration.py
        fails here."""
        from repro.hw.calibration import fit_calibration_factors

        refit = fit_calibration_factors()
        for key, frozen in CALIBRATION_FACTORS.items():
            assert refit[key] == pytest.approx(frozen, rel=0.01), key

    def test_factors_present_for_all_units(self):
        for unit in ("nova", "per_neuron_lut", "per_core_lut", "nvdla_sdp"):
            assert (unit, "area") in CALIBRATION_FACTORS
            assert (unit, "energy") in CALIBRATION_FACTORS

    def test_factors_are_modest(self):
        # the raw physical model is within ~2x of the paper everywhere;
        # larger factors would mean the model shape is wrong
        for factor in CALIBRATION_FACTORS.values():
            assert 0.3 < factor < 3.0

    def test_calibrated_cost_applies_factors(self):
        raw = unit_cost("nova", 128, 16, 1.4, hop_mm=0.5)
        cal = calibrated_cost("nova", 128, 16, 1.4, hop_mm=0.5)
        assert cal.area_um2 == pytest.approx(
            raw.area_um2 * CALIBRATION_FACTORS[("nova", "area")]
        )

    def test_calibrated_table3_within_two_x(self):
        """Every calibrated Table III entry within 2x of the paper, except
        the REACT per-core power row (the paper's own inconsistency)."""
        for (acc, unit), (p_area, p_power) in TABLE3_OVERHEAD.items():
            cfg = TABLE2_CONFIGS[acc]
            cost = calibrated_cost(
                unit, cfg.neurons_per_router, 16, cfg.frequency_ghz,
                hop_mm=cfg.hop_mm,
            )
            n = cfg.n_routers
            area = cost.area_mm2 * n
            util = cfg.utilization if unit == "nova" else 1.0
            power = cost.power_mw(util) * n
            assert 0.5 < area / p_area < 2.0, (acc, unit, "area")
            if (acc, unit) == ("REACT", "per_core_lut"):
                continue
            assert 0.4 < power / p_power < 2.5, (acc, unit, "power")

    def test_headline_orderings_hold_everywhere(self):
        """NOVA is the smallest and least power-hungry on every host."""
        for acc, cfg in TABLE2_CONFIGS.items():
            units = (
                ["nvdla_sdp", "nova"] if acc == "Jetson Xavier NX"
                else ["per_neuron_lut", "per_core_lut", "nova"]
            )
            costs = {
                u: calibrated_cost(
                    u, cfg.neurons_per_router, 16, cfg.frequency_ghz,
                    hop_mm=cfg.hop_mm,
                )
                for u in units
            }
            nova = costs.pop("nova")
            for u, cost in costs.items():
                assert nova.area_um2 < cost.area_um2, (acc, u)
                assert nova.power_mw(cfg.utilization) < cost.power_mw(1.0), (acc, u)
