"""Unit tests for the LUT-based baseline vector units."""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.luts.lut_unit import PIPELINE_LATENCY_CYCLES
from repro.luts.per_core import PerCoreLutUnit
from repro.luts.per_neuron import PerNeuronLutUnit
from repro.luts.sdp import NVDLA_NEURONS_PER_CORE, NvdlaSdp
from repro.luts.sram_bank import SramBank


def make_table(n_segments=16, name="gelu"):
    spec = get_function(name)
    return QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, n_segments))


class TestSramBank:
    def test_capacity_64_bytes_for_16_entries(self):
        # §V-B: "The size of each LUT bank is kept at 64 bytes each since
        # 16 pairs of the slope and bias values are stored in each LUT"
        bank = SramBank(table=make_table(16))
        assert bank.capacity_bytes == 64
        assert bank.n_entries == 16

    def test_read_returns_table_words(self):
        table = make_table(16)
        bank = SramBank(table=table, n_ports=4)
        addresses = np.array([0, 7, 15])
        slopes, biases = bank.read(addresses)
        words = table.coefficient_words()
        assert np.array_equal(slopes, words[addresses, 0])
        assert np.array_equal(biases, words[addresses, 1])

    def test_port_limit_enforced(self):
        bank = SramBank(table=make_table(), n_ports=2)
        with pytest.raises(ValueError, match="ports"):
            bank.read(np.array([0, 1, 2]))

    def test_address_range(self):
        bank = SramBank(table=make_table(16), n_ports=1)
        with pytest.raises(ValueError):
            bank.read(np.array([16]))

    def test_read_counting(self):
        bank = SramBank(table=make_table(), n_ports=8)
        bank.read(np.array([0, 1, 2]))
        assert bank.counters.get("lut_read") == 3


class TestPerNeuronLut:
    def test_bit_exact_vs_golden(self):
        table = make_table()
        unit = PerNeuronLutUnit(table, n_cores=4, neurons_per_core=8)
        x = np.random.default_rng(0).normal(0, 3, size=(4, 8))
        assert np.array_equal(unit.approximate(x).outputs, table.evaluate(x))

    def test_replication_redundancy(self):
        unit = PerNeuronLutUnit(make_table(), n_cores=4, neurons_per_core=8)
        assert unit.replicated_tables == 32
        assert unit.total_lut_bytes == 32 * 64

    def test_two_cycle_latency(self):
        unit = PerNeuronLutUnit(make_table(), n_cores=2, neurons_per_core=4)
        result = unit.approximate(np.zeros((2, 4)))
        assert result.latency_pe_cycles == PIPELINE_LATENCY_CYCLES

    def test_one_read_per_neuron(self):
        unit = PerNeuronLutUnit(make_table(), n_cores=2, neurons_per_core=4)
        result = unit.approximate(np.zeros((2, 4)))
        assert result.counters.get("lut_read") == 8

    def test_banks_single_ported(self):
        unit = PerNeuronLutUnit(make_table(), n_cores=2, neurons_per_core=4)
        assert all(b.n_ports == 1 for row in unit.banks for b in row)


class TestPerCoreLut:
    def test_bit_exact_vs_golden(self):
        table = make_table()
        unit = PerCoreLutUnit(table, n_cores=4, neurons_per_core=8)
        x = np.random.default_rng(1).normal(0, 3, size=(4, 8))
        assert np.array_equal(unit.approximate(x).outputs, table.evaluate(x))

    def test_single_bank_per_core(self):
        unit = PerCoreLutUnit(make_table(), n_cores=4, neurons_per_core=8)
        assert all(len(row) == 1 for row in unit.banks)
        assert unit.total_lut_bytes == 4 * 64  # no replication

    def test_ports_equal_neurons(self):
        unit = PerCoreLutUnit(make_table(), n_cores=2, neurons_per_core=16)
        assert unit.ports_per_bank == 16
        assert unit.banks[0][0].n_ports == 16

    def test_input_shape_validation(self):
        unit = PerCoreLutUnit(make_table(), n_cores=2, neurons_per_core=4)
        with pytest.raises(ValueError):
            unit.approximate(np.zeros((2, 5)))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PerCoreLutUnit(make_table(), n_cores=0, neurons_per_core=4)


class TestNvdlaSdp:
    def test_fixed_16_lanes(self):
        sdp = NvdlaSdp(make_table(), n_cores=2)
        assert sdp.neurons_per_core == NVDLA_NEURONS_PER_CORE == 16

    def test_bit_exact_vs_golden(self):
        table = make_table()
        sdp = NvdlaSdp(table)
        x = np.random.default_rng(2).normal(0, 3, size=(2, 16))
        assert np.array_equal(sdp.approximate(x).outputs, table.evaluate(x))

    def test_postscale_stage(self):
        table = make_table()
        sdp = NvdlaSdp(table)
        x = np.random.default_rng(3).normal(0, 2, size=(2, 16))
        result = sdp.process_with_postscale(x, scale=2.0, offset=0.5)
        base = table.evaluate(x)
        expected = table.output_format.quantize(base * 2.0 + 0.5)
        assert np.array_equal(result.outputs, expected)
        assert result.latency_pe_cycles == PIPELINE_LATENCY_CYCLES + 1


class TestCrossUnitEquivalence:
    """NOVA and both LUT baselines implement the same function, bit-exact."""

    def test_all_three_agree(self):
        from repro.core.config import NovaConfig
        from repro.core.vector_unit import NovaVectorUnit

        table = make_table()
        x = np.random.default_rng(4).normal(0, 3, size=(4, 8))
        nova = NovaVectorUnit(table, NovaConfig(
            n_routers=4, neurons_per_router=8, pe_frequency_ghz=1.0,
            hop_mm=1.0))
        pn = PerNeuronLutUnit(table, 4, 8)
        pc = PerCoreLutUnit(table, 4, 8)
        out_nova = nova.approximate(x).outputs
        assert np.array_equal(out_nova, pn.approximate(x).outputs)
        assert np.array_equal(out_nova, pc.approximate(x).outputs)
