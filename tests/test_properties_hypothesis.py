"""Property-based tests (hypothesis) for the datapath and the decode path.

Six families of invariants, each over randomly drawn inputs rather
than hand-picked cases:

* fixed-point encode/decode round trips (``utils/fixed_point.py``),
* softmax row-stochasticity and permutation equivariance — for the
  exact reference *and* the hardware softmax through the overlay,
* :class:`NovaConfig` ``with_overrides`` / JSON round-trip identity,
* decode-vs-prefill bit-exact equivalence over random shapes, seeds
  and sliding windows,
* paged-vs-contiguous :class:`KVCache` equivalence over random
  append/evict/truncate/reset sequences, block sizes and window
  lengths (including block sizes that do not divide the window),
* speculative-vs-plain generate equivalence under **arbitrary
  accept/reject/rollback programs** (a :class:`ScheduledDraft` driven
  by a random boolean program): bit-identical output tokens, identical
  final KV state, identical closed-form sequential-equivalent cycles,
  and a block pool that leaks nothing after rollback.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.softmax import exact_softmax
from repro.core.config import NovaConfig
from repro.core.decode import DecodeRequest, KVCache, NovaDecodeEngine
from repro.core.paging import BlockPool, PagedKVCache, blocks_needed
from repro.core.session import NovaSession
from repro.core.speculative import ScheduledDraft, SpeculativeDecodeEngine
from repro.utils.fixed_point import FixedPointFormat

#: Small geometry shared by the hardware-backed properties (module
#: scope: tables/schedules compile once, each example only runs data).
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)
SESSION = NovaSession(SMALL)
DECODER = NovaDecodeEngine(SMALL)


formats = st.builds(
    FixedPointFormat,
    integer_bits=st.integers(min_value=0, max_value=7),
    fraction_bits=st.integers(min_value=0, max_value=12),
)


# ----------------------------------------------------------------------
# Fixed-point round trips.
# ----------------------------------------------------------------------


class TestFixedPointProperties:
    @given(fmt=formats, data=st.data())
    @settings(max_examples=60)
    def test_raw_code_round_trip_is_identity(self, fmt, data):
        """from_raw then to_raw reproduces every representable code."""
        raw = data.draw(
            st.integers(min_value=fmt.min_raw, max_value=fmt.max_raw)
        )
        assert fmt.to_raw(fmt.from_raw(raw)) == raw

    @given(fmt=formats, value=st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=60)
    def test_quantize_is_idempotent(self, fmt, value):
        """A quantised value is exactly representable: re-quantising it
        (and round-tripping it through raw codes) changes nothing."""
        q = fmt.quantize(value)
        assert np.array_equal(fmt.quantize(q), q)
        assert np.array_equal(fmt.from_raw(fmt.to_raw(q)), q)

    @given(fmt=formats, data=st.data())
    @settings(max_examples=60)
    def test_in_range_error_is_at_most_half_an_lsb(self, fmt, data):
        value = data.draw(
            st.floats(
                min_value=fmt.min_value, max_value=fmt.max_value,
                allow_nan=False,
            )
        )
        q = float(fmt.quantize(value))
        assert abs(q - value) <= fmt.scale / 2 + 1e-15
        assert fmt.min_value <= q <= fmt.max_value

    @given(fmt=formats, data=st.data())
    @settings(max_examples=40)
    def test_saturation_clamps_to_the_range_ends(self, fmt, data):
        value = data.draw(
            st.one_of(
                st.floats(fmt.max_value + fmt.scale, 1e9, allow_nan=False),
                st.floats(-1e9, fmt.min_value - fmt.scale, allow_nan=False),
            )
        )
        q = float(fmt.quantize(value))
        assert q in (fmt.min_value, fmt.max_value)
        assert bool(fmt.saturates(value))


# ----------------------------------------------------------------------
# Softmax: row-stochastic, permutation-equivariant.
# ----------------------------------------------------------------------


scores_arrays = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.lists(
        st.floats(min_value=-12.0, max_value=8.0, allow_nan=False),
        min_size=2 * n, max_size=2 * n,
    ).map(lambda vals: np.asarray(vals).reshape(2, n))
)


class TestSoftmaxProperties:
    @given(scores=scores_arrays)
    @settings(max_examples=40, deadline=None)
    def test_rows_sum_to_one(self, scores):
        exact = exact_softmax(scores, axis=-1)
        assert np.allclose(exact.sum(axis=-1), 1.0, atol=1e-12)
        hardware, _ = SESSION.softmax(scores)
        assert np.allclose(hardware.sum(axis=-1), 1.0, atol=1e-12)
        assert np.all(hardware >= 0.0)

    @given(scores=scores_arrays, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_permutation_equivariance(self, scores, seed):
        """softmax(x[perm]) == softmax(x)[perm] along the softmax axis
        (up to summation-order float noise in the row normaliser)."""
        perm = np.random.default_rng(seed).permutation(scores.shape[-1])
        exact = exact_softmax(scores, axis=-1)
        assert np.allclose(
            exact_softmax(scores[:, perm], axis=-1), exact[:, perm],
            rtol=1e-9, atol=1e-12,
        )
        hardware, _ = SESSION.softmax(scores)
        permuted, _ = SESSION.softmax(scores[:, perm])
        assert np.allclose(
            permuted, hardware[:, perm], rtol=1e-9, atol=1e-12
        )


# ----------------------------------------------------------------------
# NovaConfig round trips.
# ----------------------------------------------------------------------


configs = st.builds(
    NovaConfig,
    n_routers=st.integers(min_value=1, max_value=16),
    neurons_per_router=st.integers(min_value=1, max_value=64),
    pe_frequency_ghz=st.floats(
        min_value=0.01, max_value=4.0, allow_nan=False, allow_subnormal=False
    ),
    hop_mm=st.floats(
        min_value=0.05, max_value=4.0, allow_nan=False, allow_subnormal=False
    ),
    n_segments=st.sampled_from([2, 4, 8, 16, 32]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    host=st.sampled_from([None, "Jetson Xavier NX", "REACT", "TPU v4-like"]),
)


class TestNovaConfigProperties:
    @given(cfg=configs)
    @settings(max_examples=60)
    def test_json_round_trip_is_identity(self, cfg):
        assert NovaConfig.from_json(cfg.to_json()) == cfg
        assert NovaConfig.from_dict(cfg.to_dict()) == cfg

    @given(base=configs, target=configs)
    @settings(max_examples=60)
    def test_with_overrides_reaches_any_config(self, base, target):
        """Overriding every field as the CLI would (`field=value`
        strings) turns any config into any other config exactly."""
        overrides = [
            f"{name}={'none' if value is None else value}"
            for name, value in target.to_dict().items()
        ]
        assert base.with_overrides(overrides) == target

    @given(cfg=configs)
    @settings(max_examples=30)
    def test_empty_overrides_are_identity(self, cfg):
        assert cfg.with_overrides([]) == cfg
        assert cfg.with_overrides({}) == cfg


# ----------------------------------------------------------------------
# Decode-vs-prefill equivalence over random shapes.
# ----------------------------------------------------------------------


@st.composite
def random_decode_requests(draw):
    n_heads = draw(st.integers(min_value=1, max_value=3))
    head_dim = draw(st.integers(min_value=1, max_value=4))
    prompt_len = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    window = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=prompt_len))
    )
    hidden = n_heads * head_dim
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden)
    return DecodeRequest(
        x=rng.normal(0.0, 1.0, size=(prompt_len, hidden)),
        wq=rng.normal(0.0, scale, size=(hidden, hidden)),
        wk=rng.normal(0.0, scale, size=(hidden, hidden)),
        wv=rng.normal(0.0, scale, size=(hidden, hidden)),
        wo=rng.normal(0.0, scale, size=(hidden, hidden)),
        n_heads=n_heads,
        window=window,
    )


# ----------------------------------------------------------------------
# Paged vs contiguous KV cache over random operation sequences.
# ----------------------------------------------------------------------


@st.composite
def cache_scenarios(draw):
    """A cache geometry plus a random append/evict/truncate/reset
    program (truncate is the speculative rollback path)."""
    n_heads = draw(st.integers(min_value=1, max_value=3))
    head_dim = draw(st.integers(min_value=1, max_value=4))
    capacity = draw(st.integers(min_value=1, max_value=12))
    window = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=capacity))
    )
    # block sizes deliberately include values that do not divide the
    # window (or the capacity) so partial tail/head blocks are exercised
    block_size = draw(st.integers(min_value=1, max_value=7))
    ops = draw(
        st.lists(
            st.one_of(
                st.just(("append",)),
                st.tuples(st.just("evict"), st.integers(0, 4)),
                st.tuples(st.just("truncate"), st.integers(0, 4)),
                st.just(("reset",)),
            ),
            min_size=1, max_size=30,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return n_heads, head_dim, capacity, window, block_size, ops, seed


class TestPagedCacheEquivalenceProperties:
    @given(scenario=cache_scenarios())
    @settings(max_examples=80, deadline=None)
    def test_paged_cache_mirrors_contiguous_cache(self, scenario):
        """Any program of appends, evictions and resets leaves the paged
        and contiguous caches with identical observable state, and the
        paged cache never holds more than its worst-case block count."""
        n_heads, head_dim, capacity, window, block_size, ops, seed = scenario
        rng = np.random.default_rng(seed)
        ref = KVCache(n_heads, head_dim, capacity, window=window)
        # Size the pool for the true worst case: a windowless cache
        # tops out at capacity tokens, but a windowed one accepts
        # unbounded appends and can straddle one extra block while the
        # head offset walks through its first block.
        n_blocks = (
            blocks_needed(capacity, block_size)
            if window is None
            else blocks_needed(window, block_size) + 1
        )
        pool = BlockPool(n_heads, head_dim, block_size, n_blocks=n_blocks)
        paged = PagedKVCache(pool, capacity, window=window)
        from repro.core.decode import KVCacheOverflow

        for op in ops:
            if op[0] == "append":
                k = rng.normal(size=(n_heads, head_dim))
                v = rng.normal(size=(n_heads, head_dim))
                try:
                    ref.append(k, v)
                    ref_overflow = False
                except KVCacheOverflow:
                    ref_overflow = True
                try:
                    paged.append(k, v)
                    paged_overflow = False
                except KVCacheOverflow:
                    paged_overflow = True
                assert ref_overflow == paged_overflow
            elif op[0] == "evict":
                n = min(op[1], ref.length)
                ref.evict(n)
                paged.evict(n)
            elif op[0] == "truncate":
                n = min(op[1], ref.length)
                ref.truncate(n)
                paged.truncate(n)
            else:
                ref.reset()
                paged.reset()
            assert ref.length == paged.length
            assert ref.start_position == paged.start_position
            assert ref.evictions == paged.evictions
            assert np.array_equal(ref.keys, paged.keys)
            assert np.array_equal(ref.values, paged.values)
            if ref.length:
                assert np.array_equal(
                    ref.values_snapshot(ref.length),
                    paged.values_snapshot(paged.length),
                )
            assert paged.blocks_in_use <= pool.n_blocks
            assert pool.in_use == paged.blocks_in_use
            assert (
                pool.blocks_allocated - pool.blocks_freed == pool.in_use
            )


# ----------------------------------------------------------------------
# Speculative vs plain generate under arbitrary accept/reject programs.
# ----------------------------------------------------------------------


@st.composite
def speculative_scenarios(draw):
    """A decode request, a draft depth and an accept/reject program."""
    n_heads = draw(st.integers(min_value=1, max_value=3))
    head_dim = draw(st.integers(min_value=1, max_value=4))
    prompt_len = draw(st.integers(min_value=1, max_value=5))
    new_tokens = draw(st.integers(min_value=0, max_value=6))
    window = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=prompt_len))
    )
    spec_k = draw(st.integers(min_value=1, max_value=4))
    program = draw(
        st.lists(st.booleans(), min_size=1, max_size=16)
    )
    seed = draw(st.integers(min_value=0, max_value=2**20))
    hidden = n_heads * head_dim
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden)
    request = DecodeRequest(
        x=rng.normal(0.0, 1.0, size=(prompt_len, hidden)),
        wq=rng.normal(0.0, scale, size=(hidden, hidden)),
        wk=rng.normal(0.0, scale, size=(hidden, hidden)),
        wv=rng.normal(0.0, scale, size=(hidden, hidden)),
        wo=rng.normal(0.0, scale, size=(hidden, hidden)),
        n_heads=n_heads,
        max_new_tokens=new_tokens,
        window=window,
    )
    return request, spec_k, program


class TestSpeculativeEquivalenceProperties:
    @given(scenario=speculative_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_speculative_equals_plain_under_any_program(self, scenario):
        """Any accept/reject/rollback program yields bit-identical
        generated tokens, an identical final KV state, the plain run's
        exact closed-form cycle bill, and a drained block pool."""
        from repro.core.paging import worst_case_blocks

        request, spec_k, program = scenario
        plain_state = DECODER.start(request)
        plain = DECODER.generate(request, state=plain_state)

        speculator = SpeculativeDecodeEngine(DECODER, spec_k=spec_k)
        pool = BlockPool(
            request.n_heads, request.head_dim, 3,
            n_blocks=worst_case_blocks(
                request.total_tokens + spec_k, request.window, 3
            ),
        )
        spec_state = speculator.start(request, pool=pool)
        spec = speculator.generate(
            request, state=spec_state, draft=ScheduledDraft(SMALL, program)
        )

        assert np.array_equal(spec.generated, plain.generated)
        assert spec.sequential_vector_cycles == plain.vector_cycles

        # Final KV state bit-exact: same span, same rows, no leftover
        # provisional tokens after the last rollback.
        assert spec_state.cache.length == plain_state.cache.length
        assert (
            spec_state.cache.start_position
            == plain_state.cache.start_position
        )
        assert np.array_equal(spec_state.cache.keys, plain_state.cache.keys)
        assert np.array_equal(
            spec_state.cache.values, plain_state.cache.values
        )

        # Acceptance bookkeeping balances.
        assert spec.n_generated == request.max_new_tokens
        assert spec.verify_passes + spec.accepted_tokens == spec.n_generated
        assert (
            spec.drafted_tokens
            == spec.accepted_tokens + spec.rolled_back_tokens
        )

        # Pool accounting: rollback freed every rejected block; what
        # remains in use is exactly the live cache, and resetting
        # returns the pool to baseline (no leaked blocks).
        assert pool.in_use == spec_state.cache.blocks_in_use
        assert pool.blocks_allocated - pool.blocks_freed == pool.in_use
        assert pool.live_tokens == spec_state.cache.length
        spec_state.cache.reset()
        assert pool.in_use == 0
        assert pool.live_tokens == 0
        assert pool.blocks_allocated == pool.blocks_freed


class TestDecodeEquivalenceProperties:
    @given(request=random_decode_requests())
    @settings(max_examples=25, deadline=None)
    def test_tokenwise_decode_equals_packed_prefill(self, request):
        decoded = DECODER.decode(request)
        prefill = DECODER.prefill(DECODER.start(request))
        assert np.array_equal(decoded.outputs, prefill.outputs)
        for t, step in enumerate(decoded.steps):
            span = step.probabilities.shape[-1]
            start = t + 1 - span
            assert np.array_equal(
                step.probabilities,
                prefill.probabilities[:, t, start : t + 1],
            )
            # each probability row is itself a distribution
            assert np.allclose(
                step.probabilities.sum(axis=-1), 1.0, atol=1e-12
            )
