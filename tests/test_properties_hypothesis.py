"""Property-based tests (hypothesis) for the datapath and the decode path.

Four families of invariants, each over randomly drawn inputs rather
than hand-picked cases:

* fixed-point encode/decode round trips (``utils/fixed_point.py``),
* softmax row-stochasticity and permutation equivariance — for the
  exact reference *and* the hardware softmax through the overlay,
* :class:`NovaConfig` ``with_overrides`` / JSON round-trip identity,
* decode-vs-prefill bit-exact equivalence over random shapes, seeds
  and sliding windows.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.softmax import exact_softmax
from repro.core.config import NovaConfig
from repro.core.decode import DecodeRequest, NovaDecodeEngine
from repro.core.session import NovaSession
from repro.utils.fixed_point import FixedPointFormat

#: Small geometry shared by the hardware-backed properties (module
#: scope: tables/schedules compile once, each example only runs data).
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)
SESSION = NovaSession(SMALL)
DECODER = NovaDecodeEngine(SMALL)


formats = st.builds(
    FixedPointFormat,
    integer_bits=st.integers(min_value=0, max_value=7),
    fraction_bits=st.integers(min_value=0, max_value=12),
)


# ----------------------------------------------------------------------
# Fixed-point round trips.
# ----------------------------------------------------------------------


class TestFixedPointProperties:
    @given(fmt=formats, data=st.data())
    @settings(max_examples=60)
    def test_raw_code_round_trip_is_identity(self, fmt, data):
        """from_raw then to_raw reproduces every representable code."""
        raw = data.draw(
            st.integers(min_value=fmt.min_raw, max_value=fmt.max_raw)
        )
        assert fmt.to_raw(fmt.from_raw(raw)) == raw

    @given(fmt=formats, value=st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=60)
    def test_quantize_is_idempotent(self, fmt, value):
        """A quantised value is exactly representable: re-quantising it
        (and round-tripping it through raw codes) changes nothing."""
        q = fmt.quantize(value)
        assert np.array_equal(fmt.quantize(q), q)
        assert np.array_equal(fmt.from_raw(fmt.to_raw(q)), q)

    @given(fmt=formats, data=st.data())
    @settings(max_examples=60)
    def test_in_range_error_is_at_most_half_an_lsb(self, fmt, data):
        value = data.draw(
            st.floats(
                min_value=fmt.min_value, max_value=fmt.max_value,
                allow_nan=False,
            )
        )
        q = float(fmt.quantize(value))
        assert abs(q - value) <= fmt.scale / 2 + 1e-15
        assert fmt.min_value <= q <= fmt.max_value

    @given(fmt=formats, data=st.data())
    @settings(max_examples=40)
    def test_saturation_clamps_to_the_range_ends(self, fmt, data):
        value = data.draw(
            st.one_of(
                st.floats(fmt.max_value + fmt.scale, 1e9, allow_nan=False),
                st.floats(-1e9, fmt.min_value - fmt.scale, allow_nan=False),
            )
        )
        q = float(fmt.quantize(value))
        assert q in (fmt.min_value, fmt.max_value)
        assert bool(fmt.saturates(value))


# ----------------------------------------------------------------------
# Softmax: row-stochastic, permutation-equivariant.
# ----------------------------------------------------------------------


scores_arrays = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.lists(
        st.floats(min_value=-12.0, max_value=8.0, allow_nan=False),
        min_size=2 * n, max_size=2 * n,
    ).map(lambda vals: np.asarray(vals).reshape(2, n))
)


class TestSoftmaxProperties:
    @given(scores=scores_arrays)
    @settings(max_examples=40, deadline=None)
    def test_rows_sum_to_one(self, scores):
        exact = exact_softmax(scores, axis=-1)
        assert np.allclose(exact.sum(axis=-1), 1.0, atol=1e-12)
        hardware, _ = SESSION.softmax(scores)
        assert np.allclose(hardware.sum(axis=-1), 1.0, atol=1e-12)
        assert np.all(hardware >= 0.0)

    @given(scores=scores_arrays, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_permutation_equivariance(self, scores, seed):
        """softmax(x[perm]) == softmax(x)[perm] along the softmax axis
        (up to summation-order float noise in the row normaliser)."""
        perm = np.random.default_rng(seed).permutation(scores.shape[-1])
        exact = exact_softmax(scores, axis=-1)
        assert np.allclose(
            exact_softmax(scores[:, perm], axis=-1), exact[:, perm],
            rtol=1e-9, atol=1e-12,
        )
        hardware, _ = SESSION.softmax(scores)
        permuted, _ = SESSION.softmax(scores[:, perm])
        assert np.allclose(
            permuted, hardware[:, perm], rtol=1e-9, atol=1e-12
        )


# ----------------------------------------------------------------------
# NovaConfig round trips.
# ----------------------------------------------------------------------


configs = st.builds(
    NovaConfig,
    n_routers=st.integers(min_value=1, max_value=16),
    neurons_per_router=st.integers(min_value=1, max_value=64),
    pe_frequency_ghz=st.floats(
        min_value=0.01, max_value=4.0, allow_nan=False, allow_subnormal=False
    ),
    hop_mm=st.floats(
        min_value=0.05, max_value=4.0, allow_nan=False, allow_subnormal=False
    ),
    n_segments=st.sampled_from([2, 4, 8, 16, 32]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    host=st.sampled_from([None, "Jetson Xavier NX", "REACT", "TPU v4-like"]),
)


class TestNovaConfigProperties:
    @given(cfg=configs)
    @settings(max_examples=60)
    def test_json_round_trip_is_identity(self, cfg):
        assert NovaConfig.from_json(cfg.to_json()) == cfg
        assert NovaConfig.from_dict(cfg.to_dict()) == cfg

    @given(base=configs, target=configs)
    @settings(max_examples=60)
    def test_with_overrides_reaches_any_config(self, base, target):
        """Overriding every field as the CLI would (`field=value`
        strings) turns any config into any other config exactly."""
        overrides = [
            f"{name}={'none' if value is None else value}"
            for name, value in target.to_dict().items()
        ]
        assert base.with_overrides(overrides) == target

    @given(cfg=configs)
    @settings(max_examples=30)
    def test_empty_overrides_are_identity(self, cfg):
        assert cfg.with_overrides([]) == cfg
        assert cfg.with_overrides({}) == cfg


# ----------------------------------------------------------------------
# Decode-vs-prefill equivalence over random shapes.
# ----------------------------------------------------------------------


@st.composite
def random_decode_requests(draw):
    n_heads = draw(st.integers(min_value=1, max_value=3))
    head_dim = draw(st.integers(min_value=1, max_value=4))
    prompt_len = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    window = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=prompt_len))
    )
    hidden = n_heads * head_dim
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden)
    return DecodeRequest(
        x=rng.normal(0.0, 1.0, size=(prompt_len, hidden)),
        wq=rng.normal(0.0, scale, size=(hidden, hidden)),
        wk=rng.normal(0.0, scale, size=(hidden, hidden)),
        wv=rng.normal(0.0, scale, size=(hidden, hidden)),
        wo=rng.normal(0.0, scale, size=(hidden, hidden)),
        n_heads=n_heads,
        window=window,
    )


class TestDecodeEquivalenceProperties:
    @given(request=random_decode_requests())
    @settings(max_examples=25, deadline=None)
    def test_tokenwise_decode_equals_packed_prefill(self, request):
        decoded = DECODER.decode(request)
        prefill = DECODER.prefill(DECODER.start(request))
        assert np.array_equal(decoded.outputs, prefill.outputs)
        for t, step in enumerate(decoded.steps):
            span = step.probabilities.shape[-1]
            start = t + 1 - span
            assert np.array_equal(
                step.probabilities,
                prefill.probabilities[:, t, start : t + 1],
            )
            # each probability row is itself a distribution
            assert np.allclose(
                step.probabilities.sum(axis=-1), 1.0, atol=1e-12
            )
