"""Unit tests for the SMART repeated-wire timing model."""

import pytest

from repro.noc.link import Link, RepeatedWire


class TestRepeatedWire:
    def test_paper_corner_ten_routers_at_1p5ghz(self):
        # §V-A: "a maximum of 10 routers with clockless repeaters placed
        # 1mm apart can be traversed at 1.5 GHz clock"
        wire = RepeatedWire()
        assert wire.max_hops_per_cycle(1.5, hop_mm=1.0) == 10

    def test_eleven_hops_do_not_fit(self):
        wire = RepeatedWire()
        period_budget = 1000.0 / 1.5 - wire.setup_margin_ps
        assert wire.path_delay_ps(11, 1.0) > period_budget

    def test_reach_monotone_in_frequency(self):
        wire = RepeatedWire()
        reaches = [wire.max_hops_per_cycle(f) for f in (0.5, 1.0, 1.5, 2.0, 3.0)]
        assert reaches == sorted(reaches, reverse=True)

    def test_reach_monotone_in_hop_length(self):
        wire = RepeatedWire()
        assert wire.max_hops_per_cycle(1.5, 0.5) >= wire.max_hops_per_cycle(1.5, 1.0)

    def test_path_delay_linear_in_hops(self):
        wire = RepeatedWire()
        d1 = wire.path_delay_ps(1, 1.0)
        assert wire.path_delay_ps(10, 1.0) == pytest.approx(10 * d1)

    def test_max_frequency_inverse_of_reach(self):
        wire = RepeatedWire()
        f10 = wire.max_frequency_ghz(10, 1.0)
        assert wire.max_hops_per_cycle(f10, 1.0) >= 10
        assert wire.max_hops_per_cycle(f10 * 1.2, 1.0) < 10

    def test_zero_reach_for_absurd_clock(self):
        wire = RepeatedWire()
        assert wire.max_hops_per_cycle(50.0, 1.0) == 0

    def test_invalid_args(self):
        wire = RepeatedWire()
        with pytest.raises(ValueError):
            wire.path_delay_ps(-1, 1.0)
        with pytest.raises(ValueError):
            wire.path_delay_ps(1, 0.0)
        with pytest.raises(ValueError):
            wire.max_hops_per_cycle(0.0)

    def test_custom_corner(self):
        slow = RepeatedWire(delay_per_mm_ps=100.0, router_bypass_ps=20.0)
        assert slow.max_hops_per_cycle(1.5) < RepeatedWire().max_hops_per_cycle(1.5)


class TestLink:
    def test_default_is_257_bits(self):
        assert Link().width_bits == 257

    def test_invalid(self):
        with pytest.raises(ValueError):
            Link(width_bits=0)
        with pytest.raises(ValueError):
            Link(length_mm=0.0)
