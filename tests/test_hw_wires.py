"""Tests for the repeated-wire physics (repeater insertion model)."""

import pytest

from repro.hw.wires import (
    RepeaterDesign,
    WireTechnology,
    design_repeated_wire,
    segment_delay_ps,
)
from repro.noc.link import RepeatedWire
from repro.hw.tech import TECH_22NM


class TestOptimalDesign:
    def test_optimum_is_locally_optimal_in_spacing(self):
        opt = design_repeated_wire()
        shorter = design_repeated_wire(spacing_um=opt.spacing_um * 0.5,
                                       size=opt.size)
        longer = design_repeated_wire(spacing_um=opt.spacing_um * 2.0,
                                      size=opt.size)
        assert opt.delay_ps_per_mm <= shorter.delay_ps_per_mm
        assert opt.delay_ps_per_mm <= longer.delay_ps_per_mm

    def test_optimum_is_locally_optimal_in_size(self):
        opt = design_repeated_wire()
        smaller = design_repeated_wire(spacing_um=opt.spacing_um,
                                       size=opt.size * 0.5)
        bigger = design_repeated_wire(spacing_um=opt.spacing_um,
                                      size=opt.size * 2.0)
        assert opt.delay_ps_per_mm <= smaller.delay_ps_per_mm
        assert opt.delay_ps_per_mm <= bigger.delay_ps_per_mm

    def test_consistent_with_repeated_wire_constant(self):
        """The physics and the RepeatedWire timing constant must agree —
        the paper's 10 @ 1.5 GHz corner rests on both."""
        physics = design_repeated_wire().delay_ps_per_mm
        constant = RepeatedWire().delay_per_mm_ps
        assert abs(physics - constant) / constant < 0.15

    def test_energy_consistent_with_tech_node(self):
        physics = design_repeated_wire(
            activity=TECH_22NM.wire_activity
        ).energy_pj_per_bit_mm
        lumped = TECH_22NM.wire_energy_pj_per_bit_mm()
        assert 0.5 < physics / lumped < 2.0

    def test_delay_grows_with_resistance(self):
        base = design_repeated_wire(WireTechnology())
        resistive = design_repeated_wire(
            WireTechnology(resistance_ohm_per_um=1.5)
        )
        assert resistive.delay_ps_per_mm > base.delay_ps_per_mm

    def test_energy_independent_of_sizing_regime(self):
        # wire cap dominates: halving the spacing (more repeaters) raises
        # energy only modestly
        opt = design_repeated_wire()
        dense = design_repeated_wire(spacing_um=opt.spacing_um / 2,
                                     size=opt.size)
        assert dense.energy_pj_per_bit_mm < 2 * opt.energy_pj_per_bit_mm

    def test_segment_delay_components_positive(self):
        tech = WireTechnology()
        assert segment_delay_ps(tech, 300.0, 40.0) > tech.inverter_delay_ps

    def test_validation(self):
        tech = WireTechnology()
        with pytest.raises(ValueError):
            segment_delay_ps(tech, 0.0, 40.0)
        with pytest.raises(ValueError):
            segment_delay_ps(tech, 300.0, 0.0)
        with pytest.raises(ValueError):
            RepeaterDesign(spacing_um=0.0, size=1.0, delay_ps_per_mm=1.0,
                           energy_pj_per_bit_mm=1.0)
