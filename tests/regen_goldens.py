"""Golden-trace fixtures: record each preset's cycle/event/error trace.

``tests/goldens/<preset>.json`` pins, for every Table II geometry
preset, the cycle counts, event counters and max-abs-error of a
fixed-seed attention layer on the cycle-accurate reference engine, plus
the cycle counts and counters of a fixed-seed KV-cached decode run
(contiguous, paged, and speculative draft-and-verify under a fixed
acceptance schedule).  ``tests/test_goldens.py`` recomputes the same
traces on every run and fails on any unexplained drift — a change that
legitimately moves these numbers (a new schedule derivation, a
counter-accounting fix, a table training change) must regenerate the
fixtures *and say why in the commit*:

    PYTHONPATH=src python -m tests.regen_goldens

A change scoped to one section regenerates just that section, so it
cannot silently rewrite the others' pinned numbers:

    PYTHONPATH=src python -m tests.regen_goldens --section decode.speculative

The workloads are intentionally tiny (seconds across all four presets)
but exercise the full pipeline: host GEMMs, the beat-level NoC
simulation for every non-linear query, the closed-form decode
accounting and the table/schedule caches.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: Fixed attention-layer workload (seeded, preset-independent).
ATTENTION_WORKLOAD = dict(seq_len=8, hidden=32, heads=4, seed=123)

#: Fixed decode workload (seeded, preset-independent, causal).
DECODE_WORKLOAD = dict(prompt_len=6, max_new_tokens=4, hidden=16, heads=2,
                       seed=7)

#: Fixed accept/reject schedule for the speculative section: draft i of
#: the run verifies exactly when entry ``i % len`` is 1, so the
#: acceptance trace — committed tokens per pass, rollbacks, pass count —
#: is fully pinned per preset (spec_k varies by preset).
SPECULATIVE_PROGRAM = (True, True, False)

#: The regenerable fixture sections (``--section`` targets).  Narrower
#: paths replace only that sub-dict, so regenerating the speculative
#: section cannot silently rewrite the pinned attention / decode /
#: paged numbers (and vice versa).
SECTIONS = {
    "attention": ("attention",),
    "decode": ("decode",),
    "decode.paged": ("decode", "paged"),
    "decode.speculative": ("decode", "speculative"),
}


def golden_trace(preset_name: str) -> dict:
    """Compute one preset's golden trace (the single source of truth —
    the regression test replays exactly this function)."""
    from repro.core.config import preset
    from repro.core.session import NovaSession
    from repro.workloads.transformer import (
        TransformerConfig,
        attention_request,
        decode_request,
    )

    session = NovaSession(preset_name)

    # -- cycle-accurate attention layer (beat-level NoC simulation) ----
    aw = ATTENTION_WORKLOAD
    model = TransformerConfig(
        "golden-attn", layers=1, hidden=aw["hidden"], heads=aw["heads"],
        intermediate=4 * aw["hidden"], seq_len=aw["seq_len"],
    )
    request = attention_request(model, seed=aw["seed"])
    result = session.attention_layer(
        request.x, request.wq, request.wk, request.wv, request.wo,
        n_heads=request.n_heads,
    )
    exact = session.exact_attention_layer(
        request.x, request.wq, request.wk, request.wv, request.wo,
        n_heads=request.n_heads,
    )
    attention = {
        **aw,
        "vector_cycles": result.vector_cycles,
        "nonlinear_queries": result.nonlinear_queries,
        "counters": dict(sorted(result.counters.as_dict().items())),
        "max_abs_error": float(np.max(np.abs(result.outputs - exact))),
    }

    # -- KV-cached decode (prefill + generate, closed-form accounting) -
    dw = DECODE_WORKLOAD
    causal = TransformerConfig(
        "golden-decode", layers=1, hidden=dw["hidden"], heads=dw["heads"],
        intermediate=4 * dw["hidden"], seq_len=64, causal=True,
    )
    request = decode_request(
        causal, prompt_len=dw["prompt_len"],
        max_new_tokens=dw["max_new_tokens"], seed=dw["seed"],
    )
    gen = session.generate(request)
    decode = {
        **dw,
        "prefill_vector_cycles": gen.prefill.vector_cycles,
        "vector_cycles": gen.vector_cycles,
        "nonlinear_queries": gen.prefill.nonlinear_queries
        + sum(s.nonlinear_queries for s in gen.steps),
        "counters": dict(sorted(gen.counters.as_dict().items())),
    }

    # -- the same generate over a paged KV cache (block-pool accounting)
    # Paging moves K/V rows into fixed-size pool blocks but must never
    # change the numerics or the hardware accounting: the fixture pins
    # the pool counters AND re-records the cycle/counter trace, which
    # has to stay byte-identical to the contiguous section above.
    from repro.core.paging import BlockPool, worst_case_blocks

    cfg = preset(preset_name)
    engine = session.decoder
    pool = BlockPool(
        request.n_heads, request.head_dim, cfg.kv_block_size,
        n_blocks=worst_case_blocks(
            request.total_tokens, request.window, cfg.kv_block_size
        ),
    )
    paged_gen = engine.generate(
        request, state=engine.start(request, pool=pool)
    )
    assert np.array_equal(paged_gen.generated, gen.generated), (
        f"{preset_name}: paged generate diverged from contiguous"
    )
    decode["paged"] = {
        "kv_block_size": cfg.kv_block_size,
        "vector_cycles": paged_gen.vector_cycles,
        "counters": dict(sorted(paged_gen.counters.as_dict().items())),
        "blocks_allocated": pool.blocks_allocated,
        "blocks_freed": pool.blocks_freed,
        "peak_blocks_in_use": pool.peak_in_use,
        "end_live_tokens": pool.live_tokens,
        "end_fragmentation_slots": pool.fragmentation_slots,
    }

    # -- speculative draft-and-verify under a fixed acceptance schedule
    # The same generate run once more through the speculative engine
    # (preset spec_k, ScheduledDraft accepting per SPECULATIVE_PROGRAM):
    # outputs must stay bit-identical and the closed-form sequential
    # equivalent must equal the plain run's cycles, while the pinned
    # acceptance trace (passes, drafted/accepted/rolled-back, actually
    # charged cycles and counters including rolled-back work) catches
    # any drift in pass planning, acceptance or rollback.  A second,
    # paged run pins the pool accounting of rollback frees.
    from repro.core.speculative import ScheduledDraft, SpeculativeDecodeEngine

    speculator = SpeculativeDecodeEngine(engine)
    spec_gen = speculator.generate(
        request, draft=ScheduledDraft(cfg, SPECULATIVE_PROGRAM)
    )
    assert np.array_equal(spec_gen.generated, gen.generated), (
        f"{preset_name}: speculative generate diverged from plain"
    )
    assert spec_gen.sequential_vector_cycles == gen.vector_cycles, (
        f"{preset_name}: speculative sequential-equivalent cycles drifted"
    )
    spec_pool = BlockPool(
        request.n_heads, request.head_dim, cfg.kv_block_size,
        n_blocks=worst_case_blocks(
            request.total_tokens + cfg.spec_k, request.window,
            cfg.kv_block_size,
        ),
    )
    spec_state = speculator.start(request, pool=spec_pool)
    spec_paged = speculator.generate(
        request,
        state=spec_state,
        draft=ScheduledDraft(cfg, SPECULATIVE_PROGRAM),
    )
    assert np.array_equal(spec_paged.generated, gen.generated), (
        f"{preset_name}: paged speculative generate diverged from plain"
    )
    assert spec_paged.vector_cycles == spec_gen.vector_cycles, (
        f"{preset_name}: paged speculative charged different cycles"
    )
    # Retire the request (blocks home) so the pinned pool totals cover
    # the whole lifecycle: rollback frees + retirement frees must drain
    # the pool exactly (allocated == freed, nothing leaked).
    spec_state.cache.reset()
    decode["speculative"] = {
        "spec_k": cfg.spec_k,
        "program": "".join("1" if p else "0" for p in SPECULATIVE_PROGRAM),
        "vector_cycles": spec_gen.vector_cycles,
        "sequential_vector_cycles": spec_gen.sequential_vector_cycles,
        "verify_passes": spec_gen.verify_passes,
        "drafted": spec_gen.drafted_tokens,
        "accepted": spec_gen.accepted_tokens,
        "rolled_back": spec_gen.rolled_back_tokens,
        "counters": dict(sorted(spec_gen.counters.as_dict().items())),
        "paged": {
            "blocks_allocated": spec_pool.blocks_allocated,
            "blocks_freed": spec_pool.blocks_freed,
            "peak_blocks_in_use": spec_pool.peak_in_use,
            "end_in_use": spec_pool.in_use,
            "end_live_tokens": spec_pool.live_tokens,
        },
    }

    return {
        "preset": preset_name,
        "config": cfg.to_dict(),
        "attention": attention,
        "decode": decode,
    }


def regenerate(section: str | None = None) -> list[pathlib.Path]:
    """Write every preset's golden file; returns the paths written.

    ``section`` (a :data:`SECTIONS` key such as ``"decode.speculative"``)
    replaces only that sub-dict of each existing fixture, leaving every
    other pinned number byte-identical — the guard rail that keeps a
    speculative-only regeneration from silently rewriting the
    attention / decode / paged sections.  ``None`` rewrites whole files
    (required when the preset config itself changes).
    """
    from repro.core.config import PRESETS

    if section is not None and section not in SECTIONS:
        raise ValueError(
            f"unknown section {section!r}; known: {sorted(SECTIONS)}"
        )
    GOLDEN_DIR.mkdir(exist_ok=True)
    written = []
    for name in sorted(PRESETS):
        path = GOLDEN_DIR / f"{name}.json"
        trace = golden_trace(name)
        if section is None:
            data = trace
        else:
            if not path.exists():
                raise FileNotFoundError(
                    f"cannot regenerate section {section!r} of a missing "
                    f"fixture {path}; run without --section first"
                )
            data = json.loads(path.read_text())
            keys = SECTIONS[section]
            target, source = data, trace
            for key in keys[:-1]:
                target, source = target[key], source[key]
            target[keys[-1]] = source[keys[-1]]
        path.write_text(json.dumps(data, indent=2) + "\n")
        written.append(path)
    return written


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate the per-preset golden-trace fixtures."
    )
    parser.add_argument(
        "--section",
        choices=sorted(SECTIONS),
        default=None,
        help="replace only this fixture section (e.g. decode.speculative), "
             "leaving every other pinned number untouched; omit to rewrite "
             "whole files",
    )
    args = parser.parse_args()
    for path in regenerate(section=args.section):
        print(f"wrote {path}")
