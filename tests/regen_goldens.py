"""Golden-trace fixtures: record each preset's cycle/event/error trace.

``tests/goldens/<preset>.json`` pins, for every Table II geometry
preset, the cycle counts, event counters and max-abs-error of a
fixed-seed attention layer on the cycle-accurate reference engine, plus
the cycle counts and counters of a fixed-seed KV-cached decode run
(contiguous, paged, and speculative draft-and-verify under a fixed
acceptance schedule).  ``tests/test_goldens.py`` recomputes the same
traces on every run and fails on any unexplained drift — a change that
legitimately moves these numbers (a new schedule derivation, a
counter-accounting fix, a table training change) must regenerate the
fixtures *and say why in the commit*:

    PYTHONPATH=src python -m tests.regen_goldens

A change scoped to one section regenerates just that section, so it
cannot silently rewrite the others' pinned numbers:

    PYTHONPATH=src python -m tests.regen_goldens --section decode.speculative

The workloads are intentionally tiny (seconds across all four presets)
but exercise the full pipeline: host GEMMs, the beat-level NoC
simulation for every non-linear query, the closed-form decode
accounting and the table/schedule caches.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: Fixed attention-layer workload (seeded, preset-independent).
ATTENTION_WORKLOAD = dict(seq_len=8, hidden=32, heads=4, seed=123)

#: Fixed decode workload (seeded, preset-independent, causal).
DECODE_WORKLOAD = dict(prompt_len=6, max_new_tokens=4, hidden=16, heads=2,
                       seed=7)

#: Fixed accept/reject schedule for the speculative section: draft i of
#: the run verifies exactly when entry ``i % len`` is 1, so the
#: acceptance trace — committed tokens per pass, rollbacks, pass count —
#: is fully pinned per preset (spec_k varies by preset).
SPECULATIVE_PROGRAM = (True, True, False)

#: Fixed draft tree for the tree-speculative section: two alternatives
#: at each of two depths (6 provisional nodes per pass).
SPECULATIVE_TREE = "2x2"

#: Accept/reject schedule for the tree section.  ScheduledDraft consumes
#: one decision per *candidate* in level-order planning order, so a
#: fixed program pins which sibling branch survives every pass — and
#: with it the committed tokens, rollbacks and fork accounting.  The
#: odd length keeps the surviving branch varying across passes.
TREE_PROGRAM = (True, False, True, False, False)

#: The regenerable fixture sections (``--section`` targets).  Narrower
#: paths replace only that sub-dict, so regenerating the speculative
#: section cannot silently rewrite the pinned attention / decode /
#: paged numbers (and vice versa).
SECTIONS = {
    "attention": ("attention",),
    "decode": ("decode",),
    "decode.paged": ("decode", "paged"),
    "decode.prefix_cached": ("decode", "prefix_cached"),
    "decode.speculative": ("decode", "speculative"),
    "decode.speculative_tree": ("decode", "speculative_tree"),
}


def golden_trace(preset_name: str) -> dict:
    """Compute one preset's golden trace (the single source of truth —
    the regression test replays exactly this function)."""
    from repro.core.config import preset
    from repro.core.session import NovaSession
    from repro.workloads.transformer import (
        TransformerConfig,
        attention_request,
        decode_request,
    )

    session = NovaSession(preset_name)

    # -- cycle-accurate attention layer (beat-level NoC simulation) ----
    aw = ATTENTION_WORKLOAD
    model = TransformerConfig(
        "golden-attn", layers=1, hidden=aw["hidden"], heads=aw["heads"],
        intermediate=4 * aw["hidden"], seq_len=aw["seq_len"],
    )
    request = attention_request(model, seed=aw["seed"])
    result = session.attention_layer(
        request.x, request.wq, request.wk, request.wv, request.wo,
        n_heads=request.n_heads,
    )
    exact = session.exact_attention_layer(
        request.x, request.wq, request.wk, request.wv, request.wo,
        n_heads=request.n_heads,
    )
    attention = {
        **aw,
        "vector_cycles": result.vector_cycles,
        "nonlinear_queries": result.nonlinear_queries,
        "counters": dict(sorted(result.counters.as_dict().items())),
        "max_abs_error": float(np.max(np.abs(result.outputs - exact))),
    }

    # -- KV-cached decode (prefill + generate, closed-form accounting) -
    dw = DECODE_WORKLOAD
    causal = TransformerConfig(
        "golden-decode", layers=1, hidden=dw["hidden"], heads=dw["heads"],
        intermediate=4 * dw["hidden"], seq_len=64, causal=True,
    )
    request = decode_request(
        causal, prompt_len=dw["prompt_len"],
        max_new_tokens=dw["max_new_tokens"], seed=dw["seed"],
    )
    gen = session.generate(request)
    decode = {
        **dw,
        "prefill_vector_cycles": gen.prefill.vector_cycles,
        "vector_cycles": gen.vector_cycles,
        "nonlinear_queries": gen.prefill.nonlinear_queries
        + sum(s.nonlinear_queries for s in gen.steps),
        "counters": dict(sorted(gen.counters.as_dict().items())),
    }

    # -- the same generate over a paged KV cache (block-pool accounting)
    # Paging moves K/V rows into fixed-size pool blocks but must never
    # change the numerics or the hardware accounting: the fixture pins
    # the pool counters AND re-records the cycle/counter trace, which
    # has to stay byte-identical to the contiguous section above.
    from repro.core.paging import BlockPool, worst_case_blocks

    cfg = preset(preset_name)
    engine = session.decoder
    pool = BlockPool(
        request.n_heads, request.head_dim, cfg.kv_block_size,
        n_blocks=worst_case_blocks(
            request.total_tokens, request.window, cfg.kv_block_size
        ),
    )
    paged_gen = engine.generate(
        request, state=engine.start(request, pool=pool)
    )
    assert np.array_equal(paged_gen.generated, gen.generated), (
        f"{preset_name}: paged generate diverged from contiguous"
    )
    decode["paged"] = {
        "kv_block_size": cfg.kv_block_size,
        "vector_cycles": paged_gen.vector_cycles,
        "counters": dict(sorted(paged_gen.counters.as_dict().items())),
        "blocks_allocated": pool.blocks_allocated,
        "blocks_freed": pool.blocks_freed,
        "peak_blocks_in_use": pool.peak_in_use,
        "end_live_tokens": pool.live_tokens,
        "end_fragmentation_slots": pool.fragmentation_slots,
    }

    # -- speculative draft-and-verify under a fixed acceptance schedule
    # The same generate run once more through the speculative engine
    # (preset spec_k, ScheduledDraft accepting per SPECULATIVE_PROGRAM):
    # outputs must stay bit-identical and the closed-form sequential
    # equivalent must equal the plain run's cycles, while the pinned
    # acceptance trace (passes, drafted/accepted/rolled-back, actually
    # charged cycles and counters including rolled-back work) catches
    # any drift in pass planning, acceptance or rollback.  A second,
    # paged run pins the pool accounting of rollback frees.
    from repro.core.speculative import ScheduledDraft, SpeculativeDecodeEngine

    speculator = SpeculativeDecodeEngine(engine)
    spec_gen = speculator.generate(
        request, draft=ScheduledDraft(cfg, SPECULATIVE_PROGRAM)
    )
    assert np.array_equal(spec_gen.generated, gen.generated), (
        f"{preset_name}: speculative generate diverged from plain"
    )
    assert spec_gen.sequential_vector_cycles == gen.vector_cycles, (
        f"{preset_name}: speculative sequential-equivalent cycles drifted"
    )
    spec_pool = BlockPool(
        request.n_heads, request.head_dim, cfg.kv_block_size,
        n_blocks=worst_case_blocks(
            request.total_tokens + cfg.spec_k, request.window,
            cfg.kv_block_size,
        ),
    )
    spec_state = speculator.start(request, pool=spec_pool)
    spec_paged = speculator.generate(
        request,
        state=spec_state,
        draft=ScheduledDraft(cfg, SPECULATIVE_PROGRAM),
    )
    assert np.array_equal(spec_paged.generated, gen.generated), (
        f"{preset_name}: paged speculative generate diverged from plain"
    )
    assert spec_paged.vector_cycles == spec_gen.vector_cycles, (
        f"{preset_name}: paged speculative charged different cycles"
    )
    # Retire the request (blocks home) so the pinned pool totals cover
    # the whole lifecycle: rollback frees + retirement frees must drain
    # the pool exactly (allocated == freed, nothing leaked).
    spec_state.cache.reset()
    decode["speculative"] = {
        "spec_k": cfg.spec_k,
        "program": "".join("1" if p else "0" for p in SPECULATIVE_PROGRAM),
        "vector_cycles": spec_gen.vector_cycles,
        "sequential_vector_cycles": spec_gen.sequential_vector_cycles,
        "verify_passes": spec_gen.verify_passes,
        "drafted": spec_gen.drafted_tokens,
        "accepted": spec_gen.accepted_tokens,
        "rolled_back": spec_gen.rolled_back_tokens,
        "counters": dict(sorted(spec_gen.counters.as_dict().items())),
        "paged": {
            "blocks_allocated": spec_pool.blocks_allocated,
            "blocks_freed": spec_pool.blocks_freed,
            "peak_blocks_in_use": spec_pool.peak_in_use,
            "end_in_use": spec_pool.in_use,
            "end_live_tokens": spec_pool.live_tokens,
        },
    }

    # -- tree speculation: a draft *tree* scored in one packed pass ----
    # The same generate once more with a fixed 2x2 draft tree, the
    # ScheduledDraft program consumed level by level in planning order
    # — so which sibling branch wins each pass, and with it the whole
    # acceptance trace, is pinned per preset.  Outputs must stay
    # bit-identical to plain and the closed-form sequential equivalent
    # must equal the plain run's cycles (a tree repacks work, never
    # changes it).  The paged twin pins the fork/rollback accounting:
    # sibling branches fork the cache copy-on-write, and every losing
    # branch's blocks come home (allocated == freed after retirement).
    from repro.core.speculative import DraftTree

    tree = DraftTree.parse(SPECULATIVE_TREE)
    tree_speculator = SpeculativeDecodeEngine(engine, tree=tree)
    tree_gen = tree_speculator.generate(
        request, draft=ScheduledDraft(cfg, TREE_PROGRAM)
    )
    assert np.array_equal(tree_gen.generated, gen.generated), (
        f"{preset_name}: tree-speculative generate diverged from plain"
    )
    assert tree_gen.sequential_vector_cycles == gen.vector_cycles, (
        f"{preset_name}: tree sequential-equivalent cycles drifted"
    )
    # Pool sized with fork headroom: beyond the linear worst case, each
    # sibling branch may copy-on-write the shared tail block, so grant
    # one spare block per provisional node.  Too tight a pool would trip
    # plan_with_fallback into clipping the tree — a different (legal)
    # plan, but not the one this fixture pins.
    tree_pool = BlockPool(
        request.n_heads, request.head_dim, cfg.kv_block_size,
        n_blocks=worst_case_blocks(
            request.total_tokens + tree.max_nodes, request.window,
            cfg.kv_block_size,
        ) + tree.max_nodes,
    )
    tree_state = tree_speculator.start(request, pool=tree_pool)
    tree_paged = tree_speculator.generate(
        request,
        state=tree_state,
        draft=ScheduledDraft(cfg, TREE_PROGRAM),
    )
    assert np.array_equal(tree_paged.generated, gen.generated), (
        f"{preset_name}: paged tree-speculative generate diverged"
    )
    assert tree_paged.vector_cycles == tree_gen.vector_cycles, (
        f"{preset_name}: paged tree speculation charged different cycles"
    )
    tree_state.cache.reset()
    assert tree_pool.in_use == 0, (
        f"{preset_name}: tree speculation leaked pool blocks"
    )
    decode["speculative_tree"] = {
        "tree": tree.spec,
        "program": "".join("1" if p else "0" for p in TREE_PROGRAM),
        "vector_cycles": tree_gen.vector_cycles,
        "sequential_vector_cycles": tree_gen.sequential_vector_cycles,
        "verify_passes": tree_gen.verify_passes,
        "drafted": tree_gen.drafted_tokens,
        "accepted": tree_gen.accepted_tokens,
        "rolled_back": tree_gen.rolled_back_tokens,
        "counters": dict(sorted(tree_gen.counters.as_dict().items())),
        "paged": {
            "blocks_allocated": tree_pool.blocks_allocated,
            "blocks_freed": tree_pool.blocks_freed,
            "cow_copies": tree_pool.cow_copies,
            "peak_blocks_in_use": tree_pool.peak_in_use,
            "end_in_use": tree_pool.in_use,
            "end_live_tokens": tree_pool.live_tokens,
        },
    }

    # -- prefix caching: shared-prompt requests dedup pool residency ---
    # Two requests share a two-block prompt prefix (block size is the
    # preset's) and diverge in a short suffix.  Request B adopts the
    # prefix blocks request A registered while A is still resident, so
    # the pool holds the shared rows once; a forked copy-on-write twin
    # then appends one divergent token to pin exactly one CoW copy.
    # Sharing must be invisible everywhere else: the fixture asserts
    # bit-identical outputs, cycles and counters against an uncached
    # paged twin run *before* pinning the hit/share/CoW accounting.
    from repro.core.decode import DecodeRequest

    bs = cfg.kv_block_size
    pw = dict(prefix_tokens=2 * bs, suffix_tokens=2, new_tokens=3)
    shared_total = pw["prefix_tokens"] + pw["suffix_tokens"] + pw["new_tokens"]
    shared_model = TransformerConfig(
        "golden-prefix", layers=1, hidden=dw["hidden"], heads=dw["heads"],
        intermediate=4 * dw["hidden"], seq_len=shared_total + 2, causal=True,
    )
    first = decode_request(
        shared_model, prompt_len=pw["prefix_tokens"] + pw["suffix_tokens"],
        max_new_tokens=pw["new_tokens"], seed=dw["seed"],
    )
    sibling_x = first.x.copy()
    sibling_x[pw["prefix_tokens"]:] = np.random.default_rng(
        dw["seed"] + 1
    ).normal(0.0, 1.0, sibling_x[pw["prefix_tokens"]:].shape)
    second = DecodeRequest(
        x=sibling_x, wq=first.wq, wk=first.wk, wv=first.wv, wo=first.wo,
        n_heads=first.n_heads, max_new_tokens=first.max_new_tokens,
        max_seq_len=first.max_seq_len,
    )
    requests = (first, second)
    n_blocks = 2 * worst_case_blocks(first.total_tokens, None, bs)

    plain_pool = BlockPool(
        first.n_heads, first.head_dim, bs, n_blocks=n_blocks
    )
    plain_states = [engine.start(r, pool=plain_pool) for r in requests]
    plain = [
        engine.generate(r, state=s)
        for r, s in zip(requests, plain_states)
    ]

    shared_pool = BlockPool(
        first.n_heads, first.head_dim, bs, n_blocks=n_blocks
    )
    shared_states, shared = [], []
    for request in requests:  # B adopts while A is still resident
        state = engine.start(request, pool=shared_pool, prefix=True)
        shared_states.append(state)
        shared.append(engine.generate(request, state=state))
    for got, want in zip(shared, plain):
        assert np.array_equal(got.generated, want.generated), (
            f"{preset_name}: prefix-cached generate diverged from uncached"
        )
        assert got.vector_cycles == want.vector_cycles, (
            f"{preset_name}: prefix caching changed charged cycles"
        )
        assert got.counters.as_dict() == want.counters.as_dict(), (
            f"{preset_name}: prefix caching changed hardware counters"
        )
    twin = shared_states[1].cache.fork()
    row = np.ones((first.n_heads, first.head_dim))
    twin.append(row, row)  # divergent append into a shared tail block
    assert shared_pool.cow_copies == 1, (
        f"{preset_name}: fork append did not copy-on-write exactly once"
    )
    assert shared_pool.peak_in_use < plain_pool.peak_in_use, (
        f"{preset_name}: sharing did not reduce peak pool residency"
    )
    twin.reset()
    for state in shared_states:
        state.cache.reset()
    for state in plain_states:
        state.cache.reset()
    decode["prefix_cached"] = {
        "kv_block_size": bs,
        **pw,
        "vector_cycles": [g.vector_cycles for g in shared],
        "counters": [
            dict(sorted(g.counters.as_dict().items())) for g in shared
        ],
        "prefix_hits": shared_pool.prefix_hits,
        "prefix_misses": shared_pool.prefix_misses,
        "blocks_shared": shared_pool.blocks_shared,
        "shared_frees": shared_pool.shared_frees,
        "cow_copies": shared_pool.cow_copies,
        "blocks_allocated": shared_pool.blocks_allocated,
        "blocks_freed": shared_pool.blocks_freed,
        "peak_blocks_in_use": shared_pool.peak_in_use,
        "uncached_peak_blocks_in_use": plain_pool.peak_in_use,
        "end_in_use": shared_pool.in_use,
        "end_live_tokens": shared_pool.live_tokens,
    }

    # The golden pins the preset *geometry*.  Execution-strategy knobs
    # that are bit/cycle/counter-neutral by contract (and tested so)
    # are excluded: the same fixture must pass under every kernel
    # backend without regeneration.
    pinned_config = cfg.to_dict()
    del pinned_config["kernel_backend"]

    return {
        "preset": preset_name,
        "config": pinned_config,
        "attention": attention,
        "decode": decode,
    }


def regenerate(section: str | None = None) -> list[pathlib.Path]:
    """Write every preset's golden file; returns the paths written.

    ``section`` (a :data:`SECTIONS` key such as ``"decode.speculative"``)
    replaces only that sub-dict of each existing fixture, leaving every
    other pinned number byte-identical — the guard rail that keeps a
    speculative-only regeneration from silently rewriting the
    attention / decode / paged sections.  ``None`` rewrites whole files
    (required when the preset config itself changes).

    A sectioned run validates *every* target fixture up front — the
    file must exist and already carry the section's key path — before
    any trace is computed, so a stale or schema-drifted fixture fails
    in milliseconds instead of after the full recompute.
    """
    from repro.core.config import PRESETS

    if section is not None and section not in SECTIONS:
        raise ValueError(
            f"unknown section {section!r}; known: {sorted(SECTIONS)}"
        )
    if section is not None:
        for name in sorted(PRESETS):
            path = GOLDEN_DIR / f"{name}.json"
            if not path.exists():
                raise FileNotFoundError(
                    f"cannot regenerate section {section!r} of a missing "
                    f"fixture {path}; run without --section first"
                )
            node = json.loads(path.read_text())
            for key in SECTIONS[section]:
                if not isinstance(node, dict) or key not in node:
                    raise KeyError(
                        f"fixture {path} has no {section!r} section; "
                        "regenerate whole files first (omit --section)"
                    )
                node = node[key]
    GOLDEN_DIR.mkdir(exist_ok=True)
    written = []
    for name in sorted(PRESETS):
        path = GOLDEN_DIR / f"{name}.json"
        trace = golden_trace(name)
        if section is None:
            data = trace
        else:
            data = json.loads(path.read_text())
            keys = SECTIONS[section]
            target, source = data, trace
            for key in keys[:-1]:
                target, source = target[key], source[key]
            target[keys[-1]] = source[keys[-1]]
        path.write_text(json.dumps(data, indent=2) + "\n")
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    A ``--section`` that is not a :data:`SECTIONS` key — or names a
    section the on-disk fixtures do not carry yet — prints the known
    sections to stderr and returns 2 *before* any trace is computed.
    Silently regenerating nothing on a typo is how pinned numbers go
    stale without anyone noticing.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Regenerate the per-preset golden-trace fixtures."
    )
    parser.add_argument(
        "--section",
        default=None,
        help="replace only this fixture section (e.g. decode.speculative), "
             "leaving every other pinned number untouched; omit to rewrite "
             "whole files",
    )
    args = parser.parse_args(argv)
    if args.section is not None and args.section not in SECTIONS:
        print(
            f"error: unknown section {args.section!r}; known sections: "
            + ", ".join(sorted(SECTIONS)),
            file=sys.stderr,
        )
        return 2
    try:
        written = regenerate(section=args.section)
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
