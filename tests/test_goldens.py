"""Golden-trace regression suite: per-preset cycles, counters, error.

Every Table II preset's fixture in ``tests/goldens/`` pins the full
hardware-model trace of a fixed-seed attention layer (cycle-accurate
reference engine) and a fixed-seed KV-cached decode run.  Any drift in
cycle counts, event counters or approximation error fails here; if the
change is intentional, regenerate with

    PYTHONPATH=src python -m tests.regen_goldens

and explain the drift in the commit message.  The trace computation
itself lives in :mod:`tests.regen_goldens` — the test replays exactly
the function the regen script writes with, so fixture and check can
never disagree about the workload.
"""

import json

import pytest

from repro.core.config import PRESETS
from tests.regen_goldens import GOLDEN_DIR, golden_trace

#: Integer/structural fields compared exactly, per section.  The
#: ``decode.paged`` sub-dict pins the block-pool accounting of the same
#: generate run over a paged KV cache — and its ``vector_cycles`` /
#: ``counters``, which must equal the contiguous section's (paging is
#: numerics- and accounting-neutral; the regen script asserts the
#: outputs match bit for bit before writing the fixture).
EXACT_FIELDS = {
    "attention": ("vector_cycles", "nonlinear_queries", "counters"),
    "decode": (
        "prefill_vector_cycles", "vector_cycles", "nonlinear_queries",
        "counters", "paged", "prefix_cached", "speculative",
        "speculative_tree",
    ),
}


def load_golden(preset_name: str) -> dict:
    path = GOLDEN_DIR / f"{preset_name}.json"
    assert path.exists(), (
        f"missing golden fixture {path}; run "
        "`PYTHONPATH=src python -m tests.regen_goldens`"
    )
    return json.loads(path.read_text())


class TestGoldenCoverage:
    def test_every_preset_has_a_fixture(self):
        for name in PRESETS:
            load_golden(name)

    def test_no_stale_fixtures(self):
        stale = {
            p.stem for p in GOLDEN_DIR.glob("*.json")
        } - set(PRESETS)
        assert not stale, f"golden fixtures for unknown presets: {stale}"


@pytest.mark.parametrize("preset_name", sorted(PRESETS))
class TestGoldenTraces:
    def test_trace_matches_fixture(self, preset_name):
        golden = load_golden(preset_name)
        current = golden_trace(preset_name)

        assert current["config"] == golden["config"], (
            f"{preset_name}: the preset geometry itself changed; goldens "
            "must be regenerated alongside it"
        )
        for section, fields in EXACT_FIELDS.items():
            for name in fields:
                assert current[section][name] == golden[section][name], (
                    f"{preset_name}: {section}.{name} drifted from the "
                    f"golden trace ({golden[section][name]} -> "
                    f"{current[section][name]}); if intentional, "
                    "regenerate with `python -m tests.regen_goldens` and "
                    "document why"
                )
        # The approximation error is a float: bit-identical on one
        # machine, but BLAS summation order may vary across platforms,
        # so allow a tight relative band rather than exact equality.
        assert current["attention"]["max_abs_error"] == pytest.approx(
            golden["attention"]["max_abs_error"], rel=1e-6, abs=1e-9
        ), f"{preset_name}: attention max_abs_error drifted"

    def test_paged_decode_accounting_is_neutral(self, preset_name):
        """The fixture's paged run must charge exactly the contiguous
        run's cycles and counters: paging moves K/V rows, nothing else."""
        decode = load_golden(preset_name)["decode"]
        assert decode["paged"]["vector_cycles"] == decode["vector_cycles"]
        assert decode["paged"]["counters"] == decode["counters"]

    def test_speculative_decode_is_sequential_equivalent(self, preset_name):
        """The fixture's speculative run must report a closed-form
        sequential equivalent identical to the plain decode run's cycles
        (speculation repacks work, never changes it), its acceptance
        trace must balance (one committed token per pass plus the
        accepted drafts; rollbacks are the drafted remainder), and the
        paged twin must leak no blocks (rollback frees count exactly
        like eviction frees: allocated - freed == end in_use == 0)."""
        golden = load_golden(preset_name)
        decode = golden["decode"]
        spec = decode["speculative"]
        assert spec["sequential_vector_cycles"] == decode["vector_cycles"]
        assert spec["spec_k"] == golden["config"]["spec_k"]
        generated = decode["max_new_tokens"]
        assert spec["verify_passes"] + spec["accepted"] == generated
        assert (
            spec["drafted"] == spec["accepted"] + spec["rolled_back"]
        )
        paged = spec["paged"]
        assert paged["end_in_use"] == 0
        assert paged["end_live_tokens"] == 0
        assert (
            paged["blocks_allocated"] - paged["blocks_freed"]
            == paged["end_in_use"]
        )

    def test_tree_speculative_decode_balances_and_drains(self, preset_name):
        """The fixture's tree-speculative run must obey the same
        contract as the linear chain — sequential equivalent identical
        to plain decode, acceptance trace balanced — with the tree
        twists: the pinned tree spec round-trips, sibling forks show up
        as copy-on-write copies in the paged twin, and every losing
        branch's blocks come home (zero blocks leaked)."""
        golden = load_golden(preset_name)
        decode = golden["decode"]
        spec = decode["speculative_tree"]
        from repro.core.speculative import DraftTree
        from tests.regen_goldens import SPECULATIVE_TREE, TREE_PROGRAM

        assert spec["tree"] == DraftTree.parse(SPECULATIVE_TREE).spec
        assert spec["program"] == "".join(
            "1" if p else "0" for p in TREE_PROGRAM
        )
        assert spec["sequential_vector_cycles"] == decode["vector_cycles"]
        assert spec["verify_passes"] + spec["accepted"] == decode[
            "max_new_tokens"
        ]
        assert spec["drafted"] == spec["accepted"] + spec["rolled_back"]
        paged = spec["paged"]
        assert paged["cow_copies"] > 0  # sibling branches really forked
        assert paged["end_in_use"] == 0
        assert paged["end_live_tokens"] == 0
        assert paged["blocks_allocated"] == paged["blocks_freed"]

    def test_prefix_cached_decode_is_a_pure_residency_win(self, preset_name):
        """The fixture's prefix-cached run must charge exactly the
        uncached cycles/counters per request (sharing is a memory
        optimisation, never a compute change), hold strictly fewer
        blocks at peak than the uncached twin run, and drain the pool
        without leaking or double-freeing a shared block."""
        golden = load_golden(preset_name)
        decode = golden["decode"]
        cached = decode["prefix_cached"]
        assert cached["kv_block_size"] == golden["config"]["kv_block_size"]
        # Request A misses once and registers; B adopts every prefix
        # block A published, so hits cover the full shared prefix.
        assert cached["prefix_hits"] >= cached["prefix_tokens"] // cached[
            "kv_block_size"
        ]
        assert cached["prefix_misses"] >= 1
        assert cached["blocks_shared"] > 0
        assert cached["cow_copies"] == 1  # the fork micro-program's copy
        assert (
            cached["peak_blocks_in_use"]
            < cached["uncached_peak_blocks_in_use"]
        )
        assert cached["end_in_use"] == 0
        assert cached["end_live_tokens"] == 0
        assert cached["blocks_allocated"] == cached["blocks_freed"]

    def test_fixture_workload_is_the_pinned_one(self, preset_name):
        """The fixture must have been generated from the same workload
        constants the replay uses (stale fixtures fail loudly)."""
        from tests.regen_goldens import ATTENTION_WORKLOAD, DECODE_WORKLOAD

        golden = load_golden(preset_name)
        for key, value in ATTENTION_WORKLOAD.items():
            assert golden["attention"][key] == value
        for key, value in DECODE_WORKLOAD.items():
            assert golden["decode"][key] == value


class TestRegenSectionValidation:
    """``--section`` typos must exit 2 with the known-section list, and
    a section the on-disk fixtures do not carry must fail *before* any
    trace is computed — never silently regenerate nothing."""

    def test_unknown_section_exits_2_and_lists_sections(self, capsys):
        from tests import regen_goldens

        assert regen_goldens.main(["--section", "decode.speculatve"]) == 2
        err = capsys.readouterr().err
        assert "unknown section 'decode.speculatve'" in err
        for name in regen_goldens.SECTIONS:
            assert name in err

    def test_unknown_section_never_touches_fixtures(self, capsys,
                                                    monkeypatch, tmp_path):
        from tests import regen_goldens

        monkeypatch.setattr(regen_goldens, "GOLDEN_DIR", tmp_path)
        assert regen_goldens.main(["--section", "nope"]) == 2
        assert list(tmp_path.iterdir()) == []

    def test_missing_fixture_exits_2_before_computing(self, capsys,
                                                      monkeypatch, tmp_path):
        from tests import regen_goldens

        monkeypatch.setattr(regen_goldens, "GOLDEN_DIR", tmp_path)
        assert regen_goldens.main(["--section", "decode.paged"]) == 2
        assert "run without --section first" in capsys.readouterr().err
        assert list(tmp_path.iterdir()) == []

    def test_schema_drifted_fixture_exits_2_before_computing(
        self, capsys, monkeypatch, tmp_path
    ):
        from tests import regen_goldens

        monkeypatch.setattr(regen_goldens, "GOLDEN_DIR", tmp_path)
        for name in PRESETS:
            (tmp_path / f"{name}.json").write_text(
                json.dumps({"decode": {}}) + "\n"
            )
        assert regen_goldens.main(["--section", "decode.paged"]) == 2
        err = capsys.readouterr().err
        assert "has no 'decode.paged' section" in err
        # Validation ran before any trace compute: fixtures untouched.
        for name in PRESETS:
            assert json.loads(
                (tmp_path / f"{name}.json").read_text()
            ) == {"decode": {}}

    def test_regenerate_rejects_unknown_section(self):
        from tests.regen_goldens import regenerate

        with pytest.raises(ValueError, match="unknown section"):
            regenerate(section="decode.speculatve")
