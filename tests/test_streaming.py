"""Structural-vs-analytical timing equivalence for the NOVA line.

The StreamingLine clocks BufferedInputPort primitives with the two-phase
CycleEngine; its observed arrival times must equal NovaNoc's analytical
``arrival_cycle`` model for every geometry — the repo's RTL-vs-spec check.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl, pack_beats
from repro.core.mapper import NovaMapper
from repro.core.noc import NovaNoc
from repro.core.streaming import StreamingLine
from repro.noc.topology import LineTopology


def make_parts(n_routers, pe_ghz, n_segments=16, hop_mm=1.0):
    spec = get_function("tanh")
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, n_segments))
    schedule = NovaMapper().schedule(n_routers, pe_ghz, n_segments, hop_mm)
    return table, schedule


class TestSingleCycleLine:
    def test_all_routers_observe_in_launch_cycle(self):
        table, schedule = make_parts(8, 0.24)
        line = StreamingLine(schedule)
        log = line.run(pack_beats(table))
        for router in range(8):
            assert log.arrival_cycle(router, 0) == 0
            assert log.arrival_cycle(router, 1) == 1

    def test_observation_count(self):
        table, schedule = make_parts(8, 0.24)
        log = StreamingLine(schedule).run(pack_beats(table))
        # every router observes every beat exactly once
        assert len(log.observations) == 8 * 2


class TestMultiSegmentLine:
    def test_buffered_stage_adds_one_cycle(self):
        table, schedule = make_parts(25, 0.75)  # 10 hops/cycle -> 3 stages
        log = StreamingLine(schedule).run(pack_beats(table))
        assert log.arrival_cycle(0, 0) == 0
        assert log.arrival_cycle(9, 0) == 0
        assert log.arrival_cycle(10, 0) == 1
        assert log.arrival_cycle(20, 0) == 2
        assert log.arrival_cycle(24, 1) == 3  # beat 1 launches a cycle later

    def test_beats_pipeline_without_collision(self):
        table, schedule = make_parts(25, 0.75)
        log = StreamingLine(schedule).run(pack_beats(table))
        # a router never observes two beats in the same cycle
        seen = set()
        for router, _beat, cycle in log.observations:
            assert (router, cycle) not in seen
            seen.add((router, cycle))

    def test_missing_observation_raises(self):
        table, schedule = make_parts(4, 0.24)
        log = StreamingLine(schedule).run(pack_beats(table))
        with pytest.raises(KeyError):
            log.arrival_cycle(0, 7)

    def test_beat_count_validation(self):
        table, schedule = make_parts(4, 0.24)
        with pytest.raises(ValueError):
            StreamingLine(schedule).run(pack_beats(table)[:1])


@settings(max_examples=25, deadline=None)
@given(
    n_routers=st.integers(min_value=1, max_value=40),
    pe_ghz=st.sampled_from([0.24, 0.5, 0.75, 1.0]),
)
def test_structural_matches_analytical(n_routers, pe_ghz):
    """StreamingLine's observed arrivals == NovaNoc.arrival_cycle, for any
    line length and clock."""
    table, schedule = make_parts(n_routers, pe_ghz)
    line = StreamingLine(schedule)
    log = line.run(pack_beats(table))
    noc = NovaNoc(
        LineTopology(n_routers=n_routers), schedule, neurons_per_router=1
    )
    for router in range(n_routers):
        for beat_index in range(schedule.n_beats):
            expected = beat_index + noc.arrival_cycle(router)
            assert log.arrival_cycle(router, beat_index) == expected
