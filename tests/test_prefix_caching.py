"""Prefix caching: shared prompt blocks, copy-on-write, accounting.

The paging layer's prefix cache lets requests with a common prompt
prefix share physical :class:`~repro.core.paging.BlockPool` blocks
under a reference count, copying a block only on the first divergent
write.  The contract is *pure memory residency*: sharing must never
change a single output bit, charged cycle or hardware counter, and the
pool must conserve blocks exactly (no leak, no double free) through
any interleaving of adoption, forking, appends, truncation, eviction
and reset.  Five test families pin that contract:

* :func:`~repro.core.paging.prefix_block_keys` properties — chained
  block digests that depend only on what K/V rows depend on (prompt
  rows, ``wk``/``wv``, head count, block size), so different-length
  prompts with equal leading rows share leading keys,
* a hypothesis property driving random fork/append/truncate/evict
  programs against a non-sharing twin on a private pool: identical
  observable cache state after every op, exact block conservation on
  both pools, and a fully drained shared pool at the end,
* the shared-block error paths: double free of a refcounted block,
  :class:`~repro.core.paging.BlockPoolExhausted` raised atomically
  mid-copy-on-write, truncation through a shared tail, eviction of a
  head block another table still references,
* engine/scheduler integration — adoption at
  :meth:`~repro.core.decode.NovaDecodeEngine.start`, relaxed paged
  admission charging only unshared blocks, and bit/cycle/counter-exact
  results against uncached runs at strictly lower peak residency,
* the knobs and the report: ``enable_prefix_caching`` config parsing,
  scheduler resolution, and the prefix-hit statistics surfaced through
  :class:`~repro.serving.metrics.ServingReport`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import NovaConfig
from repro.core.decode import (
    ContinuousBatchScheduler,
    DecodeRequest,
    KVCacheOverflow,
    NovaDecodeEngine,
    SequenceMeta,
)
from repro.core.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    blocks_needed,
    prefix_block_keys,
    worst_case_blocks,
)

#: Small geometry shared by the engine-backed tests (module scope:
#: tables/schedules compile once, each test only runs data).
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)
ENGINE = NovaDecodeEngine(SMALL)


def shared_prefix_pair(
    prefix_tokens: int,
    suffix_tokens: int,
    new_tokens: int,
    *,
    hidden: int = 4,
    n_heads: int = 2,
    seed: int = 0,
    second_new_tokens: int | None = None,
):
    """Two decode requests sharing weights and a prompt prefix."""
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden)
    weights = {
        name: rng.normal(0.0, scale, size=(hidden, hidden))
        for name in ("wq", "wk", "wv", "wo")
    }
    prompt = prefix_tokens + suffix_tokens
    x = rng.normal(0.0, 1.0, size=(prompt, hidden))
    first = DecodeRequest(
        x=x, n_heads=n_heads, max_new_tokens=new_tokens,
        max_seq_len=prompt + new_tokens + 2, **weights,
    )
    x2 = x.copy()
    x2[prefix_tokens:] = rng.normal(0.0, 1.0, size=(suffix_tokens, hidden))
    second = DecodeRequest(
        x=x2, n_heads=n_heads,
        max_new_tokens=(
            new_tokens if second_new_tokens is None else second_new_tokens
        ),
        max_seq_len=prompt + new_tokens + 2, **weights,
    )
    return first, second


# ----------------------------------------------------------------------
# prefix_block_keys: the content-addressing scheme.
# ----------------------------------------------------------------------


class TestPrefixBlockKeys:
    def test_one_key_per_full_block(self):
        first, _ = shared_prefix_pair(8, 3, 0)
        keys = prefix_block_keys(first.x, first.wk, first.wv, 2, 4)
        assert len(keys) == len(first.x) // 4 == 2
        assert all(isinstance(key, bytes) for key in keys)

    def test_longer_prompt_extends_the_shorter_prompts_keys(self):
        """Keys chain over rows: equal leading rows give equal leading
        keys regardless of total prompt length — the property that lets
        different-length requests share a prefix."""
        first, _ = shared_prefix_pair(8, 0, 0)
        short = prefix_block_keys(first.x[:4], first.wk, first.wv, 2, 4)
        full = prefix_block_keys(first.x, first.wk, first.wv, 2, 4)
        assert full[: len(short)] == short

    def test_keys_ignore_wq_and_wo(self):
        """K/V rows depend only on x, wk, wv and the head split — so a
        request with different query/output projections can still adopt
        the cached rows bit for bit."""
        first, _ = shared_prefix_pair(8, 0, 0, seed=1)
        rng = np.random.default_rng(99)
        keys = prefix_block_keys(first.x, first.wk, first.wv, 2, 4)
        assert keys == prefix_block_keys(
            first.x, first.wk, first.wv, 2, 4
        )
        del rng  # wq/wo never enter the digest: same call, same keys.

    def test_keys_depend_on_rows_weights_heads_and_block_size(self):
        first, second = shared_prefix_pair(4, 4, 0, seed=2)
        base = prefix_block_keys(first.x, first.wk, first.wv, 2, 4)
        bumped_x = first.x.copy()
        bumped_x[0, 0] += 1.0
        assert prefix_block_keys(bumped_x, first.wk, first.wv, 2, 4) != base
        assert prefix_block_keys(
            first.x, first.wk + 1.0, first.wv, 2, 4
        ) != base
        assert prefix_block_keys(
            first.x, first.wk, first.wv + 1.0, 2, 4
        ) != base
        assert prefix_block_keys(first.x, first.wk, first.wv, 1, 4) != base
        assert prefix_block_keys(
            first.x, first.wk, first.wv, 2, 2
        )[:1] != base[:1]
        # The shared prefix of the pair yields equal leading keys even
        # though their suffixes (and hence later keys) differ.
        other = prefix_block_keys(second.x, second.wk, second.wv, 2, 4)
        assert other[0] == base[0] and other[1] != base[1]

    @given(
        n_rows=st.integers(1, 12),
        cut=st.integers(0, 12),
        bs=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60)
    def test_chaining_is_prefix_stable(self, n_rows, cut, bs, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n_rows, 3))
        wk = rng.normal(size=(3, 3))
        wv = rng.normal(size=(3, 3))
        cut = min(cut, n_rows)
        keys = prefix_block_keys(x, wk, wv, 1, bs)
        head = prefix_block_keys(x[:cut], wk, wv, 1, bs)
        assert keys[: len(head)] == head
        assert len(keys) == n_rows // bs
        assert len(set(keys)) == len(keys)


# ----------------------------------------------------------------------
# The tentpole property: any shared-prefix fork/append/truncate/evict
# program mirrors a non-sharing twin exactly and conserves blocks.
# ----------------------------------------------------------------------


@st.composite
def sharing_programs(draw):
    """A shared-prefix setup plus a random two-lane cache program."""
    n_heads = draw(st.integers(1, 2))
    head_dim = draw(st.integers(1, 3))
    bs = draw(st.integers(1, 5))
    prefix_blocks = draw(st.integers(1, 3))
    extra = draw(st.integers(0, bs - 1))
    prefix_tokens = prefix_blocks * bs + extra
    capacity = prefix_tokens + draw(st.integers(1, 8))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("append"), st.integers(0, 1)),
                st.tuples(
                    st.just("evict"), st.integers(0, 1), st.integers(0, 3)
                ),
                st.tuples(
                    st.just("truncate"), st.integers(0, 1),
                    st.integers(0, 3),
                ),
                st.just(("fork",)),
                st.tuples(st.just("reset"), st.integers(0, 1)),
            ),
            min_size=1,
            max_size=24,
        )
    )
    seed = draw(st.integers(0, 2**20))
    return (
        n_heads, head_dim, bs, prefix_blocks, prefix_tokens, capacity,
        ops, seed,
    )


class TestSharingMirrorsPrivatePool:
    @given(scenario=sharing_programs())
    @settings(max_examples=60, deadline=None)
    def test_any_program_matches_a_non_sharing_twin(self, scenario):
        """An adopting cache (and any fork of it) must stay observably
        identical to a cache on a private pool fed the same program —
        sharing is invisible except in residency — while both pools
        conserve blocks after every op and drain to zero at the end."""
        (
            n_heads, head_dim, bs, prefix_blocks, prefix_tokens, capacity,
            ops, seed,
        ) = scenario
        rng = np.random.default_rng(seed)
        keys = [f"prefix-{seed}-{i}".encode() for i in range(prefix_blocks)]
        prefix_rows = [
            (
                rng.normal(size=(n_heads, head_dim)),
                rng.normal(size=(n_heads, head_dim)),
            )
            for _ in range(prefix_tokens)
        ]
        # +1 block headroom per cache: a partially evicted head block
        # lets the tail straddle one extra block below capacity.
        per_cache = blocks_needed(capacity, bs) + 1
        shared_pool = BlockPool(
            n_heads, head_dim, bs,
            n_blocks=blocks_needed(prefix_tokens, bs) + 2 * per_cache,
        )
        private_pool = BlockPool(
            n_heads, head_dim, bs, n_blocks=2 * per_cache
        )

        publisher = PagedKVCache(shared_pool, capacity)
        publisher.adopt_prefix(keys)  # cold index: misses, keys stashed
        for k, v in prefix_rows:
            publisher.append(k, v)  # registers each block as it fills
        assert shared_pool.prefix_index_size == prefix_blocks

        adopter = PagedKVCache(shared_pool, capacity)
        assert adopter.adopt_prefix(keys) == prefix_blocks * bs
        mirror = PagedKVCache(private_pool, capacity)
        lanes = [(adopter, mirror)]
        for k, v in prefix_rows:
            adopter.append(k, v)  # skip-writes below prefix_len
            mirror.append(k, v)

        for op in ops:
            if op[0] == "fork":
                if len(lanes) < 2:
                    shared_c, private_c = lanes[0]
                    lanes.append((shared_c.fork(), private_c.fork()))
            else:
                shared_c, private_c = lanes[op[1] % len(lanes)]
                if op[0] == "append":
                    k = rng.normal(size=(n_heads, head_dim))
                    v = rng.normal(size=(n_heads, head_dim))
                    outcomes = []
                    for cache in (shared_c, private_c):
                        try:
                            cache.append(k, v)
                            outcomes.append("ok")
                        except KVCacheOverflow:
                            outcomes.append("overflow")
                    assert outcomes[0] == outcomes[1]
                elif op[0] == "evict":
                    n = min(op[2], shared_c.length)
                    shared_c.evict(n)
                    private_c.evict(n)
                elif op[0] == "truncate":
                    n = min(op[2], shared_c.length)
                    shared_c.truncate(n)
                    private_c.truncate(n)
                else:
                    shared_c.reset()
                    private_c.reset()
            for shared_c, private_c in lanes:
                assert shared_c.length == private_c.length
                assert shared_c.start_position == private_c.start_position
                assert shared_c.evictions == private_c.evictions
                assert np.array_equal(shared_c.keys, private_c.keys)
                assert np.array_equal(shared_c.values, private_c.values)
            for p in (shared_pool, private_pool):
                assert p.blocks_allocated - p.blocks_freed == p.in_use

        publisher.reset()
        for shared_c, private_c in lanes:
            shared_c.reset()
            private_c.reset()
        for p in (shared_pool, private_pool):
            assert p.in_use == 0
            assert p.live_tokens == 0
            assert p.blocks_allocated == p.blocks_freed
            assert p.shared_block_refs == 0
            assert p.prefix_index_size == 0


# ----------------------------------------------------------------------
# Shared-block error paths.
# ----------------------------------------------------------------------


class TestSharedBlockErrorPaths:
    def test_double_free_of_a_refcounted_block(self):
        """share/free/free drains the references; a third free is the
        classic double free and must raise, not corrupt the free list."""
        pool = BlockPool(1, 2, 4, n_blocks=2)
        block = pool.allocate()
        pool.share(block)
        pool.free(block)  # drops the shared reference
        assert pool.shared_frees == 1 and pool.blocks_freed == 0
        pool.free(block)  # the real free
        assert pool.blocks_freed == 1
        with pytest.raises(ValueError, match="double free"):
            pool.free(block)
        assert pool.in_use == 0 and pool.free_blocks == 2

    def test_sharing_a_freed_block_raises(self):
        pool = BlockPool(1, 2, 4, n_blocks=2)
        block = pool.allocate()
        pool.free(block)
        with pytest.raises(ValueError, match="only live blocks"):
            pool.share(block)

    def test_pool_exhausted_mid_cow_leaves_no_trace(self):
        """A copy-on-write append into a dry pool must raise
        BlockPoolExhausted with the cache and the pool bit-identical to
        before — no half-copied block, no moved counter."""
        pool = BlockPool(1, 2, 4, n_blocks=2)
        base = PagedKVCache(pool, 8)
        for i in range(6):
            row = np.full((1, 2), float(i))
            base.append(row, row)
        twin = base.fork()
        assert pool.free_blocks == 0
        before = (
            twin.length, twin.start_position, pool.in_use,
            pool.live_tokens, pool.cow_copies, pool.blocks_allocated,
            pool.blocks_freed,
        )
        row = np.full((1, 2), 9.0)
        with pytest.raises(BlockPoolExhausted):
            twin.append(row, row)  # slot 6 sits in the shared tail block
        after = (
            twin.length, twin.start_position, pool.in_use,
            pool.live_tokens, pool.cow_copies, pool.blocks_allocated,
            pool.blocks_freed,
        )
        assert after == before
        assert np.array_equal(twin.keys, base.keys)
        assert np.array_equal(twin.values, base.values)

    def test_truncate_through_a_shared_tail_leaves_the_twin_intact(self):
        pool = BlockPool(1, 2, 4, n_blocks=4)
        base = PagedKVCache(pool, 8)
        for i in range(6):
            row = np.full((1, 2), float(i))
            base.append(row, row)
        twin = base.fork()
        keys_before = base.keys.copy()
        twin.truncate(5)  # rolls back through the shared tail block
        assert twin.length == 1
        assert pool.shared_frees >= 1
        assert pool.blocks_freed == 0  # base still holds every block
        assert base.length == 6
        assert np.array_equal(base.keys, keys_before)
        # The twin's next append diverges inside the still-shared head
        # block: it must copy on write, never touch base's rows.
        row = np.full((1, 2), 7.0)
        twin.append(row, row)
        assert pool.cow_copies == 1
        assert np.array_equal(base.keys, keys_before)
        # keys is (n_heads, kv_len, head_dim): slot 1 diverged.
        assert twin.keys[0, 1, 0] == 7.0 and base.keys[0, 1, 0] == 1.0

    def test_evicting_a_shared_head_block_keeps_the_twin_alive(self):
        pool = BlockPool(1, 2, 4, n_blocks=4)
        base = PagedKVCache(pool, 8)
        for i in range(6):
            row = np.full((1, 2), float(i))
            base.append(row, row)
        twin = base.fork()
        keys_before = base.keys.copy()
        twin.evict(4)  # the whole head block leaves the twin's table
        assert twin.length == 2 and twin.evictions == 4
        assert pool.blocks_freed == 0  # a decref, not a physical free
        assert pool.shared_frees >= 1
        assert base.length == 6
        assert np.array_equal(base.keys, keys_before)


# ----------------------------------------------------------------------
# Adoption preconditions.
# ----------------------------------------------------------------------


class TestAdoptPrefix:
    def test_needs_a_fresh_cache(self):
        pool = BlockPool(1, 2, 4, n_blocks=2)
        cache = PagedKVCache(pool, 8)
        row = np.zeros((1, 2))
        cache.append(row, row)
        with pytest.raises(ValueError, match="fresh cache"):
            cache.adopt_prefix([b"key"])

    def test_rejects_windowed_caches(self):
        pool = BlockPool(1, 2, 4, n_blocks=3)
        cache = PagedKVCache(pool, 8, window=4)
        with pytest.raises(ValueError):
            cache.adopt_prefix([b"key"])

    def test_cold_index_adopts_nothing_and_counts_one_miss(self):
        pool = BlockPool(1, 2, 4, n_blocks=2)
        cache = PagedKVCache(pool, 8)
        assert cache.adopt_prefix([b"a", b"b"]) == 0
        assert cache.prefix_len == 0 and cache.length == 0
        assert pool.prefix_hits == 0 and pool.prefix_misses == 1

    def test_engine_start_with_prefix_needs_a_pool(self):
        first, _ = shared_prefix_pair(4, 0, 1)
        with pytest.raises(ValueError, match="needs a block pool"):
            ENGINE.start(first, prefix=True)

    def test_windowed_requests_skip_adoption_silently(self):
        first, _ = shared_prefix_pair(8, 0, 1)
        windowed = DecodeRequest(
            x=first.x, wq=first.wq, wk=first.wk, wv=first.wv, wo=first.wo,
            n_heads=first.n_heads, max_new_tokens=1,
            max_seq_len=first.max_seq_len, window=4,
        )
        pool = BlockPool(
            first.n_heads, first.head_dim, 4,
            n_blocks=worst_case_blocks(windowed.total_tokens, 4, 4),
        )
        state = ENGINE.start(windowed, pool=pool, prefix=True)
        assert state.cache.prefix_len == 0
        assert pool.prefix_hits == 0 and pool.prefix_misses == 0


# ----------------------------------------------------------------------
# Engine and scheduler integration: bit-exact at lower residency.
# ----------------------------------------------------------------------


def _pool_for(requests, block_size):
    first = requests[0]
    return BlockPool(
        first.n_heads, first.head_dim, block_size,
        n_blocks=sum(
            worst_case_blocks(r.total_tokens, r.window, block_size)
            for r in requests
        ),
    )


class TestPrefixCachedDecode:
    def test_adopting_runs_are_bit_exact_and_cheaper(self):
        first, second = shared_prefix_pair(8, 2, 3, seed=3)
        requests = (first, second)
        plain_pool = _pool_for(requests, 4)
        plain = [
            ENGINE.generate(r, state=ENGINE.start(r, pool=plain_pool))
            for r in requests
        ]
        shared_pool = _pool_for(requests, 4)
        shared = []
        for r in requests:
            state = ENGINE.start(r, pool=shared_pool, prefix=True)
            shared.append(ENGINE.generate(r, state=state))
        for got, want in zip(shared, plain):
            assert np.array_equal(got.generated, want.generated)
            assert got.vector_cycles == want.vector_cycles
            assert got.counters.as_dict() == want.counters.as_dict()
        assert shared_pool.prefix_hits == 2  # the 8-token shared prefix
        assert shared_pool.prefix_misses >= 1
        assert shared_pool.peak_in_use < plain_pool.peak_in_use

    def test_scheduler_prefix_caching_is_bit_exact(self):
        """Staggered arrivals let later siblings adopt the first
        request's resident prefix; every per-request result must stay
        bit-identical to the uncached run at lower peak residency."""
        first, second = shared_prefix_pair(8, 2, 3, seed=5)
        _, third = shared_prefix_pair(8, 2, 3, seed=5, second_new_tokens=2)
        requests = [first, second, third]
        # The siblings arrive after the first request's prefill step has
        # landed (cycle 1 is past any non-empty prefill's cost) but long
        # before it retires, so its registered blocks are adoptable.
        meta = [
            SequenceMeta(arrival=0.0),
            SequenceMeta(arrival=1.0),
            SequenceMeta(arrival=1.0),
        ]
        plain = ContinuousBatchScheduler(
            ENGINE, paged=True, block_size=4
        ).run(requests, meta=meta)
        cached = ContinuousBatchScheduler(
            ENGINE, paged=True, block_size=4, prefix_caching=True
        ).run(requests, meta=meta)
        for got, want in zip(cached.results, plain.results):
            assert np.array_equal(got.generated, want.generated)
            assert got.vector_cycles == want.vector_cycles
            assert got.counters.as_dict() == want.counters.as_dict()
        assert cached.paging["prefix_hits"] == 4  # two siblings, 2 blocks
        assert cached.paging["blocks_shared"] >= 4
        assert cached.peak_kv_slots < plain.peak_kv_slots
        assert cached.paging["in_use"] == 0  # retirement drained the pool
        assert cached.paging["blocks_allocated"] == cached.paging[
            "blocks_freed"
        ]

    def test_tight_pool_admits_sharing_requests_without_deferrals(self):
        """With a pool too small for two uncached worst cases, the
        uncached run must serialise (the sibling waits for the first
        request to retire) while the cached run overlaps them — same
        bits, earlier finish."""
        first, second = shared_prefix_pair(8, 2, 3, seed=7)
        requests = [first, second]
        meta = [SequenceMeta(arrival=0.0), SequenceMeta(arrival=1.0)]
        # first worst case: 15 tokens / 4 per block = 4 blocks; the
        # sibling needs 4 more uncached but only 2 beyond the shared
        # prefix when caching — 6 blocks covers the cached overlap only.
        pool_blocks = 6
        plain = ContinuousBatchScheduler(
            ENGINE, paged=True, block_size=4, pool_blocks=pool_blocks
        ).run(requests, meta=meta)
        cached = ContinuousBatchScheduler(
            ENGINE, paged=True, block_size=4, pool_blocks=pool_blocks,
            prefix_caching=True,
        ).run(requests, meta=meta)
        for got, want in zip(cached.results, plain.results):
            assert np.array_equal(got.generated, want.generated)
            assert got.counters.as_dict() == want.counters.as_dict()
        assert cached.deferrals == 0
        assert plain.deferrals >= 1
        assert cached.finish_times[1] < plain.finish_times[1]

    def test_dry_pool_admission_charges_only_unshared_blocks(self):
        """A request whose whole prompt is a resident prefix enters a
        completely dry pool: admission charges zero unshared blocks and
        its prefill allocates nothing."""
        # The first request's 12-token prompt fills 3 blocks and its
        # first decode step takes the 4th — from then on the pool is
        # dry while it generates.
        first, second = shared_prefix_pair(
            8, 4, 4, seed=11, second_new_tokens=0
        )
        fully_shared = DecodeRequest(
            x=second.x[:8], wq=second.wq, wk=second.wk, wv=second.wv,
            wo=second.wo, n_heads=second.n_heads, max_new_tokens=0,
            max_seq_len=second.max_seq_len,
        )
        solo = ContinuousBatchScheduler(
            ENGINE, paged=True, block_size=4, pool_blocks=4
        ).run([first])
        mid = (solo.first_token_times[0] + solo.finish_times[0]) / 2.0
        meta = [SequenceMeta(arrival=0.0), SequenceMeta(arrival=mid)]
        cached = ContinuousBatchScheduler(
            ENGINE, paged=True, block_size=4, pool_blocks=4,
            prefix_caching=True,
        ).run([first, fully_shared], meta=meta)
        plain = ContinuousBatchScheduler(
            ENGINE, paged=True, block_size=4, pool_blocks=4
        ).run([first, fully_shared], meta=meta)
        assert cached.paging["prefix_hits"] == 2
        # Dry-pool admission let the fully shared request overlap the
        # first; without sharing it can only start after retirement.
        assert cached.finish_times[1] < plain.finish_times[1]
        assert np.array_equal(
            cached.results[0].generated, plain.results[0].generated
        )
        assert cached.paging["in_use"] == 0


# ----------------------------------------------------------------------
# Knobs: the config field, scheduler resolution, the serving report.
# ----------------------------------------------------------------------


class TestPrefixCachingKnobs:
    def test_config_default_and_type_check(self):
        assert SMALL.enable_prefix_caching is False
        with pytest.raises(TypeError):
            NovaConfig(
                n_routers=2, neurons_per_router=8, enable_prefix_caching=1
            )

    @pytest.mark.parametrize(
        "text, value",
        [
            ("1", True), ("true", True), ("yes", True), ("on", True),
            ("0", False), ("false", False), ("no", False), ("off", False),
            ("TRUE", True), ("Off", False),
        ],
    )
    def test_override_string_parsing(self, text, value):
        cfg = SMALL.with_overrides([f"enable_prefix_caching={text}"])
        assert cfg.enable_prefix_caching is value

    def test_override_rejects_non_boolean_text(self):
        with pytest.raises(ValueError, match="enable_prefix_caching"):
            SMALL.with_overrides(["enable_prefix_caching=maybe"])

    def test_non_paged_scheduler_rejects_the_flag(self):
        with pytest.raises(ValueError, match="requires the paged"):
            ContinuousBatchScheduler(ENGINE, prefix_caching=True)

    def test_scheduler_resolves_the_config_knob(self):
        flagged = NovaDecodeEngine(SMALL.replace(enable_prefix_caching=True))
        assert ContinuousBatchScheduler(
            flagged, paged=True
        ).prefix_caching is True
        # The config knob never forces caching onto a contiguous run.
        assert ContinuousBatchScheduler(flagged).prefix_caching is False
        # An explicit False wins over the config.
        assert ContinuousBatchScheduler(
            flagged, paged=True, prefix_caching=False
        ).prefix_caching is False
        assert ContinuousBatchScheduler(
            ENGINE, paged=True, prefix_caching=True
        ).prefix_caching is True

    def test_serving_report_surfaces_prefix_stats(self):
        from repro.serving.frontdoor import FrontDoor, ServingRequest

        first, second = shared_prefix_pair(8, 2, 3, seed=13)
        door = FrontDoor(
            ENGINE, paged=True, block_size=4, prefix_caching=True
        )
        trace = [
            ServingRequest(request=first, arrival=0.0, request_id=0),
            ServingRequest(request=second, arrival=1.0, request_id=1),
        ]
        report = door.serve(trace)
        assert report.prefix_hits == 2
        assert report.blocks_shared >= 2
        assert 0.0 < report.prefix_hit_rate <= 1.0
        data = report.as_dict()
        for key in (
            "prefix_hits", "prefix_misses", "prefix_hit_rate",
            "blocks_shared", "cow_copies",
        ):
            assert key in data
        assert data["prefix_hit_rate"] == report.prefix_hit_rate

    def test_report_hit_rate_is_zero_without_lookups(self):
        from repro.serving.frontdoor import FrontDoor, ServingRequest

        first, _ = shared_prefix_pair(4, 0, 2)
        door = FrontDoor(ENGINE, paged=True)
        report = door.serve(
            [ServingRequest(request=first, request_id=0)]
        )
        assert report.prefix_hits == 0
        assert report.prefix_hit_rate == 0.0
