"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table, format_value


class TestFormatValue:
    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_bool_not_treated_as_int(self):
        assert format_value(True) == "True"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_small_float_scientific(self):
        assert "e" in format_value(1.23e-7)

    def test_normal_float(self):
        assert format_value(3.14159, precision=4) == "3.142"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "val"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert lines[0].startswith("name")

    def test_title_adds_ruler(self):
        out = format_table(["h"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert set(out.splitlines()[1]) == {"="}

    def test_numeric_right_aligned(self):
        out = format_table(["n"], [[1], [100]])
        rows = out.splitlines()[-2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_ratio_strings_stay_numericish(self):
        out = format_table(["r"], [["3.34x"], ["1.78x"]])
        assert "3.34x" in out
