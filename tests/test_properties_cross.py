"""Cross-cutting property tests: invariants that span modules.

These pin down the *relationships* the reproduction's conclusions rest
on: mapper schedules vs wire physics, cost-model monotonicity, scheduler
accounting, and the three-implementation equivalence under composed
randomness.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapper import NovaMapper
from repro.hw.costs import (
    nova_router_cost,
    per_core_lut_cost,
    per_neuron_lut_cost,
)
from repro.noc.link import RepeatedWire


@settings(max_examples=60)
@given(
    n_routers=st.integers(min_value=1, max_value=64),
    pe_ghz=st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
    n_pairs=st.sampled_from([4, 8, 16, 32]),
)
def test_mapper_schedule_invariants(n_routers, pe_ghz, n_pairs):
    """Every legal schedule satisfies the structural invariants."""
    schedule = NovaMapper().schedule(n_routers, pe_ghz, n_pairs)
    # beat count covers the table and is a power of two
    assert schedule.n_beats * 8 >= n_pairs
    assert schedule.n_beats & (schedule.n_beats - 1) == 0
    # the NoC clock is the beat-count multiple of the PE clock
    assert schedule.noc_frequency_ghz == pytest.approx(
        pe_ghz * schedule.n_beats
    )
    # traversal segmentation is consistent with the wire model
    assert (
        schedule.traversal_segments
        == -(-n_routers // schedule.max_hops_per_cycle)
    )
    # pipelined broadcast: beats + extra segments
    assert (
        schedule.noc_cycles_per_lookup
        == schedule.n_beats + schedule.traversal_segments - 1
    )
    # latency never beats the LUT baseline's 2 cycles
    assert schedule.total_latency_pe_cycles >= 2
    # single-cycle traversal implies baseline-equal latency
    if schedule.single_cycle_broadcast:
        assert schedule.total_latency_pe_cycles == 2
    # buffering routers are exactly the segment boundaries
    assert len(schedule.buffering_routers) == schedule.traversal_segments - 1


@settings(max_examples=40)
@given(
    freq=st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
    hop=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
)
def test_wire_reach_frequency_duality(freq, hop):
    """max_hops_per_cycle and max_frequency_ghz are consistent inverses."""
    wire = RepeatedWire()
    reach = wire.max_hops_per_cycle(freq, hop)
    if reach >= 1:
        # the clock that exactly fits `reach` hops is at least `freq`
        assert wire.max_frequency_ghz(reach, hop) >= freq * 0.999


@settings(max_examples=30)
@given(
    neurons=st.integers(min_value=1, max_value=512),
    freq=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
)
def test_cost_models_positive_and_frequency_linear(neurons, freq):
    """Cost sanity for arbitrary geometries: positive areas, power linear
    in frequency at fixed utilisation."""
    for cost_fn in (per_neuron_lut_cost, per_core_lut_cost):
        base = cost_fn(neurons, pe_frequency_ghz=freq)
        assert base.area_um2 > 0
        doubled = cost_fn(neurons, pe_frequency_ghz=2 * freq)
        assert doubled.dynamic_power_mw(1.0) == pytest.approx(
            2 * base.dynamic_power_mw(1.0)
        )
    nova = nova_router_cost(neurons, pe_frequency_ghz=freq)
    assert nova.area_um2 > 0


@settings(max_examples=30)
@given(neurons=st.integers(min_value=1, max_value=400))
def test_per_neuron_lut_strictly_linear_in_neurons(neurons):
    unit = per_neuron_lut_cost(neurons)
    single = per_neuron_lut_cost(1)
    assert unit.area_um2 == pytest.approx(neurons * single.area_um2)


@settings(max_examples=30)
@given(
    n=st.integers(min_value=2, max_value=256),
)
def test_per_core_beats_per_neuron_area_but_not_power(n):
    """The two baselines' defining trade-off holds at every scale >= 2:
    sharing the bank saves area; multi-porting costs read energy."""
    pn = per_neuron_lut_cost(n, pe_frequency_ghz=1.0)
    pc = per_core_lut_cost(n, pe_frequency_ghz=1.0)
    assert pc.area_um2 < pn.area_um2
    # energy per read grows with ports; at some n it overtakes — and it
    # must never be cheaper per read than the single-ported bank
    pc_read = pc.active_energy_breakdown_pj["sram_banks"] / n
    pn_read = pn.active_energy_breakdown_pj["sram_banks"] / n
    assert pc_read >= pn_read


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_queries=st.integers(1, 500),
)
def test_scheduler_cycles_match_lane_arithmetic(seed, n_queries):
    """TableScheduler compute cycles == ceil(queries / lanes), always."""
    from repro.approx.pwl import PiecewiseLinear
    from repro.approx.quantize import QuantizedPwl
    from repro.approx.functions import get_function
    from repro.core.table_scheduler import TableScheduler
    from repro.workloads.ops import NonLinearOp, OpGraph

    spec = get_function("exp")
    tables = {"exp": QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))}
    rng = np.random.default_rng(seed)
    n_lanes = int(rng.integers(1, 64))
    scheduler = TableScheduler(tables, n_lanes=n_lanes, unit_kind="nova")
    graph = OpGraph("g")
    graph.add(NonLinearOp("q", "exp", queries=n_queries))
    report = scheduler.schedule(graph)
    assert report.compute_cycles == -(-n_queries // n_lanes)
