"""Tests for the ASCII chart renderer."""

import pytest

from repro.eval.ascii_chart import bar_chart, multi_series_chart


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # the peak fills the width
        assert lines[0].count("#") == 5

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_unit_suffix(self):
        out = bar_chart(["x"], [3.0], unit="mW")
        assert out.endswith("3mW")

    def test_minimum_one_char_bar(self):
        out = bar_chart(["tiny", "huge"], [0.001, 1000.0], width=20)
        assert "#" in out.splitlines()[0]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_no_positive_values(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0])


class TestMultiSeries:
    def test_grouped_render(self):
        out = multi_series_chart(
            [16, 32],
            {"nova": [1.0, 2.0], "lut": [2.0, 4.0]},
            width=8,
        )
        lines = out.splitlines()
        assert lines[0] == "16:"
        assert len(lines) == 6  # 2 groups x (header + 2 bars)

    def test_shared_scale(self):
        out = multi_series_chart(
            ["x"], {"small": [1.0], "big": [10.0]}, width=10
        )
        lines = out.splitlines()
        assert lines[1].count("#") == 1
        assert lines[2].count("#") == 10

    def test_length_validation(self):
        with pytest.raises(ValueError):
            multi_series_chart(["a", "b"], {"s": [1.0]})
