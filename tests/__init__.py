"""Test package (importable so ``python -m tests.regen_goldens`` works)."""
