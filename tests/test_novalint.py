"""novalint (repro.analysis): per-rule fixtures, suppressions, reporters.

Each NV rule gets one *good* fixture (no finding) and one *bad* fixture
(exactly the expected finding), so a rule that silently stops firing —
or starts over-firing — fails here before it degrades the CI gate.  The
meta-test at the bottom is the gate itself: the shipped source tree must
be clean with **zero** suppressions in the strict-typed packages.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, main, render_json, run_lint
from repro.analysis.engine import module_name_of

REPO = Path(__file__).resolve().parent.parent

RULE_IDS = tuple(rule.rule_id for rule in ALL_RULES)


def lint_source(
    tmp_path: Path, source: str, relpath: str = "snippet.py"
) -> list:
    """Lint one in-memory module; returns its (possibly empty) findings."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    findings, n_files = run_lint([target], ALL_RULES)
    assert n_files == 1
    return findings


def rule_hits(findings: list, rule_id: str) -> list:
    return [
        f for f in findings if f.rule == rule_id and not f.suppressed
    ]


# ----------------------------------------------------------------------
# One good + one bad fixture per rule.
# ----------------------------------------------------------------------

# (rule id, path the fixture pretends to live at, bad source, good source)
FIXTURES = [
    (
        "NV001",
        "snippet.py",
        "import random\nx = random.random()\n",
        "from repro.utils.rng import make_rng\nr = make_rng(0)\n",
    ),
    (
        "NV001",
        "snippet_np.py",
        "import numpy as np\nx = np.random.rand(4)\n",
        "import numpy as np\nr = np.random.default_rng(0)\n",
    ),
    (
        "NV002",
        "repro/core/scheduler.py",
        "def grab(self):\n    return self.pool.allocate(1)\n",
        "def grab(self):\n    return self.cache.append(1)\n",
    ),
    (
        "NV002",
        "repro/core/engine.py",
        "def adopt(self):\n    return self.block_pool.share(3)\n",
        "def adopt(self):\n    return self.cache.adopt_prefix(self.keys)\n",
    ),
    (
        "NV002",
        "repro/serving/router.py",
        "def pin(self):\n"
        "    self.pool.register_prefix(b'k', 3)\n"
        "    self.pool.forget_prefix(3)\n"
        "    return self.pool.lookup_prefix(b'k')\n",
        "def pin(self):\n"
        "    return self.pool.probe_prefix(self.keys)\n",
    ),
    (
        "NV003",
        "snippet.py",
        "def is_half(x):\n    return x == 0.5\n",
        "def is_half(x):\n    return abs(x - 0.5) < 1e-12\n",
    ),
    (
        "NV004",
        "repro/core/session.py",
        'def poke(cfg):\n    object.__setattr__(cfg, "seed", 1)\n',
        'class C:\n    def __post_init__(self):\n'
        '        object.__setattr__(self, "seed", 1)\n',
    ),
    (
        "NV005",
        "snippet.py",
        "from repro.core.decode import NovaDecodeEngine\n"
        "e = NovaDecodeEngine(n_routers=4, neurons_per_router=64)\n",
        "from repro.core.decode import NovaDecodeEngine\n"
        'e = NovaDecodeEngine("jetson-nx")\n',
    ),
    (
        "NV006",
        "repro/core/decode.py",
        "def bump(self):\n    self.pool.blocks_allocated += 1\n",
        "def bump(self):\n    self.blocks_allocated += 1\n",
    ),
    (
        "NV007",
        "snippet.py",
        "class Cache:\n"
        "    def append(self, k):\n"
        '        """Atomic: failed appends leave no trace."""\n'
        "        self.length += 1\n"
        "        if k < 0:\n"
        '            raise ValueError("bad row")\n',
        "class Cache:\n"
        "    def append(self, k):\n"
        '        """Atomic: failed appends leave no trace."""\n'
        "        if k < 0:\n"
        '            raise ValueError("bad row")\n'
        "        self.length += 1\n",
    ),
    (
        "NV008",
        "repro/core/sim.py",
        "import time\n\ndef stamp():\n    return time.time()\n",
        "def stamp(clock):\n    return clock.now_cycles\n",
    ),
    (
        "NV009",
        "repro/core/kernels.py",
        "def table_gather_mac(self, unit, xs):\n"
        "    out = unit.table.lookup(xs)\n"
        "    unit.counters.add('mac_op', out.size)\n"
        "    unit.noc.charge_broadcasts(1, [out.size])\n"
        "    return out\n",
        "def table_gather_mac(self, table, xs):\n"
        "    slopes, biases, idx = table.gather(xs)\n"
        "    return table.output_format.mac(slopes, xs, biases), idx\n",
    ),
]


@pytest.mark.parametrize(
    "rule_id, relpath, bad, good",
    FIXTURES,
    ids=[f"{r}-{Path(p).stem}" for r, p, _, _ in FIXTURES],
)
def test_bad_fixture_fires_exactly(tmp_path, rule_id, relpath, bad, good):
    findings = lint_source(tmp_path, bad, relpath)
    hits = rule_hits(findings, rule_id)
    assert hits, f"{rule_id} failed to fire on its bad fixture"
    for hit in hits:
        assert hit.line >= 1 and hit.col >= 0
        assert hit.message


@pytest.mark.parametrize(
    "rule_id, relpath, bad, good",
    FIXTURES,
    ids=[f"{r}-{Path(p).stem}" for r, p, _, _ in FIXTURES],
)
def test_good_fixture_stays_clean(tmp_path, rule_id, relpath, bad, good):
    findings = lint_source(tmp_path, good, relpath)
    assert not rule_hits(findings, rule_id), (
        f"{rule_id} over-fired on its good fixture: "
        f"{[f.message for f in rule_hits(findings, rule_id)]}"
    )


def test_every_shipped_rule_has_a_fixture():
    covered = {rule_id for rule_id, _, _, _ in FIXTURES}
    assert covered == set(RULE_IDS)


def test_rule_ids_unique_and_well_formed():
    assert len(set(RULE_IDS)) == len(RULE_IDS)
    for rule in ALL_RULES:
        assert rule.rule_id.startswith("NV") and rule.title
        assert rule.severity in ("error", "warning")


# ----------------------------------------------------------------------
# Scoping: rules exempt the module that owns the invariant.
# ----------------------------------------------------------------------


def test_nv002_exempt_inside_paging(tmp_path):
    src = "def grab(self):\n    return self.pool.allocate(1)\n"
    findings = lint_source(tmp_path, src, "repro/core/paging.py")
    assert not rule_hits(findings, "NV002")


def test_nv008_only_in_simulation_paths(tmp_path):
    src = "import time\n\ndef stamp():\n    return time.time()\n"
    findings = lint_source(tmp_path, src, "repro/eval/bench.py")
    assert not rule_hits(findings, "NV008")


def test_nv008_covers_the_serving_package(tmp_path):
    # The front door's virtual clock (engine cycle counters) is the
    # only sanctioned time source in repro.serving: a wall-clock call
    # there is a finding, not an exemption.
    src = "import time\n\ndef stamp():\n    return time.time()\n"
    findings = lint_source(tmp_path, src, "repro/serving/frontdoor.py")
    assert rule_hits(findings, "NV008")


def test_module_name_of():
    assert module_name_of(Path("src/repro/core/paging.py")) == (
        "repro.core.paging"
    )
    assert module_name_of(Path("src/repro/core/__init__.py")) == "repro.core"
    assert module_name_of(Path("benchmarks/bench_decode.py")) is None


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------


def test_line_suppression_marks_not_drops(tmp_path):
    src = (
        "import random\n"
        "x = random.random()  # novalint: disable=NV001\n"
        "y = random.random()\n"
    )
    findings = lint_source(tmp_path, src)
    nv001 = [f for f in findings if f.rule == "NV001"]
    assert [f.suppressed for f in sorted(nv001, key=lambda f: f.line)] == [
        True,
        False,
    ]


def test_suppression_is_rule_specific(tmp_path):
    src = "import random\nx = random.random()  # novalint: disable=NV003\n"
    findings = lint_source(tmp_path, src)
    assert rule_hits(findings, "NV001")


def test_disable_all_and_comma_list(tmp_path):
    src = (
        "import random\n"
        "a = random.random()  # novalint: disable=all\n"
        "b = random.random()  # novalint: disable=NV001, NV003\n"
    )
    findings = lint_source(tmp_path, src)
    assert all(f.suppressed for f in findings if f.rule == "NV001")


def test_syntax_error_reports_nv999(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n")
    assert [f.rule for f in findings] == ["NV999"]
    assert findings[0].severity == "error"


# ----------------------------------------------------------------------
# Reporters and CLI.
# ----------------------------------------------------------------------


def test_json_report_schema(tmp_path):
    src = "import random\nx = random.random()\n"
    (tmp_path / "mod.py").write_text(src, encoding="utf-8")
    findings, n_files = run_lint([tmp_path], ALL_RULES)
    doc = json.loads(render_json(findings, n_files))
    assert doc["version"] == 1
    assert doc["files_checked"] == 1
    assert set(doc["summary"]) == {
        "findings", "suppressed", "errors", "warnings",
    }
    assert doc["summary"]["errors"] >= 1
    entry = doc["findings"][0]
    assert set(entry) >= {
        "rule", "severity", "path", "line", "col", "message", "suppressed",
    }
    assert entry["rule"] == "NV001"


def test_cli_exit_codes_and_output_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert main([str(clean)]) == 0

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n", encoding="utf-8")
    report = tmp_path / "report.json"
    assert main([str(dirty), "--format", "json",
                 "--output", str(report)]) == 1
    capsys.readouterr()
    doc = json.loads(report.read_text(encoding="utf-8"))
    assert doc["summary"]["errors"] >= 1

    assert main([str(tmp_path / "missing_dir")]) == 2


def test_warning_fails_only_under_strict(tmp_path, capsys):
    src = (
        "from repro.core.decode import NovaDecodeEngine\n"
        "e = NovaDecodeEngine(n_routers=4)\n"
    )
    mod = tmp_path / "legacy.py"
    mod.write_text(src, encoding="utf-8")
    assert main([str(mod)]) == 0
    capsys.readouterr()
    assert main([str(mod), "--strict"]) == 1


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro/analysis"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout


# ----------------------------------------------------------------------
# The gate: the shipped tree is clean, strict packages unsuppressed.
# ----------------------------------------------------------------------


def test_shipped_tree_has_no_unsuppressed_findings():
    findings, n_files = run_lint(
        [REPO / "src", REPO / "benchmarks", REPO / "examples"], ALL_RULES
    )
    assert n_files > 100
    offenders = [f for f in findings if not f.suppressed]
    assert not offenders, "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in offenders
    )


def test_strict_packages_carry_zero_suppressions():
    findings, _ = run_lint(
        [REPO / "src" / "repro" / "core", REPO / "src" / "repro" / "analysis"],
        ALL_RULES,
    )
    assert not findings, (
        "strict-typed packages must be clean without suppressions: "
        + "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}"
            + (" (suppressed)" if f.suppressed else "")
            for f in findings
        )
    )
