"""Unit tests for technology constants and the SRAM macro model."""

import pytest

from repro.hw.sram import SramMacroModel
from repro.hw.tech import TECH_22NM, TECH_28NM


class TestTechNode:
    def test_wire_energy_composition(self):
        t = TECH_22NM
        expected = (
            t.wire_activity * 0.5 * (t.wire_cap_ff_per_mm / 1000.0)
            * t.voltage_v ** 2 + t.repeater_pj_per_bit_per_mm
        )
        assert t.wire_energy_pj_per_bit_mm() == pytest.approx(expected)

    def test_wire_area_charge(self):
        t = TECH_22NM
        assert t.wire_area_um2_per_bit_mm() == pytest.approx(
            t.wire_track_pitch_um * 1000.0 * t.wire_area_charge
        )

    def test_scaling_to_28nm_grows_area(self):
        s = (28.0 / 22.0) ** 2
        assert TECH_28NM.nand2_area_um2 == pytest.approx(
            TECH_22NM.nand2_area_um2 * s
        )
        assert TECH_28NM.mac16_area_um2 > TECH_22NM.mac16_area_um2

    def test_scaling_grows_energy(self):
        # 28 nm at 0.9 V: higher voltage and larger caps
        assert TECH_28NM.mac16_pj > TECH_22NM.mac16_pj

    def test_scaled_name(self):
        assert TECH_28NM.name == "28nm@0.9V"


class TestSramMacro:
    def test_periphery_floor_dominates_tiny_macro(self):
        macro = SramMacroModel(capacity_bytes=64, n_ports=1)
        cells = 512 * TECH_22NM.sram_cell_um2_per_bit
        assert macro.area_um2() > 3 * cells  # periphery >> cells at 64 B

    def test_area_monotone_in_capacity(self):
        a64 = SramMacroModel(64, 1).area_um2()
        a256 = SramMacroModel(256, 1).area_um2()
        assert a256 > a64

    def test_area_monotone_in_ports(self):
        areas = [SramMacroModel(64, p).area_um2() for p in (1, 2, 8, 32, 128)]
        assert areas == sorted(areas)

    def test_multiport_superlinear(self):
        # doubling ports more than doubles the *added* area (quadratic cell
        # growth), the structural driver of the per-core baseline's cost
        a1 = SramMacroModel(64, 1).area_um2()
        a32 = SramMacroModel(64, 32).area_um2()
        a64 = SramMacroModel(64, 64).area_um2()
        assert (a64 - a1) > 2.0 * (a32 - a1) * 0.9

    def test_read_energy_monotone_in_ports(self):
        energies = [
            SramMacroModel(64, p).read_energy_pj() for p in (1, 16, 64, 256)
        ]
        assert energies == sorted(energies)

    def test_read_energy_baseline(self):
        macro = SramMacroModel(64, 1)
        assert macro.read_energy_pj() == pytest.approx(
            TECH_22NM.sram_read_pj_base
        )

    def test_read_energy_grows_with_capacity(self):
        assert (
            SramMacroModel(256, 1).read_energy_pj()
            > SramMacroModel(64, 1).read_energy_pj()
        )

    def test_leakage_proportional_to_area(self):
        macro = SramMacroModel(64, 1)
        assert macro.leakage_mw() == pytest.approx(
            macro.area_um2() * 1e-6 * TECH_22NM.leakage_mw_per_mm2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SramMacroModel(0, 1)
        with pytest.raises(ValueError):
            SramMacroModel(64, 0)
