"""Unit tests for repro.utils.validation and repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
)


class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    def test_check_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -0.5)

    def test_check_power_of_two(self):
        for good in (1, 2, 4, 8, 1024):
            check_power_of_two("x", good)
        for bad in (0, 3, 6, -4):
            with pytest.raises(ValueError):
                check_power_of_two("x", bad)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        check_in_range("x", 0, 0, 10)
        check_in_range("x", 10, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(8)
        b = make_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "dataset") == derive_seed(7, "dataset")

    def test_derive_seed_distinguishes_components(self):
        assert derive_seed(7, "dataset") != derive_seed(7, "model")

    def test_derive_seed_distinguishes_base(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_derive_seed_accepts_ints(self):
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)
