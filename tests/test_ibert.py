"""Tests for the I-BERT integer-only baseline kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.functions import gelu as exact_gelu
from repro.approx.ibert import (
    IntQuantizer,
    i_erf,
    i_exp,
    i_gelu,
    i_poly,
    ibert_exp,
    ibert_gelu,
)


class TestQuantizer:
    def test_round_trip_error_bounded(self):
        q = IntQuantizer(bits=16)
        x = np.linspace(-4, 4, 1001)
        codes, scale = q.quantize(x, max_abs=4.0)
        assert np.max(np.abs(codes * scale - x)) <= scale / 2 + 1e-12

    def test_integer_output(self):
        q = IntQuantizer(bits=8)
        codes, _ = q.quantize(np.array([0.3, -0.7]), max_abs=1.0)
        assert codes.dtype == np.int64

    def test_saturation(self):
        q = IntQuantizer(bits=8)
        codes, scale = q.quantize(np.array([100.0]), max_abs=1.0)
        assert codes[0] == 127

    def test_validation(self):
        with pytest.raises(ValueError):
            IntQuantizer(bits=1)
        with pytest.raises(ValueError):
            IntQuantizer().quantize(np.zeros(1), max_abs=0.0)


class TestIPoly:
    def test_matches_float_polynomial(self):
        x = np.linspace(-0.6, 0.0, 101)
        q, scale = IntQuantizer(16).quantize(x, max_abs=1.0)
        a, b, c = 0.35815147, 1.353, 0.344
        q_out, out_scale = i_poly(q, scale, a, b, c)
        approx = q_out * out_scale
        exact = a * (x + b) ** 2 + c
        assert np.max(np.abs(approx - exact)) < 1e-3

    def test_integers_throughout(self):
        q, scale = IntQuantizer(16).quantize(np.array([-0.3]), max_abs=1.0)
        q_out, _ = i_poly(q, scale, 0.3585, 1.353, 0.344)
        assert q_out.dtype == np.int64


class TestIExp:
    def test_error_vs_float_exp(self):
        xs = np.linspace(-16, 0, 2048)
        err = np.max(np.abs(ibert_exp(xs) - np.exp(xs)))
        assert err < 0.005  # I-BERT-grade accuracy

    def test_positive_inputs_rejected(self):
        q, scale = IntQuantizer(16).quantize(np.array([-1.0]), max_abs=16.0)
        with pytest.raises(ValueError):
            i_exp(np.array([5]), scale)

    def test_monotone_non_increasing_in_magnitude(self):
        xs = np.linspace(-10, 0, 256)
        ys = ibert_exp(xs)
        # exp is increasing on (-inf, 0]; allow quantisation plateaus
        assert np.all(np.diff(ys) >= -1e-6)

    def test_range_reduction_correct_at_ln2_multiples(self):
        ln2 = float(np.log(2.0))
        xs = np.array([-ln2, -2 * ln2, -3 * ln2])
        ys = ibert_exp(xs)
        assert np.allclose(ys, np.exp(xs), atol=5e-3)

    def test_integer_only_property(self):
        xs = np.linspace(-8, 0, 64)
        q, scale = IntQuantizer(16).quantize(xs, max_abs=16.0)
        q_out, out_scale = i_exp(q, scale)
        assert q_out.dtype == np.int64
        recovered = q_out * out_scale
        assert np.max(np.abs(recovered - np.exp(xs))) < 0.005


class TestIGelu:
    def test_error_vs_float_gelu(self):
        xs = np.linspace(-8, 8, 2048)
        err = np.max(np.abs(ibert_gelu(xs) - exact_gelu(xs)))
        assert err < 0.05

    def test_odd_symmetry_of_erf(self):
        q, scale = IntQuantizer(16).quantize(
            np.array([-1.0, 1.0]), max_abs=4.0
        )
        q_out, _ = i_erf(q, scale)
        assert q_out[0] == -q_out[1]

    def test_gelu_tails(self):
        # gelu(x) ~ x for large x, ~0 for very negative x
        assert abs(ibert_gelu(np.array([7.5]))[0] - 7.5) < 0.05
        assert abs(ibert_gelu(np.array([-7.5]))[0]) < 0.05

    def test_integer_only_property(self):
        xs = np.linspace(-4, 4, 64)
        q, scale = IntQuantizer(16).quantize(xs, max_abs=8.0)
        q_out, out_scale = i_gelu(q, scale)
        assert q_out.dtype == np.int64


class TestLaneCost:
    def test_ibert_lane_bigger_than_nova_lane(self):
        """The paper's §VI claim, now computed with one component model:
        the integer pipeline out-costs NOVA's comparator+tag+MAC lane."""
        from repro.hw.costs import ibert_lane_cost, nova_router_cost

        ibert = ibert_lane_cost()
        nova = nova_router_cost(128, pe_frequency_ghz=1.0, hop_mm=0.5)
        nova_lane_area = nova.area_um2 / 128
        assert ibert.area_um2 > nova_lane_area
        nova_lane_energy = nova.cycle_energy_pj / 128
        assert ibert.cycle_energy_pj > nova_lane_energy

    def test_ibert_lane_in_paper_band(self):
        from repro.hw.costs import ibert_lane_cost

        ibert = ibert_lane_cost()
        # paper Table IV: 2941 um2; our component model must land within 2x
        assert 0.5 < ibert.area_um2 / 2941.0 < 2.0


@settings(max_examples=30)
@given(
    st.floats(min_value=-15.9, max_value=0.0, allow_nan=False),
)
def test_i_exp_pointwise_error_property(x):
    err = abs(float(ibert_exp(np.array([x]))[0]) - np.exp(x))
    assert err < 0.01
