"""Tests for the pluggable scheduling policies (repro.serving.policies).

The headline contracts:

* the policy refactor is a provable **no-op for default callers**: a
  scheduler run with no policy is byte-identical — results, cycles,
  counters, step timing — to one with an explicit ``FCFS()`` (the
  existing goldens separately pin both to the pre-policy scheduler);
* every policy preserves per-request bit-exactness against solo
  ``generate`` — scheduling moves *when* work happens, never what it
  computes — including across priority preemption and recomputation;
* each policy's decision rule does what its name says (admission
  order, preemption victims, per-tenant caps);
* a policy that names sequences it was never given fails loudly.
"""

import numpy as np
import pytest

from repro.core.config import NovaConfig
from repro.core.decode import (
    ContinuousBatchScheduler,
    NovaDecodeEngine,
    SequenceMeta,
)
from repro.serving.policies import (
    FCFS,
    POLICIES,
    PriorityPreemptive,
    SLOAware,
    TenantFair,
    build_policy,
)
from repro.workloads.transformer import TransformerConfig, decode_request

#: Small geometry for fast unit-level checks.
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)


def toy_model(hidden=16, heads=2, seq_len=64):
    return TransformerConfig(
        "toy", layers=1, hidden=hidden, heads=heads,
        intermediate=4 * hidden, seq_len=seq_len, causal=True,
    )


def toy_request(prompt_len=4, max_new_tokens=3, seed=0):
    return decode_request(
        toy_model(), prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed,
    )


def batch(n, max_new_tokens=3):
    return [toy_request(seed=i, max_new_tokens=max_new_tokens)
            for i in range(n)]


# ----------------------------------------------------------------------
# The FCFS pin: refactor is a no-op for default callers.
# ----------------------------------------------------------------------


class TestFCFSPin:
    def test_default_policy_is_fcfs(self):
        scheduler = ContinuousBatchScheduler(NovaDecodeEngine(SMALL))
        assert scheduler.policy.name == "fcfs"

    @pytest.mark.parametrize("paged", [False, True])
    def test_default_run_identical_to_explicit_fcfs(self, paged):
        engine = NovaDecodeEngine(SMALL)
        requests = batch(4)
        default = ContinuousBatchScheduler(
            engine, max_active=2, paged=paged
        ).run(requests)
        explicit = ContinuousBatchScheduler(
            engine, max_active=2, paged=paged, policy=FCFS()
        ).run(requests)
        assert default.packed_vector_cycles == explicit.packed_vector_cycles
        assert default.scheduler_steps == explicit.scheduler_steps
        assert default.step_cycles == explicit.step_cycles
        assert default.first_token_steps == explicit.first_token_steps
        assert default.finish_steps == explicit.finish_steps
        assert default.first_token_times == explicit.first_token_times
        assert default.finish_times == explicit.finish_times
        assert default.counters.as_dict() == explicit.counters.as_dict()
        for a, b in zip(default.results, explicit.results):
            assert np.array_equal(a.generated, b.generated)
            assert a.vector_cycles == b.vector_cycles
            assert a.counters.as_dict() == b.counters.as_dict()

    def test_serial_completion_in_submission_order(self):
        # max_active=1 serializes the run: FCFS must finish requests
        # exactly in submission order (the pinned admission ordering).
        engine = NovaDecodeEngine(SMALL)
        result = ContinuousBatchScheduler(engine, max_active=1).run(batch(3))
        assert list(result.finish_steps) == sorted(result.finish_steps)
        assert list(result.first_token_steps) == (
            sorted(result.first_token_steps)
        )


# ----------------------------------------------------------------------
# PriorityPreemptive.
# ----------------------------------------------------------------------


class TestPriorityPreemptive:
    def test_high_priority_admitted_first(self):
        engine = NovaDecodeEngine(SMALL)
        requests = batch(2)
        meta = [SequenceMeta(priority=0), SequenceMeta(priority=5)]
        result = ContinuousBatchScheduler(
            engine, max_active=1, policy=PriorityPreemptive()
        ).run(requests, meta=meta)
        assert result.first_token_steps[1] < result.first_token_steps[0]

    def test_priority_arrival_preempts_and_stays_bit_exact(self):
        engine = NovaDecodeEngine(SMALL)
        long_job = toy_request(seed=0, max_new_tokens=40)
        urgent = toy_request(seed=1, max_new_tokens=2)
        meta = [
            SequenceMeta(arrival=0.0, priority=0),
            SequenceMeta(arrival=20.0, priority=5),
        ]
        result = ContinuousBatchScheduler(
            engine, max_active=1, policy=PriorityPreemptive()
        ).run([long_job, urgent], meta=meta)
        # The urgent arrival displaced the long job mid-flight...
        assert result.preemptions == 1
        assert result.finish_steps[1] < result.finish_steps[0]
        # ...and recomputation kept both requests solo-exact.
        for request, got in zip([long_job, urgent], result.results):
            ref = engine.generate(request)
            assert np.array_equal(got.generated, ref.generated)
            assert got.vector_cycles == ref.vector_cycles
            assert got.counters.as_dict() == ref.counters.as_dict()

    def test_equal_priorities_never_preempt(self):
        engine = NovaDecodeEngine(SMALL)
        requests = batch(3)
        meta = [SequenceMeta(arrival=float(10 * i)) for i in range(3)]
        result = ContinuousBatchScheduler(
            engine, max_active=1, policy=PriorityPreemptive()
        ).run(requests, meta=meta)
        assert result.preemptions == 0


# ----------------------------------------------------------------------
# SLOAware.
# ----------------------------------------------------------------------


class TestSLOAware:
    def test_earliest_deadline_admitted_first(self):
        engine = NovaDecodeEngine(SMALL)
        requests = batch(3)
        meta = [
            SequenceMeta(deadline=900.0),
            SequenceMeta(deadline=50.0),
            SequenceMeta(deadline=400.0),
        ]
        result = ContinuousBatchScheduler(
            engine, max_active=1, policy=SLOAware()
        ).run(requests, meta=meta)
        order = sorted(
            range(3), key=lambda i: result.first_token_steps[i]
        )
        assert order == [1, 2, 0]

    def test_no_deadline_queues_behind_deadlined(self):
        engine = NovaDecodeEngine(SMALL)
        requests = batch(2)
        meta = [SequenceMeta(), SequenceMeta(deadline=800.0)]
        result = ContinuousBatchScheduler(
            engine, max_active=1, policy=SLOAware()
        ).run(requests, meta=meta)
        assert result.first_token_steps[1] < result.first_token_steps[0]


# ----------------------------------------------------------------------
# TenantFair.
# ----------------------------------------------------------------------


class TestTenantFair:
    def test_least_loaded_tenant_admitted_first(self):
        engine = NovaDecodeEngine(SMALL)
        requests = batch(3)
        meta = [
            SequenceMeta(tenant="a"),
            SequenceMeta(tenant="a"),
            SequenceMeta(tenant="b"),
        ]
        result = ContinuousBatchScheduler(
            engine, max_active=2, policy=TenantFair()
        ).run(requests, meta=meta)
        # Slots fill with one request per tenant first: the second "a"
        # request waits behind the later-submitted "b" request.
        assert result.first_token_steps[2] < result.first_token_steps[1]

    def test_per_tenant_cap_limits_concurrency(self):
        engine = NovaDecodeEngine(SMALL)
        requests = batch(3)
        meta = [SequenceMeta(tenant="a") for _ in range(3)]
        result = ContinuousBatchScheduler(
            engine, max_active=2,
            policy=TenantFair(max_active_per_tenant=1),
        ).run(requests, meta=meta)
        # Free slots stay empty rather than exceed the tenant cap.
        assert result.peak_active == 1

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="max_active_per_tenant"):
            TenantFair(max_active_per_tenant=0)


# ----------------------------------------------------------------------
# Every policy: bit-exact against solo generate.
# ----------------------------------------------------------------------


class TestSoloExactness:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    @pytest.mark.parametrize("paged", [False, True])
    def test_policy_outputs_solo_exact(self, name, paged):
        engine = NovaDecodeEngine(SMALL)
        requests = [
            toy_request(seed=i, max_new_tokens=2 + i) for i in range(4)
        ]
        meta = [
            SequenceMeta(
                arrival=float(5 * i),
                priority=i % 2,
                tenant="ab"[i % 2],
                deadline=200.0 + 100.0 * i,
            )
            for i in range(4)
        ]
        result = ContinuousBatchScheduler(
            engine, max_active=2, paged=paged, policy=POLICIES[name]()
        ).run(requests, meta=meta)
        for request, got in zip(requests, result.results):
            ref = engine.generate(request)
            assert np.array_equal(got.generated, ref.generated)
            assert got.vector_cycles == ref.vector_cycles
            assert got.counters.as_dict() == ref.counters.as_dict()


# ----------------------------------------------------------------------
# Policy protocol violations fail loudly.
# ----------------------------------------------------------------------


class BadAdmitter(FCFS):
    """Admits a sequence that is already in flight."""

    name = "bad-admitter"

    def admit_next(self, waiting, in_flight, now):
        if in_flight:
            return in_flight[0]
        return super().admit_next(waiting, in_flight, now)


class BadPreemptor(FCFS):
    """Names a waiting sequence as a preemption victim."""

    name = "bad-preemptor"

    def preemptions(self, waiting, active, now, free_slots):
        return [waiting[0]] if waiting and active else []


class RetiredStepper(FCFS):
    """Schedules a sequence that already retired."""

    name = "retired-stepper"

    def __init__(self):
        self.seen = None

    def step_order(self, active, now):
        if self.seen is not None and active and self.seen not in active:
            return [self.seen]
        if active:
            self.seen = active[0]
        return list(active)


class TestPolicyValidation:
    def test_admitting_non_waiting_sequence_raises(self):
        engine = NovaDecodeEngine(SMALL)
        with pytest.raises(ValueError, match="bad-admitter"):
            ContinuousBatchScheduler(
                engine, max_active=2, policy=BadAdmitter()
            ).run(batch(2))

    def test_preempting_non_active_sequence_raises(self):
        engine = NovaDecodeEngine(SMALL)
        meta = [SequenceMeta(arrival=0.0), SequenceMeta(arrival=0.0)]
        with pytest.raises(ValueError, match="bad-preemptor"):
            ContinuousBatchScheduler(
                engine, max_active=1, policy=BadPreemptor()
            ).run(batch(2), meta=meta)

    def test_stepping_retired_sequence_raises(self):
        engine = NovaDecodeEngine(SMALL)
        with pytest.raises(ValueError, match="retired-stepper"):
            ContinuousBatchScheduler(
                engine, max_active=1, policy=RetiredStepper()
            ).run(batch(2))

    def test_meta_length_mismatch_raises(self):
        engine = NovaDecodeEngine(SMALL)
        with pytest.raises(ValueError, match="SequenceMeta entries"):
            ContinuousBatchScheduler(engine).run(
                batch(2), meta=[SequenceMeta()]
            )


# ----------------------------------------------------------------------
# Registry / construction.
# ----------------------------------------------------------------------


class TestBuildPolicy:
    def test_resolves_every_registered_name(self):
        for name in POLICIES:
            assert build_policy(name).name == name

    def test_passes_policy_objects_through(self):
        policy = TenantFair(max_active_per_tenant=2)
        assert build_policy(policy) is policy

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="slo-aware"):
            build_policy("round-robin")

    def test_sequence_meta_validation(self):
        with pytest.raises(ValueError, match="arrival"):
            SequenceMeta(arrival=-1.0)
        with pytest.raises(ValueError, match="deadline"):
            SequenceMeta(arrival=10.0, deadline=10.0)
