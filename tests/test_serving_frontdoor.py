"""Tests for the async front door, metrics and workload generator.

The headline contracts:

* the virtual clock is real: arrivals gate admission, idle gaps jump
  to the next arrival, per-request TTFT/latency are measured from
  arrival on the same clock the cycle counters drive;
* the per-request step timing satellite: ``first_token_steps`` /
  ``finish_steps`` / ``step_cycles`` on
  :class:`~repro.core.decode.ContinuousBatchResult` are populated and
  self-consistent (``sum(step_cycles) == packed_vector_cycles``);
* the report is honest arithmetic (nearest-rank percentiles, deadline
  accounting, goodput) and round-trips through JSON;
* traces from :mod:`repro.serving.arrivals` are pure functions of
  their seed, heavy-tailed within bounds, and strict-typing-friendly;
* ``NovaSession.serve_async`` is the same machinery end to end.
"""

import json

import numpy as np
import pytest

from repro.core.config import NovaConfig
from repro.core.decode import ContinuousBatchScheduler, NovaDecodeEngine
from repro.core.session import NovaSession
from repro.serving import (
    FrontDoor,
    ServingRequest,
    bounded_pareto,
    build_trace,
    bursty_arrivals,
    estimate_cycles_per_token,
    percentile,
    poisson_arrivals,
)
from repro.utils.rng import make_rng
from repro.workloads.transformer import TransformerConfig, decode_request

#: Small geometry for fast unit-level checks.
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)


def toy_model(hidden=16, heads=2, seq_len=64):
    return TransformerConfig(
        "toy", layers=1, hidden=hidden, heads=heads,
        intermediate=4 * hidden, seq_len=seq_len, causal=True,
    )


def toy_request(prompt_len=4, max_new_tokens=3, seed=0):
    return decode_request(
        toy_model(), prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed,
    )


# ----------------------------------------------------------------------
# Per-request step timing on ContinuousBatchResult (the satellite).
# ----------------------------------------------------------------------


class TestStepTiming:
    def test_step_timing_populated_and_consistent(self):
        engine = NovaDecodeEngine(SMALL)
        requests = [toy_request(seed=i) for i in range(3)]
        result = ContinuousBatchScheduler(engine, max_active=2).run(requests)
        n = len(requests)
        assert len(result.first_token_steps) == n
        assert len(result.finish_steps) == n
        assert len(result.first_token_times) == n
        assert len(result.finish_times) == n
        assert len(result.step_cycles) == result.scheduler_steps
        assert sum(result.step_cycles) == result.packed_vector_cycles
        for i in range(n):
            assert 0 <= result.first_token_steps[i] <= result.finish_steps[i]
            assert result.finish_steps[i] < result.scheduler_steps
            assert 0.0 < result.first_token_times[i] <= (
                result.finish_times[i]
            )

    def test_virtual_clock_gates_arrivals_and_skips_idle(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine, max_active=2)
        door.submit(toy_request(seed=0), arrival=0.0)
        door.submit(toy_request(seed=1), arrival=1000.0)  # far future
        report = door.serve()
        first, second = report.requests
        # The second request cannot start before it arrives; the idle
        # gap between the first finishing and the second arriving is
        # jumped, not busy-waited (its TTFT stays small).
        assert second.arrival == 1000.0
        assert second.first_token_step > first.finish_step
        assert second.ttft < 1000.0
        result = door.last_result
        assert result is not None
        assert max(result.finish_times) == report.makespan_cycles

    def test_ttft_measured_from_arrival(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine, max_active=1)
        door.submit(toy_request(seed=0), arrival=50.0)
        report = door.serve()
        result = door.last_result
        assert result is not None
        r = report.requests[0]
        assert r.ttft == result.first_token_times[0] - 50.0
        assert r.latency == result.finish_times[0] - 50.0
        assert r.ttft > 0.0
        assert r.latency >= r.ttft


# ----------------------------------------------------------------------
# FrontDoor submission and serving.
# ----------------------------------------------------------------------


class TestFrontDoor:
    def test_submit_assigns_sequential_ids_and_drains(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine)
        a = door.submit(toy_request(seed=0))
        b = door.submit(toy_request(seed=1), arrival=5.0, tenant="t")
        assert (a.request_id, b.request_id) == (0, 1)
        assert len(door.pending) == 2
        report = door.serve()
        assert door.pending == ()
        assert [r.request_id for r in report.requests] == [0, 1]
        with pytest.raises(ValueError, match="no requests"):
            door.serve()

    def test_explicit_trace_leaves_pending_untouched(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine)
        door.submit(toy_request(seed=0))
        trace = [
            ServingRequest(request=toy_request(seed=1), request_id=7)
        ]
        report = door.serve(trace)
        assert [r.request_id for r in report.requests] == [7]
        assert len(door.pending) == 1

    def test_duplicate_request_ids_rejected(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine)
        trace = [
            ServingRequest(request=toy_request(seed=i), request_id=3)
            for i in range(2)
        ]
        with pytest.raises(ValueError, match="unique"):
            door.serve(trace)

    def test_report_requests_in_submission_order(self):
        # Arrival order differs from submission order: the report must
        # come back keyed and sorted by submission id regardless.
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine, max_active=1)
        door.submit(toy_request(seed=0), arrival=90.0)
        door.submit(toy_request(seed=1), arrival=10.0)
        report = door.serve()
        assert [r.request_id for r in report.requests] == [0, 1]
        assert report.requests[1].first_token_step < (
            report.requests[0].first_token_step
        )

    def test_last_results_maps_back_to_submission_ids(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine, max_active=1)
        door.submit(toy_request(seed=0), arrival=90.0)
        door.submit(toy_request(seed=1), arrival=10.0)
        door.serve()
        outputs = door.last_results()
        assert set(outputs) == {0, 1}
        for i, seed in enumerate(range(2)):
            ref = engine.generate(toy_request(seed=seed))
            assert np.array_equal(outputs[i].generated, ref.generated)

    def test_last_results_before_any_serve_raises(self):
        door = FrontDoor(NovaDecodeEngine(SMALL))
        with pytest.raises(RuntimeError, match="no serve"):
            door.last_results()

    def test_serving_request_validation(self):
        with pytest.raises(ValueError, match="arrival"):
            ServingRequest(request=toy_request(), arrival=-1.0)
        with pytest.raises(ValueError, match="deadline"):
            ServingRequest(request=toy_request(), arrival=5.0, deadline=5.0)

    def test_unknown_policy_name_raises_at_construction(self):
        with pytest.raises(KeyError, match="available"):
            FrontDoor(NovaDecodeEngine(SMALL), policy="lifo")


# ----------------------------------------------------------------------
# Metrics arithmetic.
# ----------------------------------------------------------------------


class TestMetrics:
    def test_percentile_is_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 25.0) == 10.0
        assert percentile(values, 50.0) == 20.0
        assert percentile(values, 75.0) == 30.0
        assert percentile(values, 99.0) == 40.0
        assert percentile(values, 100.0) == 40.0
        assert percentile([7.0], 99.0) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="pct"):
            percentile([1.0], 101.0)

    def test_deadline_accounting_and_goodput(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine, max_active=2)
        door.submit(toy_request(seed=0), deadline=10_000.0)  # loose: met
        door.submit(toy_request(seed=1), deadline=1e-9 + 0.0)  # never
        report = door.serve()
        met, missed = report.requests
        assert met.met_deadline and not missed.met_deadline
        assert report.slo_attainment == 0.5
        good = met.tokens * 1000.0 / report.makespan_cycles
        assert report.goodput_tokens_per_kcycle == pytest.approx(good)
        assert report.throughput_tokens_per_kcycle > (
            report.goodput_tokens_per_kcycle
        )

    def test_no_deadline_always_counts_as_met(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine)
        door.submit(toy_request(seed=0))
        report = door.serve()
        assert report.slo_attainment == 1.0
        assert report.requests[0].deadline is None

    def test_report_round_trips_through_json(self):
        engine = NovaDecodeEngine(SMALL)
        door = FrontDoor(engine, policy="slo-aware")
        door.submit(toy_request(seed=0), tenant="a", deadline=9000.0)
        door.submit(toy_request(seed=1), tenant="b")
        report = door.serve()
        doc = json.loads(report.to_json())
        assert doc["policy"] == "slo-aware"
        assert doc["n_requests"] == 2
        assert doc["p99_ttft"] == report.p99_ttft
        assert doc["goodput_tokens_per_kcycle"] == (
            report.goodput_tokens_per_kcycle
        )
        assert [r["request_id"] for r in doc["requests"]] == [0, 1]
        assert doc["tenant_tokens"] == {"a": 3, "b": 3}
        assert doc["total_tokens"] == report.total_tokens


# ----------------------------------------------------------------------
# Workload generator.
# ----------------------------------------------------------------------


class TestArrivals:
    def test_bounded_pareto_respects_bounds_and_tail(self):
        rng = make_rng(0)
        draws = bounded_pareto(rng, 500, alpha=1.05, lo=2, hi=48)
        assert len(draws) == 500
        assert all(2 <= d <= 48 for d in draws)
        # Heavy tail: mass at the bottom, but the top of the range is
        # actually reached.
        assert sorted(draws)[len(draws) // 2] <= 6
        assert max(draws) >= 40

    def test_bounded_pareto_degenerate_and_invalid(self):
        rng = make_rng(0)
        assert bounded_pareto(rng, 3, alpha=1.0, lo=5, hi=5) == [5, 5, 5]
        with pytest.raises(ValueError, match="alpha"):
            bounded_pareto(rng, 1, alpha=0.0, lo=1, hi=2)
        with pytest.raises(ValueError, match="lo"):
            bounded_pareto(rng, 1, alpha=1.0, lo=4, hi=2)

    def test_arrival_processes_are_sorted_and_sized(self):
        rng = make_rng(1)
        times = poisson_arrivals(rng, 50, mean_gap=10.0)
        assert len(times) == 50
        assert times == sorted(times)
        assert all(t > 0.0 for t in times)
        rng = make_rng(1)
        times = bursty_arrivals(rng, 50, mean_gap=10.0, max_burst=8)
        assert len(times) == 50
        assert times == sorted(times)
        # Bursts share arrival instants; a Poisson stream never does.
        assert len(set(times)) < 50

    def test_build_trace_is_deterministic_and_shares_weights(self):
        a = build_trace(8, hidden=16, n_heads=2, seed=3)
        b = build_trace(8, hidden=16, n_heads=2, seed=3)
        assert [t.request_id for t in a] == list(range(8))
        for x, y in zip(a, b):
            assert x.arrival == y.arrival
            assert np.array_equal(x.request.x, y.request.x)
        # One model serves every request: weights are shared.
        for t in a[1:]:
            assert np.array_equal(t.request.wq, a[0].request.wq)
        # Different seeds give a different trace.
        c = build_trace(8, hidden=16, n_heads=2, seed=4)
        assert any(
            not np.array_equal(x.request.x, y.request.x)
            for x, y in zip(a, c)
        )

    def test_build_trace_deadlines_scale_with_size(self):
        trace = build_trace(
            6, hidden=16, n_heads=2, deadline_slack=2.0,
            cycles_per_token=3.0, seed=0,
        )
        for t in trace:
            size = len(t.request.x) + t.request.max_new_tokens
            assert t.deadline == pytest.approx(t.arrival + 2.0 * 3.0 * size)

    def test_build_trace_validation(self):
        with pytest.raises(ValueError, match="process"):
            build_trace(2, process="uniform")
        with pytest.raises(ValueError, match="tenant"):
            build_trace(2, tenants=())
        with pytest.raises(ValueError, match="cycles_per_token"):
            build_trace(2, deadline_slack=2.0)
        with pytest.raises(ValueError, match="n_requests"):
            build_trace(0)

    def test_estimate_cycles_per_token_is_deterministic(self):
        engine = NovaDecodeEngine(SMALL)
        a = estimate_cycles_per_token(engine, hidden=16, n_heads=2)
        b = estimate_cycles_per_token(engine, hidden=16, n_heads=2)
        assert a == b
        assert a > 0.0


# ----------------------------------------------------------------------
# Session wiring.
# ----------------------------------------------------------------------


class TestServeAsync:
    def test_session_serve_async_end_to_end(self):
        session = NovaSession(SMALL)
        trace = build_trace(
            5, hidden=16, n_heads=2, mean_gap=20.0, seed=2,
            priorities=(0, 1),
        )
        report = session.serve_async(trace, policy="slo-aware", max_active=2)
        assert report.policy == "slo-aware"
        assert report.n_requests == 5
        assert report.total_tokens == sum(
            t.request.max_new_tokens for t in trace
        )
        for r in report.requests:
            assert r.ttft > 0.0
            assert r.latency >= r.ttft

    def test_serve_async_matches_frontdoor(self):
        session = NovaSession(SMALL)
        trace = build_trace(4, hidden=16, n_heads=2, seed=5)
        via_session = session.serve_async(trace, max_active=2)
        door = FrontDoor(session.decoder, max_active=2)
        via_door = door.serve(trace)
        assert via_session.to_json() == via_door.to_json()
