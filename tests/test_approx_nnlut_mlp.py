"""Unit tests for the NN-LUT compile-time MLP trainer."""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import NnLutMlp, train_nnlut_mlp
from repro.approx.pwl import PiecewiseLinear


class TestMlpForward:
    def test_relu_expansion_is_exact_pwl(self):
        # f(x) = relu(x - 1) with skip 0 -> kink at 1, slopes {0, 1}
        mlp = NnLutMlp(
            w=np.array([1.0]),
            c=np.array([-1.0]),
            v=np.array([1.0]),
            skip_slope=0.0,
            skip_bias=0.0,
            domain=(-2.0, 4.0),
        )
        assert mlp.forward(np.array([0.0]))[0] == 0.0
        assert mlp.forward(np.array([3.0]))[0] == pytest.approx(2.0)
        pwl = mlp.to_piecewise_linear()
        assert pwl.n_segments == 2
        assert pwl.cuts[0] == pytest.approx(1.0)
        assert pwl.slopes.tolist() == [0.0, 1.0]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            NnLutMlp(
                w=np.ones(3), c=np.ones(2), v=np.ones(3),
                skip_slope=0.0, skip_bias=0.0, domain=(-1, 1),
            )

    def test_extraction_matches_forward_exactly(self):
        spec = get_function("gelu")
        mlp = train_nnlut_mlp(spec, n_segments=16, seed=1, epochs=50)
        pwl = mlp.to_piecewise_linear()
        xs = np.linspace(*spec.domain, 1001)
        # analytic extraction == MLP forward, to float precision
        assert np.allclose(pwl.evaluate(xs), mlp.forward(xs), atol=1e-9)

    def test_kinks_sorted_and_inside_domain(self):
        spec = get_function("sigmoid")
        mlp = train_nnlut_mlp(spec, n_segments=16, seed=2, epochs=50)
        kinks = mlp.kinks()
        assert np.all(np.diff(kinks) > 0)
        assert np.all(kinks > spec.domain[0]) and np.all(kinks < spec.domain[1])


class TestTraining:
    @pytest.mark.parametrize("name", ["exp", "gelu", "tanh", "sigmoid"])
    def test_fit_quality_close_to_direct(self, name):
        spec = get_function(name)
        mlp = train_nnlut_mlp(spec, n_segments=16, seed=0)
        mlp_pwl = mlp.to_piecewise_linear(n_segments=16)
        direct = PiecewiseLinear.fit(spec.fn, spec.domain, 16)
        # the trained table is at worst ~2x the direct interpolation error
        assert mlp_pwl.max_error(spec.fn) < 2.0 * direct.max_error(spec.fn) + 1e-4

    def test_table_padded_to_exact_size(self):
        spec = get_function("tanh")
        mlp = train_nnlut_mlp(spec, n_segments=16, seed=3)
        pwl = mlp.to_piecewise_linear(n_segments=16)
        assert pwl.n_segments == 16

    def test_padding_preserves_function(self):
        spec = get_function("tanh")
        mlp = train_nnlut_mlp(spec, n_segments=8, seed=4, epochs=100)
        raw = mlp.to_piecewise_linear()
        padded = mlp.to_piecewise_linear(n_segments=16)
        xs = np.linspace(*spec.domain, 501)
        assert np.allclose(raw.evaluate(xs), padded.evaluate(xs), atol=1e-9)

    def test_deterministic_given_seed(self):
        spec = get_function("gelu")
        a = train_nnlut_mlp(spec, n_segments=8, seed=5, epochs=60)
        b = train_nnlut_mlp(spec, n_segments=8, seed=5, epochs=60)
        assert np.array_equal(a.w, b.w)
        assert np.array_equal(a.v, b.v)

    def test_raw_callable_needs_domain(self):
        with pytest.raises(ValueError, match="domain"):
            train_nnlut_mlp(np.exp, n_segments=8)

    def test_raw_callable_with_domain(self):
        mlp = train_nnlut_mlp(
            np.exp, domain=(-4.0, 0.0), n_segments=8, seed=6, epochs=100
        )
        pwl = mlp.to_piecewise_linear(n_segments=8)
        assert pwl.max_error(np.exp) < 0.05

    def test_invalid_n_segments(self):
        spec = get_function("exp")
        with pytest.raises(ValueError):
            train_nnlut_mlp(spec, n_segments=0)

    def test_oversized_extraction_rejected(self):
        spec = get_function("tanh")
        mlp = train_nnlut_mlp(spec, n_segments=16, seed=7, epochs=60)
        realized = mlp.to_piecewise_linear().n_segments
        if realized > 4:
            with pytest.raises(ValueError, match="exceeds"):
                mlp.to_piecewise_linear(n_segments=4)

    def test_paper_budget_16_breakpoints_good_enough(self):
        # Table I uses 16 breakpoints because "they are sufficient for the
        # commonly used non-linear functions" — check the error is small.
        for name in ("exp", "gelu", "tanh", "sigmoid"):
            spec = get_function(name)
            pwl = train_nnlut_mlp(spec, n_segments=16, seed=8).to_piecewise_linear(16)
            span = np.ptp(spec.fn(spec.sample(1000)))
            assert pwl.max_error(spec.fn) < 0.02 * span + 1e-3, name
