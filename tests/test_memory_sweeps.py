"""Tests for the memory hierarchy model and the sweep experiments."""

import pytest

from repro.accelerators.memory import MemoryHierarchy, WORD_BYTES
from repro.eval.sweeps import memory_energy_sweep, seq_len_sweep
from repro.workloads.bert import bert_graph
from repro.workloads.ops import MatMulOp, OpGraph


class TestMemoryHierarchy:
    def test_usable_words_half_of_sram(self):
        mem = MemoryHierarchy(sram_kb=64)
        assert mem.usable_words == 64 * 1024 // WORD_BYTES // 2

    def test_small_gemm_compulsory_only(self):
        mem = MemoryHierarchy(sram_kb=1024)
        op = MatMulOp("g", 64, 64, 64)
        reads, writes, refetch = mem.gemm_traffic(op)
        assert reads == 2 * 64 * 64  # A + B once
        assert writes == 64 * 64
        assert refetch == 0

    def test_capacity_miss_triggers_refetch(self):
        mem = MemoryHierarchy(sram_kb=16)  # 4096 usable words
        op = MatMulOp("g", 64, 256, 256)  # working set ~82k words
        reads, _writes, refetch = mem.gemm_traffic(op)
        assert refetch > 0
        assert reads == 64 * 256 + 256 * 256 + refetch

    def test_refetch_monotone_in_capacity(self):
        op = MatMulOp("g", 128, 768, 3072)
        small = MemoryHierarchy(sram_kb=256).gemm_traffic(op)[2]
        large = MemoryHierarchy(sram_kb=4096).gemm_traffic(op)[2]
        assert small > large

    def test_huge_sram_never_refetches(self):
        mem = MemoryHierarchy(sram_kb=43_008)  # TPU-like 42 MB
        graph = bert_graph("BERT-tiny", seq_len=1024)
        assert mem.graph_traffic(graph).refetch_reads == 0

    def test_edge_sram_refetches_on_roberta(self):
        mem = MemoryHierarchy(sram_kb=768)  # REACT
        graph = bert_graph("RoBERTa", seq_len=128)
        report = mem.graph_traffic(graph)
        assert report.refetch_reads > 0
        assert 0.0 < report.refetch_fraction < 1.0

    def test_dram_energy_scaling(self):
        mem = MemoryHierarchy(sram_kb=1024, dram_word_pj=100.0)
        graph = OpGraph("g")
        graph.add(MatMulOp("m", 16, 16, 16))
        report = mem.graph_traffic(graph)
        assert mem.dram_energy_mj(report) == pytest.approx(
            report.dram_words * 100.0 * 1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(sram_kb=0)
        with pytest.raises(ValueError):
            MemoryHierarchy(sram_kb=64, dram_word_pj=-1.0)


class TestSeqLenSweep:
    def test_vector_share_rises_with_seq_len(self):
        result = seq_len_sweep()
        shares = result.column("Vector share %")
        assert shares == sorted(shares)

    def test_approaches_intro_motivation_band(self):
        # §I: non-linear ops "up to nearly 40% of the runtime"; at long
        # sequences the share must be well into double digits
        result = seq_len_sweep()
        assert result.rows[-1][3] > 20.0

    def test_softmax_queries_quadratic(self):
        result = seq_len_sweep()
        queries = result.column("Softmax queries")
        seqs = result.column("Seq len")
        for i in range(1, len(seqs)):
            assert queries[i] / queries[i - 1] == pytest.approx(
                (seqs[i] / seqs[i - 1]) ** 2
            )


class TestMemoryEnergySweep:
    def test_dram_dominates_host_energy(self):
        result = memory_energy_sweep()
        for row in result.rows:
            assert row[3] > row[2]  # DRAM mJ > MAC+SRAM mJ

    def test_total_overhead_below_core_overhead(self):
        result = memory_energy_sweep()
        for row in result.rows:
            core = float(str(row[6]).rstrip("%"))
            total = float(str(row[7]).rstrip("%"))
            assert total < core

    def test_tpu_overhead_sub_percent_with_dram(self):
        result = memory_energy_sweep()
        for row in result.rows:
            if row[0].startswith("TPU"):
                assert float(str(row[7]).rstrip("%")) < 0.5
