"""Unit tests for repro.utils.fixed_point."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.fixed_point import FixedPointFormat, Q1_14, Q5_10, Q7_8


class TestFormatProperties:
    def test_word_bits(self):
        assert Q5_10.word_bits == 16
        assert Q1_14.word_bits == 16
        assert Q7_8.word_bits == 16

    def test_scale_is_lsb(self):
        assert Q5_10.scale == 2.0 ** -10
        assert Q1_14.scale == 2.0 ** -14

    def test_range_bounds(self):
        assert Q5_10.max_value == pytest.approx(32.0 - 2.0 ** -10)
        assert Q5_10.min_value == -32.0

    def test_raw_bounds(self):
        assert Q5_10.max_raw == 2 ** 15 - 1
        assert Q5_10.min_raw == -(2 ** 15)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=-1, fraction_bits=4)
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=4, fraction_bits=-1)

    def test_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=40, fraction_bits=40)

    def test_hashable_for_caching(self):
        assert hash(Q5_10) == hash(FixedPointFormat(5, 10))
        assert Q5_10 == FixedPointFormat(5, 10)


class TestQuantize:
    def test_exact_values_unchanged(self):
        values = np.array([0.0, 1.0, -1.5, 0.25])
        assert np.array_equal(Q5_10.quantize(values), values)

    def test_rounds_to_nearest(self):
        lsb = Q5_10.scale
        assert Q5_10.quantize(0.6 * lsb) == pytest.approx(lsb)
        assert Q5_10.quantize(0.4 * lsb) == pytest.approx(0.0)

    def test_saturates_high(self):
        assert Q5_10.quantize(1e9) == pytest.approx(Q5_10.max_value)

    def test_saturates_low(self):
        assert Q5_10.quantize(-1e9) == pytest.approx(Q5_10.min_value)

    def test_scalar_input_gives_array(self):
        out = Q5_10.quantize(1.0)
        assert out.shape == ()

    def test_idempotent(self):
        values = np.linspace(-40, 40, 101)
        once = Q5_10.quantize(values)
        assert np.array_equal(Q5_10.quantize(once), once)


class TestRawRoundTrip:
    def test_round_trip(self):
        values = np.array([0.0, 1.0, -3.25, Q5_10.max_value, Q5_10.min_value])
        raw = Q5_10.to_raw(values)
        assert np.array_equal(Q5_10.from_raw(raw), values)

    def test_from_raw_rejects_overflow(self):
        with pytest.raises(ValueError):
            Q5_10.from_raw(np.array([2 ** 15]))

    def test_raw_dtype(self):
        assert Q5_10.to_raw(np.array([1.0])).dtype == np.int64


class TestSaturatesMask:
    def test_mask_shape_and_values(self):
        values = np.array([0.0, 100.0, -100.0, 31.0])
        mask = Q5_10.saturates(values)
        assert mask.tolist() == [False, True, True, False]


class TestMac:
    def test_matches_quantized_product(self):
        slope = np.array([0.5, -1.0])
        x = np.array([2.0, 3.0])
        bias = np.array([0.25, 0.125])
        out = Q5_10.mac(slope, x, bias)
        assert np.array_equal(out, Q5_10.quantize(slope * x + bias))

    def test_saturating_mac(self):
        out = Q5_10.mac(np.array([30.0]), np.array([30.0]), np.array([0.0]))
        assert out[0] == pytest.approx(Q5_10.max_value)


@given(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)
def test_quantize_error_bounded_by_half_lsb(value):
    q = float(Q5_10.quantize(value))
    if Q5_10.min_value <= value <= Q5_10.max_value:
        assert abs(q - value) <= Q5_10.scale / 2 + 1e-12
    else:
        assert q in (Q5_10.max_value, Q5_10.min_value)


@given(st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1))
def test_raw_round_trip_exact(raw):
    assert int(Q5_10.to_raw(Q5_10.from_raw(raw))) == raw
