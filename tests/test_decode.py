"""Tests for the KV-cached decode subsystem (repro.core.decode).

The headline contracts:

* token-by-token decode over the KV cache is **bit-exact** against the
  packed causal prefill for the same sequence, on every Table II preset;
* continuous batching is bit-, cycle- and counter-exact against
  one-at-a-time ``generate``;
* per-step sequential-equivalent counters equal what the beat-level
  simulation charges for the same stream;
* decode never recompiles shared tables across steps (the table-cache
  miss count stays flat);
* the error paths (cache overflow, eviction, empty batches, over-long
  requests, non-causal configs) fail loudly.
"""

import numpy as np
import pytest

from repro.core.config import PRESETS, NovaConfig
from repro.core.decode import (
    ContinuousBatchScheduler,
    DecodeRequest,
    KVCache,
    KVCacheOverflow,
    NovaDecodeEngine,
)
from repro.core.session import NovaSession
from repro.workloads.bert import decode_batch, serving_config
from repro.workloads.transformer import TransformerConfig, decode_request

#: Small geometry for fast unit-level checks.
SMALL = NovaConfig(n_routers=2, neurons_per_router=8)


def toy_model(hidden=16, heads=2, seq_len=64, causal=True):
    return TransformerConfig(
        "toy", layers=1, hidden=hidden, heads=heads,
        intermediate=4 * hidden, seq_len=seq_len, causal=causal,
    )


def toy_request(prompt_len=5, max_new_tokens=3, **model_kwargs):
    return decode_request(
        toy_model(**model_kwargs), prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=0,
    )


# ----------------------------------------------------------------------
# KVCache.
# ----------------------------------------------------------------------


class TestKVCache:
    def test_append_and_views(self):
        cache = KVCache(2, 4, capacity=3)
        for i in range(3):
            cache.append(np.full((2, 4), i), np.full((2, 4), 10 + i))
            assert cache.length == i + 1
        assert cache.keys.shape == (2, 3, 4)
        assert np.array_equal(cache.keys[0, :, 0], [0.0, 1.0, 2.0])
        assert np.array_equal(cache.values[1, :, 2], [10.0, 11.0, 12.0])

    def test_overflow_raises_without_window(self):
        cache = KVCache(1, 2, capacity=2)
        for i in range(2):
            cache.append(np.zeros((1, 2)), np.zeros((1, 2)))
        with pytest.raises(KVCacheOverflow, match="full at capacity 2"):
            cache.append(np.zeros((1, 2)), np.zeros((1, 2)))

    def test_window_evicts_oldest(self):
        cache = KVCache(1, 1, capacity=4, window=2)
        for i in range(5):
            cache.append(np.full((1, 1), i), np.full((1, 1), i))
        assert cache.length == 2
        assert cache.start_position == 3
        assert cache.evictions == 3
        assert np.array_equal(cache.keys[0, :, 0], [3.0, 4.0])

    def test_explicit_evict(self):
        cache = KVCache(1, 1, capacity=4)
        for i in range(4):
            cache.append(np.full((1, 1), i), np.full((1, 1), i))
        cache.evict(3)
        assert cache.length == 1
        assert cache.start_position == 3
        assert np.array_equal(cache.keys[0, :, 0], [3.0])
        with pytest.raises(ValueError, match="cannot evict"):
            cache.evict(2)

    def test_reset_recycles_the_page(self):
        cache = KVCache(1, 1, capacity=2, window=2)
        cache.append(np.ones((1, 1)), np.ones((1, 1)))
        buffer = cache._k
        cache.reset()
        assert cache.length == 0 and cache.start_position == 0
        assert cache.evictions == 0
        assert cache._k is buffer  # same allocation, no realloc

    def test_shape_and_argument_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            KVCache(1, 1, capacity=0)
        with pytest.raises(ValueError, match="window"):
            KVCache(1, 1, capacity=2, window=3)
        with pytest.raises(ValueError, match="window"):
            KVCache(1, 1, capacity=2, window=0)
        cache = KVCache(2, 4, capacity=2)
        with pytest.raises(ValueError, match="shape"):
            cache.append(np.zeros((2, 3)), np.zeros((2, 4)))


# ----------------------------------------------------------------------
# DecodeRequest validation.
# ----------------------------------------------------------------------


class TestDecodeRequest:
    def test_capacity_defaults_to_prompt_plus_budget(self):
        req = toy_request(prompt_len=5, max_new_tokens=3)
        assert req.max_seq_len == 64  # the model's context window
        assert req.capacity == 64
        bare = DecodeRequest(
            x=req.x, wq=req.wq, wk=req.wk, wv=req.wv, wo=req.wo,
            n_heads=req.n_heads, max_new_tokens=3,
        )
        assert bare.capacity == 8
        assert bare.total_tokens == 8

    def test_window_bounds_capacity(self):
        req = toy_request()
        windowed = DecodeRequest(
            x=req.x, wq=req.wq, wk=req.wk, wv=req.wv, wo=req.wo,
            n_heads=req.n_heads, max_new_tokens=3, window=4,
        )
        assert windowed.capacity == 4

    def test_field_validation(self):
        req = toy_request()
        kwargs = dict(
            x=req.x, wq=req.wq, wk=req.wk, wv=req.wv, wo=req.wo,
            n_heads=req.n_heads,
        )
        with pytest.raises(ValueError, match="max_new_tokens"):
            DecodeRequest(**kwargs, max_new_tokens=-1)
        with pytest.raises(ValueError, match="max_seq_len"):
            DecodeRequest(**kwargs, max_seq_len=0)
        with pytest.raises(ValueError, match="window"):
            DecodeRequest(**kwargs, window=0)
        with pytest.raises(ValueError, match="window"):
            DecodeRequest(**kwargs, max_seq_len=4, window=8)

    def test_decode_request_needs_a_causal_model(self):
        with pytest.raises(ValueError, match="causal"):
            decode_request(toy_model(causal=False))


# ----------------------------------------------------------------------
# Decode vs prefill bit-exactness.
# ----------------------------------------------------------------------


class TestDecodePrefillEquivalence:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    def test_bit_exact_on_every_preset(self, preset_name):
        request = toy_request(prompt_len=6, max_new_tokens=0)
        session = NovaSession(preset_name)
        decoded = session.decode(request)
        prefill = session.decoder.prefill(session.decoder.start(request))

        assert np.array_equal(decoded.outputs, prefill.outputs)
        for t, step in enumerate(decoded.steps):
            assert step.position == t
            assert step.kv_length == t + 1
            assert np.array_equal(
                step.probabilities, prefill.probabilities[:, t, : t + 1]
            )
        # upper triangle stays exactly zero (causality)
        upper = np.triu_indices(request.seq, k=1)
        assert not prefill.probabilities[:, upper[0], upper[1]].any()

    def test_query_accounting(self):
        request = toy_request(prompt_len=4, max_new_tokens=0)
        engine = NovaDecodeEngine(SMALL)
        decoded = engine.decode(request)
        heads = request.n_heads
        for t, step in enumerate(decoded.steps):
            assert step.nonlinear_queries == heads * (t + 1) + heads
        prefill = engine.prefill(engine.start(request))
        assert prefill.nonlinear_queries == sum(
            s.nonlinear_queries for s in decoded.steps
        )

    def test_prefill_requires_a_fresh_state(self):
        engine = NovaDecodeEngine(SMALL)
        request = toy_request()
        state = engine.start(request)
        engine.prefill(state)
        with pytest.raises(RuntimeError, match="fresh DecodeState"):
            engine.prefill(state)

    def test_windowed_decode_matches_windowed_prefill(self):
        model = toy_model()
        request = decode_request(
            model, prompt_len=7, max_new_tokens=0, seed=3, window=3
        )
        engine = NovaDecodeEngine(SMALL)
        decoded = engine.decode(request)
        prefill = engine.prefill(engine.start(request))
        assert np.array_equal(decoded.outputs, prefill.outputs)
        # after warmup each step attends to exactly `window` entries
        assert decoded.steps[-1].kv_length == 3


# ----------------------------------------------------------------------
# Counter exactness and cache discipline.
# ----------------------------------------------------------------------


class TestDecodeAccounting:
    def test_step_counters_match_beat_level_simulation(self):
        """The closed-form sequential-equivalent counters of one decode
        step equal what the cycle-level NoC simulation accumulates for
        the same padded lane stream."""
        from repro.core.attention import pack_lane_stream
        from repro.core.vector_unit import NovaVectorUnit

        request = toy_request(prompt_len=3, max_new_tokens=2)
        engine = NovaDecodeEngine(SMALL)
        gen = engine.generate(request)
        step = gen.steps[-1]

        # replay the step's two streams on a fresh unit, beat by beat
        state = engine.start(request)
        engine.prefill(state)
        replay_inputs = []
        x_t = gen.prefill.outputs[-1]
        for done in gen.steps:
            plan = engine._plan_token(state, x_t)
            replay_inputs.append((plan.shifted.copy(), plan))
            x_t = done.output
        shifted, plan = replay_inputs[-1]

        unit = NovaVectorUnit(engine.tables["exp"], SMALL)
        batches, _ = pack_lane_stream(shifted.reshape(-1), SMALL.lane_shape)
        before = unit._lifetime_counters()
        exp_stream = unit.run_stream(batches, simulate=True)
        from repro.core.attention import softmax_reduction

        raw = exp_stream.outputs.reshape(-1)[: shifted.size].reshape(
            shifted.shape
        )
        _, mantissa, _ = softmax_reduction(raw)
        unit.retarget(engine.tables["reciprocal"])
        batches, _ = pack_lane_stream(
            mantissa.reshape(-1), SMALL.lane_shape
        )
        unit.run_stream(batches, simulate=True)
        simulated = unit._lifetime_counters().diff(before)
        assert step.counters.as_dict() == simulated.as_dict()

    def test_no_table_recompilation_across_steps(self):
        """Decode steps retarget the shared unit; they must never hit the
        table compiler again (cache_info misses stay flat)."""
        session = NovaSession(SMALL)
        request = toy_request(prompt_len=2, max_new_tokens=6)
        session.generate(request)  # builds the engine, compiles tables
        before = session.cache_info()["tables"]
        state = session.decoder.start(request)
        session.decoder.prefill(state)
        x_t = np.zeros(request.hidden)
        for _ in range(4):
            x_t = session.decoder.decode_step(state, x_t).output
        after = session.cache_info()["tables"]
        assert after["misses"] == before["misses"]
        assert after["entries"] == before["entries"]

    def test_decode_result_counters_are_per_call(self):
        engine = NovaDecodeEngine(SMALL)
        request = toy_request(prompt_len=3, max_new_tokens=0)
        first = engine.decode(request)
        second = engine.decode(request)
        assert first.counters.as_dict() == second.counters.as_dict()
        merged = None
        for step in second.steps:
            merged = step.counters if merged is None else merged.merge(
                step.counters
            )
        assert merged.as_dict() == second.counters.as_dict()


# ----------------------------------------------------------------------
# Engine admission errors.
# ----------------------------------------------------------------------


class TestEngineAdmission:
    def test_rejects_non_causal_request(self):
        request = toy_request()
        non_causal = DecodeRequest(
            x=request.x, wq=request.wq, wk=request.wk, wv=request.wv,
            wo=request.wo, n_heads=request.n_heads, causal=False,
        )
        engine = NovaDecodeEngine(SMALL)
        with pytest.raises(ValueError, match="causal"):
            engine.start(non_causal)

    def test_session_rejects_non_causal_request(self):
        request = toy_request()
        non_causal = DecodeRequest(
            x=request.x, wq=request.wq, wk=request.wk, wv=request.wv,
            wo=request.wo, n_heads=request.n_heads, causal=False,
        )
        session = NovaSession(SMALL)
        with pytest.raises(ValueError, match="causal"):
            session.decode(non_causal)
        with pytest.raises(ValueError, match="causal"):
            session.generate(non_causal)

    def test_rejects_plain_attention_requests(self):
        from repro.core.batched_attention import AttentionRequest

        request = toy_request()
        plain = AttentionRequest(
            x=request.x, wq=request.wq, wk=request.wk, wv=request.wv,
            wo=request.wo, n_heads=request.n_heads,
        )
        with pytest.raises(TypeError, match="DecodeRequest"):
            NovaDecodeEngine(SMALL).start(plain)

    def test_rejects_request_longer_than_context(self):
        """Prompt + budget beyond the model's seq_len fails at admission."""
        model = toy_model(seq_len=8)
        request = decode_request(model, prompt_len=6, max_new_tokens=6)
        engine = NovaDecodeEngine(SMALL)
        with pytest.raises(KVCacheOverflow, match="12 cache slots"):
            engine.start(request)
        # ...unless a sliding window absorbs the overflow
        windowed = decode_request(
            model, prompt_len=6, max_new_tokens=6, window=8
        )
        assert engine.generate(windowed).n_generated == 6

    def test_generate_override_validated_at_admission(self):
        """An over-budget max_new_tokens override fails up front, before
        any hardware events are charged — not mid-generation."""
        model = toy_model(seq_len=8)
        request = decode_request(model, prompt_len=4, max_new_tokens=2)
        engine = NovaDecodeEngine(SMALL)
        before = engine.unit._lifetime_counters()
        with pytest.raises(KVCacheOverflow, match="cache slots"):
            engine.generate(request, max_new_tokens=40)
        assert engine.unit._lifetime_counters().as_dict() == before.as_dict()
        with pytest.raises(ValueError, match="max_new_tokens"):
            engine.generate(request, max_new_tokens=-1)

    def test_rejects_mismatched_recycled_page(self):
        engine = NovaDecodeEngine(SMALL)
        request = toy_request()
        wrong = KVCache(request.n_heads + 1, request.head_dim, 4)
        with pytest.raises(ValueError, match="does not match"):
            engine.start(request, cache=wrong)


# ----------------------------------------------------------------------
# Continuous batching.
# ----------------------------------------------------------------------


class TestContinuousBatching:
    def test_bit_cycle_counter_exact_vs_one_at_a_time(self):
        model = toy_model()
        requests = decode_batch(model, 5, prompt_len=3, max_new_tokens=4,
                                seed=0)
        engine = NovaDecodeEngine(SMALL)
        solo = [engine.generate(r) for r in requests]
        batch = ContinuousBatchScheduler(engine, max_active=2).run(requests)
        assert batch.n_requests == len(requests)
        for ref, got in zip(solo, batch.results):
            assert np.array_equal(ref.generated, got.generated)
            assert np.array_equal(ref.prefill.outputs, got.prefill.outputs)
            assert ref.vector_cycles == got.vector_cycles
            assert ref.counters.as_dict() == got.counters.as_dict()
            for a, b in zip(ref.steps, got.steps):
                assert a.vector_cycles == b.vector_cycles
                assert np.array_equal(a.output, b.output)

    def test_mixed_lengths_and_budgets(self):
        model = toy_model()
        requests = [
            decode_request(model, prompt_len=2 + i, max_new_tokens=i,
                           seed=i)
            for i in range(4)  # includes a prefill-only request (0 new)
        ]
        engine = NovaDecodeEngine(SMALL)
        batch = ContinuousBatchScheduler(engine, max_active=3).run(requests)
        assert batch.results[0].n_generated == 0
        assert [r.n_generated for r in batch.results] == [0, 1, 2, 3]
        assert batch.total_generated_tokens == 6

    def test_packing_saves_cycles(self):
        model = toy_model()
        requests = decode_batch(model, 6, prompt_len=4, max_new_tokens=4,
                                seed=0)
        batch = ContinuousBatchScheduler(
            NovaDecodeEngine(SMALL), max_active=6
        ).run(requests)
        assert batch.packed_vector_cycles < batch.sequential_vector_cycles
        assert batch.packing_speedup > 1.0

    def test_cache_pages_recycled_across_admissions(self):
        model = toy_model()
        requests = decode_batch(model, 6, prompt_len=3, max_new_tokens=2,
                                seed=0)
        scheduler = ContinuousBatchScheduler(
            NovaDecodeEngine(SMALL), max_active=2
        )
        batch = scheduler.run(requests)
        assert batch.pages_allocated == 2
        assert batch.pages_recycled == 4
        assert batch.pages_allocated + batch.pages_recycled == len(requests)
        # page stats are per run: a reused scheduler reports deltas, and
        # the second run recycles every page the first one pooled
        again = scheduler.run(requests)
        assert again.pages_allocated == 0
        assert again.pages_recycled == len(requests)

    def test_empty_batch_rejected(self):
        scheduler = ContinuousBatchScheduler(NovaDecodeEngine(SMALL))
        with pytest.raises(ValueError, match="at least one"):
            scheduler.run([])

    def test_over_long_request_rejected_before_any_work(self):
        model = toy_model(seq_len=8)
        good = decode_request(model, prompt_len=2, max_new_tokens=2, seed=0)
        bad = decode_request(model, prompt_len=7, max_new_tokens=7, seed=1)
        engine = NovaDecodeEngine(SMALL)
        scheduler = ContinuousBatchScheduler(engine, max_active=2)
        before = engine.unit._lifetime_counters()
        with pytest.raises(KVCacheOverflow):
            scheduler.run([good, bad])
        # validation is up-front: no hardware events were charged
        after = engine.unit._lifetime_counters()
        assert after.as_dict() == before.as_dict()

    def test_max_active_validation(self):
        with pytest.raises(ValueError, match="max_active"):
            ContinuousBatchScheduler(NovaDecodeEngine(SMALL), max_active=0)

    def test_session_serve_decode(self):
        model = toy_model()
        requests = decode_batch(model, 3, prompt_len=3, max_new_tokens=2,
                                seed=0)
        session = NovaSession(SMALL)
        batch = session.serve_decode(requests, max_active=2)
        solo = session.generate(requests[1])
        assert np.array_equal(batch.results[1].generated, solo.generated)


# ----------------------------------------------------------------------
# Workload builders.
# ----------------------------------------------------------------------


class TestDecodeWorkloads:
    def test_gpt2_small_is_a_causal_serving_model(self):
        config = serving_config("GPT-2-small")
        assert config.causal
        assert (config.hidden, config.heads, config.layers) == (768, 12, 12)
        assert config.seq_len == 1024

    def test_decode_request_defaults(self):
        config = serving_config("GPT-2-small")
        request = decode_request(config, max_new_tokens=4, seed=1)
        assert request.seq == config.seq_len // 4
        assert request.max_seq_len == config.seq_len
        assert request.causal

    def test_decode_batch_shares_weights(self):
        model = toy_model()
        shared = decode_batch(model, 3, prompt_len=2, max_new_tokens=1)
        assert shared[1].wq is shared[0].wq
        assert shared[2].wo is shared[0].wo
        assert not np.array_equal(shared[1].x, shared[0].x)
        independent = decode_batch(
            model, 3, prompt_len=2, max_new_tokens=1, shared_weights=False
        )
        assert independent[1].wq is not independent[0].wq

    def test_decode_batch_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            decode_batch(toy_model(), 0)

    def test_mixed_decode_batch_varies_lengths(self):
        from repro.workloads.bert import mixed_decode_batch

        model = toy_model(seq_len=64)
        requests = mixed_decode_batch(
            model, 5, prompt_lens=(2, 4), new_tokens=(1, 2, 3), seed=0
        )
        assert [r.seq for r in requests] == [2, 4, 2, 4, 2]
        assert [r.max_new_tokens for r in requests] == [1, 2, 3, 1, 2]
        # every request still declares the model's worst case
        assert all(r.max_seq_len == 64 for r in requests)
        # shared weights, independent prompts
        assert requests[1].wq is requests[0].wq
        assert not np.array_equal(requests[2].x, requests[0].x)

    def test_mixed_decode_batch_validation(self):
        from repro.workloads.bert import mixed_decode_batch

        with pytest.raises(ValueError, match="batch_size"):
            mixed_decode_batch(toy_model(), 0)
        with pytest.raises(ValueError, match="non-empty"):
            mixed_decode_batch(toy_model(), 2, prompt_lens=())

    def test_decode_serving_experiment_rejects_zero_budget(self):
        from repro.eval.experiments import decode_serving_throughput

        with pytest.raises(ValueError, match="max_new_tokens"):
            decode_serving_throughput(
                model_name=toy_model(), batch_size=1, prompt_len=2,
                max_new_tokens=0, config=SMALL, warmup=False,
            )

    def test_decode_serving_experiment_smoke(self):
        from repro.eval.experiments import decode_serving_throughput

        result = decode_serving_throughput(
            model_name=toy_model(), batch_size=3, prompt_len=3,
            max_new_tokens=3, config=SMALL, warmup=False,
        )
        assert len(result.rows) == 2
        tokens_per_s = result.column("Tokens/s")
        assert all(v > 0 for v in tokens_per_s)
