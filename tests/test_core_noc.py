"""Unit tests for the NOVA line NoC broadcast."""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl, pack_beats
from repro.core.mapper import NovaMapper
from repro.core.noc import NovaNoc
from repro.noc.topology import LineTopology


def make_noc(n_routers=8, neurons=4, pe_ghz=0.24, n_segments=16, hop_mm=1.0):
    spec = get_function("sigmoid")
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, n_segments))
    schedule = NovaMapper().schedule(n_routers, pe_ghz, n_segments, hop_mm)
    topo = LineTopology(n_routers=n_routers, hop_mm=hop_mm)
    return NovaNoc(topo, schedule, neurons), table


class TestSingleCycleBroadcast:
    def test_all_routers_capture(self):
        noc, table = make_noc()
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 16, size=(8, 4))
        result = noc.broadcast(pack_beats(table), addresses)
        words = table.coefficient_words()
        assert np.array_equal(result.slopes_raw, words[addresses, 0])
        assert np.array_equal(result.biases_raw, words[addresses, 1])

    def test_noc_cycles_equals_beats_when_single_cycle(self):
        noc, table = make_noc()
        addresses = np.zeros((8, 4), dtype=np.int64)
        result = noc.broadcast(pack_beats(table), addresses)
        assert result.noc_cycles == 2  # 2 beats, single-cycle traversal

    def test_wire_hops_count(self):
        noc, table = make_noc()
        result = noc.broadcast(pack_beats(table), np.zeros((8, 4), dtype=np.int64))
        # every beat traverses every router once
        assert result.counters.get("wire_hop") == 2 * 8

    def test_no_register_writes_single_cycle(self):
        noc, table = make_noc()
        result = noc.broadcast(pack_beats(table), np.zeros((8, 4), dtype=np.int64))
        assert result.counters.get("register_write") == 0

    def test_beat_launches(self):
        noc, table = make_noc()
        result = noc.broadcast(pack_beats(table), np.zeros((8, 4), dtype=np.int64))
        assert result.counters.get("beat_launch") == 2

    def test_arrival_cycles_zero(self):
        noc, _ = make_noc()
        assert all(noc.arrival_cycle(r) == 0 for r in range(8))


class TestMultiCycleTraversal:
    def test_long_line_buffers(self):
        # PE 0.75 GHz + 16 pairs -> NoC 1.5 GHz -> 10 hops/cycle; 25 routers
        noc, table = make_noc(n_routers=25, neurons=2, pe_ghz=0.75)
        assert noc.schedule.traversal_segments == 3
        rng = np.random.default_rng(1)
        addresses = rng.integers(0, 16, size=(25, 2))
        result = noc.broadcast(pack_beats(table), addresses)
        words = table.coefficient_words()
        assert np.array_equal(result.slopes_raw, words[addresses, 0])
        # 2 beats + 2 extra segments
        assert result.noc_cycles == 4

    def test_arrival_cycle_steps_at_segment_boundaries(self):
        noc, _ = make_noc(n_routers=25, neurons=2, pe_ghz=0.75)
        assert noc.arrival_cycle(0) == 0
        assert noc.arrival_cycle(9) == 0
        assert noc.arrival_cycle(10) == 1
        assert noc.arrival_cycle(19) == 1
        assert noc.arrival_cycle(20) == 2

    def test_register_writes_at_boundaries(self):
        noc, table = make_noc(n_routers=25, neurons=2, pe_ghz=0.75)
        result = noc.broadcast(
            pack_beats(table), np.zeros((25, 2), dtype=np.int64)
        )
        # each of the 2 beats is latched at routers 10 and 20
        assert result.counters.get("register_write") == 4

    def test_buffering_routers_marked(self):
        noc, _ = make_noc(n_routers=25, neurons=2, pe_ghz=0.75)
        buffering = {r.router_id for r in noc.routers if r.buffering}
        assert buffering == {10, 20}


class TestValidation:
    def test_wrong_beat_count(self):
        noc, table = make_noc(n_segments=16)
        beats = pack_beats(table)[:1]
        with pytest.raises(ValueError, match="beats"):
            noc.broadcast(beats, np.zeros((8, 4), dtype=np.int64))

    def test_wrong_address_shape(self):
        noc, table = make_noc()
        with pytest.raises(ValueError, match="shape"):
            noc.broadcast(pack_beats(table), np.zeros((8, 3), dtype=np.int64))

    def test_topology_schedule_mismatch(self):
        spec = get_function("sigmoid")
        table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
        schedule = NovaMapper().schedule(8, 0.24, 16)
        with pytest.raises(ValueError, match="routers"):
            NovaNoc(LineTopology(n_routers=9), schedule, 4)

    def test_arrival_cycle_bounds(self):
        noc, _ = make_noc()
        with pytest.raises(ValueError):
            noc.arrival_cycle(8)


class TestCounterIsolation:
    def test_per_broadcast_counters_are_deltas(self):
        noc, table = make_noc()
        addresses = np.zeros((8, 4), dtype=np.int64)
        first = noc.broadcast(pack_beats(table), addresses)
        second = noc.broadcast(pack_beats(table), addresses)
        assert first.counters.get("wire_hop") == second.counters.get("wire_hop")
        assert first.counters.get("pair_capture") == 8 * 4
        assert second.counters.get("pair_capture") == 8 * 4
