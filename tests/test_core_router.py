"""Unit tests for the NOVA router microarchitecture."""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import LinkBeat, QuantizedPwl, pack_beats
from repro.core.router import NovaRouter


def make_beats(n_segments=16):
    spec = get_function("tanh")
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, n_segments))
    return pack_beats(table), table


class TestLookupLifecycle:
    def test_begin_observe_pop(self):
        beats, table = make_beats(16)
        router = NovaRouter(router_id=0, n_neurons=4)
        addresses = np.array([0, 5, 10, 15])
        router.begin_lookup(0, addresses, n_beats=2)
        assert not router.lookup_complete(0)
        router.observe_beat(0, beats[0])
        router.observe_beat(0, beats[1])
        assert router.lookup_complete(0)
        slopes, biases = router.pop_pairs(0)
        words = table.coefficient_words()
        assert np.array_equal(slopes, words[addresses, 0])
        assert np.array_equal(biases, words[addresses, 1])

    def test_tag_matching_splits_by_lsb(self):
        beats, _ = make_beats(16)
        router = NovaRouter(router_id=0, n_neurons=2)
        router.begin_lookup(0, np.array([2, 3]), n_beats=2)  # even, odd
        router.observe_beat(0, beats[0])  # tag 0 -> captures address 2 only
        assert not router.lookup_complete(0)
        assert router.counters.get("pair_capture") == 1
        router.observe_beat(0, beats[1])
        assert router.lookup_complete(0)

    def test_single_beat_table(self):
        beats, table = make_beats(8)
        router = NovaRouter(router_id=1, n_neurons=8)
        addresses = np.arange(8)
        router.begin_lookup(0, addresses, n_beats=1)
        router.observe_beat(0, beats[0])
        slopes, _ = router.pop_pairs(0)
        assert np.array_equal(slopes, table.coefficient_words()[:, 0])

    def test_pop_removes_job(self):
        beats, _ = make_beats(8)
        router = NovaRouter(router_id=0, n_neurons=1)
        router.begin_lookup(0, np.array([3]), n_beats=1)
        router.observe_beat(0, beats[0])
        router.pop_pairs(0)
        assert router.outstanding_lookups == 0
        with pytest.raises(RuntimeError):
            router.pop_pairs(0)

    def test_multiple_outstanding_lookups(self):
        beats, table = make_beats(8)
        router = NovaRouter(router_id=0, n_neurons=1)
        router.begin_lookup(0, np.array([1]), n_beats=1)
        router.begin_lookup(1, np.array([6]), n_beats=1)
        router.observe_beat(0, beats[0])
        router.observe_beat(1, beats[0])
        s0, _ = router.pop_pairs(0)
        s1, _ = router.pop_pairs(1)
        words = table.coefficient_words()
        assert s0[0] == words[1, 0] and s1[0] == words[6, 0]


class TestValidation:
    def test_wrong_address_shape(self):
        router = NovaRouter(router_id=0, n_neurons=4)
        with pytest.raises(ValueError):
            router.begin_lookup(0, np.array([1, 2]), n_beats=1)

    def test_address_out_of_range(self):
        router = NovaRouter(router_id=0, n_neurons=1)
        with pytest.raises(ValueError):
            router.begin_lookup(0, np.array([8]), n_beats=1)
        with pytest.raises(ValueError):
            router.begin_lookup(0, np.array([-1]), n_beats=1)

    def test_non_power_of_two_beats(self):
        router = NovaRouter(router_id=0, n_neurons=1)
        with pytest.raises(ValueError):
            router.begin_lookup(0, np.array([0]), n_beats=3)

    def test_duplicate_broadcast_id(self):
        router = NovaRouter(router_id=0, n_neurons=1)
        router.begin_lookup(0, np.array([0]), n_beats=1)
        with pytest.raises(RuntimeError):
            router.begin_lookup(0, np.array([0]), n_beats=1)

    def test_beat_without_lookup(self):
        router = NovaRouter(router_id=0, n_neurons=1)
        beat = LinkBeat(tag=0, pairs=((0, 0),) * 8)
        with pytest.raises(RuntimeError):
            router.observe_beat(9, beat)

    def test_pop_incomplete(self):
        beats, _ = make_beats(16)
        router = NovaRouter(router_id=0, n_neurons=1)
        router.begin_lookup(0, np.array([1]), n_beats=2)  # odd -> beat 1
        router.observe_beat(0, beats[0])
        with pytest.raises(RuntimeError):
            router.pop_pairs(0)

    def test_zero_neurons_rejected(self):
        with pytest.raises(ValueError):
            NovaRouter(router_id=0, n_neurons=0)


class TestEventCounting:
    def test_tag_match_counts_pending_only(self):
        beats, _ = make_beats(16)
        router = NovaRouter(router_id=0, n_neurons=4)
        router.begin_lookup(0, np.array([0, 2, 4, 6]), n_beats=2)  # all even
        router.observe_beat(0, beats[0])
        assert router.counters.get("tag_match") == 4
        assert router.counters.get("pair_capture") == 4
        router.observe_beat(0, beats[1])  # nothing pending
        assert router.counters.get("tag_match") == 4

    def test_buffering_flag(self):
        router = NovaRouter(router_id=0, n_neurons=1)
        assert not router.buffering
        router.set_buffering(True)
        assert router.buffering
