"""Unit tests for fixed-point tables and link-beat packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import (
    LinkBeat,
    PAIRS_PER_BEAT,
    QuantizedPwl,
    beat_of_address,
    pack_beats,
    slot_of_address,
    unpack_beats,
)
from repro.utils.fixed_point import Q5_10


def make_table(n_segments=16, name="gelu", seed=0):
    spec = get_function(name)
    pwl = train_nnlut_mlp(spec, n_segments=n_segments, seed=seed,
                          epochs=60).to_piecewise_linear(n_segments)
    return QuantizedPwl(pwl)


class TestQuantizedPwl:
    def test_n_beats(self):
        assert make_table(8).n_beats == 1
        assert make_table(16).n_beats == 2

    def test_evaluate_outputs_representable(self):
        table = make_table(16)
        xs = np.linspace(-8, 8, 257)
        ys = table.evaluate(xs)
        assert np.array_equal(ys, Q5_10.quantize(ys))

    def test_quantization_error_bounded(self):
        spec = get_function("gelu")
        table = make_table(16)
        xs = np.linspace(*spec.domain, 1001)
        err = np.max(np.abs(table.evaluate(xs) - spec.fn(xs)))
        # PWL error plus a few LSBs of quantisation noise
        assert err < 0.05

    def test_coefficient_words_shape_and_range(self):
        table = make_table(16)
        words = table.coefficient_words()
        assert words.shape == (16, 2)
        assert words.max() <= Q5_10.max_raw
        assert words.min() >= Q5_10.min_raw

    def test_segment_index_on_quantized_cuts(self):
        table = make_table(8)
        idx = table.segment_index(np.linspace(-8, 8, 100))
        assert idx.min() >= 0 and idx.max() <= 7


class TestTagAddressing:
    def test_single_beat_uses_full_address_as_slot(self):
        for addr in range(8):
            assert beat_of_address(addr, 1) == 0
            assert slot_of_address(addr, 1) == addr

    def test_two_beats_lsb_is_tag(self):
        # paper §III-A.1: LSB matches the tag, remaining bits pick the pair
        for addr in range(16):
            assert beat_of_address(addr, 2) == addr & 1
            assert slot_of_address(addr, 2) == addr >> 1

    def test_four_beats_two_tag_bits(self):
        for addr in range(32):
            assert beat_of_address(addr, 4) == addr & 3
            assert slot_of_address(addr, 4) == addr >> 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            beat_of_address(0, 3)
        with pytest.raises(ValueError):
            slot_of_address(0, 3)


class TestLinkBeat:
    def test_257_bit_width(self):
        # 16 words x 16 bits + 1 tag bit (paper Fig. 3)
        beat = LinkBeat(tag=0, pairs=tuple((0, 0) for _ in range(8)))
        assert beat.bit_width == 257

    def test_wrong_pair_count_rejected(self):
        with pytest.raises(ValueError):
            LinkBeat(tag=0, pairs=((0, 0),) * 7)

    def test_negative_tag_rejected(self):
        with pytest.raises(ValueError):
            LinkBeat(tag=-1, pairs=((0, 0),) * 8)


class TestPackUnpack:
    @pytest.mark.parametrize("n_segments", [4, 8, 16, 32])
    def test_round_trip_lossless(self, n_segments):
        spec = get_function("tanh")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, n_segments)
        table = QuantizedPwl(pwl)
        beats = pack_beats(table)
        words = unpack_beats(beats, n_segments)
        assert np.array_equal(words, table.coefficient_words())

    def test_beat_count_padded_to_power_of_two(self):
        spec = get_function("tanh")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 20)
        beats = pack_beats(QuantizedPwl(pwl))
        assert len(beats) == 4  # ceil(20/8)=3 -> padded to 4

    def test_interleaving_layout(self):
        # address a lives in beat a%n_beats at slot a//n_beats
        table = make_table(16)
        beats = pack_beats(table)
        words = table.coefficient_words()
        for address in range(16):
            beat = beats[address % 2]
            slope, bias = beat.pair_for_slot(address // 2)
            assert (slope, bias) == (words[address, 0], words[address, 1])

    def test_tags_are_sequential(self):
        beats = pack_beats(make_table(16))
        assert [b.tag for b in beats] == [0, 1]

    def test_short_table_zero_fills(self):
        spec = get_function("tanh")
        pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 5)
        beats = pack_beats(QuantizedPwl(pwl))
        assert len(beats) == 1
        # slots 5..7 are zero-filled
        for slot in range(5, PAIRS_PER_BEAT):
            assert beats[0].pair_for_slot(slot) == (0, 0)


@settings(max_examples=25, deadline=None)
@given(n_segments=st.sampled_from([2, 4, 8, 12, 16, 24, 32]))
def test_pack_unpack_property(n_segments):
    spec = get_function("sigmoid")
    pwl = PiecewiseLinear.fit(spec.fn, spec.domain, n_segments)
    table = QuantizedPwl(pwl)
    assert np.array_equal(
        unpack_beats(pack_beats(table), n_segments), table.coefficient_words()
    )
