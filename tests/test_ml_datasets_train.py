"""Tests for synthetic datasets, training and the Table I harness."""

import numpy as np
import pytest

from repro.ml.approx_inference import table1_model_zoo, accuracy_with_softmax
from repro.ml.datasets import (
    make_cifar_like,
    make_mnist_like,
    make_sentiment_like,
    make_span_qa_like,
)
from repro.ml.layers import InferenceContext
from repro.ml.models import build_mlp, build_tiny_transformer
from repro.ml.train import TrainConfig, evaluate_accuracy, train_classifier


class TestDatasets:
    def test_mnist_like_shapes(self):
        ds = make_mnist_like(n_samples=400)
        assert ds.x_train.shape[1] == 784
        assert ds.n_classes == 10
        assert len(ds.x_train) + len(ds.x_test) == 400

    def test_cifar_like_shapes(self):
        ds = make_cifar_like(n_samples=200)
        assert ds.x_train.shape[1:] == (3, 16, 16)

    def test_sentiment_like_tokens_in_vocab(self):
        ds = make_sentiment_like(n_samples=200, vocab=64)
        assert ds.x_train.max() < 64 and ds.x_train.min() >= 0
        assert set(np.unique(ds.y_train)) <= {0, 1}

    def test_span_qa_marker_precedes_answer(self):
        ds = make_span_qa_like(n_samples=100)
        # marker token (1) sits immediately before the labelled position
        for x, y in zip(ds.x_train[:20], ds.y_train[:20]):
            assert x[y - 1] == 1

    def test_deterministic(self):
        a = make_mnist_like(n_samples=100, seed=5)
        b = make_mnist_like(n_samples=100, seed=5)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = make_mnist_like(n_samples=100, seed=5)
        b = make_mnist_like(n_samples=100, seed=6)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_all_classes_present(self):
        ds = make_cifar_like(n_samples=1000)
        assert len(np.unique(ds.y_train)) == 10


class TestTraining:
    def test_mlp_learns_mnist_like(self):
        ds = make_mnist_like(n_samples=800, seed=0)
        model = build_mlp(seed=0)
        losses = train_classifier(model, ds, TrainConfig(epochs=4, seed=0))
        assert losses[-1] < losses[0]  # loss decreases
        acc = evaluate_accuracy(model, ds.x_test, ds.y_test)
        assert acc > 0.6  # far above the 10% chance level

    def test_transformer_learns_sentiment(self):
        ds = make_sentiment_like(n_samples=600, seed=1)
        model = build_tiny_transformer(seed=1)
        train_classifier(model, ds, TrainConfig(epochs=5, seed=1))
        acc = evaluate_accuracy(model, ds.x_test, ds.y_test)
        assert acc > 0.7  # above the 50% chance level

    def test_training_deterministic(self):
        ds = make_mnist_like(n_samples=300, seed=2)
        cfg = TrainConfig(epochs=2, seed=3)
        m1 = build_mlp(seed=4)
        m2 = build_mlp(seed=4)
        l1 = train_classifier(m1, ds, cfg)
        l2 = train_classifier(m2, ds, cfg)
        assert l1 == l2

    def test_evaluate_accuracy_batching_invariant(self):
        ds = make_mnist_like(n_samples=300, seed=5)
        model = build_mlp(seed=6)
        a = evaluate_accuracy(model, ds.x_test, ds.y_test, batch_size=7)
        b = evaluate_accuracy(model, ds.x_test, ds.y_test, batch_size=64)
        assert a == b


class TestTable1Harness:
    def test_zoo_covers_table1(self):
        zoo = table1_model_zoo()
        names = [(e.model_name, e.dataset_name) for e in zoo]
        assert ("MLP", "MNIST") in names
        assert ("RoBERTa", "SST-2") in names
        assert ("MobileBERT", "SQUAD") in names
        assert len(zoo) == 6

    def test_breakpoint_budgets_match_paper(self):
        # "All models use 16 breakpoints except CIFAR-10 which uses 8"
        for entry in table1_model_zoo():
            expected = 8 if entry.dataset_name == "CIFAR-10" else 16
            assert entry.breakpoints == expected

    def test_mlp_row_zero_accuracy_loss(self):
        # the headline Table I property on the fastest row
        entry = table1_model_zoo()[0]
        result = accuracy_with_softmax(entry)
        assert result["exact"] > 60.0
        assert abs(result["approx"] - result["exact"]) <= 1.0

    def test_monotone_softmax_preserves_classifier_argmax(self):
        # structural reason for the zero deltas: PWL exp is monotone, and
        # a monotone map cannot change the argmax of the final classifier
        from repro.approx.softmax import make_softmax_approximator

        sm = make_softmax_approximator(8, use_mlp=False)
        logits = np.random.default_rng(7).normal(scale=4, size=(200, 10))
        exact_arg = logits.argmax(axis=-1)
        approx_arg = sm(logits).argmax(axis=-1)
        assert np.array_equal(exact_arg, approx_arg)

    def test_approx_context_changes_attention_probs_only_slightly(self):
        ds = make_sentiment_like(n_samples=300, seed=8)
        model = build_tiny_transformer(seed=8)
        train_classifier(model, ds, TrainConfig(epochs=3, seed=8))
        from repro.ml.approx_inference import _approx_context

        exact = evaluate_accuracy(model, ds.x_test, ds.y_test)
        approx = evaluate_accuracy(
            model, ds.x_test, ds.y_test, ctx=_approx_context(16)
        )
        assert abs(approx - exact) < 0.05  # within 5 points
