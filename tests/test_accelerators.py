"""Unit tests for the systolic timing model and host accelerators."""

import pytest

from repro.accelerators.base import PerformanceReport
from repro.accelerators.configs import build_accelerator
from repro.accelerators.nvdla import NvdlaAccelerator
from repro.accelerators.react import ReactAccelerator
from repro.accelerators.systolic import Dataflow, SystolicArray
from repro.accelerators.tpu import TpuLikeAccelerator
from repro.workloads.ops import MatMulOp, NonLinearOp, OpGraph


class TestSystolicArray:
    def test_os_single_tile_hand_computed(self):
        # 4x4 array, 4x4x4 GEMM, OS: one tile, 2R+C+K-2 = 8+4+4-2 = 14
        array = SystolicArray(4, 4, Dataflow.OUTPUT_STATIONARY)
        t = array.gemm_timing(MatMulOp("g", 4, 4, 4))
        assert t.tiles == 1
        assert t.cycles == 14

    def test_ws_single_fold_hand_computed(self):
        # 4x4 array, M=8 K=4 N=4, WS: 1 fold, R + (M+R+C-2) = 4 + 14 = 18
        array = SystolicArray(4, 4, Dataflow.WEIGHT_STATIONARY)
        t = array.gemm_timing(MatMulOp("g", 8, 4, 4))
        assert t.tiles == 1
        assert t.cycles == 18

    def test_is_single_fold_hand_computed(self):
        # IS: folds = ceil(K/R)*ceil(M/C) = 1; R + (N+R+C-2) = 4+(4+6) = 14
        array = SystolicArray(4, 4, Dataflow.INPUT_STATIONARY)
        t = array.gemm_timing(MatMulOp("g", 4, 4, 4))
        assert t.cycles == 14

    def test_os_tiling(self):
        array = SystolicArray(4, 4, Dataflow.OUTPUT_STATIONARY)
        t = array.gemm_timing(MatMulOp("g", 8, 4, 8))
        assert t.tiles == 4  # ceil(8/4) * ceil(8/4)

    def test_ws_folds_over_k(self):
        array = SystolicArray(4, 4, Dataflow.WEIGHT_STATIONARY)
        t = array.gemm_timing(MatMulOp("g", 4, 16, 4))
        assert t.tiles == 4  # ceil(16/4) folds

    def test_utilization_bounded(self):
        array = SystolicArray(128, 128)
        t = array.gemm_timing(MatMulOp("g", 1024, 1024, 1024))
        assert 0.0 < t.utilization <= 1.0

    def test_big_gemm_high_utilization(self):
        array = SystolicArray(128, 128)
        t = array.gemm_timing(MatMulOp("g", 4096, 4096, 4096))
        assert t.utilization > 0.8

    def test_traffic_positive(self):
        array = SystolicArray(8, 8)
        t = array.gemm_timing(MatMulOp("g", 16, 16, 16))
        assert t.sram_reads > 0 and t.sram_writes > 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4)


class TestHosts:
    def small_graph(self):
        graph = OpGraph("toy")
        graph.add(MatMulOp("mm1", 64, 64, 64))
        graph.add(NonLinearOp("sm", "exp", queries=4096))
        graph.add(MatMulOp("mm2", 64, 64, 64))
        return graph

    def test_tpu_report_structure(self):
        host = TpuLikeAccelerator("tpu", n_mxus=4)
        report = host.run(self.small_graph())
        assert isinstance(report, PerformanceReport)
        assert report.total_cycles == report.gemm_cycles + report.nonlinear_cycles
        assert report.nonlinear_queries == 4096

    def test_tpu_vector_throughput(self):
        host = TpuLikeAccelerator("tpu", n_mxus=4, neurons_per_unit=128)
        graph = OpGraph("v")
        graph.add(NonLinearOp("sm", "exp", queries=4096))
        report = host.run(graph)
        assert report.nonlinear_cycles == 4096 // (4 * 128)

    def test_more_mxus_faster(self):
        graph = self.small_graph()
        t4 = TpuLikeAccelerator("v3", n_mxus=4).run(graph).gemm_cycles
        t8 = TpuLikeAccelerator("v4", n_mxus=8).run(graph).gemm_cycles
        assert t8 <= t4

    def test_lpt_scheduling_balances(self):
        host = TpuLikeAccelerator("tpu", n_mxus=2)
        graph = OpGraph("two")
        graph.add(MatMulOp("a", 256, 128, 128))
        graph.add(MatMulOp("b", 256, 128, 128))
        report = host.run(graph)
        single = host.array.gemm_cycles(MatMulOp("a", 256, 128, 128))
        assert report.gemm_cycles == single  # perfectly parallel

    def test_react_compute_bound(self):
        host = ReactAccelerator()
        graph = OpGraph("g")
        op = MatMulOp("mm", 128, 128, 128)
        graph.add(op)
        report = host.run(graph)
        expected = -(-op.macs // (host.peak_macs_per_cycle * host.efficiency))
        assert report.gemm_cycles == int(expected)

    def test_react_geometry_matches_table2(self):
        host = ReactAccelerator()
        assert host.n_vector_units == 10
        assert host.neurons_per_unit == 256
        assert host.frequency_ghz == pytest.approx(0.24)

    def test_nvdla_duty_cycle_low_on_deep_conv(self):
        # the structural justification for the Jetson utilization setting:
        # deep-channel convolution (K = 256*9) emits activation vectors
        # rarely, so the approximator idles most cycles
        from repro.eval.experiments import nvdla_duty_cycle_estimate

        duty = nvdla_duty_cycle_estimate()
        assert 0.0 < duty < 0.1

    def test_nvdla_duty_cycle_scales_inverse_k(self):
        host = NvdlaAccelerator()
        shallow = OpGraph("shallow")
        shallow.add(MatMulOp("c", m=196, k=64 * 9, n=256))
        deep = OpGraph("deep")
        deep.add(MatMulOp("c", m=196, k=512 * 9, n=256))
        assert (host.activation_duty_cycle(deep)
                < host.activation_duty_cycle(shallow))

    def test_nvdla_geometry(self):
        host = NvdlaAccelerator()
        assert host.n_vector_units == 2
        assert host.neurons_per_unit == 16
        assert host.macs_per_core_cycle == 1024

    def test_builder_registry(self):
        for name in ("REACT", "TPU v3-like", "TPU v4-like", "Jetson Xavier NX"):
            host = build_accelerator(name)
            assert host.name == name
        with pytest.raises(KeyError):
            build_accelerator("GPU")

    def test_report_properties(self):
        report = PerformanceReport(
            workload="w", accelerator="a", frequency_ghz=1.0,
            gemm_cycles=900, nonlinear_cycles=100,
            total_macs=10, nonlinear_queries=5,
        )
        assert report.vector_duty_cycle == pytest.approx(0.1)
        assert report.runtime_ms == pytest.approx(1000 / 1e6)

    def test_invalid_host_args(self):
        with pytest.raises(ValueError):
            TpuLikeAccelerator("bad", n_mxus=0)
        with pytest.raises(ValueError):
            ReactAccelerator(efficiency=0.0)
