"""Unit tests for NoC ports, stats, topology and flits."""

import pytest

from repro.approx.quantize import LinkBeat
from repro.noc.packet import BroadcastFlit, Flit
from repro.noc.router import BufferedInputPort, PortState, RouterBase
from repro.noc.stats import EventCounters
from repro.noc.topology import LineTopology


class TestBufferedInputPort:
    def test_forward_is_combinational(self):
        port = BufferedInputPort(state=PortState.FORWARD)
        flit = Flit(payload="x", source=0, injected_cycle=0)
        port.accept(flit)
        assert port.visible() is flit  # bypass: visible same cycle

    def test_buffer_delays_one_cycle(self):
        port = BufferedInputPort(state=PortState.BUFFER)
        flit = Flit(payload="x", source=0, injected_cycle=0)
        port.accept(flit)
        assert port.visible() is None  # not yet latched
        port.commit()
        assert port.present is flit

    def test_commit_clears_incoming(self):
        port = BufferedInputPort()
        port.accept(Flit(payload="x", source=0, injected_cycle=0))
        port.commit()
        assert port.incoming is None


class TestEventCounters:
    def test_add_and_get(self):
        c = EventCounters()
        c.add("mac_op", 3)
        c.add("mac_op")
        assert c.get("mac_op") == 4
        assert c.get("never") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EventCounters().add("x", -1)

    def test_merge_is_nondestructive(self):
        a = EventCounters({"x": 1})
        b = EventCounters({"x": 2, "y": 3})
        merged = a.merge(b)
        assert merged.get("x") == 3 and merged.get("y") == 3
        assert a.get("x") == 1

    def test_diff(self):
        before = EventCounters({"x": 1})
        after = EventCounters({"x": 4, "y": 2})
        delta = after.diff(before)
        assert delta.get("x") == 3 and delta.get("y") == 2

    def test_diff_rejects_decrease(self):
        with pytest.raises(ValueError):
            EventCounters({"x": 1}).diff(EventCounters({"x": 2}))

    def test_snapshot_isolated(self):
        c = EventCounters({"x": 1})
        snap = c.snapshot()
        c.add("x")
        assert snap.get("x") == 1

    def test_total(self):
        assert EventCounters({"a": 2, "b": 3}).total() == 5


class TestLineTopology:
    def test_basic(self):
        topo = LineTopology(n_routers=8)
        assert topo.n_hops == 7
        assert topo.total_length_mm() == pytest.approx(7.0)

    def test_snake_positions_4x2(self):
        # the paper's walkthrough grid: even rows L->R, odd rows R->L
        topo = LineTopology(n_routers=8, grid_shape=(4, 2))
        positions = [topo.position(i) for i in range(8)]
        assert positions == [
            (0, 0), (0, 1), (1, 1), (1, 0), (2, 0), (2, 1), (3, 1), (3, 0),
        ]

    def test_snake_adjacent_routers_physically_adjacent(self):
        topo = LineTopology(n_routers=12, grid_shape=(3, 4))
        for i in range(11):
            r1, c1 = topo.position(i)
            r2, c2 = topo.position(i + 1)
            assert abs(r1 - r2) + abs(c1 - c2) == 1

    def test_grid_shape_must_match(self):
        with pytest.raises(ValueError):
            LineTopology(n_routers=8, grid_shape=(3, 3))

    def test_position_bounds(self):
        topo = LineTopology(n_routers=4)
        with pytest.raises(ValueError):
            topo.position(4)

    def test_link_dimensions(self):
        link = LineTopology(n_routers=2, hop_mm=0.5).link()
        assert link.width_bits == 257
        assert link.length_mm == 0.5


class TestFlits:
    def test_flit_validation(self):
        with pytest.raises(ValueError):
            Flit(payload=None, source=-1, injected_cycle=0)
        with pytest.raises(ValueError):
            Flit(payload=None, source=0, injected_cycle=-1)

    def test_broadcast_flit_typed_beat(self):
        beat = LinkBeat(tag=0, pairs=((0, 0),) * 8)
        flit = BroadcastFlit(
            payload=beat, source=0, injected_cycle=0, broadcast_id=1, beat_index=0
        )
        assert flit.beat is beat

    def test_broadcast_flit_wrong_payload(self):
        flit = BroadcastFlit(payload="junk", source=0, injected_cycle=0)
        with pytest.raises(TypeError):
            _ = flit.beat


class TestRouterBase:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            RouterBase(router_id=-1)
