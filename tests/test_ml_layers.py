"""Gradient and behaviour tests for the tiny NN framework.

Every layer's backward pass is checked against central finite differences
— the property that makes the Table I training trustworthy.
"""

import numpy as np
import pytest

from repro.ml.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Embedding,
    Flatten,
    GeLU,
    InferenceContext,
    LayerNorm,
    MaxPool2D,
    MeanPool1D,
    MultiHeadSelfAttention,
    ReLU,
    Sequential,
)

TRAIN = InferenceContext(training=True)
EVAL = InferenceContext()


def numeric_grad(f, x, eps=1e-5):
    """Central finite differences of scalar f at array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_input_grad(layer, x, rtol=1e-4, atol=1e-6):
    """Compare layer.backward's input gradient against finite differences
    of sum(forward(x))."""
    def loss():
        return float(np.sum(layer.forward(x, TRAIN)))

    out = layer.forward(x, TRAIN)
    analytic = layer.backward(np.ones_like(out))
    numeric = numeric_grad(loss, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_param_grads(layer, x, rtol=1e-4, atol=1e-6):
    """Compare every parameter gradient against finite differences."""
    out = layer.forward(x, TRAIN)
    for p in layer.params():
        p.grad[...] = 0.0
    layer.forward(x, TRAIN)
    layer.backward(np.ones_like(out))
    for p in layer.params():
        def loss():
            return float(np.sum(layer.forward(x, TRAIN)))

        numeric = numeric_grad(loss, p.value)
        np.testing.assert_allclose(
            p.grad, numeric, rtol=rtol, atol=atol,
            err_msg=f"param {p.name}",
        )


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, seed=0)
        assert layer.forward(np.zeros((2, 4)), EVAL).shape == (2, 3)

    def test_input_grad(self):
        layer = Dense(4, 3, seed=1)
        check_input_grad(layer, np.random.default_rng(0).normal(size=(2, 4)))

    def test_param_grads(self):
        layer = Dense(4, 3, seed=2)
        check_param_grads(layer, np.random.default_rng(1).normal(size=(2, 4)))

    def test_3d_input(self):
        layer = Dense(4, 3, seed=3)
        check_param_grads(layer, np.random.default_rng(2).normal(size=(2, 5, 4)))


class TestConv2D:
    def test_forward_shape_same_padding(self):
        layer = Conv2D(3, 8, seed=0)
        assert layer.forward(np.zeros((2, 3, 8, 8)), EVAL).shape == (2, 8, 8, 8)

    def test_input_grad(self):
        layer = Conv2D(2, 3, seed=1)
        check_input_grad(
            layer, np.random.default_rng(3).normal(size=(1, 2, 4, 4))
        )

    def test_param_grads(self):
        layer = Conv2D(2, 3, seed=2)
        check_param_grads(
            layer, np.random.default_rng(4).normal(size=(1, 2, 4, 4))
        )

    def test_identity_kernel(self):
        layer = Conv2D(1, 1, kernel=1, seed=0)
        layer.w.value[...] = 1.0
        layer.b.value[...] = 0.0
        x = np.random.default_rng(5).normal(size=(1, 1, 4, 4))
        assert np.allclose(layer.forward(x, EVAL), x)


class TestDepthwiseConv2D:
    def test_forward_shape(self):
        layer = DepthwiseConv2D(4, seed=0)
        assert layer.forward(np.zeros((2, 4, 6, 6)), EVAL).shape == (2, 4, 6, 6)

    def test_input_grad(self):
        layer = DepthwiseConv2D(2, seed=1)
        check_input_grad(
            layer, np.random.default_rng(6).normal(size=(1, 2, 4, 4))
        )

    def test_param_grads(self):
        layer = DepthwiseConv2D(2, seed=2)
        check_param_grads(
            layer, np.random.default_rng(7).normal(size=(1, 2, 4, 4))
        )

    def test_channel_independence(self):
        # perturbing channel 0 must not change channel 1's output
        layer = DepthwiseConv2D(2, seed=3)
        x = np.random.default_rng(8).normal(size=(1, 2, 4, 4))
        base = layer.forward(x, EVAL)
        x2 = x.copy()
        x2[:, 0] += 1.0
        bumped = layer.forward(x2, EVAL)
        assert np.allclose(base[:, 1], bumped[:, 1])


class TestPoolingAndShape:
    def test_maxpool_forward(self):
        layer = MaxPool2D()
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = layer.forward(x, EVAL)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == 5.0  # max of [[0,1],[4,5]]

    def test_maxpool_grad_routes_to_max(self):
        layer = MaxPool2D()
        x = np.random.default_rng(9).normal(size=(1, 1, 4, 4))
        check_input_grad(layer, x)

    def test_maxpool_odd_dims_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2D().forward(np.zeros((1, 1, 3, 4)), EVAL)

    def test_flatten_round_trip(self):
        layer = Flatten()
        x = np.random.default_rng(10).normal(size=(2, 3, 4))
        out = layer.forward(x, TRAIN)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_meanpool_grad(self):
        layer = MeanPool1D()
        check_input_grad(layer, np.random.default_rng(11).normal(size=(2, 5, 3)))


class TestActivations:
    def test_relu_grad(self):
        layer = ReLU()
        x = np.random.default_rng(12).normal(size=(3, 4)) + 0.1
        check_input_grad(layer, x)

    def test_gelu_grad(self):
        layer = GeLU()
        check_input_grad(
            layer, np.random.default_rng(13).normal(size=(3, 4)), rtol=1e-3
        )

    def test_gelu_uses_context_at_inference(self):
        layer = GeLU()
        ctx = InferenceContext(gelu_fn=lambda x: np.zeros_like(x))
        out = layer.forward(np.ones((2, 2)), ctx)
        assert np.all(out == 0.0)


class TestNormAndEmbedding:
    def test_layernorm_output_standardised(self):
        layer = LayerNorm(8)
        x = np.random.default_rng(14).normal(2.0, 3.0, size=(4, 8))
        out = layer.forward(x, EVAL)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_grads(self):
        layer = LayerNorm(5)
        check_param_grads(
            layer, np.random.default_rng(15).normal(size=(3, 5)), rtol=1e-3
        )

    def test_layernorm_input_grad(self):
        layer = LayerNorm(5)
        check_input_grad(
            layer, np.random.default_rng(16).normal(size=(3, 5)), rtol=1e-3
        )

    def test_embedding_lookup(self):
        layer = Embedding(10, 4, seed=0)
        ids = np.array([[1, 2], [3, 1]])
        out = layer.forward(ids, EVAL)
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out[0, 0], layer.table.value[1])

    def test_embedding_grad_scatter(self):
        layer = Embedding(10, 4, seed=1)
        ids = np.array([[1, 1]])
        layer.forward(ids, TRAIN)
        layer.backward(np.ones((1, 2, 4)))
        # token 1 used twice -> gradient 2 on its row, 0 elsewhere
        assert np.allclose(layer.table.grad[1], 2.0)
        assert np.allclose(layer.table.grad[0], 0.0)


class TestAttention:
    def test_forward_shape(self):
        layer = MultiHeadSelfAttention(8, 2, seed=0)
        assert layer.forward(np.zeros((2, 5, 8)), EVAL).shape == (2, 5, 8)

    def test_input_grad(self):
        layer = MultiHeadSelfAttention(4, 2, seed=1)
        check_input_grad(
            layer,
            np.random.default_rng(17).normal(size=(1, 3, 4)),
            rtol=1e-3, atol=1e-5,
        )

    def test_param_grads(self):
        layer = MultiHeadSelfAttention(4, 2, seed=2)
        check_param_grads(
            layer,
            np.random.default_rng(18).normal(size=(1, 3, 4)),
            rtol=1e-3, atol=1e-5,
        )

    def test_softmax_pluggable_at_inference(self):
        layer = MultiHeadSelfAttention(4, 2, seed=3)
        x = np.random.default_rng(19).normal(size=(1, 3, 4))
        exact = layer.forward(x, EVAL)

        def uniform_softmax(scores, axis=-1):
            n = scores.shape[axis]
            return np.full_like(scores, 1.0 / n)

        ctx = InferenceContext(softmax_fn=uniform_softmax)
        approx = layer.forward(x, ctx)
        assert not np.allclose(exact, approx)

    def test_dim_heads_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(5, 2)


class TestSequential:
    def test_composition_and_zero_grads(self):
        model = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 2, seed=1)])
        x = np.random.default_rng(20).normal(size=(3, 4))
        out = model.forward(x, TRAIN)
        model.backward(np.ones_like(out))
        assert any(np.any(p.grad != 0) for p in model.params())
        model.zero_grads()
        assert all(np.all(p.grad == 0) for p in model.params())

    def test_end_to_end_grad(self):
        model = Sequential([Dense(3, 4, seed=2), ReLU(), Dense(4, 2, seed=3)])
        x = np.random.default_rng(21).normal(size=(2, 3))
        check_param_grads(model, x)
