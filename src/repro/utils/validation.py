"""Argument validation helpers.

Hardware-model constructors take many integer parameters (port counts,
widths, neuron counts); these helpers keep the error messages uniform and
the constructors short.
"""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_power_of_two",
    "check_in_range",
]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
