"""Plain-text table rendering for experiment reports.

The benchmark harness prints each paper table/figure as an aligned text
table; this module is the single implementation used everywhere so output
formatting stays consistent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: object, precision: int = 4) -> str:
    """Render one table cell.

    Floats are shown with ``precision`` significant digits; everything else
    through ``str``.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 10 ** precision or magnitude < 10 ** -(precision - 1):
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned text table.

    Returns the table as a single string (no trailing newline) suitable for
    ``print``.  Column widths adapt to content; numeric cells are
    right-aligned, text cells left-aligned.
    """
    rendered_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    header_cells = [str(h) for h in headers]
    n_cols = len(header_cells)
    for row in rendered_rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells but table has {n_cols} columns: {row}"
            )

    widths = [len(h) for h in header_cells]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [True] * n_cols
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if not _looks_numeric(cell):
                numeric[i] = False

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(separator)))
    lines.append(render_row(header_cells))
    lines.append(separator)
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def _looks_numeric(cell: str) -> bool:
    text = cell.replace("x", "").replace("%", "").strip()
    if not text:
        return False
    try:
        float(text)
    except ValueError:
        return False
    return True
