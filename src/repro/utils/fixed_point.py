"""Fixed-point number formats used throughout the NOVA datapath.

The NOVA link is 257 bits wide: 16 words of 16 bits (8 slope/bias pairs)
plus one tag bit (paper, Fig. 3).  All datapath words in this reproduction
are therefore 16-bit two's-complement fixed point by default.  The format is
parameterised so experiments can sweep precision.

A :class:`FixedPointFormat` is immutable and hashable so it can be used as a
dictionary key (e.g. when caching quantised PWL tables per format).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "Q5_10", "Q1_14", "Q7_8"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format.

    Attributes
    ----------
    integer_bits:
        Number of integer bits, *excluding* the sign bit.
    fraction_bits:
        Number of fractional bits.

    The total word width is ``1 + integer_bits + fraction_bits``.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0:
            raise ValueError(f"integer_bits must be >= 0, got {self.integer_bits}")
        if self.fraction_bits < 0:
            raise ValueError(f"fraction_bits must be >= 0, got {self.fraction_bits}")
        if self.word_bits > 64:
            raise ValueError(f"word width {self.word_bits} exceeds 64 bits")

    @property
    def word_bits(self) -> int:
        """Total word width in bits (sign + integer + fraction)."""
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit (the quantisation step)."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.word_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.word_bits - 1)) * self.scale

    @property
    def max_raw(self) -> int:
        """Largest representable raw integer code."""
        return 2 ** (self.word_bits - 1) - 1

    @property
    def min_raw(self) -> int:
        """Smallest representable raw integer code."""
        return -(2 ** (self.word_bits - 1))

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Round ``values`` to the nearest representable value, saturating.

        Returns an array of floats that are exactly representable in this
        format (i.e. integer multiples of :attr:`scale` within range).
        """
        raw = self.to_raw(values)
        return raw.astype(np.float64) * self.scale

    def to_raw(self, values: np.ndarray | float) -> np.ndarray:
        """Convert real values to raw integer codes (round-half-to-even)."""
        arr = np.asarray(values, dtype=np.float64)
        raw = np.rint(arr / self.scale)
        raw = np.clip(raw, self.min_raw, self.max_raw)
        return raw.astype(np.int64)

    def from_raw(self, raw: np.ndarray | int) -> np.ndarray:
        """Convert raw integer codes back to real values."""
        arr = np.asarray(raw, dtype=np.int64)
        if np.any(arr > self.max_raw) or np.any(arr < self.min_raw):
            raise ValueError("raw code out of range for format " + str(self))
        return arr.astype(np.float64) * self.scale

    def saturates(self, values: np.ndarray | float) -> np.ndarray:
        """Boolean mask of inputs that fall outside the representable range."""
        arr = np.asarray(values, dtype=np.float64)
        return (arr > self.max_value) | (arr < self.min_value)

    def mac(
        self,
        slope: np.ndarray | float,
        x: np.ndarray | float,
        bias: np.ndarray | float,
    ) -> np.ndarray:
        """Fixed-point multiply-accumulate ``slope * x + bias``.

        Models the NOVA / NN-LUT MAC lane: the product is computed at full
        precision internally and the final sum is rounded and saturated back
        into this format, which is how a hardware MAC with a wide
        accumulator and an output rounding stage behaves.
        """
        product = np.asarray(slope, dtype=np.float64) * np.asarray(x, dtype=np.float64)
        total = product + np.asarray(bias, dtype=np.float64)
        return self.quantize(total)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fraction_bits}"


#: Default NOVA datapath format: 16-bit word, 5 integer bits, 10 fraction
#: bits.  Range [-32, 32) with ~1e-3 resolution covers the operand ranges of
#: softmax/GeLU/tanh inputs after standard pre-scaling.
Q5_10 = FixedPointFormat(integer_bits=5, fraction_bits=10)

#: High-resolution unit-range format (e.g. for probabilities).
Q1_14 = FixedPointFormat(integer_bits=1, fraction_bits=14)

#: Wide-range format for accumulators fed to the approximator.
Q7_8 = FixedPointFormat(integer_bits=7, fraction_bits=8)
