"""Shared utilities: fixed-point arithmetic, formatting, validation, RNG.

These are the lowest-level building blocks of the reproduction; every other
subpackage may depend on :mod:`repro.utils` but not vice versa.
"""

from repro.utils.fixed_point import FixedPointFormat, Q5_10, Q1_14, Q7_8
from repro.utils.rng import make_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_power_of_two,
    check_in_range,
)

__all__ = [
    "FixedPointFormat",
    "Q5_10",
    "Q1_14",
    "Q7_8",
    "make_rng",
    "format_table",
    "check_positive",
    "check_non_negative",
    "check_power_of_two",
    "check_in_range",
]
