"""Deterministic random number generation helpers.

Every stochastic component in the reproduction (dataset synthesis, MLP
weight initialisation, workload sampling) takes a seed and obtains its
generator through :func:`make_rng`, so experiments are reproducible
run-to-run and machine-to-machine.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator for ``seed``.

    Accepts an existing Generator (returned unchanged) so functions can be
    composed without reseeding, an integer seed, or ``None`` for an
    OS-entropy generator (only sensible in exploratory use, never in tests).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *components: str | int) -> int:
    """Derive a stable sub-seed from a base seed and a component path.

    Used to give independent streams to independent subsystems (e.g. the
    dataset generator and the model initialiser) while keeping everything a
    pure function of one top-level seed.
    """
    seq = np.random.SeedSequence(
        base_seed, spawn_key=tuple(_component_key(c) for c in components)
    )
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def _component_key(component: str | int) -> int:
    if isinstance(component, int):
        return component & 0xFFFFFFFF
    # Stable string hash (Python's hash() is salted per-process).
    value = 2166136261
    for byte in component.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
