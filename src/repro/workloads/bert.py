"""The five Fig. 8 attention benchmarks.

"We ran five attention benchmarks namely MobileBERT-base, MobileBERT-tiny,
RoBERTa, BERT-tiny and BERT-mini which are representative of real-world
NLP based tasks" (§V-F).  Dimensions follow the published configurations:
BERT-tiny/mini from Turc et al. (the paper's [3] citing Devlin et al.),
MobileBERT from Sun et al. [19] (128-wide tiny / 512-wide base bottleneck,
24 layers), RoBERTa-base from Liu et al. [11].
"""

from __future__ import annotations

from repro.workloads.ops import OpGraph
from repro.workloads.transformer import TransformerConfig, build_encoder_graph

__all__ = ["BERT_MODELS", "bert_graph"]

BERT_MODELS: dict[str, TransformerConfig] = {
    config.name: config
    for config in [
        TransformerConfig(
            "BERT-tiny", layers=2, hidden=128, heads=2, intermediate=512,
            seq_len=1024,
        ),
        TransformerConfig(
            "BERT-mini", layers=4, hidden=256, heads=4, intermediate=1024,
            seq_len=1024,
        ),
        TransformerConfig(
            "MobileBERT-tiny", layers=24, hidden=128, heads=4, intermediate=512,
            seq_len=1024,
        ),
        TransformerConfig(
            "MobileBERT-base", layers=24, hidden=512, heads=4, intermediate=512,
            seq_len=1024,
        ),
        TransformerConfig(
            "RoBERTa", layers=12, hidden=768, heads=12, intermediate=3072,
            seq_len=1024,
        ),
    ]
}


def bert_graph(model_name: str, seq_len: int | None = None) -> OpGraph:
    """Op graph for one registered model, optionally at another sequence
    length (REACT is evaluated at 128, the systolic configs at 1024)."""
    try:
        config = BERT_MODELS[model_name]
    except KeyError:
        available = ", ".join(sorted(BERT_MODELS))
        raise KeyError(
            f"unknown model {model_name!r}; available: {available}"
        ) from None
    if seq_len is not None:
        config = TransformerConfig(
            name=config.name,
            layers=config.layers,
            hidden=config.hidden,
            heads=config.heads,
            intermediate=config.intermediate,
            seq_len=seq_len,
        )
    return build_encoder_graph(config)
