"""The five Fig. 8 attention benchmarks.

"We ran five attention benchmarks namely MobileBERT-base, MobileBERT-tiny,
RoBERTa, BERT-tiny and BERT-mini which are representative of real-world
NLP based tasks" (§V-F).  Dimensions follow the published configurations:
BERT-tiny/mini from Turc et al. (the paper's [3] citing Devlin et al.),
MobileBERT from Sun et al. [19] (128-wide tiny / 512-wide base bottleneck,
24 layers), RoBERTa-base from Liu et al. [11].
"""

from __future__ import annotations

from collections.abc import Sequence
from numbers import Integral

import numpy as np

from repro.workloads.ops import OpGraph
from repro.workloads.transformer import (
    TransformerConfig,
    attention_request,
    build_encoder_graph,
    decode_request,
)

__all__ = [
    "BERT_MODELS",
    "SERVING_MODELS",
    "bert_graph",
    "serving_config",
    "bert_attention_batch",
    "decode_batch",
    "mixed_decode_batch",
    "shared_prefix_decode_batch",
]

BERT_MODELS: dict[str, TransformerConfig] = {
    config.name: config
    for config in [
        TransformerConfig(
            "BERT-tiny", layers=2, hidden=128, heads=2, intermediate=512,
            seq_len=1024,
        ),
        TransformerConfig(
            "BERT-mini", layers=4, hidden=256, heads=4, intermediate=1024,
            seq_len=1024,
        ),
        TransformerConfig(
            "MobileBERT-tiny", layers=24, hidden=128, heads=4, intermediate=512,
            seq_len=1024,
        ),
        TransformerConfig(
            "MobileBERT-base", layers=24, hidden=512, heads=4, intermediate=512,
            seq_len=1024,
        ),
        TransformerConfig(
            "RoBERTa", layers=12, hidden=768, heads=12, intermediate=3072,
            seq_len=1024,
        ),
    ]
}


#: Serving-benchmark configurations: the Fig. 8 zoo plus BERT-base
#: (Devlin et al.), the canonical serving workload the batched engine's
#: throughput benchmark is written against, and GPT-2-small (Radford et
#: al.), the causal decoder the KV-cached decode path serves.  Kept out
#: of ``BERT_MODELS`` so the Fig. 8 reproduction keeps exactly the
#: paper's five benchmarks.
SERVING_MODELS: dict[str, TransformerConfig] = {
    **BERT_MODELS,
    "BERT-base": TransformerConfig(
        "BERT-base", layers=12, hidden=768, heads=12, intermediate=3072,
        seq_len=512,
    ),
    "GPT-2-small": TransformerConfig(
        "GPT-2-small", layers=12, hidden=768, heads=12, intermediate=3072,
        seq_len=1024, causal=True,
    ),
}


def serving_config(model_name: str) -> TransformerConfig:
    """Look up a serving model (Fig. 8 zoo plus BERT-base and the
    causal GPT-2-small)."""
    try:
        return SERVING_MODELS[model_name]
    except KeyError:
        available = ", ".join(sorted(SERVING_MODELS))
        raise KeyError(
            f"unknown model {model_name!r}; available: {available}"
        ) from None


def bert_attention_batch(
    model_name: str,
    batch_size: int,
    seq_len: int | Sequence[int] | None = None,
    seed: int = 0,
) -> list:
    """A batch of independent attention requests for one serving model.

    ``seq_len`` may be a single length for the whole batch, a
    per-request sequence of lengths (the batched engine supports mixed
    lengths), or ``None`` for the model's configured length.  Request
    ``i`` is seeded with ``seed + i`` so batches are reproducible and
    requests are mutually independent.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    config = serving_config(model_name)
    # Integral (not int) so numpy integers from sweep arrays count as
    # scalars rather than being mistaken for per-request length lists.
    if seq_len is None or isinstance(seq_len, Integral):
        lengths = [None if seq_len is None else int(seq_len)] * batch_size
    else:
        lengths = list(seq_len)
        if len(lengths) != batch_size:
            raise ValueError(
                f"got {len(lengths)} sequence lengths for batch_size "
                f"{batch_size}"
            )
    return [
        attention_request(config, seq_len=length, seed=seed + i)
        for i, length in enumerate(lengths)
    ]


def decode_batch(
    model_name: str | TransformerConfig,
    batch_size: int,
    prompt_len: int | None = None,
    max_new_tokens: int = 8,
    seed: int = 0,
    shared_weights: bool = True,
) -> list:
    """A batch of causal decode requests for one serving model.

    ``model_name`` is a causal :data:`SERVING_MODELS` key (or a
    :class:`TransformerConfig` directly).  With ``shared_weights=True``
    (the default) every request holds the *same* weight arrays — one
    deployment serves one model, and sharing the objects keeps the
    working set of a continuously batched run equal to a single
    request's, as it is on real hardware — while request ``i``'s prompt
    is seeded ``seed + i``.  ``shared_weights=False`` gives every
    request its own weights (seeded ``seed + i``, matching
    :func:`bert_attention_batch`'s independence convention).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    config = (
        model_name
        if isinstance(model_name, TransformerConfig)
        else serving_config(model_name)
    )
    if not shared_weights:
        return [
            decode_request(
                config, prompt_len=prompt_len, max_new_tokens=max_new_tokens,
                seed=seed + i,
            )
            for i in range(batch_size)
        ]
    from repro.core.decode import DecodeRequest

    first = decode_request(
        config, prompt_len=prompt_len, max_new_tokens=max_new_tokens,
        seed=seed,
    )
    requests = [first]
    for i in range(1, batch_size):
        rng = np.random.default_rng(seed + i)
        requests.append(
            DecodeRequest(
                x=rng.normal(0.0, 1.0, size=(first.seq, first.hidden)),
                wq=first.wq, wk=first.wk, wv=first.wv, wo=first.wo,
                n_heads=first.n_heads,
                max_new_tokens=first.max_new_tokens,
                max_seq_len=first.max_seq_len,
                window=first.window,
            )
        )
    return requests


def shared_prefix_decode_batch(
    model_name: str | TransformerConfig,
    batch_size: int,
    prefix_len: int,
    suffix_len: int = 2,
    max_new_tokens: int = 8,
    seed: int = 0,
) -> list:
    """A batch of decode requests sharing weights *and* a prompt prefix.

    The prefix-caching workload: every request's first ``prefix_len``
    prompt rows are identical (seeded ``seed`` — think a shared system
    prompt or few-shot preamble) while each request appends its own
    ``suffix_len`` rows (seeded ``seed + i``).  Under
    ``enable_prefix_caching`` the paged scheduler stores the shared
    rows once — ``batch_size`` requests pay roughly one prefix's pool
    residency between them — with bit-identical outputs; without it
    every request writes its own copy.  Weights are shared, matching
    :func:`decode_batch`.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if prefix_len < 1:
        raise ValueError(f"prefix_len must be >= 1, got {prefix_len}")
    if suffix_len < 0:
        raise ValueError(f"suffix_len must be >= 0, got {suffix_len}")
    config = (
        model_name
        if isinstance(model_name, TransformerConfig)
        else serving_config(model_name)
    )
    from repro.core.decode import DecodeRequest

    first = decode_request(
        config, prompt_len=prefix_len + suffix_len,
        max_new_tokens=max_new_tokens, seed=seed,
    )
    requests = [first]
    for i in range(1, batch_size):
        rng = np.random.default_rng(seed + i)
        x = first.x.copy()
        x[prefix_len:] = rng.normal(
            0.0, 1.0, size=(suffix_len, first.hidden)
        )
        requests.append(
            DecodeRequest(
                x=x,
                wq=first.wq, wk=first.wk, wv=first.wv, wo=first.wo,
                n_heads=first.n_heads,
                max_new_tokens=first.max_new_tokens,
                max_seq_len=first.max_seq_len,
                window=first.window,
            )
        )
    return requests


def mixed_decode_batch(
    model_name: str | TransformerConfig,
    batch_size: int,
    prompt_lens: Sequence[int] = (4, 8, 12, 16),
    new_tokens: Sequence[int] = (4, 8, 12),
    seed: int = 0,
) -> list:
    """A heterogeneous batch of causal decode requests (shared weights).

    The serving-realistic mix the paged-KV experiments use: request
    ``i`` takes ``prompt_lens[i % len]`` prompt tokens and
    ``new_tokens[i % len]`` generation budget, so lengths vary across
    the batch while every request still carries the model's full
    ``max_seq_len`` worst case — exactly the regime where contiguous
    worst-case pages strand memory and fixed-size blocks don't.
    Prompts are seeded ``seed + i``; weights are shared (seeded
    ``seed``), matching :func:`decode_batch`.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if not prompt_lens or not new_tokens:
        raise ValueError("prompt_lens and new_tokens must be non-empty")
    config = (
        model_name
        if isinstance(model_name, TransformerConfig)
        else serving_config(model_name)
    )
    from repro.core.decode import DecodeRequest

    first = decode_request(
        config, prompt_len=prompt_lens[0], max_new_tokens=new_tokens[0],
        seed=seed,
    )
    requests = [first]
    for i in range(1, batch_size):
        rng = np.random.default_rng(seed + i)
        prompt = prompt_lens[i % len(prompt_lens)]
        requests.append(
            DecodeRequest(
                x=rng.normal(0.0, 1.0, size=(prompt, first.hidden)),
                wq=first.wq, wk=first.wk, wv=first.wv, wo=first.wo,
                n_heads=first.n_heads,
                max_new_tokens=new_tokens[i % len(new_tokens)],
                max_seq_len=config.seq_len,
            )
        )
    return requests


def fidelity_for_acceptance(acceptance_rate: float, spec_k: int) -> float:
    """Per-draft fidelity yielding a target long-run acceptance rate.

    With the position-wise fidelity coin of
    :class:`repro.core.speculative.TruncatedTableDraft`, a full pass of
    ``spec_k`` drafts accepts the leading exact prefix only — a draft
    after the first miss fails regardless of its own coin (its input was
    already wrong) — so the expected accepted fraction at fidelity ``f``
    is ``sum(f**i for i in 1..k) / k``.  This inverts that by bisection
    so workload builders can speak in the quantity the studies sweep
    (the acceptance rate) instead of the mechanism knob.
    """
    if not 0.0 <= acceptance_rate <= 1.0:
        raise ValueError(
            f"acceptance_rate must be in [0, 1], got {acceptance_rate}"
        )
    if spec_k < 1:
        raise ValueError(f"spec_k must be >= 1, got {spec_k}")
    if acceptance_rate in (0.0, 1.0):
        return acceptance_rate

    def expected(f: float) -> float:
        return sum(f ** i for i in range(1, spec_k + 1)) / spec_k

    lo, hi = 0.0, 1.0
    for _ in range(60):
        mid = (lo + hi) / 2
        if expected(mid) < acceptance_rate:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def speculative_decode_batch(
    model_name: str | TransformerConfig,
    batch_size: int,
    acceptance_rate: float = 0.8,
    prompt_len: int | None = None,
    max_new_tokens: int = 16,
    seed: int = 0,
    config=None,
    spec_k: int | None = None,
):
    """A decode batch plus a draft factory tuned to an acceptance rate.

    The speculative-serving workload builder: the requests are a plain
    :func:`decode_batch` (shared weights, per-request seeded prompts)
    and the second return value is a zero-argument factory producing one
    :class:`repro.core.speculative.TruncatedTableDraft` per sequence,
    its fidelity solved from ``acceptance_rate`` via
    :func:`fidelity_for_acceptance` at the geometry's ``spec_k``.
    Successive factory calls draw successive draft seeds (``seed``,
    ``seed + 1``, ...): the fidelity coin is keyed on
    ``(draft seed, position)``, so seeding every request's draft
    identically would make the whole batch replay one short coin
    sequence and the measured acceptance a single sample instead of the
    long-run rate the fidelity was solved for.  ``config`` names the
    serving geometry (a :class:`repro.core.config.NovaConfig` or
    preset; its compiled LUTs back the draft) and defaults to the stock
    configuration.  Returns ``(requests, draft_factory)``.
    """
    import itertools

    from repro.core.config import as_config

    cfg = as_config(config)
    k = cfg.spec_k if spec_k is None else spec_k
    fidelity = fidelity_for_acceptance(acceptance_rate, k)
    requests = decode_batch(
        model_name, batch_size, prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed,
    )
    draft_seeds = itertools.count(seed)

    def draft_factory():
        from repro.core.speculative import TruncatedTableDraft

        return TruncatedTableDraft(
            cfg, fidelity=fidelity, seed=next(draft_seeds)
        )

    return requests, draft_factory


def bert_graph(model_name: str, seq_len: int | None = None) -> OpGraph:
    """Op graph for one registered model, optionally at another sequence
    length (REACT is evaluated at 128, the systolic configs at 1024)."""
    try:
        config = BERT_MODELS[model_name]
    except KeyError:
        available = ", ".join(sorted(BERT_MODELS))
        raise KeyError(
            f"unknown model {model_name!r}; available: {available}"
        ) from None
    if seq_len is not None:
        config = TransformerConfig(
            name=config.name,
            layers=config.layers,
            hidden=config.hidden,
            heads=config.heads,
            intermediate=config.intermediate,
            seq_len=seq_len,
        )
    return build_encoder_graph(config)
