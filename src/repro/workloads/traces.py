"""Synthetic operand-value traces for driving the cycle simulators.

The functional-verification and energy tests feed realistic value
distributions through NOVA and the LUT baselines.  Attention logits after
the max-subtraction of a stable softmax are non-positive with most mass
near zero; GEMM activations entering GeLU are approximately Gaussian.
The traces are deterministic functions of a seed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["attention_logit_trace", "activation_trace"]


def attention_logit_trace(
    n_values: int,
    seq_len: int = 64,
    scale: float = 2.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Post-max-subtraction softmax arguments (all <= 0).

    Rows of ``seq_len`` logits are drawn N(0, scale), then shifted by the
    row max, reproducing the operand distribution the exp approximator
    sees inside an attention layer.
    """
    if n_values < 1:
        raise ValueError(f"n_values must be >= 1, got {n_values}")
    rng = make_rng(seed)
    n_rows = -(-n_values // seq_len)
    logits = rng.normal(0.0, scale, size=(n_rows, seq_len))
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted.reshape(-1)[:n_values]


def activation_trace(
    n_values: int,
    scale: float = 2.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Pre-activation GEMM outputs (inputs to GeLU/tanh/sigmoid)."""
    if n_values < 1:
        raise ValueError(f"n_values must be >= 1, got {n_values}")
    rng = make_rng(seed)
    return rng.normal(0.0, scale, size=n_values)
