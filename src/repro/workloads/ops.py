"""Operator-graph vocabulary for the performance/energy evaluation.

The evaluation needs exactly two things from a workload: the GEMMs (which
the host accelerator executes and which set the runtime) and the
non-linear operations (which the vector unit executes and whose *query
count* sets the approximator energy).  ``OpGraph`` is an ordered list of
those two op kinds with helpers for the totals the harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MatMulOp", "NonLinearOp", "OpGraph"]


@dataclass(frozen=True)
class MatMulOp:
    """A dense GEMM: ``(m x k) @ (k x n)``."""

    name: str
    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise ValueError(f"GEMM dims must be >= 1: {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulates."""
        return self.m * self.k * self.n

    @property
    def output_elements(self) -> int:
        """Result elements (feeds activation query counts)."""
        return self.m * self.n


@dataclass(frozen=True)
class NonLinearOp:
    """An elementwise non-linear op executed by the vector unit.

    ``queries`` is the number of scalar approximations the op needs —
    e.g. a softmax over an ``(S x S)`` attention-score matrix per head
    issues ``heads * S * S`` exponential queries.
    """

    name: str
    function: str  # key into repro.approx.functions.FUNCTIONS
    queries: int

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ValueError(f"queries must be >= 1: {self}")


@dataclass
class OpGraph:
    """An ordered workload: GEMMs interleaved with non-linear ops."""

    name: str
    ops: list[MatMulOp | NonLinearOp] = field(default_factory=list)

    def add(self, op: MatMulOp | NonLinearOp) -> None:
        """Append an op (construction helper)."""
        self.ops.append(op)

    @property
    def matmuls(self) -> list[MatMulOp]:
        """The GEMMs, in order."""
        return [op for op in self.ops if isinstance(op, MatMulOp)]

    @property
    def nonlinear_ops(self) -> list[NonLinearOp]:
        """The vector-unit ops, in order."""
        return [op for op in self.ops if isinstance(op, NonLinearOp)]

    @property
    def total_macs(self) -> int:
        """All GEMM multiply-accumulates."""
        return sum(op.macs for op in self.matmuls)

    @property
    def total_nonlinear_queries(self) -> int:
        """All scalar approximator queries."""
        return sum(op.queries for op in self.nonlinear_ops)

    def queries_by_function(self) -> dict[str, int]:
        """Approximator queries grouped by non-linear function."""
        totals: dict[str, int] = {}
        for op in self.nonlinear_ops:
            totals[op.function] = totals.get(op.function, 0) + op.queries
        return totals

    def nonlinear_fraction(self) -> float:
        """Queries per MAC — the 'non-linear operation density' that makes
        attention layers hard for tensor-only accelerators (paper §I)."""
        if self.total_macs == 0:
            return float("inf")
        return self.total_nonlinear_queries / self.total_macs
