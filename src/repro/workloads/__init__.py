"""Workload models: the networks whose non-linear ops NOVA accelerates.

:mod:`repro.workloads.ops` defines a minimal operator-graph vocabulary
(GEMMs plus non-linear elementwise/reduction ops with query counts);
:mod:`repro.workloads.transformer` lowers a transformer encoder into that
vocabulary; :mod:`repro.workloads.bert` registers the five Fig. 8
benchmarks (BERT-tiny/mini, MobileBERT-base/tiny, RoBERTa);
:mod:`repro.workloads.cnn` registers the Table I CNN family; and
:mod:`repro.workloads.traces` synthesises realistic operand-value streams
for driving the cycle simulators.
"""

from repro.workloads.ops import MatMulOp, NonLinearOp, OpGraph
from repro.workloads.transformer import (
    TransformerConfig,
    attention_request,
    build_encoder_graph,
    decode_request,
)
from repro.workloads.bert import (
    BERT_MODELS,
    SERVING_MODELS,
    bert_attention_batch,
    bert_graph,
    decode_batch,
    fidelity_for_acceptance,
    mixed_decode_batch,
    serving_config,
    shared_prefix_decode_batch,
    speculative_decode_batch,
)
from repro.workloads.cnn import CNN_MODELS, CnnLayerSpec
from repro.workloads.traces import attention_logit_trace, activation_trace

__all__ = [
    "MatMulOp",
    "NonLinearOp",
    "OpGraph",
    "TransformerConfig",
    "attention_request",
    "build_encoder_graph",
    "decode_request",
    "BERT_MODELS",
    "SERVING_MODELS",
    "bert_attention_batch",
    "bert_graph",
    "decode_batch",
    "fidelity_for_acceptance",
    "mixed_decode_batch",
    "serving_config",
    "shared_prefix_decode_batch",
    "speculative_decode_batch",
    "CNN_MODELS",
    "CnnLayerSpec",
    "attention_logit_trace",
    "activation_trace",
]
