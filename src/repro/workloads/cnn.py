"""CNN/MLP workload shapes for the Table I model family.

Table I evaluates approximated softmax on an MLP (MNIST), a small CNN,
MobileNet v1 and VGG-16 (CIFAR-10).  These registry entries describe the
*architectural family* at the reduced scale our synthetic-data substitute
uses (documented in DESIGN.md): the property under test — that a 16- or
8-breakpoint PWL softmax leaves classification accuracy unchanged — does
not depend on ImageNet-scale capacity.

Each spec also lowers to an op graph so the CNNs can be pushed through
the same accelerator timing models as the transformers (conv as im2col
GEMM, the standard mapping on systolic arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.ops import MatMulOp, NonLinearOp, OpGraph

__all__ = ["CnnLayerSpec", "CnnModelSpec", "CNN_MODELS", "cnn_graph"]


@dataclass(frozen=True)
class CnnLayerSpec:
    """One layer: conv (kernel > 0) / depthwise conv / dense (kernel 0)."""

    name: str
    in_channels: int
    out_channels: int
    spatial: int          # output feature-map side
    kernel: int = 3       # 0 => dense layer on flattened input
    depthwise: bool = False
    activation: str = "relu"

    @property
    def macs(self) -> int:
        """Multiply-accumulates for one input sample."""
        if self.kernel == 0:
            return self.in_channels * self.out_channels
        taps = self.kernel * self.kernel
        if self.depthwise:
            return self.out_channels * self.spatial * self.spatial * taps
        return (
            self.out_channels * self.in_channels * self.spatial * self.spatial * taps
        )

    @property
    def activations(self) -> int:
        """Output activations (non-linear queries if activation != none)."""
        if self.kernel == 0:
            return self.out_channels
        return self.out_channels * self.spatial * self.spatial


@dataclass(frozen=True)
class CnnModelSpec:
    """A named stack of layers ending in a softmax classifier."""

    name: str
    layers: tuple[CnnLayerSpec, ...]
    n_classes: int = 10
    softmax_breakpoints: int = 8  # Table I: CIFAR-10 models use 8

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)


def _mlp() -> CnnModelSpec:
    return CnnModelSpec(
        "MLP",
        (
            CnnLayerSpec("fc1", 784, 64, spatial=1, kernel=0),
            CnnLayerSpec("fc2", 64, 10, spatial=1, kernel=0, activation="none"),
        ),
        softmax_breakpoints=16,  # Table I: MNIST uses 16
    )


def _cnn() -> CnnModelSpec:
    return CnnModelSpec(
        "CNN",
        (
            CnnLayerSpec("conv1", 3, 8, spatial=16),
            CnnLayerSpec("conv2", 8, 16, spatial=8),
            CnnLayerSpec("fc", 16 * 4 * 4, 10, spatial=1, kernel=0,
                         activation="none"),
        ),
    )


def _mobilenet_like() -> CnnModelSpec:
    layers: list[CnnLayerSpec] = [CnnLayerSpec("conv1", 3, 8, spatial=16)]
    channels = 8
    spatial = 16
    for i in range(3):
        layers.append(
            CnnLayerSpec(
                f"dw{i}", channels, channels, spatial=spatial, depthwise=True
            )
        )
        layers.append(
            CnnLayerSpec(f"pw{i}", channels, channels * 2, spatial=spatial,
                         kernel=1)
        )
        channels *= 2
        spatial //= 2
    layers.append(
        CnnLayerSpec("fc", channels * spatial * spatial, 10, spatial=1,
                     kernel=0, activation="none")
    )
    return CnnModelSpec("MobileNet v1", tuple(layers))


def _vgg_like() -> CnnModelSpec:
    layers: list[CnnLayerSpec] = []
    channels_in, spatial = 3, 16
    for i, channels_out in enumerate([16, 32, 64]):
        layers.append(
            CnnLayerSpec(f"conv{i}a", channels_in, channels_out, spatial=spatial)
        )
        layers.append(
            CnnLayerSpec(f"conv{i}b", channels_out, channels_out, spatial=spatial)
        )
        channels_in = channels_out
        spatial //= 2
    layers.append(
        CnnLayerSpec("fc1", 64 * 2 * 2, 64, spatial=1, kernel=0)
    )
    layers.append(
        CnnLayerSpec("fc2", 64, 10, spatial=1, kernel=0, activation="none")
    )
    return CnnModelSpec("VGG-16", tuple(layers))


CNN_MODELS: dict[str, CnnModelSpec] = {
    spec.name: spec for spec in [_mlp(), _cnn(), _mobilenet_like(), _vgg_like()]
}


def cnn_graph(model_name: str, batch: int = 1) -> OpGraph:
    """Lower a CNN spec to GEMMs (im2col) + activation query ops."""
    try:
        spec = CNN_MODELS[model_name]
    except KeyError:
        available = ", ".join(sorted(CNN_MODELS))
        raise KeyError(
            f"unknown model {model_name!r}; available: {available}"
        ) from None
    graph = OpGraph(name=spec.name)
    for layer in spec.layers:
        if layer.kernel == 0:
            graph.add(
                MatMulOp(layer.name, m=batch, k=layer.in_channels,
                         n=layer.out_channels)
            )
        else:
            pixels = layer.spatial * layer.spatial * batch
            taps = layer.kernel * layer.kernel
            k_dim = taps if layer.depthwise else layer.in_channels * taps
            graph.add(MatMulOp(layer.name, m=pixels, k=k_dim, n=layer.out_channels))
        if layer.activation != "none":
            graph.add(
                NonLinearOp(
                    f"{layer.name}.{layer.activation}",
                    function=layer.activation,
                    queries=layer.activations * batch,
                )
            )
    graph.add(
        NonLinearOp("softmax_exp", function="exp", queries=spec.n_classes * batch)
    )
    return graph
