"""Lowering a transformer encoder into the op-graph vocabulary.

The per-layer structure follows the standard BERT encoder block:

1. QKV projections — three ``(S x H) @ (H x H)`` GEMMs,
2. attention scores — per head, ``(S x d) @ (d x S)``,
3. **softmax** over every ``(S x S)`` score matrix — the dominant
   non-linear op: ``A * S * S`` exponential queries plus ``A * S``
   reciprocal queries for the normaliser,
4. attention context — per head, ``(S x S) @ (S x d)``,
5. output projection — ``(S x H) @ (H x H)``,
6. FFN up + **GeLU** (``S * I`` queries) + FFN down,
7. two LayerNorms — ``2 * S`` rsqrt queries (the reductions run on the
   host's accumulators; only the rsqrt hits the vector unit).

This matches the operator inventory NN-LUT and Softermax use when they
report that non-linear ops reach ~40% of runtime on attention models
(paper §I cites [22][18]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.ops import MatMulOp, NonLinearOp, OpGraph

__all__ = [
    "TransformerConfig",
    "build_encoder_graph",
    "attention_request",
    "decode_request",
]


@dataclass(frozen=True)
class TransformerConfig:
    """Shape of a transformer encoder (or causal decoder) stack.

    ``causal=True`` models GPT-style masked self-attention (the intro's
    "ChatGPT is now the talk of the town"): the softmax runs over the
    lower triangle only, halving the exponential query volume while the
    score GEMMs still compute full tiles on a systolic array (masking
    discards, it does not skip).
    """

    name: str
    layers: int
    hidden: int
    heads: int
    intermediate: int
    seq_len: int
    causal: bool = False

    def __post_init__(self) -> None:
        if min(self.layers, self.hidden, self.heads, self.intermediate,
               self.seq_len) < 1:
            raise ValueError(f"all dimensions must be >= 1: {self}")
        if self.hidden % self.heads != 0:
            raise ValueError(
                f"hidden ({self.hidden}) must divide evenly by heads "
                f"({self.heads})"
            )

    @property
    def head_dim(self) -> int:
        """Per-head projection width."""
        return self.hidden // self.heads

    @property
    def softmax_queries_per_layer(self) -> int:
        """Exp queries per layer: the full or lower-triangular score set."""
        full = self.heads * self.seq_len * self.seq_len
        if not self.causal:
            return full
        return self.heads * self.seq_len * (self.seq_len + 1) // 2


def attention_request(
    config: TransformerConfig,
    seq_len: int | None = None,
    seed: int = 0,
):
    """One synthetic attention request shaped like ``config``.

    Inputs are unit-normal and weights are ``1/sqrt(hidden)``-scaled
    normal (the standard init), which keeps attention logits in the
    approximators' calibrated operating range.  Returns an
    :class:`repro.core.batched_attention.AttentionRequest` for the
    serving engines; the same seed always yields the same request.
    """
    # Imported here so the workloads package stays importable without
    # pulling in the simulator stack (core already imports workloads.ops).
    from repro.core.batched_attention import AttentionRequest

    seq = config.seq_len if seq_len is None else seq_len
    if seq < 1:
        raise ValueError(f"seq_len must be >= 1, got {seq}")
    hidden = config.hidden
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden)
    weights = {
        name: rng.normal(0.0, scale, size=(hidden, hidden))
        for name in ("wq", "wk", "wv", "wo")
    }
    return AttentionRequest(
        x=rng.normal(0.0, 1.0, size=(seq, hidden)),
        n_heads=config.heads,
        **weights,
    )


def decode_request(
    config: TransformerConfig,
    prompt_len: int | None = None,
    max_new_tokens: int = 8,
    seed: int = 0,
    window: int | None = None,
):
    """One synthetic autoregressive decode request shaped like ``config``.

    ``config`` must be causal (GPT-style masked attention) — decode over
    a KV cache is undefined for bidirectional models and this raises
    ``ValueError`` otherwise.  The prompt defaults to a quarter of the
    model's context (at least one token); the KV-cache capacity is the
    model's ``seq_len`` (its context window), so a prompt plus budget
    longer than the context fails at engine admission.  Same
    inputs-and-weights construction (and seeding) as
    :func:`attention_request`, returning a
    :class:`repro.core.decode.DecodeRequest`.
    """
    from repro.core.decode import DecodeRequest

    if not config.causal:
        raise ValueError(
            f"decode_request needs a causal model, got {config.name!r} with "
            "causal=False (decode over a KV cache is GPT-style masked "
            "attention by definition)"
        )
    if max_new_tokens < 0:
        raise ValueError(
            f"max_new_tokens must be >= 0, got {max_new_tokens}"
        )
    prompt = (
        max(1, config.seq_len // 4) if prompt_len is None else prompt_len
    )
    base = attention_request(config, seq_len=prompt, seed=seed)
    return DecodeRequest(
        x=base.x,
        wq=base.wq,
        wk=base.wk,
        wv=base.wv,
        wo=base.wo,
        n_heads=base.n_heads,
        max_new_tokens=max_new_tokens,
        max_seq_len=config.seq_len,
        window=window,
        causal=config.causal,
    )


def build_encoder_graph(config: TransformerConfig) -> OpGraph:
    """The full encoder stack as one ordered op graph."""
    s, h = config.seq_len, config.hidden
    a, d, i = config.heads, config.head_dim, config.intermediate
    graph = OpGraph(name=config.name)
    for layer in range(config.layers):
        prefix = f"{config.name}.L{layer}"
        for proj in ("q", "k", "v"):
            graph.add(MatMulOp(f"{prefix}.{proj}_proj", m=s, k=h, n=h))
        # Scores and context are per-head GEMMs; emit one op per head so
        # the systolic model sees the true (small) tile shapes.
        for head in range(a):
            graph.add(MatMulOp(f"{prefix}.scores.h{head}", m=s, k=d, n=s))
        graph.add(
            NonLinearOp(
                f"{prefix}.softmax_exp",
                function="exp",
                queries=config.softmax_queries_per_layer,
            )
        )
        graph.add(
            NonLinearOp(
                f"{prefix}.softmax_recip", function="reciprocal", queries=a * s
            )
        )
        for head in range(a):
            graph.add(MatMulOp(f"{prefix}.context.h{head}", m=s, k=s, n=d))
        graph.add(MatMulOp(f"{prefix}.out_proj", m=s, k=h, n=h))
        graph.add(
            NonLinearOp(f"{prefix}.ln1_rsqrt", function="rsqrt", queries=s)
        )
        graph.add(MatMulOp(f"{prefix}.ffn_up", m=s, k=h, n=i))
        graph.add(NonLinearOp(f"{prefix}.gelu", function="gelu", queries=s * i))
        graph.add(MatMulOp(f"{prefix}.ffn_down", m=s, k=i, n=h))
        graph.add(
            NonLinearOp(f"{prefix}.ln2_rsqrt", function="rsqrt", queries=s)
        )
    return graph
