"""Synchronous cycle engine with integer-ratio clock domains.

NOVA runs its NoC at ``n_beats`` times the PE clock (2x for 16-entry
tables) so a full table broadcast fits inside one PE cycle (paper §IV).
The engine therefore simulates at the fastest clock; a component registered
in a slower domain ticks only on that domain's active edges.

Two-phase update discipline: every component's :meth:`Tickable.tick` reads
its inputs and computes, then :meth:`Tickable.commit` latches new state.
All ticks in a cycle observe the *previous* cycle's outputs, which is what
makes the simulation order-independent (the same discipline as an RTL
simulator's non-blocking assignment).

Event counters accumulated by clocked components are *lifetime*
(monotonically increasing) totals.  Anything that reports per-call or
per-step events — an attention layer, a batched request, a decode step —
must snapshot the lifetime counters before the work and report the diff
after, never merge raw lifetime totals (which would re-count every
earlier call).  Every engine in :mod:`repro.core` follows this
snapshot/diff discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClockDomain", "Tickable", "CycleEngine"]


@dataclass(frozen=True)
class ClockDomain:
    """A clock that ticks once every ``period`` engine cycles.

    ``period = 1`` is the fastest clock in the system (the engine clock);
    the PE clock in a 2-beat NOVA configuration has ``period = 2``.
    """

    name: str
    period: int = 1
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not 0 <= self.phase < self.period:
            raise ValueError(
                f"phase must be in [0, {self.period}), got {self.phase}"
            )

    def active(self, engine_cycle: int) -> bool:
        """True when this domain has a rising edge on ``engine_cycle``."""
        return engine_cycle % self.period == self.phase

    def local_cycle(self, engine_cycle: int) -> int:
        """This domain's own cycle count at ``engine_cycle``.

        Engine cycles before the domain's first rising edge (i.e.
        ``engine_cycle < phase``) clamp to local cycle 0: a clock that has
        not ticked yet has no negative history, and a phased domain's
        first active edge must present local cycle 0 to its components,
        never ``-1``.
        """
        return max(0, (engine_cycle - self.phase) // self.period)


class Tickable:
    """Interface for clocked components (two-phase update)."""

    def tick(self, local_cycle: int) -> None:
        """Combinational phase: read inputs, compute next state."""

    def commit(self, local_cycle: int) -> None:
        """Sequential phase: latch next state into visible state."""


@dataclass
class CycleEngine:
    """Runs registered components under their clock domains."""

    components: list[tuple[ClockDomain, Tickable]] = field(default_factory=list)
    engine_cycle: int = 0

    def add(self, domain: ClockDomain, component: Tickable) -> None:
        """Register ``component`` to tick on ``domain``'s edges."""
        self.components.append((domain, component))

    def step(self) -> None:
        """Advance the engine by one (fastest-clock) cycle."""
        cycle = self.engine_cycle
        active = [
            (domain.local_cycle(cycle), component)
            for domain, component in self.components
            if domain.active(cycle)
        ]
        for local_cycle, component in active:
            component.tick(local_cycle)
        for local_cycle, component in active:
            component.commit(local_cycle)
        self.engine_cycle += 1

    def run(self, n_cycles: int) -> None:
        """Advance by ``n_cycles`` engine cycles."""
        if n_cycles < 0:
            raise ValueError(f"n_cycles must be >= 0, got {n_cycles}")
        for _ in range(n_cycles):
            self.step()
