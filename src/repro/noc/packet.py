"""Flit types carried by the NOVA NoC.

The NOVA link is a single-flit-wide broadcast medium: each beat carries
8 slope/bias pairs plus a tag (257 bits).  There is no multi-flit
packetisation or credit flow — the line topology with a fixed snaking route
removes the need for flow control beyond a per-router buffer/forward switch
(paper §III-A.2) — so the flit is the unit of everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.quantize import LinkBeat

__all__ = ["Flit", "BroadcastFlit"]


@dataclass(frozen=True)
class Flit:
    """A generic single-beat payload with origin metadata."""

    payload: object
    source: int
    injected_cycle: int

    def __post_init__(self) -> None:
        if self.source < 0:
            raise ValueError(f"source must be >= 0, got {self.source}")
        if self.injected_cycle < 0:
            raise ValueError(
                f"injected_cycle must be >= 0, got {self.injected_cycle}"
            )


@dataclass(frozen=True)
class BroadcastFlit(Flit):
    """A NOVA broadcast beat: one :class:`LinkBeat` of slope/bias pairs.

    ``broadcast_id`` groups the beats of one table broadcast; ``beat_index``
    is the position within the broadcast (equal to the beat's tag).
    """

    broadcast_id: int = 0
    beat_index: int = 0

    @property
    def beat(self) -> LinkBeat:
        """The slope/bias payload, typed."""
        if not isinstance(self.payload, LinkBeat):
            raise TypeError(
                f"BroadcastFlit payload must be a LinkBeat, got "
                f"{type(self.payload).__name__}"
            )
        return self.payload
