"""Router building blocks: buffered input ports with a bypass path.

Each NOVA router's east input port "consists of registers (for 8 pairs of
slope and bias values) along with a bypass path" (paper §III-A.2).  A port
is therefore either *forwarding* — the incoming flit ripples through the
asynchronous repeater to the next router in the same cycle — or
*buffering* — the flit is latched and re-launched on the next cycle.  The
line topology's fixed route means this buffer/forward switch is the entire
flow-control state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.noc.packet import Flit
from repro.noc.stats import EventCounters

__all__ = ["PortState", "BufferedInputPort", "RouterBase"]


class PortState(enum.Enum):
    """Buffer/forward switch of a NOVA input port."""

    FORWARD = "forward"
    BUFFER = "buffer"


@dataclass
class BufferedInputPort:
    """A register + bypass input port (two-phase update).

    ``present`` is the flit visible on the port's output this cycle;
    ``incoming`` is what arrives during the current cycle and becomes
    visible after :meth:`commit` (when buffering) or immediately via the
    bypass (when forwarding — the caller reads :attr:`incoming` directly in
    that case, modelling the clockless repeater path).
    """

    state: PortState = PortState.FORWARD
    present: Flit | None = None
    incoming: Flit | None = field(default=None, repr=False)

    def accept(self, flit: Flit | None) -> None:
        """Present ``flit`` at the port input for this cycle."""
        self.incoming = flit

    def visible(self) -> Flit | None:
        """The flit observable at the port output this cycle.

        In FORWARD state the bypass makes the incoming flit visible
        combinationally; in BUFFER state only the latched flit is visible.
        """
        if self.state is PortState.FORWARD:
            return self.incoming
        return self.present

    def commit(self) -> None:
        """Latch the incoming flit (register write happens either way;
        in FORWARD state the register is transparent next cycle)."""
        self.present = self.incoming
        self.incoming = None


@dataclass
class RouterBase:
    """Common state for routers on a line: an id and event counters."""

    router_id: int
    counters: EventCounters = field(default_factory=lambda: EventCounters())

    def __post_init__(self) -> None:
        if self.router_id < 0:
            raise ValueError(f"router_id must be >= 0, got {self.router_id}")
