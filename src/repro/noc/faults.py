"""Fault injection on the NOVA link.

NOVA replaces SRAM (with its well-understood ECC story) by long repeated
wires, so a natural robustness question — beyond the paper's scope, but
essential for anyone deploying the idea — is: *what does one flipped link
wire do to the computation?*  This module injects single-bit faults into
the bit-true wire image (:mod:`repro.approx.bitpack`) and the analysis in
the tests demonstrates the containment property: a flipped coefficient
wire corrupts at most the neurons whose lookup address selects that
(beat, pair); a flipped tag wire corrupts at most one beat's captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.bitpack import bit_field_of, decode_beat, encode_beat, flip_bit
from repro.approx.quantize import LinkBeat

__all__ = ["LinkFault", "apply_fault", "affected_addresses"]


@dataclass(frozen=True)
class LinkFault:
    """A single-bit upset on one beat of one broadcast.

    Attributes
    ----------
    beat_index:
        Which beat of the broadcast is hit (equals the beat's tag for the
        in-order broadcast).
    bit:
        Which of the 257 wires flips.
    from_router:
        The wire segment where the flip occurs: every router with id >=
        ``from_router`` observes the corrupted beat, routers before it the
        clean one (the broadcast flows head -> tail).
    """

    beat_index: int
    bit: int
    from_router: int = 0

    def __post_init__(self) -> None:
        if self.beat_index < 0:
            raise ValueError(f"beat_index must be >= 0, got {self.beat_index}")
        if self.from_router < 0:
            raise ValueError(f"from_router must be >= 0, got {self.from_router}")
        # bit range validated by flip_bit at application time

    @property
    def field(self) -> tuple[str, int]:
        """(field_kind, pair_index) of the flipped wire."""
        return bit_field_of(self.bit)


def apply_fault(beat: LinkBeat, fault: LinkFault) -> LinkBeat:
    """The beat as observed downstream of the flipped wire.

    Encodes the beat to its 257-bit image, flips the wire, decodes.  Note
    a tag-wire flip changes which addresses match the beat, not the
    payload.
    """
    return decode_beat(flip_bit(encode_beat(beat), fault.bit))


def affected_addresses(fault: LinkFault, n_segments: int, n_beats: int) -> set[int]:
    """Lookup addresses whose captured pair can differ under ``fault``.

    * a slope/bias wire of pair ``p`` affects only the address mapped to
      slot ``p`` of the faulted beat;
    * the tag wire affects every address whose pair rides the faulted
      beat (they miss their match) **and** every address expecting the
      complementary tag (they may falsely match) — conservatively, all
      addresses of both parities involved, i.e. the whole table for a
      2-beat broadcast.
    """
    if n_beats < 1 or (n_beats & (n_beats - 1)):
        raise ValueError(f"n_beats must be a power of two, got {n_beats}")
    kind, pair = fault.field
    if kind == "tag":
        return set(range(n_segments))
    shift = (n_beats - 1).bit_length()
    address = (pair << shift) | fault.beat_index
    if address >= n_segments:
        return set()  # zero-filled slot: flip lands on unused wires
    return {address}
