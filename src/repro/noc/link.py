"""Links and SMART-style repeated wires.

NOVA's single-cycle multi-hop broadcast relies on clockless repeaters, as
in SMART NoCs (Krishna et al., HPCA 2013): a flit launched at the head of
the line ripples through the asynchronous repeaters of consecutive routers
within one clock period, as long as the total repeated-wire delay fits in
the period.  The paper's place-and-route result is that **10 routers placed
1 mm apart can be traversed at 1.5 GHz** (§V-A "Scalability"); the
:class:`RepeatedWire` model is calibrated to exactly that corner and is
what the mapper queries to decide how many hops fit in a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["RepeatedWire", "Link"]


@dataclass(frozen=True)
class RepeatedWire:
    """Delay model for a repeated global wire at a fixed technology corner.

    With optimally spaced repeaters, wire delay grows linearly with
    distance; each router on the path adds a small fixed pass-through
    (receiver + bypass mux + driver) delay.

    Attributes
    ----------
    delay_per_mm_ps:
        Repeated-wire delay per millimetre (ps/mm).  ~66 ps/mm reproduces
        the paper's 10-hop @ 1 mm @ 1.5 GHz corner together with the
        default bypass delay below.
    router_bypass_ps:
        Per-router asynchronous pass-through delay (ps).
    setup_margin_ps:
        Clocking overhead reserved per cycle (setup + skew), since "the
        clock edge [is] registered at NoC inputs" (paper §V-A).
    """

    delay_per_mm_ps: float = 56.0
    router_bypass_ps: float = 8.0
    setup_margin_ps: float = 26.0

    def __post_init__(self) -> None:
        check_positive("delay_per_mm_ps", self.delay_per_mm_ps)
        check_positive("router_bypass_ps", self.router_bypass_ps)
        if self.setup_margin_ps < 0:
            raise ValueError("setup_margin_ps must be >= 0")

    def path_delay_ps(self, n_hops: int, hop_mm: float) -> float:
        """End-to-end delay of ``n_hops`` hops of ``hop_mm`` wire each."""
        if n_hops < 0:
            raise ValueError(f"n_hops must be >= 0, got {n_hops}")
        check_positive("hop_mm", hop_mm)
        return n_hops * (hop_mm * self.delay_per_mm_ps + self.router_bypass_ps)

    def max_hops_per_cycle(self, frequency_ghz: float, hop_mm: float = 1.0) -> int:
        """Largest hop count whose path delay fits in one clock period."""
        check_positive("frequency_ghz", frequency_ghz)
        period_ps = 1000.0 / frequency_ghz
        budget = period_ps - self.setup_margin_ps
        if budget <= 0:
            return 0
        per_hop = hop_mm * self.delay_per_mm_ps + self.router_bypass_ps
        return int(budget // per_hop)

    def max_frequency_ghz(self, n_hops: int, hop_mm: float = 1.0) -> float:
        """Highest clock at which ``n_hops`` hops fit in a single cycle."""
        delay = self.path_delay_ps(n_hops, hop_mm) + self.setup_margin_ps
        if delay <= 0:
            raise ValueError("path delay must be positive")
        return 1000.0 / delay


@dataclass(frozen=True)
class Link:
    """A point-to-point link: width in bits plus physical length.

    The NOVA link is 257 bits (16 16-bit words + tag).  ``length_mm`` feeds
    both the timing model above and the wire energy model in
    :mod:`repro.hw.wires`.
    """

    width_bits: int = 257
    length_mm: float = 1.0

    def __post_init__(self) -> None:
        if self.width_bits < 1:
            raise ValueError(f"width_bits must be >= 1, got {self.width_bits}")
        check_positive("length_mm", self.length_mm)
