"""Generic network-on-chip substrate (cycle-level).

NOVA overlays a 1-D line NoC with SMART-style clockless repeaters on top of
an existing accelerator.  This package provides the generic pieces NOVA is
built from — a synchronous multi-clock-domain cycle engine, flits/links
with single-cycle multi-hop bypass, router port primitives, topologies and
event counters — while :mod:`repro.core` adds the NOVA-specific router and
broadcast protocol on top.

The cycle engine runs at the *fastest* clock in the system (the NOVA NoC
clock, which is an integer multiple of the PE clock); slower components
tick on the cycles where their domain is active.
"""

from repro.noc.engine import ClockDomain, CycleEngine, Tickable
from repro.noc.packet import Flit, BroadcastFlit
from repro.noc.link import Link, RepeatedWire
from repro.noc.router import BufferedInputPort, RouterBase, PortState
from repro.noc.topology import LineTopology
from repro.noc.stats import EventCounters
from repro.noc.faults import LinkFault, apply_fault, affected_addresses
from repro.noc.broadcast_topologies import (
    BroadcastTopology,
    compare_topologies,
    line_broadcast,
    tree_broadcast,
    star_broadcast,
)

__all__ = [
    "ClockDomain",
    "CycleEngine",
    "Tickable",
    "Flit",
    "BroadcastFlit",
    "Link",
    "RepeatedWire",
    "BufferedInputPort",
    "RouterBase",
    "PortState",
    "LineTopology",
    "EventCounters",
    "LinkFault",
    "apply_fault",
    "affected_addresses",
    "BroadcastTopology",
    "compare_topologies",
    "line_broadcast",
    "tree_broadcast",
    "star_broadcast",
]
