"""Topologies.

NOVA uses a 1-D line: "The NoC is arranged in a line topology which routes
the packets ... in a pre-defined route snaking through the entire NoC, one
PE after the other" (paper §III-A).  The *snake* is how a 2-D PE grid (the
4x2 grid of the walkthrough) is linearised: routers are chained
boustrophedon so each hop stays between physically adjacent PEs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.link import Link

__all__ = ["LineTopology"]


@dataclass(frozen=True)
class LineTopology:
    """A line of ``n_routers`` routers with uniform hop length.

    ``grid_shape`` optionally records the 2-D PE grid the line snakes
    through, purely for position naming (the walkthrough's Core (0,0) ..
    (3,1)); the route itself is always the linear chain 0 -> 1 -> ... ->
    n-1.
    """

    n_routers: int
    hop_mm: float = 1.0
    link_width_bits: int = 257
    grid_shape: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.n_routers < 1:
            raise ValueError(f"n_routers must be >= 1, got {self.n_routers}")
        if self.hop_mm <= 0:
            raise ValueError(f"hop_mm must be > 0, got {self.hop_mm}")
        if self.grid_shape is not None:
            rows, cols = self.grid_shape
            if rows * cols != self.n_routers:
                raise ValueError(
                    f"grid_shape {self.grid_shape} does not hold "
                    f"{self.n_routers} routers"
                )

    @property
    def n_hops(self) -> int:
        """Hops from head to tail."""
        return self.n_routers - 1

    def link(self) -> Link:
        """The (uniform) inter-router link."""
        return Link(width_bits=self.link_width_bits, length_mm=self.hop_mm)

    def position(self, router_id: int) -> tuple[int, int]:
        """(row, col) of ``router_id`` on the snaking route.

        Even rows run left-to-right, odd rows right-to-left, so consecutive
        router ids are always physically adjacent — the layout property the
        1 mm hop length assumes.
        """
        if not 0 <= router_id < self.n_routers:
            raise ValueError(
                f"router_id must be in [0, {self.n_routers}), got {router_id}"
            )
        if self.grid_shape is None:
            return (0, router_id)
        rows, cols = self.grid_shape
        row = router_id // cols
        offset = router_id % cols
        col = offset if row % 2 == 0 else cols - 1 - offset
        return (row, col)

    def total_length_mm(self) -> float:
        """Physical length of the full line."""
        return self.n_hops * self.hop_mm
