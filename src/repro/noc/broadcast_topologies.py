"""Broadcast topology alternatives: why NOVA's line is the right choice.

The paper asserts the line topology "minimizes the complexity of the NoC
routers, lowering overheads" (§III-A) without comparing alternatives.
This module models the three natural ways to broadcast one beat from a
table source to ``N`` routers laid out **in a row at pitch p** (the
physical arrangement a NOVA overlay inherits from its host's cores):

* **line** — the paper's choice: one wire segment per hop, each router's
  clockless repeater forwards to the next.
* **balanced binary tree** — an H-tree-style distribution over the same
  linear placement: level ``k`` has ``2^k`` branches each spanning
  ``N*p / 2^(k+1)`` of the row.
* **star** — a dedicated point-to-point wire from the source to every
  router.

For a *linear* placement the line simultaneously minimises total wire
(``N*p`` vs ``~(N*p/2)*log2 N`` for the tree and ``~N^2*p/2`` for the
star) and matches the tree's critical-path wire length to within 2x —
the quantitative justification the paper skips.  (Trees win only when
routers spread in two dimensions, which a row of MXUs/cores does not.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.noc.link import RepeatedWire
from repro.utils.validation import check_positive

__all__ = ["BroadcastTopology", "line_broadcast", "tree_broadcast",
           "star_broadcast", "compare_topologies"]


@dataclass(frozen=True)
class BroadcastTopology:
    """Wire/delay/driver budget of one broadcast scheme over a row."""

    name: str
    n_routers: int
    total_wire_mm: float
    critical_path_mm: float
    n_drivers: int          # repeater/buffer banks (257 bits each)
    router_ports: int       # input ports a router needs

    def __post_init__(self) -> None:
        if self.n_routers < 1:
            raise ValueError(f"n_routers must be >= 1, got {self.n_routers}")
        check_positive("total_wire_mm", self.total_wire_mm + 1e-12)

    def critical_delay_ps(self, wire: RepeatedWire | None = None) -> float:
        """End-to-end delay of the critical path (repeated wire)."""
        wire = wire or RepeatedWire()
        # one bypass/buffer per driver stage along the critical path
        stages = max(1, round(self.n_drivers * self.critical_path_mm
                              / max(self.total_wire_mm, 1e-9)))
        return (self.critical_path_mm * wire.delay_per_mm_ps
                + stages * wire.router_bypass_ps)


def line_broadcast(n_routers: int, pitch_mm: float = 1.0) -> BroadcastTopology:
    """The paper's snaking line: one hop per router."""
    if n_routers < 1:
        raise ValueError(f"n_routers must be >= 1, got {n_routers}")
    check_positive("pitch_mm", pitch_mm)
    wire = n_routers * pitch_mm
    return BroadcastTopology(
        name="line",
        n_routers=n_routers,
        total_wire_mm=wire,
        critical_path_mm=wire,
        n_drivers=n_routers,   # one repeater bank per router
        router_ports=1,        # east input only
    )


def tree_broadcast(n_routers: int, pitch_mm: float = 1.0) -> BroadcastTopology:
    """Balanced binary distribution tree over the same row of routers."""
    if n_routers < 1:
        raise ValueError(f"n_routers must be >= 1, got {n_routers}")
    check_positive("pitch_mm", pitch_mm)
    if n_routers == 1:
        return BroadcastTopology("tree", 1, pitch_mm, pitch_mm, 1, 1)
    depth = math.ceil(math.log2(n_routers))
    row_mm = n_routers * pitch_mm
    total = 0.0
    critical = 0.0
    drivers = 0
    for level in range(depth):
        branches = 2 ** level
        span = row_mm / (2 ** (level + 1))
        total += branches * span
        critical += span
        drivers += branches
    # leaf stubs: the last tree level still has to reach each router
    # (half a pitch each, on average)
    total += n_routers * pitch_mm / 2.0
    critical += pitch_mm / 2.0
    drivers += n_routers
    return BroadcastTopology(
        name="tree",
        n_routers=n_routers,
        total_wire_mm=total,
        critical_path_mm=critical,
        n_drivers=drivers,
        router_ports=1,
    )


def star_broadcast(n_routers: int, pitch_mm: float = 1.0) -> BroadcastTopology:
    """Dedicated point-to-point wires from the source to every router."""
    if n_routers < 1:
        raise ValueError(f"n_routers must be >= 1, got {n_routers}")
    check_positive("pitch_mm", pitch_mm)
    total = sum(i * pitch_mm for i in range(1, n_routers + 1))
    return BroadcastTopology(
        name="star",
        n_routers=n_routers,
        total_wire_mm=total,
        critical_path_mm=n_routers * pitch_mm,
        n_drivers=n_routers,
        router_ports=1,
    )


def compare_topologies(
    n_routers: int, pitch_mm: float = 1.0
) -> list[BroadcastTopology]:
    """The three schemes side by side (used by Ablation A8)."""
    return [
        line_broadcast(n_routers, pitch_mm),
        tree_broadcast(n_routers, pitch_mm),
        star_broadcast(n_routers, pitch_mm),
    ]
