"""Event counters for energy accounting.

The cycle simulation counts *events* (wire-hop traversals, register
writes, tag matches, comparator evaluations, LUT reads, MAC operations);
:mod:`repro.hw.energy` multiplies these by per-event energies to produce
the energy numbers behind Fig. 8.  Keeping counting separate from costing
means the same simulation run can be costed under different technology
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EventCounters"]


@dataclass
class EventCounters:
    """A bag of named event counts with arithmetic helpers."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, event: str, n: int = 1) -> None:
        """Record ``n`` occurrences of ``event``."""
        if n < 0:
            raise ValueError(f"cannot add a negative count ({n}) for {event!r}")
        self.counts[event] = self.counts.get(event, 0) + n

    def get(self, event: str) -> int:
        """Count for ``event`` (0 if never recorded)."""
        return self.counts.get(event, 0)

    def merge(self, other: "EventCounters") -> "EventCounters":
        """Return a new counter bag with both sets of counts summed."""
        merged = EventCounters(counts=dict(self.counts))
        for event, n in other.counts.items():
            merged.counts[event] = merged.counts.get(event, 0) + n
        return merged

    def diff(self, earlier: "EventCounters") -> "EventCounters":
        """Counts accumulated since the ``earlier`` snapshot."""
        delta = EventCounters()
        for event, n in self.counts.items():
            change = n - earlier.counts.get(event, 0)
            if change < 0:
                raise ValueError(
                    f"counter {event!r} decreased ({change}); snapshots are "
                    "out of order"
                )
            if change:
                delta.counts[event] = change
        return delta

    def snapshot(self) -> "EventCounters":
        """An immutable-by-convention copy of the current counts."""
        return EventCounters(counts=dict(self.counts))

    def total(self) -> int:
        """Sum of all counts (useful for smoke checks)."""
        return sum(self.counts.values())

    def as_dict(self) -> dict[str, int]:
        """Copy of the raw counts."""
        return dict(self.counts)
