"""I-BERT's integer-only approximations (Kim et al., 2021) — the related-
work baseline of Table IV, implemented rather than carried as a citation.

I-BERT replaces non-linear float ops with integer polynomials under
scale-factor arithmetic: a quantised value is ``q * S`` for integer ``q``
and float scale ``S``, and every kernel below consumes and produces
``(q, S)`` pairs using only integer multiplies, adds and shifts — the
"integer multipliers, adders, shifters and a divider [that] leads to
higher overhead in comparison to NN-LUT" (paper §VI).

Kernels (from the I-BERT paper):

* **i-poly** — a second-order polynomial ``a*(q + qb)^2 + qc`` evaluated
  in integers with the output scale folded into the coefficients.
* **i-exp** — range reduction ``x = (-z) * ln2 + r`` with integer ``z``
  and ``r in (-ln2, 0]``, then ``exp(x) ~= i-poly(r) >> z`` with the
  exp-specific coefficients ``a=0.35815147, b=1.353, c=0.344``.
* **i-erf / i-gelu** — the sign-symmetric clipped polynomial for erf
  (``a=-0.2888, b=-1.769, c=1``), then
  ``gelu(x) = x * (i-erf(x / sqrt(2)) + 1) / 2``.

The implementations stay in numpy ``int64`` throughout; tests assert the
integer-only property (every intermediate is an exact integer) and the
approximation error bounds I-BERT reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IntQuantizer", "i_poly", "i_exp", "i_erf", "i_gelu"]

_LN2 = float(np.log(2.0))


@dataclass(frozen=True)
class IntQuantizer:
    """Symmetric uniform quantiser to ``bits``-bit integers."""

    bits: int = 16

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")

    def quantize(self, x: np.ndarray, max_abs: float) -> tuple[np.ndarray, float]:
        """Return ``(q, scale)`` with ``x ~= q * scale``."""
        if max_abs <= 0:
            raise ValueError(f"max_abs must be > 0, got {max_abs}")
        scale = max_abs / (2 ** (self.bits - 1) - 1)
        q = np.clip(
            np.rint(np.asarray(x, dtype=np.float64) / scale),
            -(2 ** (self.bits - 1)),
            2 ** (self.bits - 1) - 1,
        ).astype(np.int64)
        return q, scale


def i_poly(
    q: np.ndarray, scale: float, a: float, b: float, c: float
) -> tuple[np.ndarray, float]:
    """Integer evaluation of ``a * (x + b)^2 + c`` for ``x = q * scale``.

    Following I-BERT Alg. 1: fold ``b`` and ``c`` into integers under the
    input scale, square in int64, and emit the output scale ``a*scale^2``.
    """
    q = np.asarray(q, dtype=np.int64)
    q_b = int(np.floor(b / scale))
    out_scale = a * scale * scale
    q_c = int(np.floor(c / out_scale))
    q_out = (q + q_b) ** 2 + q_c
    return q_out, out_scale


def i_exp(q: np.ndarray, scale: float) -> tuple[np.ndarray, float]:
    """Integer-only ``exp`` for non-positive arguments (I-BERT Alg. 2).

    ``x = q*scale <= 0`` is decomposed as ``x = -z*ln2 + r``; the
    polynomial approximates ``exp(r)`` on ``(-ln2, 0]`` and the power of
    two becomes a right shift.
    """
    q = np.asarray(q, dtype=np.int64)
    if np.any(q > 0):
        raise ValueError("i_exp expects non-positive arguments (post max-"
                         "subtraction softmax inputs)")
    q_ln2 = max(int(np.floor(_LN2 / scale)), 1)
    z = (-q) // q_ln2
    q_r = q + z * q_ln2  # r = q_r * scale  in (-ln2, 0]
    q_poly, poly_scale = i_poly(
        q_r, scale, a=0.35815147, b=1.353, c=0.344
    )
    # exp(x) ~= poly(r) * 2^-z: keep integers by scaling the polynomial
    # up by the largest z before shifting (I-BERT folds this into the
    # requantisation; an exact >> z on the integer result is equivalent)
    z = np.minimum(z, 62 - 30)  # guard the int64 headroom
    q_out = q_poly >> z
    return q_out, poly_scale


def i_erf(q: np.ndarray, scale: float) -> tuple[np.ndarray, float]:
    """Integer-only ``erf`` (I-BERT §3.4): clipped signed polynomial."""
    q = np.asarray(q, dtype=np.int64)
    a, b, c = -0.2888, -1.769, 1.0
    sign = np.sign(q).astype(np.int64)
    q_abs = np.abs(q)
    q_clip_limit = int(np.floor(-b / scale))
    q_clipped = np.minimum(q_abs, q_clip_limit)
    q_poly, poly_scale = i_poly(q_clipped, scale, a=a, b=b, c=c)
    return sign * q_poly, poly_scale


def i_gelu(q: np.ndarray, scale: float) -> tuple[np.ndarray, float]:
    """Integer-only GeLU: ``x * (erf(x / sqrt(2)) + 1) / 2``."""
    q = np.asarray(q, dtype=np.int64)
    q_erf, erf_scale = i_erf(q, scale / np.sqrt(2.0))
    q_one = int(np.floor(1.0 / erf_scale))
    q_out = q * (q_erf + q_one)
    out_scale = scale * erf_scale / 2.0
    return q_out, out_scale


def ibert_exp(x: np.ndarray, bits: int = 16, max_abs: float = 16.0) -> np.ndarray:
    """Float-in/float-out convenience wrapper around :func:`i_exp`."""
    quantizer = IntQuantizer(bits=bits)
    q, scale = quantizer.quantize(np.minimum(x, 0.0), max_abs)
    q_out, out_scale = i_exp(q, scale)
    return q_out.astype(np.float64) * out_scale


def ibert_gelu(x: np.ndarray, bits: int = 16, max_abs: float = 8.0) -> np.ndarray:
    """Float-in/float-out convenience wrapper around :func:`i_gelu`."""
    quantizer = IntQuantizer(bits=bits)
    q, scale = quantizer.quantize(x, max_abs)
    q_out, out_scale = i_gelu(q, scale)
    return q_out.astype(np.float64) * out_scale
