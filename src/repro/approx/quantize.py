"""Fixed-point PWL tables and NOVA link-beat packing.

The NOVA link is 257 bits: 16 16-bit words (8 slope/bias pairs) plus one
tag bit (paper, Fig. 3).  With ``B`` slope/bias pairs and 8 pairs per beat
the mapper serialises the table into ``ceil(B / 8)`` beats.  The paper's
tag-matching rule (§III-A.1) is:

    "the LSB of each lookup address is used to match against the tag bit of
    the incoming packet.  The remaining bits are used to retrieve the slope
    and bias values"

i.e. for a 16-entry table, beat 0 carries the pairs for even addresses and
beat 1 the pairs for odd addresses; a router with address ``a`` grabs slot
``a >> 1`` from the beat whose tag equals ``a & 1``.  For an 8-entry table
there is a single beat (tag 0) and the full address selects the slot.  The
generalisation to ``2^k`` beats uses the low ``k`` address bits as the tag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.pwl import PiecewiseLinear
from repro.utils.fixed_point import FixedPointFormat, Q5_10

__all__ = [
    "QuantizedPwl",
    "LinkBeat",
    "pack_beats",
    "unpack_beats",
    "beat_of_address",
    "slot_of_address",
    "PAIRS_PER_BEAT",
]

#: Pairs broadcast per NoC beat — fixed by the 257-bit link width.
PAIRS_PER_BEAT = 8


@dataclass(frozen=True)
class QuantizedPwl:
    """A PWL table with all coefficients held in fixed point.

    ``cuts``, ``slopes`` and ``biases`` are stored as the *representable
    values* (floats that are exact multiples of the respective format's
    LSB) so functional evaluation stays in plain numpy while matching the
    bit-level behaviour; raw integer codes are available via the format's
    ``to_raw``.
    """

    pwl: PiecewiseLinear
    input_format: FixedPointFormat = Q5_10
    coeff_format: FixedPointFormat = Q5_10
    output_format: FixedPointFormat = Q5_10

    def __post_init__(self) -> None:
        cuts = np.asarray(self.pwl.cuts, dtype=np.float64)
        fmt = self.input_format
        if len(cuts) and (
            cuts.min() <= fmt.min_value or cuts.max() >= fmt.max_value
        ):
            raise ValueError(
                f"input format {fmt} (range [{fmt.min_value}, "
                f"{fmt.max_value}]) saturates the table's cut points "
                f"({cuts.min():.4g}..{cuts.max():.4g}); choose a format "
                "with more integer bits"
            )
        try:
            quantized = PiecewiseLinear(
                cuts=fmt.quantize(cuts),
                slopes=self.coeff_format.quantize(self.pwl.slopes),
                biases=self.coeff_format.quantize(self.pwl.biases),
                domain=self.pwl.domain,
                name=self.pwl.name,
            )
        except ValueError as err:
            raise ValueError(
                f"input format {fmt} cannot resolve adjacent cut points "
                f"of table {self.pwl.name!r} (LSB {fmt.scale:.3g}); "
                "increase fraction bits or reduce the segment count"
            ) from err
        object.__setattr__(self, "_quantized", quantized)

    @property
    def quantized_pwl(self) -> PiecewiseLinear:
        """The table after coefficient quantisation (cuts/slopes/biases)."""
        return self._quantized

    @property
    def n_segments(self) -> int:
        """Number of slope/bias pairs."""
        return self.pwl.n_segments

    @property
    def n_beats(self) -> int:
        """NoC beats needed to broadcast the full table."""
        return -(-self.n_segments // PAIRS_PER_BEAT)

    def segment_index(self, x: np.ndarray | float) -> np.ndarray:
        """Comparator model on the quantised input and cuts."""
        return self.lookup(x)[1]

    def lookup(self, x: np.ndarray | float) -> tuple[np.ndarray, np.ndarray]:
        """Quantise and address the whole input in one vectorised pass.

        Returns ``(xq, idx)``: the quantised (clamped, representable)
        inputs and their segment indices, for any input shape.  This is
        the hot path of the batched serving engine — one ``searchsorted``
        gather over an entire request batch replaces per-PE-cycle Python
        iteration — and it is shared with :meth:`evaluate` so the fast
        path cannot drift from the golden model.
        """
        xq = self.input_format.quantize(self._quantized.clamp(x))
        return xq, self._quantized.segment_index(xq)

    def evaluate(self, x: np.ndarray | float) -> np.ndarray:
        """Bit-accurate functional evaluation: quantise, look up, MAC.

        This is the golden model that both the cycle-accurate NOVA pipeline
        and the LUT baselines must match exactly.
        """
        xq, idx = self.lookup(x)
        return self.output_format.mac(
            self._quantized.slopes[idx], xq, self._quantized.biases[idx]
        )

    __call__ = evaluate

    def coefficient_words(self) -> np.ndarray:
        """Raw (slope, bias) integer codes, shape ``(n_segments, 2)``."""
        slope_raw = self.coeff_format.to_raw(self._quantized.slopes)
        bias_raw = self.coeff_format.to_raw(self._quantized.biases)
        return np.stack([slope_raw, bias_raw], axis=1)


@dataclass(frozen=True)
class LinkBeat:
    """One beat on the NOVA link: 8 slope/bias raw pairs plus a tag.

    ``pairs[slot] = (slope_raw, bias_raw)``.  Unused slots in the final
    beat of a short table are zero-filled, as unused wires would idle.
    """

    tag: int
    pairs: tuple[tuple[int, int], ...]
    word_bits: int = 16

    def __post_init__(self) -> None:
        if len(self.pairs) != PAIRS_PER_BEAT:
            raise ValueError(
                f"a beat carries exactly {PAIRS_PER_BEAT} pairs, got {len(self.pairs)}"
            )
        if self.tag < 0:
            raise ValueError(f"tag must be non-negative, got {self.tag}")

    @property
    def bit_width(self) -> int:
        """Payload width: 16 words plus tag bits (257 for 16-bit words)."""
        tag_bits = max(1, (max(self.tag, 1)).bit_length()) if self.tag else 1
        return 2 * PAIRS_PER_BEAT * self.word_bits + tag_bits

    def pair_for_slot(self, slot: int) -> tuple[int, int]:
        """Return the (slope_raw, bias_raw) pair at ``slot``."""
        return self.pairs[slot]


def beat_of_address(address: int, n_beats: int) -> int:
    """Which beat carries the pair for ``address`` (low address bits)."""
    if n_beats < 1:
        raise ValueError(f"n_beats must be >= 1, got {n_beats}")
    if n_beats & (n_beats - 1):
        raise ValueError(f"n_beats must be a power of two, got {n_beats}")
    return address & (n_beats - 1)


def slot_of_address(address: int, n_beats: int) -> int:
    """Which slot within the beat carries the pair for ``address``."""
    if n_beats < 1:
        raise ValueError(f"n_beats must be >= 1, got {n_beats}")
    if n_beats & (n_beats - 1):
        raise ValueError(f"n_beats must be a power of two, got {n_beats}")
    return address >> (n_beats - 1).bit_length()


def pack_beats(qpwl: QuantizedPwl) -> list[LinkBeat]:
    """Serialise a quantised table into link beats (the mapper's job).

    Beat ``t`` carries the pairs for every address ``a`` with
    ``a % n_beats == t``, at slot ``a // n_beats`` — the address-LSB
    tag-matching layout of §III-A.1.
    """
    words = qpwl.coefficient_words()
    n_beats_padded = 1
    while n_beats_padded * PAIRS_PER_BEAT < qpwl.n_segments:
        n_beats_padded *= 2
    beats = []
    for tag in range(n_beats_padded):
        pairs = []
        for slot in range(PAIRS_PER_BEAT):
            address = slot * n_beats_padded + tag
            if address < qpwl.n_segments:
                pairs.append((int(words[address, 0]), int(words[address, 1])))
            else:
                pairs.append((0, 0))
        beats.append(
            LinkBeat(tag=tag, pairs=tuple(pairs), word_bits=qpwl.coeff_format.word_bits)
        )
    return beats


def unpack_beats(beats: list[LinkBeat], n_segments: int) -> np.ndarray:
    """Reassemble (slope_raw, bias_raw) per address from link beats.

    Inverse of :func:`pack_beats`; used by tests to prove the serialisation
    is lossless.
    """
    n_beats = len(beats)
    if n_beats & (n_beats - 1):
        raise ValueError(f"number of beats must be a power of two, got {n_beats}")
    words = np.zeros((n_segments, 2), dtype=np.int64)
    for address in range(n_segments):
        beat = beats[beat_of_address(address, n_beats)]
        slot = slot_of_address(address, n_beats)
        slope_raw, bias_raw = beat.pair_for_slot(slot)
        words[address, 0] = slope_raw
        words[address, 1] = bias_raw
    return words
