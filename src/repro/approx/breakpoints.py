"""Cut-point (breakpoint) placement strategies for PWL fitting.

For a smooth function the L-infinity error of linear interpolation on a
segment of width ``h`` is ``max|f''| * h^2 / 8``; equalising error across
segments therefore places cut density proportional to ``sqrt(|f''|)``.
:func:`curvature_cuts` implements that rule and is the default strategy —
it is also what a trained NN-LUT MLP converges towards, which is why the
direct fit and the MLP fit produce tables of comparable quality.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["uniform_cuts", "curvature_cuts", "quantile_cuts"]


def uniform_cuts(domain: tuple[float, float], n_segments: int) -> np.ndarray:
    """``n_segments - 1`` equally spaced interior cuts."""
    low, high = domain
    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    return np.linspace(low, high, n_segments + 1)[1:-1]


def curvature_cuts(
    fn: Callable[[np.ndarray], np.ndarray],
    domain: tuple[float, float],
    n_segments: int,
    n_samples: int = 8192,
) -> np.ndarray:
    """Error-equalising cuts: density proportional to sqrt(|f''|).

    The second derivative is estimated by central differences on a dense
    grid; the cumulative sqrt-curvature mass is then split into
    ``n_segments`` equal chunks.  A small uniform floor keeps segments from
    collapsing where the function is exactly linear (f'' == 0).
    """
    low, high = domain
    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    if n_segments == 1:
        return np.zeros(0)
    xs = np.linspace(low, high, n_samples)
    ys = fn(xs)
    h = xs[1] - xs[0]
    curvature = np.zeros_like(xs)
    curvature[1:-1] = np.abs(ys[2:] - 2.0 * ys[1:-1] + ys[:-2]) / (h * h)
    curvature[0] = curvature[1]
    curvature[-1] = curvature[-2]
    density = np.sqrt(curvature)
    floor = max(np.max(density) * 1e-3, 1e-12)
    density = density + floor
    mass = np.cumsum(density)
    mass = mass / mass[-1]
    targets = np.arange(1, n_segments) / n_segments
    cuts = np.interp(targets, mass, xs)
    return _dedupe_cuts(cuts, domain)


def quantile_cuts(
    fn: Callable[[np.ndarray], np.ndarray],
    domain: tuple[float, float],
    n_segments: int,
    n_samples: int = 8192,
) -> np.ndarray:
    """Cuts at equal quantiles of the output range (arc-in-y placement).

    Useful for steep monotone functions (e.g. exp) where equal output steps
    concentrate segments in the active region.
    """
    low, high = domain
    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    if n_segments == 1:
        return np.zeros(0)
    xs = np.linspace(low, high, n_samples)
    ys = fn(xs)
    total_variation = np.cumsum(np.abs(np.diff(ys)))
    if total_variation[-1] <= 0:
        return uniform_cuts(domain, n_segments)
    total_variation = total_variation / total_variation[-1]
    targets = np.arange(1, n_segments) / n_segments
    cuts = np.interp(targets, total_variation, xs[1:])
    return _dedupe_cuts(cuts, domain)


def _dedupe_cuts(cuts: np.ndarray, domain: tuple[float, float]) -> np.ndarray:
    """Enforce strict monotonicity inside the open domain interval.

    Numerical placement can produce coincident cuts on flat regions; nudge
    them apart by the smallest spacing that keeps the table valid.
    """
    low, high = domain
    span = high - low
    min_gap = span * 1e-9
    cuts = np.clip(np.sort(cuts), low + min_gap, high - min_gap)
    for i in range(1, len(cuts)):
        if cuts[i] <= cuts[i - 1]:
            cuts[i] = cuts[i - 1] + min_gap
    # If the nudging pushed past the domain edge, fall back to uniform.
    if len(cuts) and cuts[-1] >= high:
        return uniform_cuts(domain, len(cuts) + 1)
    return cuts
