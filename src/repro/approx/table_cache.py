"""Process-wide cache of compiled NN-LUT tables.

The paper's compile flow trains one small MLP per non-linear function
(§IV) and extracts its exact PWL table; that table is then *content*, not
hardware — NOVA broadcasts it over the wires, the LUT baselines write it
into SRAM.  Nothing about the table depends on which engine instance uses
it, so training it more than once per process is pure waste: a serving
deployment spinning up one engine per worker, or an experiment sweep
constructing many engines, would otherwise re-run the identical Adam fit
for the identical ``(function, n_segments, seed)`` triple every time.

This module is the single compile-time entry point.  Tables are keyed on
``(function, n_segments, seed)`` and built at most once per process; the
*same object* is returned for every identical key, which callers may rely
on (``compiled_table(k) is compiled_table(k)``).  :class:`QuantizedPwl`
is a frozen dataclass and every consumer treats its arrays as read-only,
so sharing one instance across engines — and across threads — is safe.

Determinism: :func:`repro.approx.nnlut_mlp.train_nnlut_mlp` is seeded
numpy, so a cache hit is bit-identical to a fresh training run; caching
changes *when* work happens, never *what* is computed.
"""

from __future__ import annotations

import threading

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.approx.quantize import QuantizedPwl

__all__ = [
    "compiled_table",
    "compiled_tables",
    "clear_table_cache",
    "table_cache_info",
]

_LOCK = threading.Lock()
_CACHE: dict[tuple[str, int, int], QuantizedPwl] = {}
_HITS = 0
_MISSES = 0


def compiled_table(
    function: str, n_segments: int = 16, seed: int = 0
) -> QuantizedPwl:
    """The compiled (trained + quantised) table for one function.

    Trains on first use of a ``(function, n_segments, seed)`` key and
    returns the cached :class:`QuantizedPwl` object itself afterwards.
    Unknown function names raise ``KeyError`` from the function registry
    before anything is cached.
    """
    global _HITS, _MISSES
    key = (function, int(n_segments), int(seed))
    with _LOCK:
        table = _CACHE.get(key)
        if table is not None:
            _HITS += 1
            return table
        # Build under the lock: training is sub-second at paper table
        # sizes and holding the lock preserves the same-object guarantee
        # under concurrent first use.
        spec = get_function(function)
        mlp = train_nnlut_mlp(spec, n_segments=n_segments, seed=seed)
        table = QuantizedPwl(mlp.to_piecewise_linear(n_segments=n_segments))
        _CACHE[key] = table
        _MISSES += 1
        return table


def compiled_tables(
    functions: tuple[str, ...] | list[str],
    n_segments: int = 16,
    seed: int = 0,
) -> dict[str, QuantizedPwl]:
    """Compiled tables for several functions at one table size/seed."""
    return {
        name: compiled_table(name, n_segments=n_segments, seed=seed)
        for name in functions
    }


def clear_table_cache() -> None:
    """Drop every cached table (tests and memory-pressure hooks)."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0


def table_cache_info() -> dict[str, int]:
    """Cache statistics: ``{"entries", "hits", "misses"}``."""
    with _LOCK:
        return {"entries": len(_CACHE), "hits": _HITS, "misses": _MISSES}
