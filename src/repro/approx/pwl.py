"""Piecewise-linear function representation with comparator-style lookup.

Terminology note.  The paper (following NN-LUT) says "16 breakpoints" for a
table of 16 slope/bias pairs.  A table with ``B`` pairs has ``B`` segments
separated by ``B - 1`` interior cut points; the comparator bank compares the
input against those cuts to produce the *lookup address* (segment index) in
``[0, B)``.  Throughout this codebase ``n_segments`` is the number of
slope/bias pairs (the paper's "breakpoints") and ``cuts`` are the interior
boundaries the comparators hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.approx import breakpoints as bp

__all__ = ["PiecewiseLinear"]


@dataclass(frozen=True)
class PiecewiseLinear:
    """A piecewise-linear approximation ``y = slope[i] * x + bias[i]``.

    Attributes
    ----------
    cuts:
        Sorted interior segment boundaries, length ``n_segments - 1``.
    slopes, biases:
        Per-segment coefficients, length ``n_segments``.
    domain:
        ``(low, high)``; inputs are clamped into this interval before
        lookup, modelling the saturating comparator front-end.
    name:
        Optional label (usually the approximated function's name).
    """

    cuts: np.ndarray
    slopes: np.ndarray
    biases: np.ndarray
    domain: tuple[float, float]
    name: str = field(default="pwl", compare=False)

    def __post_init__(self) -> None:
        cuts = np.asarray(self.cuts, dtype=np.float64)
        slopes = np.asarray(self.slopes, dtype=np.float64)
        biases = np.asarray(self.biases, dtype=np.float64)
        object.__setattr__(self, "cuts", cuts)
        object.__setattr__(self, "slopes", slopes)
        object.__setattr__(self, "biases", biases)
        if slopes.ndim != 1 or biases.ndim != 1 or cuts.ndim != 1:
            raise ValueError("cuts, slopes and biases must be 1-D arrays")
        if len(slopes) != len(biases):
            raise ValueError(
                f"slopes ({len(slopes)}) and biases ({len(biases)}) must have "
                "the same length"
            )
        if len(cuts) != len(slopes) - 1:
            raise ValueError(
                f"expected {len(slopes) - 1} cuts for {len(slopes)} segments, "
                f"got {len(cuts)}"
            )
        if len(slopes) < 1:
            raise ValueError("need at least one segment")
        if np.any(np.diff(cuts) <= 0):
            raise ValueError("cuts must be strictly increasing")
        low, high = self.domain
        if not low < high:
            raise ValueError(f"domain must satisfy low < high, got {self.domain}")
        if len(cuts) and (cuts[0] <= low or cuts[-1] >= high):
            raise ValueError("cuts must lie strictly inside the domain")

    # ------------------------------------------------------------------
    # Core evaluation (this is the golden model for the hardware).
    # ------------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Number of slope/bias pairs (the paper's 'breakpoints')."""
        return len(self.slopes)

    def clamp(self, x: np.ndarray | float) -> np.ndarray:
        """Clamp inputs into the approximation domain."""
        low, high = self.domain
        return np.clip(np.asarray(x, dtype=np.float64), low, high)

    def segment_index(self, x: np.ndarray | float) -> np.ndarray:
        """Comparator model: lookup address = number of cuts <= x.

        This is exactly what the comparator bank in Fig. 3 computes: the
        input is compared against every cut in parallel and the count of
        asserted comparators is the segment index.
        """
        clamped = self.clamp(x)
        return np.searchsorted(self.cuts, clamped, side="right").astype(np.int64)

    def evaluate(self, x: np.ndarray | float) -> np.ndarray:
        """Evaluate the approximation (functional golden model)."""
        clamped = self.clamp(x)
        idx = self.segment_index(clamped)
        return self.slopes[idx] * clamped + self.biases[idx]

    __call__ = evaluate

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        fn: Callable[[np.ndarray], np.ndarray],
        domain: tuple[float, float],
        n_segments: int,
        strategy: str = "curvature",
        method: str = "interpolate",
        samples_per_segment: int = 64,
        name: str = "pwl",
    ) -> "PiecewiseLinear":
        """Fit a PWL table directly to ``fn`` (non-MLP baseline fit).

        Parameters
        ----------
        strategy:
            Cut placement: ``"uniform"``, ``"curvature"`` (error-equalising,
            the practical optimum for smooth functions) or ``"quantile"``.
        method:
            ``"interpolate"`` draws each segment through the function values
            at its endpoints (continuous result); ``"lstsq"`` least-squares
            fits each segment independently (lower RMSE, may be
            discontinuous at cuts — as a hardware table is allowed to be).
        """
        if n_segments < 1:
            raise ValueError(f"n_segments must be >= 1, got {n_segments}")
        if strategy == "uniform":
            cuts = bp.uniform_cuts(domain, n_segments)
        elif strategy == "curvature":
            cuts = bp.curvature_cuts(fn, domain, n_segments)
        elif strategy == "quantile":
            cuts = bp.quantile_cuts(fn, domain, n_segments)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        return cls.from_cuts(
            fn,
            domain,
            cuts,
            method=method,
            samples_per_segment=samples_per_segment,
            name=name,
        )

    @classmethod
    def from_cuts(
        cls,
        fn: Callable[[np.ndarray], np.ndarray],
        domain: tuple[float, float],
        cuts: np.ndarray,
        method: str = "interpolate",
        samples_per_segment: int = 64,
        name: str = "pwl",
    ) -> "PiecewiseLinear":
        """Build a table from explicit cut positions."""
        cuts = np.asarray(cuts, dtype=np.float64)
        low, high = domain
        edges = np.concatenate([[low], cuts, [high]])
        n_segments = len(edges) - 1
        slopes = np.empty(n_segments)
        biases = np.empty(n_segments)
        for i in range(n_segments):
            a, b = edges[i], edges[i + 1]
            if method == "interpolate":
                ya, yb = float(fn(np.array([a]))[0]), float(fn(np.array([b]))[0])
                slope = (yb - ya) / (b - a)
                bias = ya - slope * a
            elif method == "lstsq":
                xs = np.linspace(a, b, samples_per_segment)
                ys = fn(xs)
                design = np.stack([xs, np.ones_like(xs)], axis=1)
                (slope, bias), *_ = np.linalg.lstsq(design, ys, rcond=None)
            else:
                raise ValueError(f"unknown method {method!r}")
            slopes[i] = slope
            biases[i] = bias
        return cls(cuts=cuts, slopes=slopes, biases=biases, domain=domain, name=name)

    # ------------------------------------------------------------------
    # Analysis helpers.
    # ------------------------------------------------------------------

    def edges(self) -> np.ndarray:
        """Segment edges including the domain endpoints."""
        low, high = self.domain
        return np.concatenate([[low], self.cuts, [high]])

    def max_error(
        self, fn: Callable[[np.ndarray], np.ndarray], n_samples: int = 4096
    ) -> float:
        """Max absolute error against ``fn`` on a dense grid over the domain."""
        xs = np.linspace(self.domain[0], self.domain[1], n_samples)
        return float(np.max(np.abs(self.evaluate(xs) - fn(xs))))

    def continuity_gaps(self) -> np.ndarray:
        """Jump magnitude of the approximation at every cut.

        Zero everywhere for interpolation-constructed tables; may be
        non-zero for least-squares or MLP-extracted tables (the hardware
        does not require continuity).
        """
        if len(self.cuts) == 0:
            return np.zeros(0)
        left = self.slopes[:-1] * self.cuts + self.biases[:-1]
        right = self.slopes[1:] * self.cuts + self.biases[1:]
        return np.abs(right - left)

    def table_rows(self) -> list[tuple[int, float, float, float, float]]:
        """(address, segment_low, segment_high, slope, bias) per segment.

        This is the content that the LUT baselines store in SRAM and that
        NOVA serialises into link beats.
        """
        edges = self.edges()
        return [
            (i, float(edges[i]), float(edges[i + 1]), float(self.slopes[i]),
             float(self.biases[i]))
            for i in range(self.n_segments)
        ]
