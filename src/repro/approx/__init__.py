"""Non-linear function approximation substrate (NN-LUT methodology).

NOVA does not invent a new approximation: it reuses NN-LUT's (Yu et al.,
DAC 2022) piecewise-linear (PWL) approximation, where a small 2-layer MLP
with ReLU hidden units is trained at compile time on the target non-linear
function; the trained MLP *is* a piecewise-linear function whose kinks are
the breakpoints and whose per-segment slope/bias pairs fill the table that
NOVA broadcasts over the NoC (and that the LUT baselines store in SRAM).

This package provides:

* :mod:`repro.approx.functions` — reference implementations and a registry
  of the non-linear operators that appear in attention models,
* :mod:`repro.approx.pwl` — the :class:`PiecewiseLinear` representation
  with comparator-style segment lookup,
* :mod:`repro.approx.breakpoints` — breakpoint placement strategies,
* :mod:`repro.approx.nnlut_mlp` — the NN-LUT compile-time MLP trainer and
  its exact extraction into a PWL table,
* :mod:`repro.approx.quantize` — fixed-point PWL tables and link-word
  packing (16-bit words, 8 slope/bias pairs per 257-bit beat),
* :mod:`repro.approx.table_cache` — process-wide cache of compiled
  tables keyed on ``(function, n_segments, seed)`` (train once per
  process, share everywhere),
* :mod:`repro.approx.softmax` — softmax / GeLU built on the elementwise
  approximator, as the models in Table I use them,
* :mod:`repro.approx.error` — approximation error metrics.
"""

from repro.approx.functions import FUNCTIONS, FunctionSpec, get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.breakpoints import uniform_cuts, curvature_cuts, quantile_cuts
from repro.approx.nnlut_mlp import NnLutMlp, train_nnlut_mlp
from repro.approx.quantize import QuantizedPwl, pack_beats, unpack_beats, LinkBeat
from repro.approx.table_cache import (
    compiled_table,
    compiled_tables,
    clear_table_cache,
    table_cache_info,
)
from repro.approx.softmax import (
    exact_softmax,
    approx_softmax,
    approx_gelu,
    make_softmax_approximator,
)
from repro.approx.error import (
    max_abs_error,
    mean_abs_error,
    rmse,
    error_report,
)
from repro.approx.bitpack import (
    encode_beat,
    decode_beat,
    LINK_WIDTH_BITS,
)
from repro.approx.ibert import ibert_exp, ibert_gelu, IntQuantizer
from repro.approx.softermax import softermax, online_softmax, pow2_table

__all__ = [
    "FUNCTIONS",
    "FunctionSpec",
    "get_function",
    "PiecewiseLinear",
    "uniform_cuts",
    "curvature_cuts",
    "quantile_cuts",
    "NnLutMlp",
    "train_nnlut_mlp",
    "QuantizedPwl",
    "pack_beats",
    "unpack_beats",
    "LinkBeat",
    "compiled_table",
    "compiled_tables",
    "clear_table_cache",
    "table_cache_info",
    "exact_softmax",
    "approx_softmax",
    "approx_gelu",
    "make_softmax_approximator",
    "max_abs_error",
    "mean_abs_error",
    "rmse",
    "error_report",
    "encode_beat",
    "decode_beat",
    "LINK_WIDTH_BITS",
    "ibert_exp",
    "ibert_gelu",
    "IntQuantizer",
    "softermax",
    "online_softmax",
    "pow2_table",
]
