"""Reference implementations of the non-linear operators NOVA approximates.

Each function comes with a default approximation domain.  The domains match
how the operators are used inside attention layers:

* ``exp`` is always evaluated on ``x - max(x) <= 0`` (the numerically
  stable softmax), so its domain is one-sided.
* ``gelu``/``silu`` inputs are post-GEMM activations, well covered by
  ``[-8, 8]`` for the models evaluated in the paper.
* ``reciprocal`` is used for the softmax normaliser ``1/sum``; the sum of
  ``N`` exponentials lies in ``[1, N]``, rescaled into the domain below.

The registry is keyed by name so experiments and the CLI can select
functions by string.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

__all__ = ["FunctionSpec", "FUNCTIONS", "get_function"]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))
_INV_SQRT_2 = float(1.0 / np.sqrt(2.0))


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised error function (Abramowitz & Stegun 7.1.26, |err|<1.5e-7).

    scipy provides ``scipy.special.erf`` but the core library depends only
    on numpy; the polynomial approximation is far below the 16-bit
    fixed-point resolution of the datapath, so it is exact for our purposes.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


def exp(x: np.ndarray) -> np.ndarray:
    """Elementwise exponential."""
    return np.exp(np.asarray(x, dtype=np.float64))


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GeLU: ``x * Phi(x)`` with the Gaussian CDF via erf."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + _erf(x * _INV_SQRT_2))


def gelu_tanh(x: np.ndarray) -> np.ndarray:
    """The tanh-based GeLU approximation used by BERT-family models."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(_SQRT_2_OVER_PI * (x + 0.044715 * x ** 3)))


def tanh(x: np.ndarray) -> np.ndarray:
    """Elementwise hyperbolic tangent."""
    return np.tanh(np.asarray(x, dtype=np.float64))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)``."""
    x = np.asarray(x, dtype=np.float64)
    return x * sigmoid(x)


def erf(x: np.ndarray) -> np.ndarray:
    """Elementwise error function."""
    return _erf(x)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit (exactly piecewise linear already)."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def reciprocal(x: np.ndarray) -> np.ndarray:
    """Elementwise ``1/x`` (domain excludes zero)."""
    return 1.0 / np.asarray(x, dtype=np.float64)


def rsqrt(x: np.ndarray) -> np.ndarray:
    """Elementwise ``1/sqrt(x)`` as used by LayerNorm normalisation."""
    return 1.0 / np.sqrt(np.asarray(x, dtype=np.float64))


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    x = np.asarray(x, dtype=np.float64)
    return np.logaddexp(0.0, x)


@dataclass(frozen=True)
class FunctionSpec:
    """A non-linear operator together with its approximation domain.

    Attributes
    ----------
    name:
        Registry key.
    fn:
        Vectorised reference implementation (float64).
    domain:
        ``(low, high)`` interval over which PWL tables are fitted.  Inputs
        outside the domain are clamped by the comparator front-end, which is
        what the hardware's saturating comparison does.
    description:
        Where the operator appears in attention models.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    domain: tuple[float, float]
    description: str

    def __post_init__(self) -> None:
        low, high = self.domain
        if not low < high:
            raise ValueError(f"domain must satisfy low < high, got {self.domain}")

    def sample(self, n: int) -> np.ndarray:
        """Evenly spaced sample grid over the domain (for fitting/metrics)."""
        low, high = self.domain
        return np.linspace(low, high, n)


FUNCTIONS: dict[str, FunctionSpec] = {
    spec.name: spec
    for spec in [
        FunctionSpec(
            "exp",
            exp,
            (-16.0, 0.0),
            "softmax numerator exp(x - max(x)); argument is always <= 0",
        ),
        FunctionSpec("gelu", gelu, (-8.0, 8.0), "FFN activation in BERT-family models"),
        FunctionSpec(
            "gelu_tanh",
            gelu_tanh,
            (-8.0, 8.0),
            "tanh-form GeLU used by BERT/MobileBERT checkpoints",
        ),
        FunctionSpec("tanh", tanh, (-6.0, 6.0), "pooler activation / gelu_tanh inner op"),
        FunctionSpec("sigmoid", sigmoid, (-8.0, 8.0), "gating activations"),
        FunctionSpec("silu", silu, (-8.0, 8.0), "swish activation"),
        FunctionSpec("erf", erf, (-4.0, 4.0), "exact-GeLU inner op"),
        FunctionSpec("relu", relu, (-8.0, 8.0), "CNN activation (exactly PWL)"),
        FunctionSpec(
            "reciprocal",
            reciprocal,
            (0.0625, 16.0),
            "softmax normaliser 1/sum after range reduction",
        ),
        FunctionSpec("rsqrt", rsqrt, (0.0625, 16.0), "LayerNorm 1/sqrt(var + eps)"),
        FunctionSpec("softplus", softplus, (-8.0, 8.0), "smooth ReLU variant"),
    ]
}


def get_function(name: str) -> FunctionSpec:
    """Look up a registered function by name.

    Raises ``KeyError`` with the list of available names on a miss, which is
    the error users hit when they typo a function name on the CLI.
    """
    try:
        return FUNCTIONS[name]
    except KeyError:
        available = ", ".join(sorted(FUNCTIONS))
        raise KeyError(f"unknown function {name!r}; available: {available}") from None
