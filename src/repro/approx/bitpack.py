"""Bit-true encoding of link beats: the 257-bit wire image.

The cycle simulator carries :class:`~repro.approx.quantize.LinkBeat`
objects for speed; this module provides the *exact* bit-level encoding a
SystemVerilog implementation would drive onto the 257 wires, so tests can
pin down the wire format and the fault-injection model can flip real bit
positions.

Wire layout (LSB first), matching Fig. 3's "16 words (8 pairs of slope and
bias values) along with their corresponding tag bit":

    bit   0        : tag
    bits  1..16    : pair 0 slope  (16-bit two's complement)
    bits 17..32    : pair 0 bias
    bits 33..48    : pair 1 slope
    ...
    bits 241..256  : pair 7 bias

Total: 1 + 8 * 2 * 16 = 257 bits.
"""

from __future__ import annotations

from repro.approx.quantize import LinkBeat, PAIRS_PER_BEAT

__all__ = [
    "encode_beat",
    "decode_beat",
    "flip_bit",
    "bit_field_of",
    "LINK_WIDTH_BITS",
]

#: Total wire count of the NOVA link (Fig. 3).
LINK_WIDTH_BITS = 257

_WORD_BITS = 16
_WORD_MASK = (1 << _WORD_BITS) - 1


def _to_unsigned(value: int) -> int:
    """16-bit two's-complement encoding of a signed raw code."""
    if not -(1 << (_WORD_BITS - 1)) <= value < (1 << (_WORD_BITS - 1)):
        raise ValueError(f"raw code {value} does not fit in {_WORD_BITS} bits")
    return value & _WORD_MASK


def _to_signed(value: int) -> int:
    """Inverse of :func:`_to_unsigned`."""
    if value & (1 << (_WORD_BITS - 1)):
        return value - (1 << _WORD_BITS)
    return value


def encode_beat(beat: LinkBeat) -> int:
    """The beat as a 257-bit integer (the wire image, LSB = tag).

    Only single-tag-bit beats (tags 0/1, i.e. tables up to 16 entries) are
    encodable on the paper's 257-bit link; wider tags would need more tag
    wires.
    """
    if beat.tag not in (0, 1):
        raise ValueError(
            f"the 257-bit link carries a single tag bit; tag {beat.tag} "
            "needs a wider link"
        )
    if beat.word_bits != _WORD_BITS:
        raise ValueError(
            f"wire image is defined for 16-bit words, got {beat.word_bits}"
        )
    image = beat.tag
    offset = 1
    for slope_raw, bias_raw in beat.pairs:
        image |= _to_unsigned(int(slope_raw)) << offset
        offset += _WORD_BITS
        image |= _to_unsigned(int(bias_raw)) << offset
        offset += _WORD_BITS
    return image


def decode_beat(image: int) -> LinkBeat:
    """Reconstruct a :class:`LinkBeat` from its 257-bit wire image."""
    if not 0 <= image < (1 << LINK_WIDTH_BITS):
        raise ValueError(f"wire image must fit in {LINK_WIDTH_BITS} bits")
    tag = image & 1
    pairs = []
    offset = 1
    for _ in range(PAIRS_PER_BEAT):
        slope = _to_signed((image >> offset) & _WORD_MASK)
        offset += _WORD_BITS
        bias = _to_signed((image >> offset) & _WORD_MASK)
        offset += _WORD_BITS
        pairs.append((slope, bias))
    return LinkBeat(tag=tag, pairs=tuple(pairs), word_bits=_WORD_BITS)


def flip_bit(image: int, bit: int) -> int:
    """Flip one wire of the image (fault-injection primitive)."""
    if not 0 <= bit < LINK_WIDTH_BITS:
        raise ValueError(
            f"bit must be in [0, {LINK_WIDTH_BITS}), got {bit}"
        )
    return image ^ (1 << bit)


def bit_field_of(bit: int) -> tuple[str, int]:
    """Which logical field a wire belongs to.

    Returns ``("tag", 0)`` or ``("slope", pair)`` / ``("bias", pair)`` —
    used by the fault-injection analysis to predict which lookup addresses
    a flipped wire can corrupt.
    """
    if not 0 <= bit < LINK_WIDTH_BITS:
        raise ValueError(
            f"bit must be in [0, {LINK_WIDTH_BITS}), got {bit}"
        )
    if bit == 0:
        return ("tag", 0)
    word_index = (bit - 1) // _WORD_BITS
    pair = word_index // 2
    return ("slope" if word_index % 2 == 0 else "bias", pair)
