"""Softmax and GeLU built on the elementwise PWL approximator.

Table I of the paper evaluates models "with Approx. Softmax": the softmax's
exponential is computed through the PWL approximator (this is the dense
non-linear operation the vector unit accelerates), while the reduction
(max, sum) runs on the accelerator's existing reduction hardware.  The
normalising division can either be exact (the common NN-LUT deployment) or
itself approximated through a PWL reciprocal with power-of-two range
reduction; both paths are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.approx.pwl import PiecewiseLinear

__all__ = [
    "exact_softmax",
    "approx_softmax",
    "approx_gelu",
    "SoftmaxApproximator",
    "make_softmax_approximator",
]


def exact_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable reference softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def approx_softmax(
    x: np.ndarray,
    exp_approx: Callable[[np.ndarray], np.ndarray],
    axis: int = -1,
    recip_approx: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Softmax with the exponential (and optionally 1/sum) approximated.

    Parameters
    ----------
    exp_approx:
        Elementwise approximation of ``exp`` on a one-sided domain
        (arguments are ``x - max(x) <= 0``).  Typically a
        :class:`~repro.approx.pwl.PiecewiseLinear` or
        :class:`~repro.approx.quantize.QuantizedPwl`.
    recip_approx:
        Optional approximation of ``1/s`` on ``[1, 2)``.  When given, the
        normaliser is computed with power-of-two range reduction:
        ``1/s = recip(m) * 2**-k`` for ``s = m * 2**k``; otherwise the
        division is exact.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    numer = np.asarray(exp_approx(shifted), dtype=np.float64)
    # A PWL exp table can dip slightly negative near its left edge; the
    # hardware clamps at zero (probabilities cannot be negative).
    numer = np.maximum(numer, 0.0)
    denom = np.sum(numer, axis=axis, keepdims=True)
    # Guard: if every element underflowed the table, fall back to uniform.
    n = x.shape[axis]
    denom_safe = np.where(denom <= 0, 1.0, denom)
    if recip_approx is None:
        result = numer / denom_safe
    else:
        mantissa, exponent = np.frexp(denom_safe)  # denom = mantissa * 2**exp
        # frexp yields mantissa in [0.5, 1); shift to [1, 2) for the table.
        mantissa = mantissa * 2.0
        exponent = exponent - 1
        inv = np.asarray(recip_approx(mantissa), dtype=np.float64)
        result = numer * inv * np.ldexp(1.0, -exponent)
    return np.where(denom <= 0, 1.0 / n, result)


def approx_gelu(
    x: np.ndarray, gelu_approx: Callable[[np.ndarray], np.ndarray]
) -> np.ndarray:
    """GeLU through the elementwise approximator (direct PWL of GeLU)."""
    return np.asarray(gelu_approx(x), dtype=np.float64)


@dataclass(frozen=True)
class SoftmaxApproximator:
    """A ready-to-use approximate softmax with its underlying tables.

    Produced by :func:`make_softmax_approximator`; carried around by the
    ML evaluation harness so Table I can report which table sizes were
    used per model.
    """

    exp_table: PiecewiseLinear
    recip_table: PiecewiseLinear | None
    n_segments: int

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        recip = self.recip_table.evaluate if self.recip_table is not None else None
        return approx_softmax(x, self.exp_table.evaluate, axis=axis, recip_approx=recip)


def make_softmax_approximator(
    n_segments: int = 16,
    use_mlp: bool = True,
    approximate_reciprocal: bool = False,
    seed: int = 0,
) -> SoftmaxApproximator:
    """Build an approximate softmax with ``n_segments``-entry tables.

    ``use_mlp=True`` follows the paper's flow (NN-LUT MLP trained at
    compile time, then extracted); ``use_mlp=False`` uses the direct
    curvature-equalising fit, which is faster to construct and serves as
    the ablation baseline for the MLP trainer.
    """
    exp_spec = get_function("exp")
    if use_mlp:
        mlp = train_nnlut_mlp(exp_spec, n_segments=n_segments, seed=seed)
        exp_table = mlp.to_piecewise_linear(n_segments=n_segments)
    else:
        exp_table = PiecewiseLinear.fit(
            exp_spec.fn, exp_spec.domain, n_segments, name="exp"
        )
    recip_table = None
    if approximate_reciprocal:
        recip_table = PiecewiseLinear.fit(
            lambda s: 1.0 / s, (1.0, 2.0), n_segments, name="reciprocal"
        )
    return SoftmaxApproximator(
        exp_table=exp_table, recip_table=recip_table, n_segments=n_segments
    )
