"""NN-LUT compile-time MLP: learns the PWL breakpoints (paper §IV).

NN-LUT (Yu et al., DAC 2022) trains a small 2-layer MLP on the target
non-linear function at compile time.  With ReLU hidden units a 1-D MLP

    f(x) = sum_j v_j * relu(w_j * x + c_j) + s * x + d

is *exactly* a piecewise-linear function: each hidden unit contributes one
kink at ``x_j = -c_j / w_j``, so an MLP with ``H`` hidden units realises up
to ``H`` breakpoints / ``H + 1`` segments.  "The number of nodes in the
hidden layer represent the number of breakpoints required for non-linear
approximation" (paper §IV).  After training we extract the exact segment
table — the slope/bias pairs that the LUT baselines store in SRAM and that
NOVA broadcasts over its NoC.

The trainer is plain numpy Adam; it runs in well under a second for the
table sizes the paper uses (8/16 breakpoints) because the "dataset" is just
a dense sample of a scalar function.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.approx.functions import FunctionSpec
from repro.approx.pwl import PiecewiseLinear
from repro.utils.rng import make_rng

__all__ = ["NnLutMlp", "train_nnlut_mlp"]


@dataclass
class NnLutMlp:
    """A trained (or initialised) 1-D ReLU MLP with a linear skip term.

    Parameters follow the decomposition in the module docstring.  The skip
    term ``s * x + d`` lets the MLP represent the function's linear trend
    without spending hidden units on it, which measurably improves the fit
    for functions like GeLU whose tails are linear.
    """

    w: np.ndarray  # hidden weights, shape (H,)
    c: np.ndarray  # hidden biases,  shape (H,)
    v: np.ndarray  # output weights, shape (H,)
    skip_slope: float
    skip_bias: float
    domain: tuple[float, float]
    name: str = "mlp"

    def __post_init__(self) -> None:
        self.w = np.asarray(self.w, dtype=np.float64)
        self.c = np.asarray(self.c, dtype=np.float64)
        self.v = np.asarray(self.v, dtype=np.float64)
        if not (self.w.shape == self.c.shape == self.v.shape):
            raise ValueError("w, c, v must all have shape (H,)")
        if self.w.ndim != 1:
            raise ValueError("parameters must be 1-D arrays")

    @property
    def n_hidden(self) -> int:
        """Number of hidden ReLU units (maximum breakpoint count)."""
        return len(self.w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the MLP (float64 reference)."""
        x = np.asarray(x, dtype=np.float64)
        pre = np.outer(x, self.w) + self.c  # (N, H)
        hidden = np.maximum(pre, 0.0)
        return hidden @ self.v + self.skip_slope * x + self.skip_bias

    __call__ = forward

    # ------------------------------------------------------------------
    # Exact PWL extraction.
    # ------------------------------------------------------------------

    def kinks(self) -> np.ndarray:
        """Sorted kink positions that fall strictly inside the domain."""
        low, high = self.domain
        active = np.abs(self.w) > 1e-12
        positions = -self.c[active] / self.w[active]
        inside = positions[(positions > low) & (positions < high)]
        if len(inside) == 0:
            return np.zeros(0)
        inside = np.sort(inside)
        # Merge kinks closer than float resolution of the domain span.
        merged = [inside[0]]
        min_gap = (high - low) * 1e-9
        for pos in inside[1:]:
            if pos - merged[-1] > min_gap:
                merged.append(pos)
        return np.asarray(merged)

    def to_piecewise_linear(self, n_segments: int | None = None) -> PiecewiseLinear:
        """Extract the exact PWL table realised by this MLP.

        The slope of each segment is the sum of ``v_j * w_j`` over the
        hidden units active in that segment plus the skip slope; the bias
        is derived analytically the same way — no sampling error.

        If ``n_segments`` is given and extraction yields fewer segments
        (kinks may coincide or leave the domain during training), the
        widest segments are split with duplicated coefficients so the table
        has exactly ``n_segments`` rows.  A duplicated row is functionally
        identical and matches how a fixed-size hardware table is filled.
        """
        cuts = self.kinks()
        low, high = self.domain
        edges = np.concatenate([[low], cuts, [high]])
        slopes = []
        biases = []
        for i in range(len(edges) - 1):
            mid = 0.5 * (edges[i] + edges[i + 1])
            active = (self.w * mid + self.c) > 0
            slope = float(np.sum(self.v[active] * self.w[active]) + self.skip_slope)
            bias = float(np.sum(self.v[active] * self.c[active]) + self.skip_bias)
            slopes.append(slope)
            biases.append(bias)
        pwl = PiecewiseLinear(
            cuts=cuts,
            slopes=np.asarray(slopes),
            biases=np.asarray(biases),
            domain=self.domain,
            name=self.name,
        )
        if n_segments is not None:
            if pwl.n_segments > n_segments:
                raise ValueError(
                    f"MLP realises {pwl.n_segments} segments which exceeds the "
                    f"requested table size {n_segments}; train with fewer "
                    "hidden units"
                )
            while pwl.n_segments < n_segments:
                pwl = _split_widest_segment(pwl)
        return pwl


def _split_widest_segment(pwl: PiecewiseLinear) -> PiecewiseLinear:
    """Split the widest segment in two, duplicating its coefficients."""
    edges = pwl.edges()
    widths = np.diff(edges)
    i = int(np.argmax(widths))
    new_cut = 0.5 * (edges[i] + edges[i + 1])
    cuts = np.sort(np.concatenate([pwl.cuts, [new_cut]]))
    slopes = np.insert(pwl.slopes, i, pwl.slopes[i])
    biases = np.insert(pwl.biases, i, pwl.biases[i])
    return PiecewiseLinear(
        cuts=cuts, slopes=slopes, biases=biases, domain=pwl.domain, name=pwl.name
    )


def train_nnlut_mlp(
    fn: Callable[[np.ndarray], np.ndarray] | FunctionSpec,
    domain: tuple[float, float] | None = None,
    n_segments: int = 16,
    n_samples: int = 2048,
    epochs: int = 400,
    learning_rate: float = 0.01,
    seed: int = 0,
    name: str | None = None,
) -> NnLutMlp:
    """Train an NN-LUT MLP with ``n_segments - 1`` hidden units.

    Initialisation: any continuous PWL function with cuts ``k_j`` and
    segment slopes ``m_i`` has the exact ReLU expansion

        f(x) = m_0 * x + b_0 + sum_j (m_{j+1} - m_j) * relu(x - k_j),

    so the MLP is seeded with the curvature-equalising interpolation fit
    (each hidden unit's kink at an error-equalising cut) and Adam with
    cosine learning-rate decay fine-tunes kink positions and coefficients
    jointly.  This matches NN-LUT's observation that good breakpoint
    initialisation is essential for the small MLP, and guarantees the
    trained table is no worse than the direct fit.

    Accepts either a raw callable plus ``domain`` or a
    :class:`~repro.approx.functions.FunctionSpec`.
    """
    if isinstance(fn, FunctionSpec):
        spec = fn
        fn_callable = spec.fn
        domain = spec.domain if domain is None else domain
        name = spec.name if name is None else name
    else:
        fn_callable = fn
        if domain is None:
            raise ValueError("domain is required when fn is a raw callable")
        name = name or getattr(fn, "__name__", "mlp")

    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    n_hidden = max(n_segments - 1, 1)
    rng = make_rng(seed)
    low, high = domain
    span = high - low

    xs = np.linspace(low, high, n_samples)
    ys = fn_callable(xs)
    y_scale = max(float(np.max(np.abs(ys))), 1e-9)

    # Seed with the curvature-equalising interpolation fit expressed in
    # ReLU form (see docstring); a tiny jitter breaks exact ties between
    # units so Adam can move kinks independently.
    from repro.approx.pwl import PiecewiseLinear

    seed_fit = PiecewiseLinear.fit(
        fn_callable, domain, n_segments=n_hidden + 1, strategy="curvature"
    )
    kink_targets = seed_fit.cuts  # length n_hidden
    slope_deltas = np.diff(seed_fit.slopes)  # length n_hidden
    w = np.ones(n_hidden)
    c = -kink_targets + rng.normal(0.0, span * 1e-6, size=n_hidden)
    v = slope_deltas.copy()
    skip_slope = float(seed_fit.slopes[0])
    skip_bias = float(seed_fit.biases[0])

    params = [w, c, v, np.array([skip_slope]), np.array([skip_bias])]
    moments_m = [np.zeros_like(p) for p in params]
    moments_v = [np.zeros_like(p) for p in params]
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    n = len(xs)
    for epoch in range(1, epochs + 1):
        lr = learning_rate * 0.5 * (1.0 + np.cos(np.pi * (epoch - 1) / epochs))
        w, c, v, ss, sb = params
        pre = np.outer(xs, w) + c  # (N, H)
        active = pre > 0
        hidden = np.where(active, pre, 0.0)
        pred = hidden @ v + ss[0] * xs + sb[0]
        err = pred - ys  # (N,)

        grad_v = hidden.T @ err * (2.0 / n)
        grad_hidden = np.outer(err, v) * active  # (N, H)
        grad_w = grad_hidden.T @ xs * (2.0 / n)
        grad_c = grad_hidden.sum(axis=0) * (2.0 / n)
        grad_ss = np.array([float(err @ xs) * (2.0 / n)])
        grad_sb = np.array([float(err.sum()) * (2.0 / n)])

        grads = [grad_w, grad_c, grad_v, grad_ss, grad_sb]
        for i, (p, g) in enumerate(zip(params, grads)):
            moments_m[i] = beta1 * moments_m[i] + (1 - beta1) * g
            moments_v[i] = beta2 * moments_v[i] + (1 - beta2) * g * g
            m_hat = moments_m[i] / (1 - beta1 ** epoch)
            v_hat = moments_v[i] / (1 - beta2 ** epoch)
            p -= lr * m_hat / (np.sqrt(v_hat) + eps)

    w, c, v, ss, sb = params
    return NnLutMlp(
        w=w,
        c=c,
        v=v,
        skip_slope=float(ss[0]),
        skip_bias=float(sb[0]),
        domain=domain,
        name=name,
    )
