"""Softermax (Stevens et al., DAC 2021) — the paper's other related work.

Softermax makes softmax hardware-friendly by (i) replacing the
exponential's base e with **base 2**, so the integer part of the argument
becomes a plain shift and only ``2^r`` for the fractional remainder
``r in (-1, 0]`` needs a (small) table, and (ii) computing the running
max and normaliser **online** in one pass over the scores (the Milakov &
Gimelshein online-normaliser scheme, the paper's [13]).

Two operating modes:

* ``scale_scores=True`` — scores are pre-multiplied by ``log2(e)``, which
  makes base-2 softmax *mathematically identical* to softmax (one extra
  constant multiplier in hardware);
* ``scale_scores=False`` — raw base-2 (Softermax's deployed mode, which
  absorbs the base change into training); the output is a genuinely
  different, slightly softer distribution.

Both modes use a NOVA-style PWL table for ``2^r`` — demonstrating that
Softermax's table is just another function NOVA can broadcast — so the
comparison between the two papers reduces to table contents, not
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.approx.pwl import PiecewiseLinear

__all__ = [
    "pow2_table",
    "softermax",
    "online_softmax",
    "OnlineNormalizerState",
]

_LOG2_E = float(np.log2(np.e))


def pow2_table(n_segments: int = 16) -> PiecewiseLinear:
    """PWL table for ``2^r`` on the fractional-remainder domain (-1, 0]."""
    return PiecewiseLinear.fit(
        lambda r: np.exp2(r), (-1.0, 0.0), n_segments, name="pow2"
    )


def softermax(
    x: np.ndarray,
    axis: int = -1,
    n_segments: int = 16,
    scale_scores: bool = True,
    pow2_approx: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Base-2 softmax with integer/fraction split and a PWL 2^r table."""
    x = np.asarray(x, dtype=np.float64)
    if scale_scores:
        x = x * _LOG2_E
    shifted = x - np.max(x, axis=axis, keepdims=True)  # <= 0
    # split into integer shift and fractional table lookup
    integer = np.floor(shifted)
    fraction = shifted - integer  # in [0, 1); remap to (-1, 0] for the table
    fraction = fraction - 1.0
    integer = integer + 1.0
    table = pow2_approx or pow2_table(n_segments).evaluate
    mantissa = np.maximum(np.asarray(table(fraction), dtype=np.float64), 0.0)
    # clamp very negative shifts: 2^-60 underflows any fixed-point anyway
    powers = np.where(integer < -60, 0.0, np.ldexp(mantissa, integer.astype(int)))
    denom = powers.sum(axis=axis, keepdims=True)
    denom = np.where(denom <= 0, 1.0, denom)
    return powers / denom


@dataclass
class OnlineNormalizerState:
    """Running (max, normaliser) pair of the online softmax pass."""

    running_max: float = -np.inf
    running_sum: float = 0.0

    def update(self, value: float) -> None:
        """Fold one score into the running statistics (one hardware op)."""
        if value > self.running_max:
            # rescale the accumulated sum to the new maximum
            if np.isfinite(self.running_max):
                self.running_sum *= np.exp(self.running_max - value)
            self.running_max = value
        self.running_sum += np.exp(value - self.running_max)


def online_softmax(x: np.ndarray) -> np.ndarray:
    """Single-pass softmax over a 1-D array (Milakov & Gimelshein).

    Numerically identical to the stable two-pass softmax but touches each
    score once for the statistics — the memory-traffic property Softermax
    builds on.  The second loop producing the probabilities is the same
    elementwise exp the vector unit computes.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"online_softmax expects a 1-D array, got {x.shape}")
    state = OnlineNormalizerState()
    for value in x:
        state.update(float(value))
    return np.exp(x - state.running_max) / state.running_sum
