"""Approximation error metrics.

Used by the NN-LUT training loop (fit quality), by Table I (accuracy with
approximated softmax) and by the property-based tests that bound the error
of every shipped table.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["max_abs_error", "mean_abs_error", "rmse", "error_report"]


def max_abs_error(
    approx: Callable[[np.ndarray], np.ndarray],
    reference: Callable[[np.ndarray], np.ndarray],
    domain: tuple[float, float],
    n_samples: int = 4096,
) -> float:
    """Maximum absolute error on a dense grid over ``domain``."""
    xs = np.linspace(domain[0], domain[1], n_samples)
    return float(np.max(np.abs(np.asarray(approx(xs)) - np.asarray(reference(xs)))))


def mean_abs_error(
    approx: Callable[[np.ndarray], np.ndarray],
    reference: Callable[[np.ndarray], np.ndarray],
    domain: tuple[float, float],
    n_samples: int = 4096,
) -> float:
    """Mean absolute error on a dense grid over ``domain``."""
    xs = np.linspace(domain[0], domain[1], n_samples)
    return float(np.mean(np.abs(np.asarray(approx(xs)) - np.asarray(reference(xs)))))


def rmse(
    approx: Callable[[np.ndarray], np.ndarray],
    reference: Callable[[np.ndarray], np.ndarray],
    domain: tuple[float, float],
    n_samples: int = 4096,
) -> float:
    """Root-mean-square error on a dense grid over ``domain``."""
    xs = np.linspace(domain[0], domain[1], n_samples)
    diff = np.asarray(approx(xs)) - np.asarray(reference(xs))
    return float(np.sqrt(np.mean(diff * diff)))


def error_report(
    approx: Callable[[np.ndarray], np.ndarray],
    reference: Callable[[np.ndarray], np.ndarray],
    domain: tuple[float, float],
    n_samples: int = 4096,
) -> dict[str, float]:
    """All three metrics at once (single sampling pass)."""
    xs = np.linspace(domain[0], domain[1], n_samples)
    diff = np.abs(np.asarray(approx(xs)) - np.asarray(reference(xs)))
    return {
        "max_abs_error": float(np.max(diff)),
        "mean_abs_error": float(np.mean(diff)),
        "rmse": float(np.sqrt(np.mean(diff * diff))),
    }
