"""NOVA: NoC-based Vector Unit for Mapping Attention Layers on a CNN
Accelerator — a full reproduction of the DATE 2024 paper.

NOVA computes non-linear activation functions (Softmax, GeLU, ...) with a
piecewise-linear approximation whose slope/bias table is *broadcast over a
line NoC* instead of stored in per-neuron SRAM LUTs: each PE's comparator
bank turns its value into a lookup address, the router tag-matches the
address against the in-flight 257-bit beat, and a local MAC finishes
``slope * x + bias``.

Typical use — a :class:`~repro.core.session.NovaSession` is the front
door to every execution mode, configured by a typed
:class:`~repro.core.config.NovaConfig` (or a Table II preset name)::

    import numpy as np
    from repro import NovaSession

    session = NovaSession("tpu-v4")      # 8 routers x 128 lanes @ 1.4 GHz
    unit = session.unit("gelu")          # raw vector-unit access
    y = unit.approximate(np.zeros((8, 128))).outputs
    result = session.attention_layer(x, wq, wk, wv, wo, n_heads=12)
    batch = session.serve(requests)      # batched serving engine

Lower-level construction (custom tables on a custom geometry)::

    from repro import (
        NovaConfig, get_function, train_nnlut_mlp, QuantizedPwl,
        NovaVectorUnit,
    )

    spec = get_function("gelu")
    mlp = train_nnlut_mlp(spec, n_segments=16, seed=0)
    table = QuantizedPwl(mlp.to_piecewise_linear(n_segments=16))
    unit = NovaVectorUnit(table, NovaConfig(n_routers=8,
                                            neurons_per_router=128))
    y = unit.approximate(np.zeros((8, 128))).outputs

Subpackages: :mod:`repro.approx` (PWL machinery), :mod:`repro.core`
(NOVA), :mod:`repro.luts` (baselines), :mod:`repro.noc` (NoC substrate),
:mod:`repro.hw` (cost models), :mod:`repro.accelerators` (hosts),
:mod:`repro.workloads`, :mod:`repro.ml` (Table I harness),
:mod:`repro.eval` (per-table/figure experiments).
"""

from repro.approx import (
    FUNCTIONS,
    get_function,
    PiecewiseLinear,
    train_nnlut_mlp,
    NnLutMlp,
    QuantizedPwl,
    pack_beats,
    unpack_beats,
    exact_softmax,
    approx_softmax,
    make_softmax_approximator,
)
from repro.core import (
    NovaConfig,
    NovaSession,
    PRESETS,
    preset,
    NovaVectorUnit,
    NovaDecodeEngine,
    DecodeRequest,
    KVCache,
    BlockPool,
    PagedKVCache,
    ContinuousBatchScheduler,
    SpeculativeDecodeEngine,
    NGramDraft,
    TruncatedTableDraft,
    build_draft,
    NovaMapper,
    NovaNoc,
    NovaRouter,
    BroadcastSchedule,
    ReactOverlay,
    SystolicOverlay,
    NvdlaOverlay,
)
from repro.luts import PerNeuronLutUnit, PerCoreLutUnit, NvdlaSdp
from repro.hw import (
    TECH_22NM,
    TECH_28NM,
    nova_router_cost,
    per_neuron_lut_cost,
    per_core_lut_cost,
    calibrated_cost,
)
from repro.utils.fixed_point import FixedPointFormat, Q5_10

__version__ = "1.0.0"

__all__ = [
    "FUNCTIONS",
    "get_function",
    "PiecewiseLinear",
    "train_nnlut_mlp",
    "NnLutMlp",
    "QuantizedPwl",
    "pack_beats",
    "unpack_beats",
    "exact_softmax",
    "approx_softmax",
    "make_softmax_approximator",
    "NovaConfig",
    "NovaSession",
    "PRESETS",
    "preset",
    "NovaVectorUnit",
    "NovaDecodeEngine",
    "DecodeRequest",
    "KVCache",
    "BlockPool",
    "PagedKVCache",
    "ContinuousBatchScheduler",
    "SpeculativeDecodeEngine",
    "NGramDraft",
    "TruncatedTableDraft",
    "build_draft",
    "NovaMapper",
    "NovaNoc",
    "NovaRouter",
    "BroadcastSchedule",
    "ReactOverlay",
    "SystolicOverlay",
    "NvdlaOverlay",
    "PerNeuronLutUnit",
    "PerCoreLutUnit",
    "NvdlaSdp",
    "TECH_22NM",
    "TECH_28NM",
    "nova_router_cost",
    "per_neuron_lut_cost",
    "per_core_lut_cost",
    "calibrated_cost",
    "FixedPointFormat",
    "Q5_10",
    "__version__",
]
