"""Minimal Adam trainer + accuracy evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.softmax import exact_softmax
from repro.ml.datasets import Dataset
from repro.ml.layers import InferenceContext, Sequential
from repro.utils.rng import make_rng

__all__ = ["TrainConfig", "train_classifier", "evaluate_accuracy"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for the small Table I models."""

    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 3e-3
    seed: int = 0


def _cross_entropy_grad(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean CE loss and dL/dlogits for integer labels."""
    probs = exact_softmax(logits, axis=-1)
    n = len(labels)
    loss = float(-np.mean(np.log(probs[np.arange(n), labels] + 1e-12)))
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def train_classifier(
    model: Sequential, dataset: Dataset, config: TrainConfig | None = None
) -> list[float]:
    """Train in place; returns the per-epoch training losses."""
    config = config or TrainConfig()
    rng = make_rng(config.seed)
    params = model.params()
    m = [np.zeros_like(p.value) for p in params]
    v = [np.zeros_like(p.value) for p in params]
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    step = 0
    ctx = InferenceContext(training=True)
    losses = []
    n = len(dataset.x_train)
    for _ in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            x, y = dataset.x_train[idx], dataset.y_train[idx]
            model.zero_grads()
            logits = model.forward(x, ctx)
            loss, grad = _cross_entropy_grad(logits, y)
            model.backward(grad)
            step += 1
            for i, p in enumerate(params):
                m[i] = beta1 * m[i] + (1 - beta1) * p.grad
                v[i] = beta2 * v[i] + (1 - beta2) * p.grad * p.grad
                m_hat = m[i] / (1 - beta1 ** step)
                v_hat = v[i] / (1 - beta2 ** step)
                p.value -= config.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            epoch_loss += loss
            n_batches += 1
        losses.append(epoch_loss / max(n_batches, 1))
    return losses


def evaluate_accuracy(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    ctx: InferenceContext | None = None,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy under the given inference context (default exact)."""
    ctx = ctx or InferenceContext()
    correct = 0
    for start in range(0, len(x), batch_size):
        logits = model.forward(x[start : start + batch_size], ctx)
        correct += int(np.sum(logits.argmax(axis=-1) == y[start : start + batch_size]))
    return correct / len(x)
