"""Deterministic synthetic datasets standing in for the Table I corpora.

The substitution rationale (DESIGN.md): Table I's claim is about the
*approximator* — a 16/8-breakpoint PWL softmax does not change model
predictions — not about the datasets.  Each generator below produces a
learnable classification problem of the same modality as the original:

* :func:`make_mnist_like` — 10-class 28x28 grayscale digits built from
  per-class stroke templates plus noise (for the MLP row),
* :func:`make_cifar_like` — 10-class 3x16x16 colour textures (for the
  CNN / MobileNet / VGG rows),
* :func:`make_sentiment_like` — binary token sequences whose class is
  carried by sentiment-bearing token distributions (for the RoBERTa /
  SST-2 row),
* :func:`make_span_qa_like` — sequences with a marked answer span whose
  start position the model must point at (for the MobileBERT / SQuAD
  row).

Everything is a pure function of the seed: train/test splits are
reproducible across machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = [
    "Dataset",
    "make_mnist_like",
    "make_cifar_like",
    "make_sentiment_like",
    "make_span_qa_like",
]


@dataclass(frozen=True)
class Dataset:
    """Train/test arrays plus descriptive metadata."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        if len(self.x_train) != len(self.y_train):
            raise ValueError("train arrays disagree on sample count")
        if len(self.x_test) != len(self.y_test):
            raise ValueError("test arrays disagree on sample count")


def _split(
    x: np.ndarray, y: np.ndarray, test_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    n_test = int(len(x) * test_fraction)
    return x[n_test:], y[n_test:], x[:n_test], y[:n_test]


def make_mnist_like(
    n_samples: int = 2400, seed: int = 0, test_fraction: float = 0.25
) -> Dataset:
    """10-class 784-dim 'digit' vectors from smooth class templates."""
    rng = make_rng(seed)
    n_classes = 10
    # Smooth per-class templates: sums of random low-frequency 2-D cosines.
    grid_y, grid_x = np.mgrid[0:28, 0:28] / 28.0
    templates = np.zeros((n_classes, 28, 28))
    for c in range(n_classes):
        for _ in range(4):
            fy, fx = rng.integers(1, 4, size=2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
            templates[c] += np.cos(2 * np.pi * fy * grid_y + phase_y) * np.cos(
                2 * np.pi * fx * grid_x + phase_x
            )
        templates[c] /= np.abs(templates[c]).max()
    labels = rng.integers(0, n_classes, size=n_samples)
    # Noise level picked so the MLP lands in the high-90s band of the
    # paper's MNIST row (97.31%) rather than saturating.
    images = templates[labels] + rng.normal(0.0, 1.6, size=(n_samples, 28, 28))
    x = images.reshape(n_samples, 784)
    x_train, y_train, x_test, y_test = _split(x, labels, test_fraction, rng)
    return Dataset("MNIST-like", x_train, y_train, x_test, y_test, n_classes)


def make_cifar_like(
    n_samples: int = 2000, seed: int = 1, test_fraction: float = 0.25
) -> Dataset:
    """10-class 3x16x16 colour-texture images.

    Each class has a characteristic colour direction and spatial frequency;
    the noise level is chosen so a small CNN lands in the 60-90% accuracy
    band the paper's CIFAR-10 rows occupy.
    """
    rng = make_rng(seed)
    n_classes = 10
    grid_y, grid_x = np.mgrid[0:16, 0:16] / 16.0
    templates = np.zeros((n_classes, 3, 16, 16))
    for c in range(n_classes):
        colour = rng.normal(0.0, 1.0, size=3)
        colour /= np.linalg.norm(colour)
        fy, fx = rng.integers(1, 5, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        pattern = np.sin(2 * np.pi * (fy * grid_y + fx * grid_x) + phase)
        templates[c] = colour[:, None, None] * pattern
    labels = rng.integers(0, n_classes, size=n_samples)
    # Noise chosen so the three CNN families span the paper's CIFAR-10
    # band (63-88%): small CNN ~70%, MobileNet-like ~60%, VGG-like ~90%.
    images = templates[labels] + rng.normal(0.0, 1.5, size=(n_samples, 3, 16, 16))
    x_train, y_train, x_test, y_test = _split(images, labels, test_fraction, rng)
    return Dataset("CIFAR-like", x_train, y_train, x_test, y_test, n_classes)


def make_sentiment_like(
    n_samples: int = 1600,
    seq_len: int = 16,
    vocab: int = 64,
    seed: int = 2,
    test_fraction: float = 0.25,
) -> Dataset:
    """Binary 'sentiment' token sequences (SST-2 stand-in).

    Tokens 0..7 are positive-bearing, 8..15 negative-bearing, the rest
    neutral filler; a sequence's label is the sign of its sentiment-token
    balance, mirroring how lexical polarity drives SST-2.
    """
    rng = make_rng(seed)
    x = rng.integers(16, vocab, size=(n_samples, seq_len))
    labels = rng.integers(0, 2, size=n_samples)
    for i in range(n_samples):
        n_marks = rng.integers(1, 4)
        positions = rng.choice(seq_len, size=n_marks, replace=False)
        low = 0 if labels[i] == 1 else 8
        x[i, positions] = rng.integers(low, low + 8, size=n_marks)
        # 30% of sentences carry one opposite-polarity distractor token,
        # capping accuracy in the mid-90s band of the paper's SST-2 row.
        if rng.random() < 0.3:
            distractor = rng.choice(seq_len)
            opposite = 8 if labels[i] == 1 else 0
            x[i, distractor] = rng.integers(opposite, opposite + 8)
    x_train, y_train, x_test, y_test = _split(x, labels, test_fraction, rng)
    return Dataset("SST2-like", x_train, y_train, x_test, y_test, 2)


def make_span_qa_like(
    n_samples: int = 1600,
    seq_len: int = 16,
    vocab: int = 64,
    seed: int = 3,
    test_fraction: float = 0.25,
) -> Dataset:
    """Span-pointing sequences (SQuAD stand-in).

    A marker token (id 1) precedes the answer token (drawn from a
    distinctive range); the label is the *position* of the answer, so the
    task is classification over positions — the discrete analogue of
    SQuAD's start-pointer — and accuracy is exact-match.
    """
    rng = make_rng(seed)
    x = rng.integers(16, vocab, size=(n_samples, seq_len))
    labels = rng.integers(1, seq_len, size=n_samples)
    for i in range(n_samples):
        x[i, labels[i] - 1] = 1  # the marker
        x[i, labels[i]] = rng.integers(8, 16)  # the answer token
        # 22% of contexts contain a full decoy pattern (marker + answer-
        # range token) at another position; genuinely ambiguous samples
        # cap exact-match around the paper's SQuAD row (~89%).
        if rng.random() < 0.22:
            decoy = int(rng.integers(1, seq_len))
            if decoy != labels[i] and decoy - 1 != labels[i]:
                x[i, decoy - 1] = 1
                x[i, decoy] = rng.integers(8, 16)
    x_train, y_train, x_test, y_test = _split(x, labels, test_fraction, rng)
    return Dataset("SQuAD-like", x_train, y_train, x_test, y_test, seq_len)
