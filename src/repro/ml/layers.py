"""Neural-network layers with forward/backward passes (numpy only).

Design notes:

* Every layer owns its parameters and gradients (``params()`` yields
  ``Param`` records the optimiser updates in place).
* ``forward(x, ctx)`` takes an :class:`InferenceContext` whose
  ``softmax_fn`` / ``gelu_fn`` default to the exact functions.  Training
  always uses the exact context; the Table I experiment swaps in PWL
  approximations at inference time only ("without any retraining on the
  respective datasets", paper §II).
* ``backward`` is only required to be correct under the exact context —
  approximated inference never backpropagates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.approx.functions import gelu as exact_gelu
from repro.approx.softmax import exact_softmax
from repro.utils.rng import make_rng

__all__ = [
    "Param",
    "InferenceContext",
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "Flatten",
    "ReLU",
    "GeLU",
    "Embedding",
    "LayerNorm",
    "MultiHeadSelfAttention",
    "MeanPool1D",
    "Sequential",
]


@dataclass
class Param:
    """A trainable tensor with its gradient accumulator."""

    name: str
    value: np.ndarray
    grad: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.grad = np.zeros_like(self.value)


@dataclass(frozen=True)
class InferenceContext:
    """Pluggable non-linearities for the forward pass.

    ``softmax_fn(x, axis)`` and ``gelu_fn(x)``; the defaults are exact.
    The Table I experiment builds a context whose functions route through
    the PWL approximator.
    """

    softmax_fn: Callable[..., np.ndarray] = exact_softmax
    gelu_fn: Callable[[np.ndarray], np.ndarray] = exact_gelu
    training: bool = False


EXACT_CONTEXT = InferenceContext()
TRAIN_CONTEXT = InferenceContext(training=True)


class Layer:
    """Base layer: forward/backward plus parameter iteration."""

    def params(self) -> list[Param]:
        """Trainable parameters (default: none)."""
        return []

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Affine layer ``x @ W + b`` on the last axis."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        rng = make_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.w = Param("w", rng.normal(0.0, scale, size=(in_features, out_features)))
        self.b = Param("b", np.zeros(out_features))
        self._x: np.ndarray | None = None

    def params(self) -> list[Param]:
        return [self.w, self.b]

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        self._x = x if ctx.training else None
        return x @ self.w.value + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before training-mode forward"
        x2 = self._x.reshape(-1, self._x.shape[-1])
        g2 = grad.reshape(-1, grad.shape[-1])
        self.w.grad += x2.T @ g2
        self.b.grad += g2.sum(axis=0)
        return grad @ self.w.value.T


def _im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """(B, C, H, W) -> (B, out_h, out_w, C * k * k) patch matrix."""
    b, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (x.shape[2] - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    shape = (b, c, out_h, out_w, kernel, kernel)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(b, out_h, out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col` (scatter-add patches back)."""
    b, c, h, w = x_shape
    padded = np.zeros((b, c, h + 2 * pad, w + 2 * pad))
    out_h = cols.shape[1]
    out_w = cols.shape[2]
    cols6 = cols.reshape(b, out_h, out_w, c, kernel, kernel)
    for ki in range(kernel):
        for kj in range(kernel):
            padded[
                :, :, ki : ki + out_h * stride : stride, kj : kj + out_w * stride : stride
            ] += cols6[:, :, :, :, ki, kj].transpose(0, 3, 1, 2)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2D(Layer):
    """Standard convolution via im2col, stride 1, 'same' padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        seed: int = 0,
    ) -> None:
        rng = make_rng(seed)
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        self.w = Param(
            "w", rng.normal(0.0, scale, size=(fan_in, out_channels))
        )
        self.b = Param("b", np.zeros(out_channels))
        self.kernel = kernel
        self.pad = kernel // 2
        self.in_channels = in_channels
        self._cache: tuple | None = None

    def params(self) -> list[Param]:
        return [self.w, self.b]

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        cols, out_h, out_w = _im2col(x, self.kernel, 1, self.pad)
        out = cols @ self.w.value + self.b.value  # (B, H, W, Cout)
        if ctx.training:
            self._cache = (cols, x.shape)
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before training-mode forward"
        cols, x_shape = self._cache
        g = grad.transpose(0, 2, 3, 1)  # (B, H, W, Cout)
        g2 = g.reshape(-1, g.shape[-1])
        self.w.grad += cols.reshape(-1, cols.shape[-1]).T @ g2
        self.b.grad += g2.sum(axis=0)
        dcols = g @ self.w.value.T
        return _col2im(dcols, x_shape, self.kernel, 1, self.pad)


class DepthwiseConv2D(Layer):
    """Depthwise convolution (MobileNet's separable building block)."""

    def __init__(self, channels: int, kernel: int = 3, seed: int = 0) -> None:
        rng = make_rng(seed)
        scale = np.sqrt(2.0 / (kernel * kernel))
        self.w = Param(
            "w", rng.normal(0.0, scale, size=(channels, kernel * kernel))
        )
        self.b = Param("b", np.zeros(channels))
        self.kernel = kernel
        self.pad = kernel // 2
        self.channels = channels
        self._cache: tuple | None = None

    def params(self) -> list[Param]:
        return [self.w, self.b]

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        cols, out_h, out_w = _im2col(x, self.kernel, 1, self.pad)
        b = x.shape[0]
        k2 = self.kernel * self.kernel
        # (B, H, W, C, k*k): one small GEMV per channel.
        cols5 = cols.reshape(b, out_h, out_w, self.channels, k2)
        out = np.einsum("bhwck,ck->bchw", cols5, self.w.value) + self.b.value[
            None, :, None, None
        ]
        if ctx.training:
            self._cache = (cols5, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before training-mode forward"
        cols5, x_shape = self._cache
        self.w.grad += np.einsum("bhwck,bchw->ck", cols5, grad)
        self.b.grad += grad.sum(axis=(0, 2, 3))
        dcols5 = np.einsum("bchw,ck->bhwck", grad, self.w.value)
        b, out_h, out_w = dcols5.shape[:3]
        dcols = dcols5.reshape(b, out_h, out_w, -1)
        return _col2im(dcols, x_shape, self.kernel, 1, self.pad)


class MaxPool2D(Layer):
    """2x2 max pooling, stride 2."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        b, c, h, w = x.shape
        if h % 2 or w % 2:
            raise ValueError(f"MaxPool2D needs even spatial dims, got {h}x{w}")
        blocks = x.reshape(b, c, h // 2, 2, w // 2, 2)
        out = blocks.max(axis=(3, 5))
        if ctx.training:
            self._mask = blocks == out[:, :, :, None, :, None]
            self._x_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before training-mode forward"
        b, c, h, w = self._x_shape
        expanded = self._mask * grad[:, :, :, None, :, None]
        return expanded.reshape(b, c, h, w)


class Flatten(Layer):
    """(B, ...) -> (B, features)."""

    def __init__(self) -> None:
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        if ctx.training:
            self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None, "backward before training-mode forward"
        return grad.reshape(self._x_shape)


class ReLU(Layer):
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        if ctx.training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before training-mode forward"
        return grad * self._mask


class GeLU(Layer):
    """GeLU routed through the context (approximable at inference)."""

    def __init__(self) -> None:
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        if ctx.training:
            self._x = x
            return exact_gelu(x)
        return ctx.gelu_fn(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before training-mode forward"
        x = self._x
        # d/dx gelu via the Gaussian pdf/cdf identities.
        inv_sqrt2 = 1.0 / np.sqrt(2.0)
        inv_sqrt2pi = 1.0 / np.sqrt(2.0 * np.pi)
        from repro.approx.functions import erf

        cdf = 0.5 * (1.0 + erf(x * inv_sqrt2))
        pdf = inv_sqrt2pi * np.exp(-0.5 * x * x)
        return grad * (cdf + x * pdf)


class Embedding(Layer):
    """Token ids (B, S) -> vectors (B, S, D)."""

    def __init__(self, vocab: int, dim: int, seed: int = 0) -> None:
        rng = make_rng(seed)
        self.table = Param("table", rng.normal(0.0, 0.05, size=(vocab, dim)))
        self._ids: np.ndarray | None = None

    def params(self) -> list[Param]:
        return [self.table]

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        ids = np.asarray(x, dtype=np.int64)
        if ctx.training:
            self._ids = ids
        return self.table.value[ids]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._ids is not None, "backward before training-mode forward"
        np.add.at(self.table.grad, self._ids, grad)
        return np.zeros_like(self._ids, dtype=np.float64)


class LayerNorm(Layer):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gamma = Param("gamma", np.ones(dim))
        self.beta = Param("beta", np.zeros(dim))
        self.eps = eps
        self._cache: tuple | None = None

    def params(self) -> list[Param]:
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        norm = (x - mean) * inv_std
        if ctx.training:
            self._cache = (norm, inv_std)
        return norm * self.gamma.value + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before training-mode forward"
        norm, inv_std = self._cache
        self.gamma.grad += (grad * norm).sum(axis=tuple(range(grad.ndim - 1)))
        self.beta.grad += grad.sum(axis=tuple(range(grad.ndim - 1)))
        g = grad * self.gamma.value
        d = norm.shape[-1]
        g_mean = g.mean(axis=-1, keepdims=True)
        gn_mean = (g * norm).mean(axis=-1, keepdims=True)
        return (g - g_mean - norm * gn_mean) * inv_std


class MultiHeadSelfAttention(Layer):
    """Multi-head self-attention with a context-pluggable softmax.

    This is where Table I's approximation bites: the attention
    probabilities feed downstream matmuls, so PWL softmax error can
    propagate (unlike the final classifier softmax, whose argmax is
    invariant to any monotone approximation).
    """

    def __init__(self, dim: int, heads: int, seed: int = 0) -> None:
        if dim % heads != 0:
            raise ValueError(f"dim ({dim}) must divide by heads ({heads})")
        rng = make_rng(seed)
        scale = np.sqrt(1.0 / dim)
        self.wq = Param("wq", rng.normal(0.0, scale, size=(dim, dim)))
        self.wk = Param("wk", rng.normal(0.0, scale, size=(dim, dim)))
        self.wv = Param("wv", rng.normal(0.0, scale, size=(dim, dim)))
        self.wo = Param("wo", rng.normal(0.0, scale, size=(dim, dim)))
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self._cache: tuple | None = None

    def params(self) -> list[Param]:
        return [self.wq, self.wk, self.wv, self.wo]

    def _split(self, x: np.ndarray) -> np.ndarray:
        b, s, _ = x.shape
        return x.reshape(b, s, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        b, h, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * d)

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        q = self._split(x @ self.wq.value)
        k = self._split(x @ self.wk.value)
        v = self._split(x @ self.wv.value)
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        if ctx.training:
            probs = exact_softmax(scores, axis=-1)
        else:
            probs = ctx.softmax_fn(scores, axis=-1)
        context = probs @ v
        merged = self._merge(context)
        out = merged @ self.wo.value
        if ctx.training:
            self._cache = (x, q, k, v, probs, merged)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before training-mode forward"
        x, q, k, v, probs, merged = self._cache
        b, s, _ = x.shape

        self.wo.grad += merged.reshape(-1, self.dim).T @ grad.reshape(-1, self.dim)
        d_merged = grad @ self.wo.value.T
        d_context = self._split(d_merged)

        d_probs = d_context @ v.transpose(0, 1, 3, 2)
        d_v = probs.transpose(0, 1, 3, 2) @ d_context
        # softmax backward: p * (g - sum(g * p))
        inner = (d_probs * probs).sum(axis=-1, keepdims=True)
        d_scores = probs * (d_probs - inner) / np.sqrt(self.head_dim)

        d_q = d_scores @ k
        d_k = d_scores.transpose(0, 1, 3, 2) @ q

        d_xq = self._merge(d_q)
        d_xk = self._merge(d_k)
        d_xv = self._merge(d_v)
        x2 = x.reshape(-1, self.dim)
        self.wq.grad += x2.T @ d_xq.reshape(-1, self.dim)
        self.wk.grad += x2.T @ d_xk.reshape(-1, self.dim)
        self.wv.grad += x2.T @ d_xv.reshape(-1, self.dim)
        return (
            d_xq @ self.wq.value.T
            + d_xk @ self.wk.value.T
            + d_xv @ self.wv.value.T
        )


class MeanPool1D(Layer):
    """(B, S, D) -> (B, D) mean over the sequence axis."""

    def __init__(self) -> None:
        self._seq_len: int | None = None

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        if ctx.training:
            self._seq_len = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._seq_len is not None, "backward before training-mode forward"
        return np.repeat(grad[:, None, :], self._seq_len, axis=1) / self._seq_len


class Sequential(Layer):
    """An ordered stack of layers."""

    def __init__(self, layers: list[Layer], name: str = "model") -> None:
        self.layers = layers
        self.name = name

    def params(self) -> list[Param]:
        return [p for layer in self.layers for p in layer.params()]

    def forward(self, x: np.ndarray, ctx: InferenceContext) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, ctx)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        """Reset every parameter gradient (start of a minibatch)."""
        for p in self.params():
            p.grad[...] = 0.0
