"""Post-training INT8 quantisation for the Table I models.

The paper targets *edge* inference, where models are deployed quantised;
this extension checks that the PWL softmax's "negligible loss" property
survives on top of INT8 weights/activations — the compound setting a
Jetson-class deployment actually runs.

The scheme is standard symmetric per-tensor post-training quantisation:
weights are rounded to INT8 once; activations are quantised at every
layer boundary with scales calibrated on a small sample of training
data.  Only inference is supported (Table I never retrains).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    InferenceContext,
    Layer,
    Sequential,
)

__all__ = ["QuantizedModel", "quantize_model"]

_INT8_MAX = 127


def _quantize_tensor(x: np.ndarray, scale: float) -> np.ndarray:
    """Symmetric INT8 rounding at a given scale."""
    return np.clip(np.rint(x / scale), -_INT8_MAX - 1, _INT8_MAX)


def _scale_for(x: np.ndarray) -> float:
    """Per-tensor symmetric scale covering the observed range."""
    peak = float(np.max(np.abs(x)))
    return max(peak, 1e-8) / _INT8_MAX


@dataclass
class _QuantizedAffine:
    """An INT8 weight tensor plus its dequantisation scales."""

    layer: Layer
    w_int: np.ndarray
    w_scale: float
    act_scale: float


class QuantizedModel:
    """INT8 inference wrapper around a trained Sequential model.

    Affine layers (Dense / Conv2D / DepthwiseConv2D) run with quantised
    weights and inputs: the INT8 x INT8 products accumulate in int32-like
    float64 integers and are dequantised with ``w_scale * act_scale``
    (bit-exact to an integer MAC array).  All other layers — activations,
    pooling, attention — run on the dequantised values through the usual
    inference context, so the PWL softmax/GeLU plug in unchanged.
    """

    def __init__(self, model: Sequential, calibration: np.ndarray) -> None:
        self.model = model
        self._quantized: dict[int, _QuantizedAffine] = {}
        self._calibrate(calibration)

    def _calibrate(self, x: np.ndarray) -> None:
        """One float pass recording activation scales, then weight quant."""
        ctx = InferenceContext()
        current = np.asarray(x, dtype=np.float64)
        for index, layer in enumerate(self.model.layers):
            if isinstance(layer, (Dense, Conv2D, DepthwiseConv2D)):
                w = layer.w.value
                w_scale = _scale_for(w)
                self._quantized[index] = _QuantizedAffine(
                    layer=layer,
                    w_int=_quantize_tensor(w, w_scale),
                    w_scale=w_scale,
                    act_scale=_scale_for(current),
                )
            current = layer.forward(current, ctx)

    def forward(
        self, x: np.ndarray, ctx: InferenceContext | None = None
    ) -> np.ndarray:
        """INT8 inference under the given (possibly approximated) context."""
        ctx = ctx or InferenceContext()
        current = np.asarray(x, dtype=np.float64)
        for index, layer in enumerate(self.model.layers):
            record = self._quantized.get(index)
            if record is None:
                current = layer.forward(current, ctx)
                continue
            x_int = _quantize_tensor(current, record.act_scale)
            # run the layer with its weights temporarily swapped to the
            # integer grid; the affine maths is linear so the result is
            # (integer accumulation) * (w_scale * act_scale)
            original = record.layer.w.value
            record.layer.w.value = record.w_int
            try:
                acc = layer.forward(x_int, ctx)
                bias = layer.b.value
                # forward added the float bias to integer-scale values;
                # remove it, rescale, then re-add in real units
                acc = acc - bias
            finally:
                record.layer.w.value = original
            current = acc * (record.w_scale * record.act_scale) + bias
        return current

    def accuracy(
        self,
        x: np.ndarray,
        y: np.ndarray,
        ctx: InferenceContext | None = None,
        batch_size: int = 256,
    ) -> float:
        """Top-1 accuracy of the quantised model."""
        correct = 0
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start : start + batch_size], ctx)
            correct += int(
                np.sum(logits.argmax(axis=-1) == y[start : start + batch_size])
            )
        return correct / len(x)


def quantize_model(
    model: Sequential, calibration: np.ndarray
) -> QuantizedModel:
    """Post-training-quantise a trained model with a calibration batch."""
    return QuantizedModel(model, calibration)
