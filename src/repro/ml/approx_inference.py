"""Exact-vs-approximate inference: the Table I experiment core.

For every zoo entry: train once with exact non-linearities, then evaluate
the *same weights* twice — once with the exact softmax and once with the
PWL softmax at the paper's breakpoint budget (16; 8 for the CIFAR-10
family).  The classifier's final softmax is argmax-invariant under any
monotone approximation, so the deltas Table I reports come entirely from
the attention-internal softmax (and GeLU) of the transformer rows — which
is exactly what our harness reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.approx.softmax import SoftmaxApproximator, make_softmax_approximator
from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.ml.datasets import (
    Dataset,
    make_cifar_like,
    make_mnist_like,
    make_sentiment_like,
    make_span_qa_like,
)
from repro.ml.layers import InferenceContext, Sequential
from repro.ml.models import (
    build_cnn,
    build_mlp,
    build_mobilenet_like,
    build_tiny_transformer,
    build_span_qa_transformer,
    build_vgg_like,
)
from repro.ml.train import TrainConfig, evaluate_accuracy, train_classifier

__all__ = ["ZooEntry", "table1_model_zoo", "accuracy_with_softmax"]


@dataclass(frozen=True)
class ZooEntry:
    """One Table I row: a model family, its dataset and breakpoint budget."""

    model_name: str
    dataset_name: str
    build: Callable[[], Sequential]
    load: Callable[[], Dataset]
    breakpoints: int
    train_config: TrainConfig


def table1_model_zoo() -> list[ZooEntry]:
    """The six Table I rows at reproduction scale."""
    return [
        ZooEntry(
            "MLP", "MNIST", build_mlp, make_mnist_like, 16,
            TrainConfig(epochs=8, seed=100),
        ),
        ZooEntry(
            "CNN", "CIFAR-10", build_cnn, make_cifar_like, 8,
            TrainConfig(epochs=8, seed=101),
        ),
        ZooEntry(
            "MobileNet v1", "CIFAR-10", build_mobilenet_like, make_cifar_like, 8,
            TrainConfig(epochs=8, seed=102),
        ),
        ZooEntry(
            "VGG-16", "CIFAR-10", build_vgg_like, make_cifar_like, 8,
            TrainConfig(epochs=6, seed=103),
        ),
        ZooEntry(
            "MobileBERT", "SQUAD", build_span_qa_transformer, make_span_qa_like,
            16, TrainConfig(epochs=10, seed=104),
        ),
        ZooEntry(
            "RoBERTa", "SST-2", build_tiny_transformer, make_sentiment_like, 16,
            TrainConfig(epochs=10, seed=105),
        ),
    ]


def _approx_context(
    n_segments: int, seed: int = 0, include_gelu: bool = False
) -> InferenceContext:
    """Inference context with PWL softmax (and optionally PWL GeLU).

    Table I approximates *softmax only* ("Accuracy with Approx.
    Softmax"); ``include_gelu=True`` additionally routes GeLU through a
    PWL table — the harder setting our extension column reports.
    """
    softmax: SoftmaxApproximator = make_softmax_approximator(
        n_segments=n_segments, use_mlp=True, seed=seed
    )
    if not include_gelu:
        return InferenceContext(softmax_fn=softmax, training=False)
    gelu_spec = get_function("gelu")
    gelu_table = train_nnlut_mlp(
        gelu_spec, n_segments=n_segments, seed=seed
    ).to_piecewise_linear(n_segments=n_segments)
    return InferenceContext(
        softmax_fn=softmax, gelu_fn=gelu_table.evaluate, training=False
    )


def accuracy_with_softmax(
    entry: ZooEntry,
) -> dict[str, float]:
    """Train one zoo entry and report exact vs approximated accuracy.

    Returns accuracies in percent: ``exact`` (no approximation),
    ``approx`` (PWL softmax, the Table I column) and ``approx_all``
    (PWL softmax *and* GeLU — our stricter extension).
    """
    dataset = entry.load()
    model = entry.build()
    train_classifier(model, dataset, entry.train_config)
    exact = evaluate_accuracy(model, dataset.x_test, dataset.y_test)
    approx = evaluate_accuracy(
        model, dataset.x_test, dataset.y_test,
        ctx=_approx_context(entry.breakpoints),
    )
    approx_all = evaluate_accuracy(
        model, dataset.x_test, dataset.y_test,
        ctx=_approx_context(entry.breakpoints, include_gelu=True),
    )
    return {
        "exact": 100.0 * exact,
        "approx": 100.0 * approx,
        "approx_all": 100.0 * approx_all,
        "breakpoints": float(entry.breakpoints),
    }
