"""Model builders for the Table I zoo (reduced-scale, same families)."""

from __future__ import annotations

from repro.ml.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Embedding,
    Flatten,
    GeLU,
    Layer,
    LayerNorm,
    MaxPool2D,
    MeanPool1D,
    MultiHeadSelfAttention,
    ReLU,
    Sequential,
    InferenceContext,
)

__all__ = [
    "build_mlp",
    "build_cnn",
    "build_mobilenet_like",
    "build_vgg_like",
    "build_tiny_transformer",
    "build_span_qa_transformer",
    "TransformerEncoderBlock",
]


def build_mlp(seed: int = 10) -> Sequential:
    """784 -> 64 -> 10 MLP (the Table I MNIST row's family)."""
    return Sequential(
        [
            Dense(784, 64, seed=seed),
            ReLU(),
            Dense(64, 10, seed=seed + 1),
        ],
        name="MLP",
    )


def build_cnn(seed: int = 20) -> Sequential:
    """Small plain CNN for 3x16x16 inputs (the Table I CNN row)."""
    return Sequential(
        [
            Conv2D(3, 8, seed=seed),
            ReLU(),
            MaxPool2D(),
            Conv2D(8, 16, seed=seed + 1),
            ReLU(),
            MaxPool2D(),
            Flatten(),
            Dense(16 * 4 * 4, 10, seed=seed + 2),
        ],
        name="CNN",
    )


def build_mobilenet_like(seed: int = 30) -> Sequential:
    """Depthwise-separable CNN (the MobileNet v1 row's family)."""
    return Sequential(
        [
            Conv2D(3, 8, seed=seed),
            ReLU(),
            DepthwiseConv2D(8, seed=seed + 1),
            Conv2D(8, 16, kernel=1, seed=seed + 2),
            ReLU(),
            MaxPool2D(),
            DepthwiseConv2D(16, seed=seed + 3),
            Conv2D(16, 32, kernel=1, seed=seed + 4),
            ReLU(),
            MaxPool2D(),
            Flatten(),
            Dense(32 * 4 * 4, 10, seed=seed + 5),
        ],
        name="MobileNet v1",
    )


def build_vgg_like(seed: int = 40) -> Sequential:
    """Stacked 3x3 conv blocks (the VGG-16 row's family)."""
    return Sequential(
        [
            Conv2D(3, 16, seed=seed),
            ReLU(),
            Conv2D(16, 16, seed=seed + 1),
            ReLU(),
            MaxPool2D(),
            Conv2D(16, 32, seed=seed + 2),
            ReLU(),
            Conv2D(32, 32, seed=seed + 3),
            ReLU(),
            MaxPool2D(),
            Flatten(),
            Dense(32 * 4 * 4, 64, seed=seed + 4),
            ReLU(),
            Dense(64, 10, seed=seed + 5),
        ],
        name="VGG-16",
    )


class TransformerEncoderBlock(Layer):
    """Pre-norm encoder block: LN -> MHSA -> +x, LN -> FFN(GeLU) -> +x."""

    def __init__(self, dim: int, heads: int, ffn_dim: int, seed: int = 0) -> None:
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, heads, seed=seed)
        self.ln2 = LayerNorm(dim)
        self.ffn_up = Dense(dim, ffn_dim, seed=seed + 1)
        self.gelu = GeLU()
        self.ffn_down = Dense(ffn_dim, dim, seed=seed + 2)

    def params(self):
        return (
            self.ln1.params()
            + self.attn.params()
            + self.ln2.params()
            + self.ffn_up.params()
            + self.ffn_down.params()
        )

    def forward(self, x, ctx: InferenceContext):
        attn_out = self.attn.forward(self.ln1.forward(x, ctx), ctx)
        x = x + attn_out
        ffn = self.ffn_down.forward(
            self.gelu.forward(self.ffn_up.forward(self.ln2.forward(x, ctx), ctx), ctx),
            ctx,
        )
        return x + ffn

    def backward(self, grad):
        d_ffn = self.ffn_down.backward(grad)
        d_gelu = self.gelu.backward(d_ffn)
        d_up = self.ffn_up.backward(d_gelu)
        d_ln2 = self.ln2.backward(d_up)
        grad = grad + d_ln2
        d_attn = self.attn.backward(grad)
        d_ln1 = self.ln1.backward(d_attn)
        return grad + d_ln1


def build_tiny_transformer(
    vocab: int = 64,
    dim: int = 32,
    heads: int = 2,
    layers: int = 2,
    n_classes: int = 2,
    seed: int = 50,
) -> Sequential:
    """Sequence classifier (the RoBERTa / SST-2 row's family)."""
    stack: list[Layer] = [Embedding(vocab, dim, seed=seed)]
    for i in range(layers):
        stack.append(
            TransformerEncoderBlock(dim, heads, dim * 4, seed=seed + 10 * (i + 1))
        )
    stack.extend([MeanPool1D(), Dense(dim, n_classes, seed=seed + 99)])
    return Sequential(stack, name="RoBERTa")


class _PerTokenHead(Layer):
    """(B, S, D) -> (B, S) start-position logits via a shared projection."""

    def __init__(self, dim: int, seed: int = 0) -> None:
        self.proj = Dense(dim, 1, seed=seed)

    def params(self):
        return self.proj.params()

    def forward(self, x, ctx: InferenceContext):
        return self.proj.forward(x, ctx)[..., 0]

    def backward(self, grad):
        return self.proj.backward(grad[..., None])


def build_span_qa_transformer(
    vocab: int = 64,
    dim: int = 32,
    heads: int = 2,
    layers: int = 2,
    seed: int = 60,
) -> Sequential:
    """Start-pointer model (the MobileBERT / SQuAD row's family).

    Classifies over sequence positions; accuracy is exact span-start
    match, the discrete analogue of the SQuAD exact-match metric.
    """
    stack: list[Layer] = [Embedding(vocab, dim, seed=seed)]
    for i in range(layers):
        stack.append(
            TransformerEncoderBlock(dim, heads, dim * 4, seed=seed + 10 * (i + 1))
        )
    stack.append(_PerTokenHead(dim, seed=seed + 99))
    return Sequential(stack, name="MobileBERT")
