"""Tiny numpy NN framework for the Table I accuracy experiments.

Table I evaluates model accuracy with the softmax replaced by its PWL
approximation, *without retraining*.  This package provides just enough
machinery to reproduce that experiment end to end on synthetic data:
layers with forward/backward, an Adam trainer, deterministic dataset
generators matching the architectural families of the paper's model zoo
(MLP, CNN, depthwise-separable CNN, VGG-style CNN, tiny transformer
encoders), and an inference harness whose softmax/GeLU are pluggable so
the exact and approximated networks share every weight.
"""

from repro.ml.layers import (
    Layer,
    Dense,
    Conv2D,
    DepthwiseConv2D,
    MaxPool2D,
    Flatten,
    ReLU,
    GeLU,
    Embedding,
    LayerNorm,
    MultiHeadSelfAttention,
    MeanPool1D,
    Sequential,
    InferenceContext,
)
from repro.ml.datasets import (
    Dataset,
    make_mnist_like,
    make_cifar_like,
    make_sentiment_like,
    make_span_qa_like,
)
from repro.ml.models import (
    build_mlp,
    build_cnn,
    build_mobilenet_like,
    build_vgg_like,
    build_tiny_transformer,
    build_span_qa_transformer,
)
from repro.ml.train import TrainConfig, train_classifier, evaluate_accuracy
from repro.ml.approx_inference import (
    accuracy_with_softmax,
    table1_model_zoo,
    ZooEntry,
)
from repro.ml.quantized import QuantizedModel, quantize_model

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "Flatten",
    "ReLU",
    "GeLU",
    "Embedding",
    "LayerNorm",
    "MultiHeadSelfAttention",
    "MeanPool1D",
    "Sequential",
    "InferenceContext",
    "Dataset",
    "make_mnist_like",
    "make_cifar_like",
    "make_sentiment_like",
    "make_span_qa_like",
    "build_mlp",
    "build_cnn",
    "build_mobilenet_like",
    "build_vgg_like",
    "build_tiny_transformer",
    "build_span_qa_transformer",
    "TrainConfig",
    "train_classifier",
    "evaluate_accuracy",
    "accuracy_with_softmax",
    "table1_model_zoo",
    "ZooEntry",
    "QuantizedModel",
    "quantize_model",
]
