"""novalint: a custom AST invariant analyzer for the NOVA serving stack.

The serving stack's speedups (batched attention, paged KV, speculative
decode) are only trustworthy because each stays bit/cycle/counter-exact
against a reference.  Those invariants used to live in tests and
reviewer memory; this package checks them statically, on every file,
in CI.  See :mod:`repro.analysis.engine` for the machinery and
:mod:`repro.analysis.rules` for the NV001–NV009 rule set.

Run it with ``nova-repro lint`` or ``python -m repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.cli import main
from repro.analysis.engine import (
    Finding,
    ModuleContext,
    Rule,
    discover_files,
    render_json,
    render_text,
    run_lint,
    summarize,
)
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleContext",
    "Rule",
    "discover_files",
    "main",
    "render_json",
    "render_text",
    "run_lint",
    "summarize",
]
