"""Command-line front end for novalint.

Reachable three ways — ``nova-repro lint ...``, ``python -m
repro.analysis ...`` and :func:`main` from tests — all sharing this
argument surface::

    lint [paths ...] [--format {text,json}] [--strict] [--output FILE]

Default paths are the repo's linted surface (``src``, ``benchmarks``,
``examples``); pass explicit paths to narrow a run.  Exit status: 0
when clean, 1 on findings (unsuppressed errors normally; any
unsuppressed finding under ``--strict``), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import (
    render_json,
    render_text,
    run_lint,
    summarize,
)
from repro.analysis.rules import ALL_RULES

__all__ = ["add_lint_arguments", "run_from_args", "main"]

DEFAULT_PATHS = ("src", "benchmarks", "examples")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with nova-repro)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: "
        + " ".join(DEFAULT_PATHS) + ")",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="report format (json is the CI artifact schema)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not just errors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    paths = list(args.paths) or [Path(p) for p in DEFAULT_PATHS]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"novalint: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    findings, n_files = run_lint(paths, ALL_RULES)
    renderer = render_json if args.format == "json" else render_text
    report = renderer(findings, n_files)
    print(report)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    counts = summarize(findings)
    failures = (
        counts["errors"] + counts["warnings"]
        if args.strict
        else counts["errors"]
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="novalint: AST invariant analyzer for the NOVA stack.",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))
