"""The novalint rule engine: file discovery, AST walking, reporting.

The serving stack's correctness story rests on invariants that the test
suite can only check by example — determinism (every RNG seeded), pool
conservation (block accounting stays inside the paging layer), frozen
config integrity, atomic rollback.  This engine checks them *by
construction*: each :class:`Rule` walks a module's AST and emits
structured :class:`Finding`\\ s, and the CI gate fails on any new one.

Layout
------
* :class:`Finding` — one diagnostic: rule id, severity, file:line:col,
  message, and whether a ``# novalint: disable=RULE`` comment on the
  offending line suppressed it.
* :class:`ModuleContext` — one parsed module: path, dotted module name
  (when the file lives under a ``repro`` package root), source, AST and
  the per-line suppression table.
* :class:`Rule` — base class; subclasses set ``rule_id`` / ``title`` /
  ``severity`` and implement :meth:`Rule.check`.
* :func:`run_lint` — discover files, parse, run every applicable rule,
  return findings sorted by location.
* :func:`render_text` / :func:`render_json` — the two reporters.

Suppressions are line-scoped and explicit: a trailing comment
``# novalint: disable=NV003`` (comma-separate several ids, or
``disable=all``) keeps the finding in the report — marked suppressed —
but removes it from the failure count.  There is no file-level opt-out;
a module that needs one is a module whose invariant story should be
fixed instead.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "discover_files",
    "load_module",
    "run_lint",
    "render_text",
    "render_json",
]

#: Severities, in increasing order of concern.  ``error`` findings fail
#: every lint run; ``warning`` findings fail only under ``--strict``.
SEVERITIES = ("warning", "error")

_SUPPRESS_RE = re.compile(
    r"#\s*novalint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    ``path`` is as given on the command line (kept relative when the
    input was relative, so reports are stable across checkouts);
    ``line``/``col`` are 1-based/0-based as in CPython tracebacks.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class ModuleContext:
    """A parsed module plus everything rules need to judge it."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_of(path)
        self._suppressions = _parse_suppressions(source)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``line`` carries a disable comment for ``rule_id``."""
        ids = self._suppressions.get(line)
        return ids is not None and (rule_id in ids or "all" in ids)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` at ``node``, resolving suppression."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.rule_id,
            severity=rule.severity,
            path=str(self.path),
            line=line,
            col=col,
            message=message,
            suppressed=self.is_suppressed(rule.rule_id, line),
        )


class Rule:
    """Base class for novalint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to the modules whose invariant
    it guards (e.g. NV002 exempts the paging layer, which *is* the
    accounting it protects).
    """

    rule_id: str = "NV000"
    title: str = ""
    severity: str = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


def module_name_of(path: Path) -> str | None:
    """Dotted module name for files under a ``repro`` package root.

    ``src/repro/core/paging.py`` -> ``repro.core.paging``; files outside
    the package (benchmarks, examples, tests) return ``None`` and rules
    fall back to path-based scoping.
    """
    parts = path.resolve().parts
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    dotted = list(parts[idx:])
    if not dotted[-1].endswith(".py"):
        return None
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    table: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is not None:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",")
            )
            table[lineno] = ids
    return table


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand ``paths`` into a sorted, de-duplicated list of .py files."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return out


def load_module(path: Path) -> ModuleContext | Finding:
    """Parse one file; a syntax error becomes an ``NV999`` finding."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule="NV999",
            severity="error",
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
    return ModuleContext(path, source, tree)


def run_lint(
    paths: Sequence[Path],
    rules: Iterable[Rule],
) -> tuple[list[Finding], int]:
    """Run ``rules`` over every file under ``paths``.

    Returns ``(findings, n_files)`` with findings sorted by location.
    """
    rule_list = list(rules)
    findings: list[Finding] = []
    files = discover_files(paths)
    for path in files:
        loaded = load_module(path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        for rule in rule_list:
            if rule.applies_to(loaded):
                findings.extend(rule.check(loaded))
    findings.sort(key=Finding.sort_key)
    return findings, len(files)


def summarize(findings: Sequence[Finding]) -> dict[str, int]:
    """Counts the reporters and exit-code logic share."""
    active = [f for f in findings if not f.suppressed]
    return {
        "findings": len(active),
        "suppressed": len(findings) - len(active),
        "errors": sum(1 for f in active if f.severity == "error"),
        "warnings": sum(1 for f in active if f.severity == "warning"),
    }


def render_text(findings: Sequence[Finding], n_files: int) -> str:
    """One ``path:line:col: RULE message`` row per finding."""
    lines: list[str] = []
    for f in findings:
        tag = " (suppressed)" if f.suppressed else ""
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] "
            f"{f.message}{tag}"
        )
    counts = summarize(findings)
    lines.append(
        f"{n_files} file(s) checked: {counts['errors']} error(s), "
        f"{counts['warnings']} warning(s), "
        f"{counts['suppressed']} suppressed"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], n_files: int) -> str:
    """Stable machine-readable report (the CI artifact format)."""
    payload = {
        "version": 1,
        "files_checked": n_files,
        "summary": summarize(findings),
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
