"""NV008 — simulated time only: no wall clock or entropy in the model.

Every latency, throughput and energy number the simulator reports is
derived from *modelled* cycles (``ClockDomain`` periods, NoC beat
arithmetic, PE pipeline depth).  A ``time.time()`` or
``datetime.now()`` inside a simulation path couples results to the
host machine — the one dependency the whole methodology exists to
remove — and breaks run-to-run reproducibility to boot.

Flagged, inside simulation packages (``repro.core``, ``repro.noc``,
``repro.accelerators``, ``repro.hw``, ``repro.approx``,
``repro.luts``, and ``repro.serving``, whose virtual clock — engine
cycle counters threaded through the scheduler — is the only
sanctioned time source): calls to ``time.time``/``monotonic``/
``perf_counter``/``process_time``, ``datetime.now``/``utcnow``/
``today``, and ``os.urandom``/``uuid.uuid4`` (entropy).

Out of scope by design: ``repro.eval`` benchmarks host wall-time on
purpose (it measures the simulator itself), and drivers/tests may time
whatever they like.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import ImportMap

__all__ = ["WallClockRule"]

_SIMULATION_PREFIXES = (
    "repro.core",
    "repro.noc",
    "repro.accelerators",
    "repro.hw",
    "repro.approx",
    "repro.luts",
    "repro.serving",
)

_BANNED = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "host-clock read",
    "time.monotonic_ns": "host-clock read",
    "time.perf_counter": "host-clock read",
    "time.perf_counter_ns": "host-clock read",
    "time.process_time": "host-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy draw",
    "uuid.uuid4": "entropy-based id",
}


class WallClockRule(Rule):
    rule_id = "NV008"
    title = "no wall-clock/entropy calls in simulation code"
    severity = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        module = ctx.module or ""
        return module.startswith(_SIMULATION_PREFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call(node)
            if target is None:
                continue
            kind = _BANNED.get(target)
            if kind is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"{kind} {target}() in simulation code; derive time "
                    "from modelled cycles and randomness from the "
                    "config seed",
                )
