"""NV004 — frozen means frozen: no ``object.__setattr__`` on foreign objects.

``NovaConfig`` is a frozen dataclass precisely so a geometry, once
validated, can be shared across engines, schedule caches and sessions
without defensive copying.  ``object.__setattr__`` is the documented
loophole frozen dataclasses use in their **own** ``__post_init__`` —
and the only place that loophole is legitimate.

Flagged: ``object.__setattr__(X, ...)`` where ``X`` is anything other
than ``self``, outside ``repro.core.config`` (which owns the config
coercion machinery).  A frozen instance's own ``__post_init__``
normalising its own fields passes; code mutating a config (or any
frozen object) it merely holds does not.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import dotted_name

__all__ = ["FrozenConfigRule"]


class FrozenConfigRule(Rule):
    rule_id = "NV004"
    title = "object.__setattr__ on non-self outside repro.core.config"
    severity = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.core.config"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Name) and target.id == "self":
                continue
            shown = dotted_name(target) or "<expr>"
            yield ctx.finding(
                self,
                node,
                f"object.__setattr__ on {shown} mutates a frozen instance "
                "from outside; build a new config with replace()/"
                "with_overrides() instead",
            )
