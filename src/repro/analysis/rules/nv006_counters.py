"""NV006 — counters are owned: no mutation through a foreign handle.

The cycle/event counters (``*_count``, ``*_cycles``, ``cycles``,
``events``, and the paging conservation set: ``blocks_allocated``,
``blocks_freed``, ``evictions``, ``live_tokens``, ...) feed the energy
model and the golden traces directly.  Their invariants (monotonicity,
conservation) hold because each owner mutates its own counters inside
its accounting methods.  Code that reaches *through* a handle —
``engine.counters.events += 1``, ``seq.cache.evictions = 0`` — bypasses
that accounting and silently skews every downstream report.

Flagged: an assignment or augmented assignment whose target is a
counter-named attribute on any receiver other than bare ``self``.
``self.evictions += n`` inside the owner is the accounting helper and
passes; ``self.pool.live_tokens`` style writes are only legitimate in
``repro.core.paging``, which *is* the pool's accounting layer and is
exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import dotted_name

__all__ = ["CounterOwnershipRule"]

_EXACT = {
    "cycles",
    "events",
    "blocks_allocated",
    "blocks_freed",
    "evictions",
    "deferrals",
    "preemptions",
    "peak_in_use",
    "live_tokens",
    "pages_allocated",
    "pages_recycled",
}

_SUFFIXES = ("_count", "_counts", "_cycles")


def _is_counter(attr: str) -> bool:
    return attr in _EXACT or attr.endswith(_SUFFIXES)


class CounterOwnershipRule(Rule):
    rule_id = "NV006"
    title = "counter mutation only by the owning object"
    severity = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.core.paging"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if not _is_counter(target.attr):
                    continue
                receiver = target.value
                if isinstance(receiver, ast.Name) and receiver.id == "self":
                    continue
                shown = dotted_name(target) or f"<expr>.{target.attr}"
                yield ctx.finding(
                    self,
                    node,
                    f"counter write {shown} through a foreign handle "
                    "bypasses the owner's accounting; add/extend an "
                    "accounting method on the owner instead",
                )
