"""NV009 — kernel purity: backends compute, engines account.

The kernel backends (:mod:`repro.core.kernels`) are pure whole-batch
array transformers: quantise/gather/MAC in, outputs and addresses out.
The bit/cycle/counter-exactness contract of the serving stack rests on
the engines owning *all* hardware-state accounting — a backend that
charged :class:`~repro.noc.stats.EventCounters` itself, poked the NoC,
or reached into pool/engine state would be double-counting under one
backend and under-counting under another, silently skewing the golden
traces the moment the registry entry changes.

Flagged, inside ``repro.core.kernels`` only:

* any read or write of a ``counters`` attribute, or a call that
  constructs / merges / mutates ``EventCounters``;
* attribute access on engine-state handles (``noc``, ``pool``,
  ``engine``, ``scheduler``, ``comparators``, ``macs``, ``routers``)
  or a call to an accounting method (``charge_broadcasts``,
  ``charge``, ``add``-on-``counters``).

The launch/element tallies the module keeps for
``NovaSession.cache_info()`` are plain dict entries, not
``EventCounters``, and pass.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import dotted_name

__all__ = ["KernelPurityRule"]

#: Attribute names that are engine/hardware state a kernel backend has
#: no business touching (reads included: holding the handle at all
#: invites charging through it).
_STATE_ATTRS = frozenset(
    {
        "counters",
        "noc",
        "pool",
        "engine",
        "scheduler",
        "comparators",
        "macs",
        "routers",
    }
)

#: Accounting calls that mutate hardware state wherever they land.
_ACCOUNTING_CALLS = frozenset({"charge_broadcasts", "charge", "merge"})


class KernelPurityRule(Rule):
    rule_id = "NV009"
    title = "kernel backends stay pure (no counter/engine state)"
    severity = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        if ctx.module is not None:
            return ctx.module == "repro.core.kernels"
        return ctx.path.name == "kernels.py"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in _STATE_ATTRS:
                shown = dotted_name(node) or f"<expr>.{node.attr}"
                yield ctx.finding(
                    self,
                    node,
                    f"kernel code touches engine state {shown}; backends "
                    "are pure array transformers — counter charging and "
                    "NoC/pool accounting belong to the owning engine "
                    "(NV006)",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _ACCOUNTING_CALLS
                ):
                    shown = dotted_name(func) or f"<expr>.{func.attr}"
                    yield ctx.finding(
                        self,
                        node,
                        f"kernel code calls accounting method {shown}(); "
                        "hardware-state mutation belongs to the owning "
                        "engine, not a backend",
                    )
                elif (
                    isinstance(func, ast.Name)
                    and func.id == "EventCounters"
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "kernel code constructs EventCounters; event "
                        "accounting belongs to the owning engine — return "
                        "the data and let the engine charge it",
                    )
