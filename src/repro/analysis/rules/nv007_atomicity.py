"""NV007 — methods documented atomic must validate before they mutate.

The scheduler's contract with ``append``/``truncate``/``start`` and the
speculative verify pass is *all-or-nothing*: when a call raises
(overflow, pool exhaustion, bad shape), the object must be exactly as it
was, so the caller can defer and retry.  That property is easy to break
silently — one early ``self.length += 1`` before a capacity check and a
failed append leaves a phantom token no golden will attribute.

A method opts into the check by saying so: any method whose docstring
contains the word "atomic" is scanned, and every store to ``self`` (or
through ``self.<attr>...``) that lexically precedes the method's **last**
``raise`` statement is flagged.  Raises inside ``except`` handlers are
ignored — re-raising after cleanup is not validation — as are nested
function/class scopes.

The fix is the paging layer's pattern: hoist every precondition (shape,
capacity, pool headroom) above the first mutation, then mutate
unconditionally.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import walk_code

__all__ = ["AtomicityRule"]


def _roots_at_self(node: ast.expr) -> bool:
    """True when an attribute/subscript chain starts at ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _last_raise_line(func: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    """Line of the last statement-level raise (0 when there is none)."""
    last = 0
    handler_spans: list[tuple[int, int]] = []
    for node in walk_code(func):
        if isinstance(node, ast.ExceptHandler):
            end = getattr(node, "end_lineno", None) or node.lineno
            handler_spans.append((node.lineno, end))
    for node in walk_code(func):
        if not isinstance(node, ast.Raise):
            continue
        if any(lo <= node.lineno <= hi for lo, hi in handler_spans):
            continue
        last = max(last, node.lineno)
    return last


class AtomicityRule(Rule):
    rule_id = "NV007"
    title = "no self-mutation before validation in atomic methods"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            doc = ast.get_docstring(node)
            if doc is None or "atomic" not in doc.lower():
                continue
            yield from self._check_method(ctx, node)

    def _check_method(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        last_raise = _last_raise_line(func)
        if last_raise == 0:
            return
        for node in walk_code(func):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            if node.lineno >= last_raise:
                continue
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and _roots_at_self(target):
                    yield ctx.finding(
                        self,
                        node,
                        f"store to self at line {node.lineno} precedes the "
                        f"last validation raise (line {last_raise}) in "
                        f"atomic method {func.name}(); hoist validation "
                        "above every mutation",
                    )
