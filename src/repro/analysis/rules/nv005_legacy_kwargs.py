"""NV005 — no deprecated raw-geometry kwargs at engine construction.

PR 2 introduced :class:`~repro.core.config.NovaConfig` as the single
geometry currency; the loose kwargs (``n_routers=``,
``neurons_per_router=``, ``pe_frequency_ghz=``, ``hop_mm=``) survive on
the engine constructors only as a ``DeprecationWarning`` shim.  This
rule turns the runtime warning into a static one, so the migration
stays complete: every in-repo construction site passes a ``NovaConfig``
or a preset name.

Flagged: a call to any engine class (``NovaVectorUnit``,
``NovaAttentionEngine``, ``BatchedNovaAttentionEngine``,
``NovaDecodeEngine``, ``SpeculativeDecodeEngine``) carrying one of the
geometry field names as a keyword.  ``NovaConfig(n_routers=8)`` itself
is of course fine — that is the migration target.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import call_name

__all__ = ["LegacyGeometryKwargsRule"]

_ENGINE_CLASSES = {
    "NovaVectorUnit",
    "NovaAttentionEngine",
    "BatchedNovaAttentionEngine",
    "NovaDecodeEngine",
    "SpeculativeDecodeEngine",
}

_GEOMETRY_KWARGS = {
    "n_routers",
    "neurons_per_router",
    "pe_frequency_ghz",
    "hop_mm",
}


class LegacyGeometryKwargsRule(Rule):
    rule_id = "NV005"
    title = "deprecated raw-geometry kwargs at engine construction"
    severity = "warning"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in _ENGINE_CLASSES:
                continue
            legacy = sorted(
                kw.arg
                for kw in node.keywords
                if kw.arg in _GEOMETRY_KWARGS
            )
            if legacy:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}({', '.join(k + '=' for k in legacy)}...) uses "
                    "deprecated geometry kwargs; pass a NovaConfig or "
                    "preset name instead",
                )
