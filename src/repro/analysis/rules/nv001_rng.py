"""NV001 — every random number has a seed.

Bit-exactness against the golden traces is the repo's core promise,
and it dies the moment any code path draws from global or entropy-fed
RNG state.  The sanctioned entry points live in ``repro.utils.rng``
(:func:`make_rng`, :func:`derive_seed`); everywhere else, drawing
randomness requires an explicitly seeded ``numpy`` Generator.

Flagged:

* any ``random.*`` module-level call (the stdlib global Mersenne
  Twister), plus unseeded ``random.Random()`` and ``SystemRandom``
  (OS entropy);
* legacy ``np.random.*`` global-state functions (``rand``, ``randn``,
  ``seed``, ``shuffle``, ...);
* ``np.random.default_rng()`` called with **no** arguments (entropy
  seeded).

Allowed: ``default_rng(seed)``, ``np.random.Generator(...)``,
``np.random.SeedSequence(...)``, and anything in ``repro.utils.rng``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import ImportMap

__all__ = ["UnseededRngRule"]

#: stdlib ``random`` module-level functions that draw from (or mutate)
#: the hidden global generator.
_STDLIB_GLOBAL = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: legacy ``numpy.random`` functions backed by the global RandomState.
_NUMPY_LEGACY = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf",
}


class UnseededRngRule(Rule):
    rule_id = "NV001"
    title = "no unseeded or global-state RNG outside repro.utils.rng"
    severity = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.utils.rng"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call(node)
            if target is None:
                continue
            message = _judge(target, node)
            if message is not None:
                yield ctx.finding(self, node, message)


def _judge(target: str, call: ast.Call) -> str | None:
    """Message when ``target`` (a resolved dotted path) violates NV001."""
    head, _, tail = target.partition(".")
    if head == "random":
        if tail in _STDLIB_GLOBAL:
            return (
                f"stdlib global RNG call random.{tail}(); route randomness "
                "through repro.utils.rng.make_rng(seed) instead"
            )
        if tail == "SystemRandom":
            return (
                "random.SystemRandom draws OS entropy and can never be "
                "seeded; use repro.utils.rng.make_rng(seed)"
            )
        if tail == "Random" and not call.args and not call.keywords:
            return (
                "random.Random() without a seed is entropy-seeded; pass an "
                "explicit seed or use repro.utils.rng.make_rng(seed)"
            )
        return None
    if target.startswith("numpy.random."):
        leaf = target.rsplit(".", 1)[1]
        if leaf == "default_rng" and not call.args and not call.keywords:
            return (
                "np.random.default_rng() without a seed is entropy-seeded; "
                "pass a seed or use repro.utils.rng.make_rng(seed)"
            )
        if leaf in _NUMPY_LEGACY:
            return (
                f"legacy np.random.{leaf}() uses hidden global RandomState; "
                "use a seeded Generator (repro.utils.rng.make_rng)"
            )
    return None
