"""NV003 — no float-literal ``==``/``!=`` in numeric code.

The stack's equality claims are *fixed-point* claims: quantized table
words, integer cycle counts, bit-packed beats.  A float literal on
either side of ``==`` is a smell that a tolerance (or an integer
representation) was skipped — and a comparison that holds on one
platform's FMA contraction and fails on another is exactly the class
of bug the golden traces cannot localise.

Flagged: any ``==``/``!=`` where a comparator is a float constant
(including ``-0.5`` style negations).  Integer comparisons, ``is``
checks and ``<``/``<=`` range tests are untouched.  Use
``np.isclose``/``math.isclose`` with an explicit tolerance, or compare
the underlying integer representation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

__all__ = ["FloatEqualityRule"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class FloatEqualityRule(Rule):
    rule_id = "NV003"
    title = "no float-literal == / != comparisons"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.finding(
                        self,
                        node,
                        f"float literal compared with {symbol}; use "
                        "np.isclose with an explicit tolerance or compare "
                        "the integer representation",
                    )
