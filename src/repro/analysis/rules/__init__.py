"""The novalint rule set.

One module per rule, ``NVnnn``-prefixed; :data:`ALL_RULES` is the
registry the engine and CLI consume, ordered by rule id.  Adding a rule
is: write the module (subclass :class:`~repro.analysis.engine.Rule`,
set ``rule_id``/``title``/``severity``, implement ``check``), import it
here, append an instance to :data:`ALL_RULES`, and add the good/bad
fixture pair in ``tests/test_novalint.py``.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.nv001_rng import UnseededRngRule
from repro.analysis.rules.nv002_paging import BlockPoolAccessRule
from repro.analysis.rules.nv003_float_eq import FloatEqualityRule
from repro.analysis.rules.nv004_frozen_config import FrozenConfigRule
from repro.analysis.rules.nv005_legacy_kwargs import LegacyGeometryKwargsRule
from repro.analysis.rules.nv006_counters import CounterOwnershipRule
from repro.analysis.rules.nv007_atomicity import AtomicityRule
from repro.analysis.rules.nv008_wallclock import WallClockRule
from repro.analysis.rules.nv009_kernel_purity import KernelPurityRule

__all__ = [
    "ALL_RULES",
    "UnseededRngRule",
    "BlockPoolAccessRule",
    "FloatEqualityRule",
    "FrozenConfigRule",
    "LegacyGeometryKwargsRule",
    "CounterOwnershipRule",
    "AtomicityRule",
    "WallClockRule",
    "KernelPurityRule",
]

ALL_RULES: tuple[Rule, ...] = (
    UnseededRngRule(),
    BlockPoolAccessRule(),
    FloatEqualityRule(),
    FrozenConfigRule(),
    LegacyGeometryKwargsRule(),
    CounterOwnershipRule(),
    AtomicityRule(),
    WallClockRule(),
    KernelPurityRule(),
)
