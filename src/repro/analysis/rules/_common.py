"""Shared AST helpers for novalint rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "dotted_name",
    "call_name",
    "receiver_of",
    "walk_code",
    "ImportMap",
]


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` chains of Names/Attributes; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_name(call: ast.Call) -> str | None:
    """The terminal name a call dispatches on (``Foo`` in ``m.Foo(...)``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def receiver_of(call: ast.Call) -> ast.expr | None:
    """The object a method call is invoked on, if it is a method call."""
    if isinstance(call.func, ast.Attribute):
        return call.func.value
    return None


def walk_code(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class scopes.

    Yields ``root`` itself, then statements/expressions of its own
    scope.  Rules that reason about one function body (NV007) use this
    to avoid attributing a nested helper's stores to the method.
    """
    yield root
    stack = [
        child
        for child in ast.iter_child_nodes(root)
        if not isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        )
    ]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(
            child
            for child in ast.iter_child_nodes(node)
            if not isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                ),
            )
        )


class ImportMap:
    """What this module calls the modules a rule cares about.

    Tracks plain imports (``import numpy as np`` -> ``np`` maps to
    ``numpy``) and from-imports (``from time import time`` -> ``time``
    maps to ``time.time``).  Star imports are ignored — none of the
    checked code uses them, and guessing would invite false positives.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> imported module dotted path
        self.modules: dict[str, str] = {}
        #: local name -> full dotted origin of a from-imported symbol
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` in the namespace
                        top = alias.name.split(".")[0]
                        self.modules[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, call: ast.Call) -> str | None:
        """Fully-qualified dotted path of a call target, when knowable.

        ``np.random.rand(...)`` -> ``numpy.random.rand`` (given
        ``import numpy as np``); ``default_rng(...)`` ->
        ``numpy.random.default_rng`` (given the from-import); otherwise
        ``None``.
        """
        chain = dotted_name(call.func)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        if not rest:
            return self.names.get(head)
        if head in self.modules:
            return f"{self.modules[head]}.{rest}"
        if head in self.names:
            return f"{self.names[head]}.{rest}"
        return None
