"""NV002 — block accounting stays inside the paging layer.

``BlockPool`` conservation (``blocks_allocated - blocks_freed ==
len(in use)``, every ``free`` matched to one ``allocate``) is what the
paged-KV goldens pin down.  Callers hold pools, but only the paging
layer's own structures (:class:`BlockTable` / :class:`PagedKVCache`)
may call ``allocate``/``free`` — a scheduler or engine reaching into
the pool directly can double-free or leak a block in a way no golden
trace would localise.

Prefix caching widens the invariant surface: reference counts
(``share``) and the prefix index (``register_prefix`` /
``forget_prefix``) are the same conservation story — one stray
``share`` outside the paging layer leaks a block forever, one stray
``forget_prefix`` silently stops deduplication.  Read-only probes
(``probe_prefix``, ``refcount``) stay legal everywhere: the scheduler's
admission path uses them and they cannot move a counter.

The check is name-based: a method call ``X.allocate(...)``,
``X.free(...)``, ``X.share(...)``, ``X.register_prefix(...)``,
``X.forget_prefix(...)`` or ``X.lookup_prefix(...)`` is flagged when
the receiver expression mentions ``pool`` (``pool``,
``self.block_pool``, ``seq.pool``...), in any module other than
``repro.core.paging``.  ``lookup_prefix`` is mutating too — it counts
hits and misses, and those counters are golden-pinned.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules._common import dotted_name, receiver_of

__all__ = ["BlockPoolAccessRule"]


#: Pool methods that mutate block accounting state — refcounts, the
#: free list, the prefix index, or the golden-pinned hit/miss counters.
#: Read-only probes (``probe_prefix``, ``refcount``) are not listed.
_MUTATORS = (
    "allocate",
    "free",
    "share",
    "register_prefix",
    "forget_prefix",
    "lookup_prefix",
)


class BlockPoolAccessRule(Rule):
    rule_id = "NV002"
    title = (
        "BlockPool mutation (allocate/free/share/prefix-index) only "
        "inside repro.core.paging"
    )
    severity = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.core.paging"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _MUTATORS:
                continue
            receiver = receiver_of(node)
            if receiver is None:
                continue
            name = dotted_name(receiver)
            if name is not None and "pool" in name.lower():
                yield ctx.finding(
                    self,
                    node,
                    f"direct pool call {name}.{node.func.attr}() outside "
                    "repro.core.paging breaks block/refcount conservation; "
                    "go through BlockTable/PagedKVCache",
                )
