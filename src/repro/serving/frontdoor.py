"""The async serving front door: request router over the batch scheduler.

:class:`FrontDoor` is the boundary between *streaming requests* —
each carrying an arrival time, priority, tenant and optional deadline
— and the iteration-level scheduler
(:class:`~repro.core.decode.ContinuousBatchScheduler`).  Requests are
submitted (or handed over as a prebuilt trace), ordered on the
**virtual clock**, and served to completion under a pluggable
:class:`~repro.serving.policies.SchedulingPolicy`; the outcome is a
JSON-serializable :class:`~repro.serving.metrics.ServingReport`.

Time is virtual throughout: the clock starts at cycle 0 and advances
by the packed vector cycles each fused scheduler step actually costs
(idle gaps jump to the next arrival).  Nothing reads the host clock —
two runs of the same trace are byte-identical, and novalint NV008
holds for this package.  And because policies only reorder *when*
work happens, every request's outputs, cycles and counters stay
bit-identical to solo
:meth:`~repro.core.decode.NovaDecodeEngine.generate` under every
policy — the serving benchmark gate re-checks this before any SLO
number is reported.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.decode import (
    ContinuousBatchResult,
    ContinuousBatchScheduler,
    DecodeRequest,
    NovaDecodeEngine,
    SequenceMeta,
)
from repro.serving.metrics import ServingReport, build_report
from repro.serving.policies import SchedulingPolicy, build_policy

if TYPE_CHECKING:
    from repro.core.speculative import DraftModel

__all__ = ["FrontDoor", "ServingRequest"]


@dataclass(frozen=True)
class ServingRequest:
    """One streaming request at the front door.

    ``request_id`` is the submission identity the report keys on —
    the front door assigns it on :meth:`FrontDoor.submit` (traces
    built by :mod:`repro.serving.arrivals` number themselves).
    ``arrival``/``deadline`` are virtual cycles; validation matches
    :class:`~repro.core.decode.SequenceMeta` (non-negative arrival,
    deadline strictly after it).
    """

    request: DecodeRequest
    arrival: float = 0.0
    priority: int = 0
    tenant: str = "default"
    deadline: float | None = None
    request_id: int = 0

    def __post_init__(self) -> None:
        self.meta()  # SequenceMeta validates arrival/deadline.

    def meta(self) -> SequenceMeta:
        """This request's scheduler-facing metadata."""
        return SequenceMeta(
            arrival=self.arrival,
            priority=self.priority,
            tenant=self.tenant,
            deadline=self.deadline,
        )


@dataclass
class FrontDoor:
    """Routes streaming requests into one continuous-batching run.

    Construction fixes the engine, the scheduling ``policy`` (a name
    from :data:`~repro.serving.policies.POLICIES` or a policy object)
    and the scheduler's capacity/memory/speculation knobs; each
    :meth:`serve` call then builds a *fresh*
    :class:`~repro.core.decode.ContinuousBatchScheduler` so pool
    statistics and counters are per run.

    Requests enter either through :meth:`submit` (queued until the
    next :meth:`serve`) or as a prebuilt trace passed to
    :meth:`serve` directly.  The front door orders the batch by
    arrival (stable, so simultaneous arrivals keep submission order —
    exactly the queue order :class:`~repro.serving.policies.FCFS`
    pins), attaches per-request
    :class:`~repro.core.decode.SequenceMeta`, and folds the scheduler
    result into a :class:`~repro.serving.metrics.ServingReport` whose
    requests are back in submission-id order.

    After a serve, :attr:`last_result` holds the raw scheduler result
    and :meth:`last_results` maps per-request outputs back to
    submission ids — the hook the exactness checks use.
    """

    engine: NovaDecodeEngine
    policy: str | SchedulingPolicy = "fcfs"
    max_active: int = 8
    paged: bool = False
    block_size: int | None = None
    pool_blocks: int | None = None
    pool_bytes: int | None = None
    prefix_caching: bool | None = None
    speculative: bool = False
    spec_k: int | None = None
    spec_tree: str | None = None
    draft_kind: str | None = None
    draft_factory: "Callable[[], DraftModel] | None" = None
    _pending: list[ServingRequest] = field(default_factory=list, repr=False)
    last_result: ContinuousBatchResult | None = field(
        default=None, repr=False
    )
    last_trace: tuple[ServingRequest, ...] = field(
        default=(), repr=False
    )

    def __post_init__(self) -> None:
        self.policy = build_policy(self.policy)

    @property
    def policy_name(self) -> str:
        """The resolved policy's registry name."""
        return build_policy(self.policy).name

    def submit(
        self,
        request: DecodeRequest,
        *,
        arrival: float = 0.0,
        priority: int = 0,
        tenant: str = "default",
        deadline: float | None = None,
    ) -> ServingRequest:
        """Queue one streaming request for the next :meth:`serve`.

        Returns the :class:`ServingRequest` envelope (its
        ``request_id`` is the submission index — the key the report
        uses).
        """
        serving = ServingRequest(
            request=request,
            arrival=arrival,
            priority=priority,
            tenant=tenant,
            deadline=deadline,
            request_id=len(self._pending),
        )
        self._pending.append(serving)
        return serving

    @property
    def pending(self) -> tuple[ServingRequest, ...]:
        """Requests queued for the next :meth:`serve`."""
        return tuple(self._pending)

    def serve(
        self, trace: Sequence[ServingRequest] | None = None
    ) -> ServingReport:
        """Serve a batch of streaming requests to completion.

        With ``trace`` the given requests are served (their
        ``request_id`` must be unique — arrivals-built traces are);
        without it the :meth:`submit` queue is drained.  The batch is
        stably ordered by arrival, run through a fresh scheduler under
        this front door's policy, and folded into a
        :class:`~repro.serving.metrics.ServingReport`.
        """
        if trace is None:
            batch = tuple(self._pending)
            self._pending = []
        else:
            batch = tuple(trace)
        if not batch:
            raise ValueError("no requests to serve")
        ids = [serving.request_id for serving in batch]
        if len(set(ids)) != len(ids):
            raise ValueError("trace request_ids must be unique")
        ordered = sorted(batch, key=lambda serving: serving.arrival)
        scheduler = ContinuousBatchScheduler(
            self.engine,
            max_active=self.max_active,
            paged=self.paged,
            block_size=self.block_size,
            pool_blocks=self.pool_blocks,
            pool_bytes=self.pool_bytes,
            prefix_caching=self.prefix_caching,
            speculative=self.speculative,
            spec_k=self.spec_k,
            spec_tree=self.spec_tree,
            draft_kind=self.draft_kind,
            draft_factory=self.draft_factory,
            policy=build_policy(self.policy),
        )
        result = scheduler.run(
            [serving.request for serving in ordered],
            meta=[serving.meta() for serving in ordered],
        )
        self.last_result = result
        self.last_trace = tuple(ordered)
        return build_report(ordered, result, self.policy_name)

    def last_results(self) -> dict[int, object]:
        """Per-request outputs of the last serve, keyed by request id.

        Values are the scheduler's per-request results
        (:class:`~repro.core.decode.GenerateResult` or
        :class:`~repro.core.speculative.SpeculativeGenerateResult`) —
        each bit-identical to solo ``generate`` of the same request.
        """
        if self.last_result is None:
            raise RuntimeError("no serve has completed yet")
        return {
            serving.request_id: result
            for serving, result in zip(
                self.last_trace, self.last_result.results
            )
        }
