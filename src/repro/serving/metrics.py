"""SLO metrics for serving runs: TTFT, latency, percentiles, goodput.

The metrics layer turns one continuously batched run — the per-request
step timing :class:`~repro.core.decode.ContinuousBatchResult` now
carries — into the quantities a serving fleet is judged by:

* **TTFT** (time to first token): virtual cycles from a request's
  arrival to the scheduler step its prefill lands (the last prefill
  output is the request's first visible token).
* **Latency**: arrival to completion of the full generation budget.
* **p50/p99**: nearest-rank percentiles over the per-request values —
  deterministic (sorted order, no interpolation), so reports are
  byte-stable across runs and machines.
* **Goodput**: generated tokens of requests that met their deadline,
  per kilocycle of virtual makespan — the throughput that actually
  counts toward SLOs (tokens of deadline-missing requests are wasted
  work).  Requests without a deadline always count.
* **Deferral / preemption rates**: the scheduler's memory-pressure
  actions, normalised per scheduler step and per request.

Every time here is **virtual cycles** on the scheduler's deterministic
clock; nothing reads the host clock (NV008 covers this package).
:meth:`ServingReport.as_dict` / :meth:`ServingReport.to_json` emit a
plain-data report for dashboards and the benchmark harness.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from math import ceil
from typing import TYPE_CHECKING

from repro.core.decode import ContinuousBatchResult

if TYPE_CHECKING:
    from repro.serving.frontdoor import ServingRequest

__all__ = ["RequestMetrics", "ServingReport", "build_report", "percentile"]


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    The smallest element at or above the ``pct`` rank of the sorted
    values — the convention tail-latency dashboards use (p99 of 100
    samples is the 99th smallest).  Raises on an empty sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample is undefined")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(values)
    # pct = 0 yields rank 0; clamp to the first element.
    rank = max(1, ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class RequestMetrics:
    """One request's serving outcome, all times in virtual cycles."""

    request_id: int
    tenant: str
    priority: int
    arrival: float
    first_token_step: int
    finish_step: int
    ttft: float
    latency: float
    tokens: int
    deadline: float | None
    met_deadline: bool

    def as_dict(self) -> dict[str, object]:
        """Plain-data (JSON-ready) form."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "arrival": self.arrival,
            "first_token_step": self.first_token_step,
            "finish_step": self.finish_step,
            "ttft": self.ttft,
            "latency": self.latency,
            "tokens": self.tokens,
            "deadline": self.deadline,
            "met_deadline": self.met_deadline,
        }


@dataclass(frozen=True)
class ServingReport:
    """Aggregate SLO report of one front-door serving run."""

    policy: str
    requests: tuple[RequestMetrics, ...]
    scheduler_steps: int
    deferrals: int
    preemptions: int
    packed_vector_cycles: int
    sequential_vector_cycles: int
    makespan_cycles: float
    #: Prefix-caching counters, copied from the paged run's pool
    #: accounting (all zero for contiguous runs or with the knob off).
    prefix_hits: int = 0
    prefix_misses: int = 0
    blocks_shared: int = 0
    cow_copies: int = 0

    @property
    def n_requests(self) -> int:
        """Requests served to completion."""
        return len(self.requests)

    @property
    def total_tokens(self) -> int:
        """Generated tokens across every request."""
        return sum(r.tokens for r in self.requests)

    @property
    def p50_ttft(self) -> float | None:
        """Median time-to-first-token (virtual cycles; ``None`` when
        the run served no requests — a percentile of an empty sample
        is undefined, and dashboards render null, not a crash)."""
        if not self.requests:
            return None
        return percentile([r.ttft for r in self.requests], 50.0)

    @property
    def p99_ttft(self) -> float | None:
        """Tail time-to-first-token (virtual cycles; ``None`` on an
        empty request set)."""
        if not self.requests:
            return None
        return percentile([r.ttft for r in self.requests], 99.0)

    @property
    def p50_latency(self) -> float | None:
        """Median arrival-to-completion latency (virtual cycles;
        ``None`` on an empty request set)."""
        if not self.requests:
            return None
        return percentile([r.latency for r in self.requests], 50.0)

    @property
    def p99_latency(self) -> float | None:
        """Tail arrival-to-completion latency (virtual cycles;
        ``None`` on an empty request set)."""
        if not self.requests:
            return None
        return percentile([r.latency for r in self.requests], 99.0)

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests that met their deadline."""
        if not self.requests:
            return 1.0
        met = sum(1 for r in self.requests if r.met_deadline)
        return met / len(self.requests)

    @property
    def goodput_tokens_per_kcycle(self) -> float:
        """Deadline-meeting tokens per 1000 virtual cycles of makespan."""
        if self.makespan_cycles <= 0.0:
            return 0.0
        good = sum(r.tokens for r in self.requests if r.met_deadline)
        return 1000.0 * good / self.makespan_cycles

    @property
    def throughput_tokens_per_kcycle(self) -> float:
        """All generated tokens per 1000 virtual cycles of makespan."""
        if self.makespan_cycles <= 0.0:
            return 0.0
        return 1000.0 * self.total_tokens / self.makespan_cycles

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-index lookups that found a cached block.

        0.0 when prefix caching never looked anything up (contiguous
        runs, the knob off, or prompts shorter than one block).
        """
        lookups = self.prefix_hits + self.prefix_misses
        if lookups == 0:
            return 0.0
        return self.prefix_hits / lookups

    @property
    def deferral_rate(self) -> float:
        """Deferrals per scheduler step."""
        return self.deferrals / max(1, self.scheduler_steps)

    @property
    def preemption_rate(self) -> float:
        """Preemptions per request."""
        return self.preemptions / max(1, self.n_requests)

    def tenant_tokens(self) -> dict[str, int]:
        """Generated tokens per tenant (the fairness view)."""
        totals: dict[str, int] = {}
        for r in self.requests:
            totals[r.tenant] = totals.get(r.tenant, 0) + r.tokens
        return totals

    def as_dict(self) -> dict[str, object]:
        """Plain-data (JSON-ready) form, aggregates included."""
        return {
            "policy": self.policy,
            "n_requests": self.n_requests,
            "total_tokens": self.total_tokens,
            "scheduler_steps": self.scheduler_steps,
            "deferrals": self.deferrals,
            "preemptions": self.preemptions,
            "packed_vector_cycles": self.packed_vector_cycles,
            "sequential_vector_cycles": self.sequential_vector_cycles,
            "makespan_cycles": self.makespan_cycles,
            "p50_ttft": self.p50_ttft,
            "p99_ttft": self.p99_ttft,
            "p50_latency": self.p50_latency,
            "p99_latency": self.p99_latency,
            "slo_attainment": self.slo_attainment,
            "goodput_tokens_per_kcycle": self.goodput_tokens_per_kcycle,
            "throughput_tokens_per_kcycle": (
                self.throughput_tokens_per_kcycle
            ),
            "deferral_rate": self.deferral_rate,
            "preemption_rate": self.preemption_rate,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "prefix_hit_rate": self.prefix_hit_rate,
            "blocks_shared": self.blocks_shared,
            "cow_copies": self.cow_copies,
            "tenant_tokens": self.tenant_tokens(),
            "requests": [r.as_dict() for r in self.requests],
        }

    def to_json(self, indent: int | None = None) -> str:
        """The report as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def build_report(
    trace: "Sequence[ServingRequest]",
    result: ContinuousBatchResult,
    policy: str,
) -> ServingReport:
    """Fold one scheduler result into a :class:`ServingReport`.

    ``trace`` and ``result`` must be index-aligned (request ``i`` of
    the trace is ``result.results[i]``) — the front door guarantees
    this.  ``request_id`` is taken from each trace entry.  An empty
    trace folds into a well-formed report: zero requests, zero
    makespan, ``None`` percentiles.
    """
    if len(trace) != len(result.results):
        raise ValueError(
            f"trace has {len(trace)} requests but the result has "
            f"{len(result.results)}"
        )
    per_request = []
    for i, serving in enumerate(trace):
        first_token_time = result.first_token_times[i]
        finish_time = result.finish_times[i]
        deadline = serving.deadline
        per_request.append(
            RequestMetrics(
                request_id=serving.request_id,
                tenant=serving.tenant,
                priority=serving.priority,
                arrival=serving.arrival,
                first_token_step=result.first_token_steps[i],
                finish_step=result.finish_steps[i],
                ttft=first_token_time - serving.arrival,
                latency=finish_time - serving.arrival,
                tokens=result.results[i].n_generated,
                deadline=deadline,
                met_deadline=(
                    deadline is None or finish_time <= deadline
                ),
            )
        )
    per_request.sort(key=lambda r: r.request_id)
    paging = result.paging or {}
    return ServingReport(
        policy=policy,
        requests=tuple(per_request),
        scheduler_steps=result.scheduler_steps,
        deferrals=result.deferrals,
        preemptions=result.preemptions,
        packed_vector_cycles=result.packed_vector_cycles,
        sequential_vector_cycles=result.sequential_vector_cycles,
        makespan_cycles=max(result.finish_times, default=0.0),
        prefix_hits=int(paging.get("prefix_hits", 0)),
        prefix_misses=int(paging.get("prefix_misses", 0)),
        blocks_shared=int(paging.get("blocks_shared", 0)),
        cow_copies=int(paging.get("cow_copies", 0)),
    )
