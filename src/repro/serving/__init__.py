"""Async serving front door over the NOVA continuous-batching stack.

The package turns the synchronous in-process scheduler into a serving
system: :mod:`~repro.serving.frontdoor` routes streaming requests
(arrival, priority, tenant, deadline — all on a deterministic virtual
clock), :mod:`~repro.serving.policies` supplies pluggable scheduling
policies behind one protocol, :mod:`~repro.serving.arrivals` generates
seeded Poisson/bursty heavy-tailed workloads, and
:mod:`~repro.serving.metrics` folds a run into a JSON-serializable SLO
report (TTFT/latency percentiles, goodput, deferral/preemption rates).

Everything is deterministic and wall-clock free (novalint NV008 covers
the package), and every policy preserves bit-exact per-request outputs
relative to solo generation — scheduling moves *when* work happens,
never what it computes.
"""

from repro.serving.arrivals import (
    bounded_pareto,
    bursty_arrivals,
    build_trace,
    estimate_cycles_per_token,
    poisson_arrivals,
)
from repro.serving.frontdoor import FrontDoor, ServingRequest
from repro.serving.metrics import (
    RequestMetrics,
    ServingReport,
    build_report,
    percentile,
)
from repro.serving.policies import (
    FCFS,
    POLICIES,
    PriorityPreemptive,
    SLOAware,
    SchedulingPolicy,
    SequenceView,
    TenantFair,
    build_policy,
)

__all__ = [
    "FCFS",
    "POLICIES",
    "FrontDoor",
    "PriorityPreemptive",
    "RequestMetrics",
    "SLOAware",
    "SchedulingPolicy",
    "SequenceView",
    "ServingReport",
    "ServingRequest",
    "TenantFair",
    "bounded_pareto",
    "build_policy",
    "build_report",
    "build_trace",
    "bursty_arrivals",
    "estimate_cycles_per_token",
    "percentile",
    "poisson_arrivals",
]
