"""Workload generator: seeded Poisson and bursty heavy-tailed traces.

Serving behavior is decided by the *shape* of the offered load, so the
generator models the two properties real request streams have and
uniform benchmarks hide:

* **Heavy-tailed sizes** — prompt lengths and token budgets are drawn
  from a bounded Pareto distribution (:func:`bounded_pareto`): most
  requests are short, a few are enormous.  The tail is what separates
  the policies — under FCFS one giant request head-of-line-blocks
  every short one behind it; SLO-aware admission lets them overtake.
* **Bursty arrivals** — either a memoryless Poisson process
  (:func:`poisson_arrivals`) or an on/off burst process
  (:func:`bursty_arrivals`) in which Pareto-sized groups of requests
  land simultaneously, separated by exponential quiet gaps — the
  flash-crowd pattern that actually exercises admission queues.

All randomness flows through :func:`repro.utils.rng.make_rng` with
streams split by :func:`repro.utils.rng.derive_seed`, so a trace is a
pure function of its parameters; all times are virtual cycles.
:func:`build_trace` assembles complete
:class:`~repro.serving.frontdoor.ServingRequest` envelopes — shared
attention weights (one model serves every request), per-request
prompts, tenants and priorities, and deadlines scaled from a
cycles-per-token estimate (:func:`estimate_cycles_per_token`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.decode import DecodeRequest, NovaDecodeEngine
from repro.serving.frontdoor import ServingRequest
from repro.utils.rng import derive_seed, make_rng

__all__ = [
    "bounded_pareto",
    "bursty_arrivals",
    "build_trace",
    "estimate_cycles_per_token",
    "poisson_arrivals",
]


def bounded_pareto(
    rng: np.random.Generator,
    n: int,
    *,
    alpha: float,
    lo: int,
    hi: int,
) -> list[int]:
    """``n`` integers from a bounded Pareto distribution on [lo, hi].

    Inverse-CDF sampling of the Pareto(``alpha``) law truncated to the
    bound — the standard heavy-tail model for request sizes: mass
    concentrates at ``lo`` while rare draws reach ``hi``.  Smaller
    ``alpha`` means a heavier tail.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if alpha <= 0.0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    if not 1 <= lo <= hi:
        raise ValueError(f"need 1 <= lo <= hi, got lo={lo}, hi={hi}")
    if lo == hi:
        return [lo] * n
    l_a = float(lo) ** alpha
    h_a = float(hi) ** alpha
    out: list[int] = []
    for u in rng.random(n):
        # Inverse CDF of the [lo, hi]-truncated Pareto(alpha) law.
        x = (-(u * h_a - u * l_a - h_a) / (h_a * l_a)) ** (-1.0 / alpha)
        out.append(min(hi, max(lo, int(x))))
    return out


def poisson_arrivals(
    rng: np.random.Generator,
    n: int,
    *,
    mean_gap: float,
) -> list[float]:
    """``n`` arrival times of a Poisson process (virtual cycles).

    Inter-arrival gaps are exponential with mean ``mean_gap`` cycles;
    the first request arrives after one gap.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if mean_gap <= 0.0:
        raise ValueError(f"mean_gap must be > 0, got {mean_gap}")
    times: list[float] = []
    now = 0.0
    for gap in rng.exponential(mean_gap, size=n):
        now += float(gap)
        times.append(now)
    return times


def bursty_arrivals(
    rng: np.random.Generator,
    n: int,
    *,
    mean_gap: float,
    burst_alpha: float = 1.2,
    max_burst: int = 8,
) -> list[float]:
    """``n`` arrival times of an on/off burst process (virtual cycles).

    Requests land in bursts of Pareto-distributed size (``burst_alpha``
    tail on [1, ``max_burst``]) that arrive *simultaneously*; bursts
    are separated by exponential gaps with mean ``mean_gap`` cycles.
    The same offered load as :func:`poisson_arrivals` at equal
    ``mean_gap`` per request, but concentrated — the admission queue
    actually fills.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if mean_gap <= 0.0:
        raise ValueError(f"mean_gap must be > 0, got {mean_gap}")
    if max_burst < 1:
        raise ValueError(f"max_burst must be >= 1, got {max_burst}")
    times: list[float] = []
    now = 0.0
    while len(times) < n:
        size = bounded_pareto(
            rng, 1, alpha=burst_alpha, lo=1, hi=max_burst
        )[0]
        size = min(size, n - len(times))
        # The whole burst shares one arrival instant; the gap scales
        # with the burst so mean load matches the Poisson process.
        now += float(rng.exponential(mean_gap * size))
        times.extend([now] * size)
    return times


def estimate_cycles_per_token(
    engine: NovaDecodeEngine,
    *,
    hidden: int,
    n_heads: int,
    probe_prompt: int = 8,
    probe_tokens: int = 8,
    seed: int = 0,
) -> float:
    """Mean decode cycles per token at this geometry, by probe.

    Runs one small solo :meth:`~repro.core.decode.NovaDecodeEngine.
    generate` at the trace's model geometry and returns its measured
    ``cycles_per_token`` — the scale factor :func:`build_trace` turns
    token budgets into deadlines with.  Deterministic: the probe is
    seeded, and cycles are architectural.
    """
    rng = make_rng(derive_seed(seed, "cpt-probe"))
    scale = 1.0 / np.sqrt(hidden)
    probe = DecodeRequest(
        x=rng.normal(0.0, scale, size=(probe_prompt, hidden)),
        wq=rng.normal(0.0, scale, size=(hidden, hidden)),
        wk=rng.normal(0.0, scale, size=(hidden, hidden)),
        wv=rng.normal(0.0, scale, size=(hidden, hidden)),
        wo=rng.normal(0.0, scale, size=(hidden, hidden)),
        n_heads=n_heads,
        max_new_tokens=probe_tokens,
    )
    return engine.generate(probe).cycles_per_token


def build_trace(
    n_requests: int,
    *,
    hidden: int = 32,
    n_heads: int = 4,
    process: str = "bursty",
    mean_gap: float = 500.0,
    prompt_range: tuple[int, int] = (2, 12),
    tokens_range: tuple[int, int] = (2, 32),
    tail_alpha: float = 1.1,
    burst_alpha: float = 1.2,
    max_burst: int = 8,
    tenants: Sequence[str] = ("acme", "globex"),
    priorities: Sequence[int] = (0,),
    deadline_slack: float = 0.0,
    cycles_per_token: float | None = None,
    seed: int = 0,
) -> list[ServingRequest]:
    """A complete seeded serving trace of ``n_requests`` requests.

    One set of attention weights (``hidden``/``n_heads``) is shared by
    every request — the single-model serving setup — while prompts
    differ per request.  Prompt lengths and token budgets are bounded
    Pareto on their ranges (``tail_alpha``); arrivals follow
    ``process`` (``"poisson"`` or ``"bursty"``) with ``mean_gap``
    cycles per request.  Tenants and priorities cycle uniformly at
    random over the given alternatives.

    ``deadline_slack > 0`` attaches a deadline to every request:
    ``arrival + slack * cycles_per_token * (prompt + budget)`` —
    i.e. "finish within ``slack``× your fair solo service time", the
    natural per-request SLO (pass the probe-measured
    ``cycles_per_token`` from :func:`estimate_cycles_per_token`).
    With the default slack of 0 requests carry no deadline.

    The trace is a pure function of its arguments; ``request_id`` is
    the submission index.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if process not in ("poisson", "bursty"):
        raise ValueError(
            f"process must be 'poisson' or 'bursty', got {process!r}"
        )
    if not tenants:
        raise ValueError("need at least one tenant")
    if not priorities:
        raise ValueError("need at least one priority level")
    if deadline_slack < 0.0:
        raise ValueError(
            f"deadline_slack must be >= 0, got {deadline_slack}"
        )
    if deadline_slack > 0.0 and cycles_per_token is None:
        raise ValueError(
            "deadline_slack needs cycles_per_token (see "
            "estimate_cycles_per_token)"
        )

    weight_rng = make_rng(derive_seed(seed, "weights"))
    scale = 1.0 / np.sqrt(hidden)
    wq = weight_rng.normal(0.0, scale, size=(hidden, hidden))
    wk = weight_rng.normal(0.0, scale, size=(hidden, hidden))
    wv = weight_rng.normal(0.0, scale, size=(hidden, hidden))
    wo = weight_rng.normal(0.0, scale, size=(hidden, hidden))

    shape_rng = make_rng(derive_seed(seed, "shapes"))
    prompts = bounded_pareto(
        shape_rng, n_requests, alpha=tail_alpha,
        lo=prompt_range[0], hi=prompt_range[1],
    )
    budgets = bounded_pareto(
        shape_rng, n_requests, alpha=tail_alpha,
        lo=tokens_range[0], hi=tokens_range[1],
    )

    arrival_rng = make_rng(derive_seed(seed, "arrivals"))
    if process == "poisson":
        arrivals = poisson_arrivals(
            arrival_rng, n_requests, mean_gap=mean_gap
        )
    else:
        arrivals = bursty_arrivals(
            arrival_rng, n_requests, mean_gap=mean_gap,
            burst_alpha=burst_alpha, max_burst=max_burst,
        )

    mix_rng = make_rng(derive_seed(seed, "mix"))
    tenant_picks = mix_rng.integers(0, len(tenants), size=n_requests)
    priority_picks = mix_rng.integers(0, len(priorities), size=n_requests)

    trace: list[ServingRequest] = []
    for i in range(n_requests):
        prompt_rng = make_rng(derive_seed(seed, "prompt", i))
        deadline: float | None = None
        if deadline_slack > 0.0 and cycles_per_token is not None:
            service = cycles_per_token * (prompts[i] + budgets[i])
            deadline = arrivals[i] + deadline_slack * service
        trace.append(
            ServingRequest(
                request=DecodeRequest(
                    x=prompt_rng.normal(
                        0.0, scale, size=(prompts[i], hidden)
                    ),
                    wq=wq, wk=wk, wv=wv, wo=wo,
                    n_heads=n_heads,
                    max_new_tokens=budgets[i],
                ),
                arrival=arrivals[i],
                priority=int(priorities[int(priority_picks[i])]),
                tenant=str(tenants[int(tenant_picks[i])]),
                deadline=deadline,
                request_id=i,
            )
        )
    return trace
