"""Pluggable scheduling policies for the continuous-batching scheduler.

:class:`~repro.core.decode.ContinuousBatchScheduler` delegates every
scheduling *decision* — which waiting request to admit next, which
active sequences run a step, who gets preempted — to a policy object
implementing :class:`SchedulingPolicy`.  The scheduler keeps every
*mechanism*: memory accounting, job planning, the fused hardware
streams, deferral on pool exhaustion.  Because a policy only reorders
when work happens (never what it computes), each request's outputs,
sequential-equivalent cycles and event counters stay bit-identical to
solo :meth:`~repro.core.decode.NovaDecodeEngine.generate` under every
policy here — the property the serving test-suite and benchmark gate
both pin.

Four policies ship:

========================  ============================================
:class:`FCFS`             Queue order (arrival order).  Pins the
                          scheduler's pre-policy behavior exactly —
                          the default for every existing caller.
:class:`PriorityPreemptive`  Strict priorities; a higher-priority
                          arrival may preempt the lowest-priority
                          in-flight sequence when every slot is taken.
:class:`SLOAware`         Earliest-deadline-first admission, so tight
                          time-to-first-token budgets jump the queue;
                          preempts the sequence with the most
                          deadline slack under memory starvation.
:class:`TenantFair`       Least-loaded-tenant-first admission with an
                          optional per-tenant concurrency cap (the
                          rate limit), so one tenant's burst cannot
                          monopolise the overlay.
========================  ============================================

All times are virtual cycles on the scheduler's deterministic clock
(:class:`~repro.core.decode.SequenceMeta`); no policy reads a wall
clock or draws entropy (NV008 holds for this package).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, TypeVar, runtime_checkable

from repro.core.decode import DecodeRequest

__all__ = [
    "SequenceView",
    "SchedulingPolicy",
    "FCFS",
    "PriorityPreemptive",
    "SLOAware",
    "TenantFair",
    "POLICIES",
    "build_policy",
]


@runtime_checkable
class SequenceView(Protocol):
    """The read-only surface a policy sees of one request's sequence.

    Structurally satisfied by the scheduler's internal bookkeeping
    objects; policies must treat it as immutable.  ``index`` is the
    request's submission position, ``arrival``/``deadline`` are virtual
    cycles (:class:`~repro.core.decode.SequenceMeta`), ``admitted_at``
    is a monotone admission ticket (-1 while waiting), and
    ``remaining`` counts the generation budget still owed.
    """

    index: int
    arrival: float
    priority: int
    tenant: str
    deadline: float | None
    admitted_at: int
    remaining: int
    request: DecodeRequest


S = TypeVar("S", bound=SequenceView)


class SchedulingPolicy(Protocol):
    """Decision interface of the continuous-batching scheduler.

    One scheduler step consults the policy up to three times:

    1. :meth:`preemptions` — optional voluntary eviction of in-flight
       sequences (e.g. to make room for a higher-priority arrival);
    2. :meth:`step_order` — which active sequences run a decode step
       this round (normally all of them, in place);
    3. :meth:`admit_next` — repeatedly, the next arrived-and-waiting
       request to admit while slots and memory allow.

    :meth:`select_victim` is consulted only when every in-flight
    sequence is starved of memory and something must be preempted for
    the run to progress.  Every hook receives ``now``, the virtual
    clock in cycles.  Implementations must be deterministic pure
    functions of their arguments (ties broken on stable keys such as
    ``index`` or ``admitted_at``) — scheduler reproducibility rests on
    it.
    """

    name: str

    def step_order(
        self, active: Sequence[S], now: float
    ) -> Sequence[S]:
        """The active sequences that decode this step, in job order."""
        ...

    def admit_next(
        self,
        waiting: Sequence[S],
        in_flight: Sequence[S],
        now: float,
    ) -> S | None:
        """The next waiting (already arrived) request to admit.

        ``waiting`` preserves queue order (submission order; preempted
        sequences rejoin at the front).  ``None`` ends admission for
        this step.
        """
        ...

    def select_victim(self, active: Sequence[S], now: float) -> S:
        """The sequence to preempt when every active one is starved."""
        ...

    def preemptions(
        self,
        waiting: Sequence[S],
        active: Sequence[S],
        now: float,
        free_slots: int,
    ) -> Sequence[S]:
        """Active sequences to voluntarily evict before this step."""
        ...


class FCFS:
    """First-come-first-served: the scheduler's historical behavior.

    Admission takes the head of the queue (submission order; a
    preempted request rejoins at the front and is readmitted first),
    stops at the first request that cannot get memory (head-of-line
    blocking — a deliberate part of the pinned behavior), every active
    sequence steps every round, and forced preemption evicts the most
    recently admitted sequence.  The equivalence test pins a default
    scheduler run byte-identical to an explicit ``FCFS()`` run, and the
    golden traces pin both to the pre-policy scheduler.
    """

    name = "fcfs"

    def step_order(self, active: Sequence[S], now: float) -> Sequence[S]:
        return list(active)

    def admit_next(
        self,
        waiting: Sequence[S],
        in_flight: Sequence[S],
        now: float,
    ) -> S | None:
        return waiting[0] if waiting else None

    def select_victim(self, active: Sequence[S], now: float) -> S:
        return max(active, key=lambda s: s.admitted_at)

    def preemptions(
        self,
        waiting: Sequence[S],
        active: Sequence[S],
        now: float,
        free_slots: int,
    ) -> Sequence[S]:
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PriorityPreemptive(FCFS):
    """Strict priorities with preemption of lower-priority work.

    Admission picks the highest-priority arrived request (ties in
    queue order).  When every slot is taken and a waiting request
    outranks the lowest-priority in-flight sequence, that sequence is
    evicted (at most one per scheduler step, to bound recomputation
    churn) and restarts later — its results are still bit-identical,
    the wasted work shows up only in ``packed_vector_cycles``.  Forced
    preemption under memory starvation also evicts by lowest priority
    (ties: most recently admitted).
    """

    name = "priority-preemptive"

    def admit_next(
        self,
        waiting: Sequence[S],
        in_flight: Sequence[S],
        now: float,
    ) -> S | None:
        if not waiting:
            return None
        best = max(range(len(waiting)), key=lambda i: waiting[i].priority)
        # max() keeps the first (queue-order) index on priority ties.
        return waiting[best]

    def select_victim(self, active: Sequence[S], now: float) -> S:
        return min(
            active, key=lambda s: (s.priority, -s.admitted_at)
        )

    def preemptions(
        self,
        waiting: Sequence[S],
        active: Sequence[S],
        now: float,
        free_slots: int,
    ) -> Sequence[S]:
        if free_slots > 0 or not waiting or not active:
            return []
        challenger = max(waiting, key=lambda s: s.priority)
        victim = min(active, key=lambda s: (s.priority, -s.admitted_at))
        if challenger.priority > victim.priority:
            return [victim]
        return []


class SLOAware(FCFS):
    """Deadline-driven scheduling: earliest deadline first.

    The policy balances time-to-first-token against sustained
    tokens/sec by spending the scarce resource — admission slots and
    pool memory — on the requests whose deadlines are nearest:
    admission is earliest-absolute-deadline first (requests without a
    deadline queue behind every deadlined one, in queue order), so a
    short request with a tight TTFT budget overtakes a long-running
    bulk job instead of waiting out its whole service time.  Under
    memory starvation the sequence with the *most* deadline slack is
    preempted — it can best afford the recomputation.  On heavy-tailed
    traces this is what collapses p99 TTFT relative to :class:`FCFS`
    without giving up goodput (the benchmark gate).
    """

    name = "slo-aware"

    @staticmethod
    def _deadline(seq: SequenceView) -> float:
        return float("inf") if seq.deadline is None else seq.deadline

    def admit_next(
        self,
        waiting: Sequence[S],
        in_flight: Sequence[S],
        now: float,
    ) -> S | None:
        if not waiting:
            return None
        best = min(
            range(len(waiting)), key=lambda i: self._deadline(waiting[i])
        )
        # min() keeps the first (queue-order) index on deadline ties.
        return waiting[best]

    def select_victim(self, active: Sequence[S], now: float) -> S:
        return max(
            active, key=lambda s: (self._deadline(s) - now, s.admitted_at)
        )


class TenantFair(FCFS):
    """Per-tenant fairness with an optional concurrency rate limit.

    Admission always draws from the tenant with the fewest in-flight
    sequences (ties in queue order), so interleaved tenants converge
    to equal shares of the batch no matter how bursty any one of them
    is.  ``max_active_per_tenant`` caps a single tenant's concurrent
    sequences — the rate limit: further requests from a saturated
    tenant simply wait, even with free slots.  Forced preemption
    evicts from the most-loaded tenant (its most recently admitted
    sequence), restoring balance under memory pressure.
    """

    name = "tenant-fair"

    def __init__(self, max_active_per_tenant: int | None = None) -> None:
        if max_active_per_tenant is not None and max_active_per_tenant < 1:
            raise ValueError(
                "max_active_per_tenant must be >= 1, got "
                f"{max_active_per_tenant}"
            )
        self.max_active_per_tenant = max_active_per_tenant

    def _load(self, in_flight: Sequence[SequenceView]) -> dict[str, int]:
        counts: dict[str, int] = {}
        for seq in in_flight:
            counts[seq.tenant] = counts.get(seq.tenant, 0) + 1
        return counts

    def admit_next(
        self,
        waiting: Sequence[S],
        in_flight: Sequence[S],
        now: float,
    ) -> S | None:
        counts = self._load(in_flight)
        cap = self.max_active_per_tenant
        eligible = [
            i for i, seq in enumerate(waiting)
            if cap is None or counts.get(seq.tenant, 0) < cap
        ]
        if not eligible:
            return None
        best = min(
            eligible, key=lambda i: (counts.get(waiting[i].tenant, 0), i)
        )
        return waiting[best]

    def select_victim(self, active: Sequence[S], now: float) -> S:
        counts = self._load(active)
        return max(
            active, key=lambda s: (counts[s.tenant], s.admitted_at)
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}"
            f"(max_active_per_tenant={self.max_active_per_tenant!r})"
        )


#: Registry for name-based construction (CLI / session front doors).
POLICIES: dict[str, type[FCFS]] = {
    FCFS.name: FCFS,
    PriorityPreemptive.name: PriorityPreemptive,
    SLOAware.name: SLOAware,
    TenantFair.name: TenantFair,
}


def build_policy(policy: "str | SchedulingPolicy") -> "SchedulingPolicy":
    """Resolve a policy name (or pass a policy object through)."""
    if isinstance(policy, str):
        try:
            return POLICIES[policy]()
        except KeyError:
            available = ", ".join(sorted(POLICIES))
            raise KeyError(
                f"unknown scheduling policy {policy!r}; "
                f"available: {available}"
            ) from None
    return policy
