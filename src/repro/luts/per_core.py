"""Per-core LUT baseline: one multi-ported bank shared by all neurons.

"A per-core LUT which maps all the neurons to one multi-ported LUT bank,
which reduces the need to store multiple copies of the same data within a
core to reduce the redundancy" (§V-B).  Storage drops to one table per
core, but the bank needs as many read ports as neurons it serves — "higher
number of ports to facilitate the sharing of each LUT output across all
neurons, which leads to higher power consumption than the per-neuron LUT
baseline" (§V-C.2).
"""

from __future__ import annotations

import numpy as np

from repro.luts.lut_unit import LutVectorUnit
from repro.luts.sram_bank import SramBank

__all__ = ["PerCoreLutUnit"]


class PerCoreLutUnit(LutVectorUnit):
    """One ``neurons_per_core``-ported SRAM bank per core."""

    unit_name = "per_core_lut"

    def _build_banks(self) -> list[list[SramBank]]:
        return [
            [SramBank(table=self.table, n_ports=self.neurons_per_core)]
            for _ in range(self.n_cores)
        ]

    def _fetch(
        self, core: int, addresses: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.banks[core][0].read(addresses)

    @property
    def ports_per_bank(self) -> int:
        """Read ports on each shared bank (= neurons per core)."""
        return self.neurons_per_core
