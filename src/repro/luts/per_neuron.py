"""Per-neuron LUT baseline: one single-ported bank per neuron.

"A per-neuron LUT which maps each LUT (storing the slope and bias values)
to every neuron which uses single ported banks" (§V-B).  Every neuron owns
a private copy of the same 64-byte table — maximal on-chip data redundancy
(the redundancy NOVA's broadcast eliminates), but each read is a cheap
single-ported access.
"""

from __future__ import annotations

import numpy as np

from repro.luts.lut_unit import LutVectorUnit
from repro.luts.sram_bank import SramBank

__all__ = ["PerNeuronLutUnit"]


class PerNeuronLutUnit(LutVectorUnit):
    """One single-ported SRAM bank per neuron per core."""

    unit_name = "per_neuron_lut"

    def _build_banks(self) -> list[list[SramBank]]:
        return [
            [SramBank(table=self.table, n_ports=1) for _ in range(self.neurons_per_core)]
            for _ in range(self.n_cores)
        ]

    def _fetch(
        self, core: int, addresses: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        slopes = np.zeros(self.neurons_per_core, dtype=np.int64)
        biases = np.zeros(self.neurons_per_core, dtype=np.int64)
        core_banks = self.banks[core]
        for neuron, address in enumerate(addresses):
            s, b = core_banks[neuron].read(np.array([address]))
            slopes[neuron] = s[0]
            biases[neuron] = b[0]
        return slopes, biases

    @property
    def replicated_tables(self) -> int:
        """Copies of the identical table held on chip (the redundancy)."""
        return self.n_cores * self.neurons_per_core
