"""SRAM LUT bank: the storage element of the baseline vector units.

A bank stores the PWL table's slope/bias words.  The paper fixes each bank
at 64 bytes — 16 pairs x 2 words x 16 bits.  Port count is the axis that
separates the two baselines: the per-neuron variant uses many single-
ported banks; the per-core variant shares one bank whose port count equals
the neurons it serves, "which leads to higher power consumption" (§V-C.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.quantize import QuantizedPwl
from repro.noc.stats import EventCounters

__all__ = ["SramBank"]


@dataclass
class SramBank:
    """A (possibly multi-ported) SRAM bank holding one PWL table.

    Attributes
    ----------
    table:
        The quantised table whose coefficient words fill the bank.
    n_ports:
        Simultaneous read ports.  Reads beyond the port count in one cycle
        are a modelling error (the hardware would need arbitration the
        baselines do not have), so :meth:`read` enforces it.
    """

    table: QuantizedPwl
    n_ports: int = 1
    counters: EventCounters = field(default_factory=EventCounters)

    def __post_init__(self) -> None:
        if self.n_ports < 1:
            raise ValueError(f"n_ports must be >= 1, got {self.n_ports}")
        self._words = self.table.coefficient_words()  # (n_segments, 2)

    @property
    def capacity_bytes(self) -> int:
        """Bank size in bytes (64 B for a 16-entry, 16-bit-word table)."""
        word_bytes = self.table.coeff_format.word_bits / 8.0
        return int(round(self._words.size * word_bytes))

    @property
    def n_entries(self) -> int:
        """Addressable (slope, bias) entries."""
        return self._words.shape[0]

    def read(self, addresses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One cycle of port reads: (slopes_raw, biases_raw) per address.

        ``len(addresses)`` must not exceed the port count.  Each read is
        counted once for the energy model, tagged with the bank's port
        count (multi-ported reads cost more energy).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.ndim != 1:
            raise ValueError(f"addresses must be 1-D, got shape {addresses.shape}")
        if len(addresses) > self.n_ports:
            raise ValueError(
                f"{len(addresses)} simultaneous reads exceed the bank's "
                f"{self.n_ports} ports"
            )
        if np.any(addresses < 0) or np.any(addresses >= self.n_entries):
            raise ValueError("read address out of range")
        self.counters.add("lut_read", len(addresses))
        return self._words[addresses, 0].copy(), self._words[addresses, 1].copy()
