"""NVDLA Single Data Processor (SDP) model.

NVDLA's SDP is the engine that "compute[s] activation functions" in the
stock Jetson configuration (§III-B.3); the paper compares it, as the
incumbent LUT-based approximator, against NOVA attached directly to the
convolution cores (§V-E: 4.99x area, 37.8x power in NOVA's favour).

Functionally the SDP is modelled as a per-core LUT unit with NVDLA's
geometry (16 output neurons per convolution core) plus the SDP's extra
post-processing datapath (bias addition / batch-norm scaling stages),
which is why its cost model in :mod:`repro.hw.calibration` carries a
fixed per-engine overhead beyond the bare LUT bank.
"""

from __future__ import annotations

import numpy as np

from repro.approx.quantize import QuantizedPwl
from repro.luts.per_core import PerCoreLutUnit
from repro.luts.lut_unit import LutResult

__all__ = ["NvdlaSdp"]

#: NVDLA convolution cores emit this many output neurons per cycle in the
#: Jetson Xavier NX configuration of Table II.
NVDLA_NEURONS_PER_CORE = 16


class NvdlaSdp(PerCoreLutUnit):
    """The stock NVDLA activation path (LUT-based), 16 lanes per core."""

    unit_name = "nvdla_sdp"

    def __init__(self, table: QuantizedPwl, n_cores: int = 2) -> None:
        super().__init__(
            table=table, n_cores=n_cores, neurons_per_core=NVDLA_NEURONS_PER_CORE
        )

    def process_with_postscale(
        self, x: np.ndarray, scale: float = 1.0, offset: float = 0.0
    ) -> LutResult:
        """SDP activation plus its elementwise post-scaling stage.

        NVDLA's SDP chains the activation LUT with per-channel scale/offset
        (used for batch-norm folding); the post-scale stays in the same
        fixed-point output format.
        """
        base = self.approximate(x)
        scaled = self.table.output_format.quantize(base.outputs * scale + offset)
        for mac in self.macs:
            mac.counters.add("postscale_op", self.neurons_per_core)
        return LutResult(
            outputs=scaled,
            latency_pe_cycles=base.latency_pe_cycles + 1,
            counters=base.counters,
        )
