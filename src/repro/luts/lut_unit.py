"""Common machinery of the LUT-based baseline vector units.

Both baselines implement the NN-LUT 2-cycle pipeline of the Fig. 2
walkthrough: in cycle 1 the comparators form the lookup address and the
LUT is read; in cycle 2 the MAC computes ``slope * x + bias``.  The
subclasses differ only in bank organisation (see package docstring).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.quantize import QuantizedPwl
from repro.core.comparator import ComparatorBank
from repro.core.mac import MacLane
from repro.luts.sram_bank import SramBank
from repro.noc.stats import EventCounters

__all__ = ["LutVectorUnit", "LutResult"]

#: Fetch + MAC, matching NOVA's end-to-end latency (paper §V-B: "Both
#: baseline LUT versions operate at the same clock frequency as the rest
#: of the accelerator, so NOVA's latency is identical to that of the
#: baseline").
PIPELINE_LATENCY_CYCLES = 2


@dataclass(frozen=True)
class LutResult:
    """One batch through a LUT unit (mirror of NOVA's result type)."""

    outputs: np.ndarray
    latency_pe_cycles: int
    counters: EventCounters


class LutVectorUnit:
    """Base class: comparators + SRAM banks + MACs across cores.

    Subclasses implement :meth:`_build_banks` (bank organisation) and
    :meth:`_fetch` (which bank serves which neuron's read).
    """

    unit_name = "lut"

    def __init__(
        self,
        table: QuantizedPwl,
        n_cores: int,
        neurons_per_core: int,
    ) -> None:
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        if neurons_per_core < 1:
            raise ValueError(
                f"neurons_per_core must be >= 1, got {neurons_per_core}"
            )
        self.table = table
        self.n_cores = n_cores
        self.neurons_per_core = neurons_per_core
        self.comparators = [
            ComparatorBank(table=table, n_neurons=neurons_per_core)
            for _ in range(n_cores)
        ]
        self.macs = [
            MacLane(n_neurons=neurons_per_core, output_format=table.output_format)
            for _ in range(n_cores)
        ]
        self.banks: list[list[SramBank]] = self._build_banks()

    # ------------------------------------------------------------------
    # Subclass hooks.
    # ------------------------------------------------------------------

    def _build_banks(self) -> list[list[SramBank]]:
        """Bank instances per core (organisation-specific)."""
        raise NotImplementedError

    def _fetch(
        self, core: int, addresses: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cycle-1 fetch: (slopes_raw, biases_raw) for one core's neurons."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared pipeline.
    # ------------------------------------------------------------------

    def approximate(self, x: np.ndarray) -> LutResult:
        """One batch of PE outputs through the 2-cycle pipeline.

        ``x`` has shape ``(n_cores, neurons_per_core)``; the result is
        bit-exact against the :class:`QuantizedPwl` golden model, like
        NOVA's — the two implementations must agree bit-for-bit.
        """
        x = np.asarray(x, dtype=np.float64)
        expected = (self.n_cores, self.neurons_per_core)
        if x.shape != expected:
            raise ValueError(f"expected input shape {expected}, got {x.shape}")
        before = self.lifetime_counters()
        coeff_scale = self.table.coeff_format.scale
        xq = self.table.input_format.quantize(self.table.quantized_pwl.clamp(x))
        outputs = np.zeros_like(xq)
        for core in range(self.n_cores):
            addresses = self.comparators[core].lookup_addresses(x[core])
            slopes_raw, biases_raw = self._fetch(core, addresses)
            outputs[core] = self.macs[core].approximate(
                slopes_raw * coeff_scale, xq[core], biases_raw * coeff_scale
            )
        return LutResult(
            outputs=outputs,
            latency_pe_cycles=PIPELINE_LATENCY_CYCLES,
            counters=self.lifetime_counters().diff(before),
        )

    def golden_reference(self, x: np.ndarray) -> np.ndarray:
        """The shared functional model (identical to NOVA's)."""
        return self.table.evaluate(np.asarray(x, dtype=np.float64))

    def lifetime_counters(self) -> EventCounters:
        """All events so far across comparators, banks and MACs."""
        merged = EventCounters()
        for bank_row in self.banks:
            for bank in bank_row:
                merged = merged.merge(bank.counters)
        for comp in self.comparators:
            merged = merged.merge(comp.counters)
        for mac in self.macs:
            merged = merged.merge(mac.counters)
        return merged

    @property
    def total_lut_bytes(self) -> int:
        """Aggregate SRAM capacity across all banks (redundancy metric)."""
        return sum(
            bank.capacity_bytes for bank_row in self.banks for bank in bank_row
        )
