"""Baseline LUT-based vector units (what NOVA replaces).

The paper models "two versions of LUT-based vector units ... a per-neuron
LUT which maps each LUT (storing the slope and bias values) to every
neuron which uses single ported banks and ... a per-core LUT which maps
all the neurons to one multi-ported LUT bank ... These two versions give
an estimate of two extreme variations of LUT-based architectures.  The
size of each LUT bank is kept at 64 bytes each since 16 pairs of the
slope and bias values are stored in each LUT" (§V-B).

Both share NOVA's comparator front-end and MAC back-end and the 2-cycle
pipeline of the Fig. 2 walkthrough (cycle 1: fetch slope/bias from the
LUT, cycle 2: MAC); the difference against NOVA is purely *where the
table lives* — SRAM banks here, the NoC wires there — which is why the
evaluation holds latency equal and compares area/power/energy.

:mod:`repro.luts.sdp` models NVDLA's Single Data Processor, the
LUT-based activation engine NOVA replaces in the Jetson configuration.
"""

from repro.luts.sram_bank import SramBank
from repro.luts.lut_unit import LutVectorUnit, LutResult
from repro.luts.per_neuron import PerNeuronLutUnit
from repro.luts.per_core import PerCoreLutUnit
from repro.luts.sdp import NvdlaSdp

__all__ = [
    "SramBank",
    "LutVectorUnit",
    "LutResult",
    "PerNeuronLutUnit",
    "PerCoreLutUnit",
    "NvdlaSdp",
]
