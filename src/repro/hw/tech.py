"""Technology node constants.

The numbers are representative of a commercial 22 nm low-power process at
0.8 V (the paper's operating voltage, Table II) and are consistent with
standard scaling texts (Weste & Harris, "CMOS VLSI Design") and published
component surveys.  They are deliberately *simple* — one number per
component class — because the reproduction's claims are comparative; the
per-unit-type calibration in :mod:`repro.hw.calibration` absorbs the
residual against the paper's synthesis flow.

28 nm constants (for the Table IV comparison against NACU, which was
synthesised at 28 nm) are derived by classical constant-field scaling of
the 22 nm values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TechNode", "TECH_22NM", "TECH_28NM"]


@dataclass(frozen=True)
class TechNode:
    """Area / energy / leakage constants for one process corner.

    Areas in um^2, energies in pJ (per operation at the stated voltage),
    leakage in mW per mm^2 of active area.
    """

    name: str
    feature_nm: float
    voltage_v: float

    # --- logic area ---------------------------------------------------
    nand2_area_um2: float = 0.25          # NAND2-equivalent gate footprint
    ff_area_um2_per_bit: float = 2.5      # DFF incl. local clocking
    comparator_area_um2_per_bit: float = 0.8
    mac16_area_um2: float = 475.0         # 16x16 multiplier + 32b add + round
    mux2_area_um2_per_bit: float = 0.35

    # --- SRAM macro ---------------------------------------------------
    sram_cell_um2_per_bit: float = 0.15   # 6T cell incl. array overhead
    sram_periphery_base_um2: float = 1400.0   # decoder/sense/control floor
    sram_periphery_per_port_um2: float = 150.0
    sram_multiport_cell_factor: float = 0.12  # extra cell area per port

    # --- global wires (the resource NOVA trades memory for) ------------
    wire_track_pitch_um: float = 0.2      # intermediate-metal pitch+space
    wire_area_charge: float = 0.5         # fraction billed (routed over logic)
    wire_cap_ff_per_mm: float = 200.0     # repeated-wire capacitance

    # --- per-operation energies ---------------------------------------
    comparator_pj_per_bit: float = 0.0001
    mac16_pj: float = 0.04
    ff_write_pj_per_bit: float = 0.0006   # data write (per toggled cycle)
    ff_clock_pj_per_bit: float = 0.0004   # clock pin load (every cycle)
    mux_pj_per_bit: float = 0.0001
    sram_read_pj_base: float = 0.45       # 64 B single-ported read
    sram_read_port_factor: float = 0.015  # extra energy per extra port
    wire_activity: float = 0.15           # average toggle rate on the link
    repeater_pj_per_bit_per_mm: float = 0.010

    # --- static -------------------------------------------------------
    leakage_mw_per_mm2: float = 8.0

    def wire_energy_pj_per_bit_mm(self) -> float:
        """Switching energy of 1 bit over 1 mm of repeated wire.

        ``E = activity * 0.5 * C * V^2`` plus the repeater drivers.
        """
        cap_pf = self.wire_cap_ff_per_mm / 1000.0
        switching = self.wire_activity * 0.5 * cap_pf * self.voltage_v ** 2
        return switching + self.repeater_pj_per_bit_per_mm

    def wire_area_um2_per_bit_mm(self) -> float:
        """Die area billed for 1 bit of link over 1 mm."""
        return self.wire_track_pitch_um * 1000.0 * self.wire_area_charge

    def scaled_to(self, feature_nm: float, voltage_v: float) -> "TechNode":
        """Constant-field scale to another node (for Table IV's 28 nm).

        Area scales with the square of the feature ratio; dynamic energy
        with ``s * v^2`` (capacitance down with s, voltage explicit);
        leakage density is held (a deliberate simplification).
        """
        s = feature_nm / self.feature_nm
        v = (voltage_v / self.voltage_v) ** 2
        return replace(
            self,
            name=f"{feature_nm:g}nm@{voltage_v:g}V",
            feature_nm=feature_nm,
            voltage_v=voltage_v,
            nand2_area_um2=self.nand2_area_um2 * s * s,
            ff_area_um2_per_bit=self.ff_area_um2_per_bit * s * s,
            comparator_area_um2_per_bit=self.comparator_area_um2_per_bit * s * s,
            mac16_area_um2=self.mac16_area_um2 * s * s,
            mux2_area_um2_per_bit=self.mux2_area_um2_per_bit * s * s,
            sram_cell_um2_per_bit=self.sram_cell_um2_per_bit * s * s,
            sram_periphery_base_um2=self.sram_periphery_base_um2 * s * s,
            sram_periphery_per_port_um2=self.sram_periphery_per_port_um2 * s * s,
            wire_track_pitch_um=self.wire_track_pitch_um * s,
            comparator_pj_per_bit=self.comparator_pj_per_bit * s * v,
            mac16_pj=self.mac16_pj * s * v,
            ff_write_pj_per_bit=self.ff_write_pj_per_bit * s * v,
            ff_clock_pj_per_bit=self.ff_clock_pj_per_bit * s * v,
            mux_pj_per_bit=self.mux_pj_per_bit * s * v,
            sram_read_pj_base=self.sram_read_pj_base * s * v,
            repeater_pj_per_bit_per_mm=self.repeater_pj_per_bit_per_mm * s * v,
            wire_cap_ff_per_mm=self.wire_cap_ff_per_mm,  # per-mm cap ~node-flat
        )


#: The paper's synthesis corner: commercial 22 nm CMOS at 0.8 V (Table II).
TECH_22NM = TechNode(name="22nm@0.8V", feature_nm=22.0, voltage_v=0.8)

#: NACU's corner (Table IV row 1), derived by constant-field scaling.
TECH_28NM = TECH_22NM.scaled_to(feature_nm=28.0, voltage_v=0.9)
