"""Per-component area and per-operation-energy models.

Every vector-unit variant in the evaluation is a composition of these
seven components; :mod:`repro.hw.costs` does the composing.  Each builder
returns a :class:`ComponentCost` so unit totals keep a named breakdown —
the experiment reports print the breakdowns, which is how one audits *why*
NOVA wins (no SRAM term, a wire term instead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.sram import SramMacroModel
from repro.hw.tech import TechNode, TECH_22NM

__all__ = [
    "ComponentCost",
    "comparator_bank_cost",
    "mac_lane_cost",
    "register_bank_cost",
    "tag_match_cost",
    "crossbar_cost",
    "repeater_cost",
    "link_wire_cost",
    "sram_bank_cost",
]


@dataclass(frozen=True)
class ComponentCost:
    """Area plus the energy of one *use* of the component.

    ``energy_per_op_pj`` is per activation (one compare, one MAC, one
    read, one beat traversal ...); power follows as energy x rate in
    :mod:`repro.hw.costs`.
    """

    name: str
    area_um2: float
    energy_per_op_pj: float

    def __post_init__(self) -> None:
        if self.area_um2 < 0 or self.energy_per_op_pj < 0:
            raise ValueError(f"negative cost for component {self.name!r}")

    def scaled(self, count: float) -> "ComponentCost":
        """``count`` parallel instances, each used once per op."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return ComponentCost(
            name=self.name,
            area_um2=self.area_um2 * count,
            energy_per_op_pj=self.energy_per_op_pj * count,
        )


def comparator_bank_cost(
    n_cuts: int, word_bits: int = 16, tech: TechNode = TECH_22NM
) -> ComponentCost:
    """One neuron lane's comparator bank (``n_cuts`` parallel compares).

    A 16-entry table needs 15 comparators; all fire every lookup, which is
    why the energy term multiplies by the full count.
    """
    if n_cuts < 0:
        raise ValueError(f"n_cuts must be >= 0, got {n_cuts}")
    area = n_cuts * word_bits * tech.comparator_area_um2_per_bit
    energy = n_cuts * word_bits * tech.comparator_pj_per_bit
    return ComponentCost("comparator_bank", area, energy)


def mac_lane_cost(word_bits: int = 16, tech: TechNode = TECH_22NM) -> ComponentCost:
    """One neuron lane's multiply-accumulate (slope * x + bias)."""
    scale = (word_bits / 16.0) ** 2  # multiplier area/energy ~ bits^2
    return ComponentCost("mac", tech.mac16_area_um2 * scale, tech.mac16_pj * scale)


def register_bank_cost(bits: int, tech: TechNode = TECH_22NM) -> ComponentCost:
    """Flip-flop bank; one op = one full-width write."""
    if bits < 0:
        raise ValueError(f"bits must be >= 0, got {bits}")
    return ComponentCost(
        "registers",
        bits * tech.ff_area_um2_per_bit,
        bits * tech.ff_write_pj_per_bit,
    )


def tag_match_cost(
    tag_bits: int = 1, select_bits: int = 3, tech: TechNode = TECH_22NM
) -> ComponentCost:
    """One neuron lane's tag comparator + slot mux (NOVA router, Fig. 3).

    Matches the beat tag against the address LSBs and selects one of 8
    pairs — a few gates plus a 32-bit-wide 8:1 mux.
    """
    if tag_bits < 1 or select_bits < 0:
        raise ValueError("tag_bits must be >= 1 and select_bits >= 0")
    match_gates = 4 * tag_bits
    mux_bits = 32 * max(select_bits, 1)  # 8:1 mux ~= 3 levels of 2:1 per bit
    area = match_gates * tech.nand2_area_um2 + mux_bits * tech.mux2_area_um2_per_bit
    energy = tag_bits * 16 * tech.comparator_pj_per_bit + mux_bits * tech.mux_pj_per_bit
    return ComponentCost("tag_match", area, energy)


def crossbar_cost(
    in_ports: int, out_ports: int, width_bits: int, tech: TechNode = TECH_22NM
) -> ComponentCost:
    """An ``in x out`` crossbar of ``width_bits`` lanes (REACT overlay)."""
    if min(in_ports, out_ports, width_bits) < 1:
        raise ValueError("crossbar dimensions must all be >= 1")
    cross_points = in_ports * out_ports * width_bits
    area = cross_points * tech.mux2_area_um2_per_bit
    energy = out_ports * width_bits * tech.mux_pj_per_bit * in_ports
    return ComponentCost("crossbar", area, energy)


def repeater_cost(width_bits: int, tech: TechNode = TECH_22NM) -> ComponentCost:
    """The clockless repeater bank driving one hop of link.

    Area only — the drive energy is folded into the wire's pJ/bit/mm
    constant (see :meth:`TechNode.wire_energy_pj_per_bit_mm`).
    """
    if width_bits < 1:
        raise ValueError(f"width_bits must be >= 1, got {width_bits}")
    area = width_bits * 4 * tech.nand2_area_um2  # 2 staged inverters per bit
    return ComponentCost("repeaters", area, 0.0)


def link_wire_cost(
    width_bits: int, length_mm: float, tech: TechNode = TECH_22NM
) -> ComponentCost:
    """One hop of routed link: billed wire area + per-beat energy.

    This is the component the paper ran placement-and-routing to capture
    ("as NOVA replaces ... registers and memory elements with wires, and
    wiring overhead can be under-estimated by synthesis", §V-A): the slope
    and bias values are 'stored' in these wires.
    """
    if width_bits < 1:
        raise ValueError(f"width_bits must be >= 1, got {width_bits}")
    if length_mm <= 0:
        raise ValueError(f"length_mm must be > 0, got {length_mm}")
    area = width_bits * length_mm * tech.wire_area_um2_per_bit_mm()
    energy = width_bits * length_mm * tech.wire_energy_pj_per_bit_mm()
    return ComponentCost("link_wires", area, energy)


def sram_bank_cost(
    capacity_bytes: int, n_ports: int, tech: TechNode = TECH_22NM
) -> ComponentCost:
    """An SRAM LUT bank; one op = one single-port read."""
    macro = SramMacroModel(
        capacity_bytes=capacity_bytes, n_ports=n_ports, tech=tech
    )
    return ComponentCost("sram_bank", macro.area_um2(), macro.read_energy_pj())
