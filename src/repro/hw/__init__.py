"""Hardware cost models (area / power / energy) at the 22 nm node.

This package substitutes for the paper's Synopsys DC + Cadence Genus/
Innovus flow (§V-A).  It is a *component-level analytical model*: every
vector-unit variant is decomposed into registers, comparators, MACs, SRAM
macros, crossbars, repeaters and global wires, each carrying area and
per-operation energy constants representative of a commercial 22 nm
process.  Crucially the model captures the three structural effects that
drive every result in the paper:

1. **SRAM redundancy** — the per-neuron LUT baseline pays one 64-byte
   macro (cells + periphery) per neuron; periphery dominates at this size,
   so the cost per neuron is large and perfectly linear.
2. **Multi-porting** — the per-core LUT baseline's shared bank needs one
   read port per neuron; multi-ported cell area and read energy grow with
   port count, which is what makes it cheaper in area but *more* expensive
   in power than per-neuron at scale (§V-C.2, §V-D.2).
3. **Wires instead of memory** — NOVA pays a fixed per-router cost
   (257-bit registers, repeaters, and the routed link wires that the
   paper's P&R step was specifically run to capture) plus a small
   per-neuron cost (tag match + capture latches + the comparator/MAC
   every variant needs), so it scales better with neuron count (Figs 6-7).

Absolute numbers are anchored to the paper's published totals via the
per-unit-type calibration factors in :mod:`repro.hw.calibration`; both the
raw-model and calibrated values are reported by the experiment harness,
with deltas recorded in EXPERIMENTS.md.
"""

from repro.hw.tech import TechNode, TECH_22NM, TECH_28NM
from repro.hw.sram import SramMacroModel
from repro.hw.components import (
    comparator_bank_cost,
    mac_lane_cost,
    register_bank_cost,
    tag_match_cost,
    crossbar_cost,
    repeater_cost,
    link_wire_cost,
    ComponentCost,
)
from repro.hw.costs import (
    VectorUnitCost,
    nova_router_cost,
    per_neuron_lut_cost,
    per_core_lut_cost,
    sdp_cost,
    unit_cost,
)
from repro.hw.energy import EnergyModel
from repro.hw.calibration import calibrated_cost, CALIBRATION_FACTORS

__all__ = [
    "TechNode",
    "TECH_22NM",
    "TECH_28NM",
    "SramMacroModel",
    "ComponentCost",
    "comparator_bank_cost",
    "mac_lane_cost",
    "register_bank_cost",
    "tag_match_cost",
    "crossbar_cost",
    "repeater_cost",
    "link_wire_cost",
    "VectorUnitCost",
    "nova_router_cost",
    "per_neuron_lut_cost",
    "per_core_lut_cost",
    "sdp_cost",
    "unit_cost",
    "EnergyModel",
    "calibrated_cost",
    "CALIBRATION_FACTORS",
]
