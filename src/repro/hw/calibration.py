"""Calibration of the analytical model against the paper's synthesis.

The component model in :mod:`repro.hw.costs` is physical but uncalibrated:
its constants are representative 22 nm values, not the foundry's.  The
paper's own numbers come from a commercial P&R flow we cannot run, so we
fit **one multiplicative factor per (unit type, metric)** — nothing
per-configuration — by least squares in log space over every Table III
data point, and freeze the result here.  Shapes (scaling with neurons,
ports, frequency) therefore come entirely from the model; only the global
gauge is set by the paper.

``calibrated_cost`` is what the experiment harness uses; the raw model is
always reported alongside so EXPERIMENTS.md can show both.

Fit provenance: ``benchmarks/fit_calibration.py`` reproduces the factors
from ``repro.eval.paper_data`` (run it after changing any tech constant).
"""

from __future__ import annotations

from repro.hw.costs import VectorUnitCost, unit_cost
from repro.hw.tech import TechNode, TECH_22NM

__all__ = ["CALIBRATION_FACTORS", "calibrated_cost", "fit_calibration_factors"]

#: (unit_name, metric) -> multiplicative factor.  metric is "area" or
#: "energy" (energy scales dynamic power and per-query energy together).
#:
#: Fitted (geometric mean of paper/model over every Table III data point
#: for that unit type) by ``benchmarks/fit_calibration.py``.  Per-config
#: residuals after this global gauge are within 10-35% everywhere except
#: the REACT per-core-LUT power row, where the paper's own number
#: (292.57 mW, barely above its per-neuron baseline) is inconsistent with
#: the paper's TPU trend (2.25x above per-neuron); see EXPERIMENTS.md.
CALIBRATION_FACTORS: dict[tuple[str, str], float] = {
    ("nova", "area"): 0.7655,
    ("nova", "energy"): 0.7793,
    ("per_neuron_lut", "area"): 1.0963,
    ("per_neuron_lut", "energy"): 0.8659,
    ("per_core_lut", "area"): 1.5263,
    ("per_core_lut", "energy"): 0.5170,
    ("nvdla_sdp", "area"): 1.0501,
    ("nvdla_sdp", "energy"): 0.6482,
}


def fit_calibration_factors() -> dict[tuple[str, str], float]:
    """Re-derive the factors from Table III (the provenance function).

    Geometric mean of paper/model per unit type: area directly; energy as
    the residual dynamic power after subtracting area-scaled leakage.
    ``benchmarks/fit_calibration.py`` prints this; a regression test pins
    the frozen table against it so a tech-constant change cannot silently
    drift the calibration.
    """
    import numpy as np

    from repro.eval.paper_data import TABLE2_CONFIGS, TABLE3_OVERHEAD

    factors: dict[tuple[str, str], float] = {}
    for unit in ("nova", "per_neuron_lut", "per_core_lut", "nvdla_sdp"):
        area_ratios = []
        energy_ratios = []
        for (acc, u), (paper_area, paper_power) in TABLE3_OVERHEAD.items():
            if u != unit:
                continue
            cfg = TABLE2_CONFIGS[acc]
            cost = unit_cost(
                unit, cfg.neurons_per_router, 16, cfg.frequency_ghz,
                hop_mm=cfg.hop_mm,
            )
            n = cfg.n_routers
            area_factor = paper_area / (cost.area_mm2 * n)
            utilization = cfg.utilization if unit == "nova" else 1.0
            dynamic = cost.dynamic_power_mw(utilization) * n
            leakage = cost.leakage_power_mw() * n * area_factor
            energy_factor = max((paper_power - leakage) / dynamic, 0.05)
            area_ratios.append(area_factor)
            energy_ratios.append(energy_factor)
        factors[(unit, "area")] = float(np.exp(np.mean(np.log(area_ratios))))
        factors[(unit, "energy")] = float(
            np.exp(np.mean(np.log(energy_ratios)))
        )
    return factors


def calibrated_cost(
    unit_name: str,
    neurons: int,
    n_segments: int = 16,
    pe_frequency_ghz: float = 1.0,
    hop_mm: float = 1.0,
    tech: TechNode = TECH_22NM,
    extra_crossbars: tuple[tuple[int, int, int], ...] = (),
) -> VectorUnitCost:
    """The analytical cost with the frozen calibration factors applied."""
    cost = unit_cost(
        unit_name,
        neurons,
        n_segments=n_segments,
        pe_frequency_ghz=pe_frequency_ghz,
        hop_mm=hop_mm,
        tech=tech,
        extra_crossbars=extra_crossbars,
    )
    area_factor = CALIBRATION_FACTORS.get((unit_name, "area"), 1.0)
    energy_factor = CALIBRATION_FACTORS.get((unit_name, "energy"), 1.0)
    return cost.scaled_area(area_factor).scaled_energy(energy_factor)
