"""SRAM macro model: area, read energy and leakage vs size and ports.

Two effects matter for the paper's comparison:

* **Periphery floor.**  A 64-byte macro is all periphery: decoders, sense
  amplifiers and control dwarf the 512 cell bits.  This is why the
  per-neuron LUT baseline is so expensive — it pays that floor once per
  neuron.
* **Multi-porting.**  Each extra port adds a wordline and bitline pair
  per cell (cell area grows with port count) plus its own periphery
  slice, and every read drives longer, more heavily loaded bitlines
  (read energy grows with port count).  This is the per-core baseline's
  power problem (§V-C.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.tech import TechNode, TECH_22NM
from repro.utils.validation import check_positive

__all__ = ["SramMacroModel"]


@dataclass(frozen=True)
class SramMacroModel:
    """Analytical model of one SRAM macro."""

    capacity_bytes: int
    n_ports: int = 1
    tech: TechNode = TECH_22NM

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        if self.n_ports < 1:
            raise ValueError(f"n_ports must be >= 1, got {self.n_ports}")

    @property
    def bits(self) -> int:
        """Storage bits."""
        return self.capacity_bytes * 8

    def area_um2(self) -> float:
        """Macro area: multi-port-scaled cells plus per-port periphery.

        Cell area grows linearly-squared with ports (one extra wordline
        *and* bitline pair each): ``(1 + f*(p-1))^2`` on the cell
        footprint, the classical multi-port layout rule.
        """
        t = self.tech
        port_growth = (1.0 + t.sram_multiport_cell_factor * (self.n_ports - 1)) ** 2
        cell_area = self.bits * t.sram_cell_um2_per_bit * port_growth
        periphery = (
            t.sram_periphery_base_um2
            + t.sram_periphery_per_port_um2 * (self.n_ports - 1)
        )
        return cell_area + periphery

    def read_energy_pj(self) -> float:
        """Energy of one read through one port.

        The base is a 64-byte single-ported read; energy scales with the
        square root of capacity (bitline length) and linearly with the
        port count (bitline loading).
        """
        t = self.tech
        size_factor = (self.capacity_bytes / 64.0) ** 0.5
        port_factor = 1.0 + t.sram_read_port_factor * (self.n_ports - 1)
        return t.sram_read_pj_base * size_factor * port_factor

    def leakage_mw(self) -> float:
        """Static power of the macro."""
        return self.area_um2() * 1e-6 * self.tech.leakage_mw_per_mm2
