"""Vector-unit cost composition: area, power, per-query energy.

One :class:`VectorUnitCost` describes one *unit* (a NOVA router, or the
LUT hardware of one core) at a given clock; accelerator totals multiply by
the unit count.  All four variants share the comparator + MAC + pipeline-
register skeleton; they differ in the table-storage term:

=================  ====================================================
per-neuron LUT     + one 64 B single-ported SRAM macro *per neuron*
per-core LUT       + one 64 B ``n``-ported SRAM macro per core
NVDLA SDP          per-core LUT + the SDP's post-processing datapath
                   and its always-on engine control
NOVA router        + 257-bit east registers, bypass mux, repeaters and
                   the routed link wires; per-neuron tag-match logic
=================  ====================================================

Power is split the way a synthesis power report splits it:

* **clocked** energy is paid every cycle regardless of work — flip-flop
  clock-pin loading, engine control/sequencing.  The LUT baselines are
  conventionally clocked designs; NOVA's only clocked element is the
  thin 257-bit east register bank (at the NoC clock).
* **active** energy is paid per actual operation — comparisons, MACs,
  SRAM reads, and NOVA's wire broadcasts (wires do not toggle when no
  value is sent, which is the physical root of the paper's power gap).

``power_mw(utilization)`` is ``(clocked + util * active) * f + leakage``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.components import (
    ComponentCost,
    comparator_bank_cost,
    crossbar_cost,
    link_wire_cost,
    mac_lane_cost,
    register_bank_cost,
    repeater_cost,
    sram_bank_cost,
    tag_match_cost,
)
from repro.hw.tech import TechNode, TECH_22NM
from repro.utils.validation import check_positive

__all__ = [
    "VectorUnitCost",
    "nova_router_cost",
    "per_neuron_lut_cost",
    "per_core_lut_cost",
    "sdp_cost",
    "unit_cost",
    "LINK_BITS",
    "PIPELINE_REG_BITS",
]

#: 16 words of 16 bits (8 slope/bias pairs) + 1 tag bit (paper Fig. 3).
LINK_BITS = 257

#: Pipeline register between the fetch and MAC stages: one slope + one
#: bias word per neuron lane (present in every variant).
PIPELINE_REG_BITS = 32


@dataclass(frozen=True)
class VectorUnitCost:
    """Cost of one vector-processing unit instance.

    ``area_breakdown`` maps component name to um^2.  The two energy
    breakdowns map component name to pJ per PE cycle: ``clocked`` is paid
    every cycle, ``active`` only on utilised cycles (see module docstring).
    """

    unit_name: str
    neurons: int
    pe_frequency_ghz: float
    tech: TechNode
    area_breakdown: dict[str, float] = field(default_factory=dict)
    clocked_energy_breakdown_pj: dict[str, float] = field(default_factory=dict)
    active_energy_breakdown_pj: dict[str, float] = field(default_factory=dict)

    @property
    def area_um2(self) -> float:
        """Total unit area."""
        return sum(self.area_breakdown.values())

    @property
    def area_mm2(self) -> float:
        """Total unit area in mm^2."""
        return self.area_um2 * 1e-6

    @property
    def clocked_energy_pj(self) -> float:
        """Per-cycle energy paid regardless of utilisation."""
        return sum(self.clocked_energy_breakdown_pj.values())

    @property
    def active_energy_pj(self) -> float:
        """Per-cycle energy at full utilisation (every lane working)."""
        return sum(self.active_energy_breakdown_pj.values())

    @property
    def cycle_energy_pj(self) -> float:
        """Total dynamic energy of one fully-utilised PE cycle."""
        return self.clocked_energy_pj + self.active_energy_pj

    def dynamic_power_mw(self, utilization: float = 1.0) -> float:
        """Dynamic power at the unit's PE clock (pJ/cycle x GHz = mW)."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        per_cycle = self.clocked_energy_pj + utilization * self.active_energy_pj
        return per_cycle * self.pe_frequency_ghz

    def leakage_power_mw(self) -> float:
        """Static power from area and the node's leakage density."""
        return self.area_mm2 * self.tech.leakage_mw_per_mm2

    def power_mw(self, utilization: float = 1.0) -> float:
        """Total unit power."""
        return self.dynamic_power_mw(utilization) + self.leakage_power_mw()

    def energy_per_query_pj(self) -> float:
        """Dynamic energy per single neuron approximation (full util)."""
        return self.cycle_energy_pj / self.neurons

    def scaled_area(self, factor: float) -> "VectorUnitCost":
        """Uniformly scale areas (used by calibration)."""
        check_positive("factor", factor)
        return VectorUnitCost(
            unit_name=self.unit_name,
            neurons=self.neurons,
            pe_frequency_ghz=self.pe_frequency_ghz,
            tech=self.tech,
            area_breakdown={k: v * factor for k, v in self.area_breakdown.items()},
            clocked_energy_breakdown_pj=dict(self.clocked_energy_breakdown_pj),
            active_energy_breakdown_pj=dict(self.active_energy_breakdown_pj),
        )

    def scaled_energy(self, factor: float) -> "VectorUnitCost":
        """Uniformly scale per-cycle energies (used by calibration)."""
        check_positive("factor", factor)
        return VectorUnitCost(
            unit_name=self.unit_name,
            neurons=self.neurons,
            pe_frequency_ghz=self.pe_frequency_ghz,
            tech=self.tech,
            area_breakdown=dict(self.area_breakdown),
            clocked_energy_breakdown_pj={
                k: v * factor for k, v in self.clocked_energy_breakdown_pj.items()
            },
            active_energy_breakdown_pj={
                k: v * factor for k, v in self.active_energy_breakdown_pj.items()
            },
        )


def _lane_skeleton(
    n_segments: int, tech: TechNode
) -> tuple[dict[str, float], dict[str, float], dict[str, float]]:
    """The comparator + MAC + pipeline-register cost every variant pays.

    Returns (area, clocked_energy, active_energy) per neuron lane.
    """
    comp = comparator_bank_cost(n_cuts=n_segments - 1, tech=tech)
    mac = mac_lane_cost(tech=tech)
    pipe = register_bank_cost(bits=PIPELINE_REG_BITS, tech=tech)
    area = {
        "comparators": comp.area_um2,
        "mac": mac.area_um2,
        "pipeline_regs": pipe.area_um2,
    }
    clocked = {
        "pipeline_regs_clock": PIPELINE_REG_BITS * tech.ff_clock_pj_per_bit,
    }
    active = {
        "comparators": comp.energy_per_op_pj,
        "mac": mac.energy_per_op_pj,
        "pipeline_regs": pipe.energy_per_op_pj,
    }
    return area, clocked, active


def nova_router_cost(
    neurons: int,
    n_segments: int = 16,
    pe_frequency_ghz: float = 1.0,
    hop_mm: float = 1.0,
    tech: TechNode = TECH_22NM,
    extra_crossbars: tuple[tuple[int, int, int], ...] = (),
) -> VectorUnitCost:
    """One NOVA router with its share of the line (one hop of link).

    ``extra_crossbars`` carries the REACT overlay's 6x2 / 2x6 crossbars as
    ``(in_ports, out_ports, width_bits)`` tuples.
    """
    if neurons < 1:
        raise ValueError(f"neurons must be >= 1, got {neurons}")
    n_beats = max(1, -(-n_segments // 8))
    lane_area, lane_clocked, lane_active = _lane_skeleton(n_segments, tech)
    tag = tag_match_cost(tag_bits=max(1, (n_beats - 1).bit_length()), tech=tech)
    east_regs = register_bank_cost(bits=LINK_BITS, tech=tech)
    bypass = ComponentCost(
        "bypass_mux",
        LINK_BITS * tech.mux2_area_um2_per_bit,
        LINK_BITS * tech.mux_pj_per_bit,
    )
    reps = repeater_cost(width_bits=LINK_BITS, tech=tech)
    wires = link_wire_cost(width_bits=LINK_BITS, length_mm=hop_mm, tech=tech)

    area = {k: v * neurons for k, v in lane_area.items()}
    area["tag_match"] = tag.area_um2 * neurons
    area["east_regs"] = east_regs.area_um2
    area["bypass_mux"] = bypass.area_um2
    area["repeaters"] = reps.area_um2
    area["link_wires"] = wires.area_um2

    clocked = {k: v * neurons for k, v in lane_clocked.items()}
    # The east register bank clocks at the NoC clock (n_beats x PE clock).
    clocked["east_regs_clock"] = LINK_BITS * tech.ff_clock_pj_per_bit * n_beats

    active = {k: v * neurons for k, v in lane_active.items()}
    # Every beat: each neuron lane tag-matches; the link wires, repeaters
    # and bypass mux toggle once per hop; n_beats beats per PE cycle.
    active["tag_match"] = tag.energy_per_op_pj * neurons * n_beats
    active["link_wires"] = wires.energy_per_op_pj * n_beats
    active["bypass_mux"] = bypass.energy_per_op_pj * n_beats

    for in_ports, out_ports, width in extra_crossbars:
        xbar = crossbar_cost(in_ports, out_ports, width, tech=tech)
        key = f"crossbar_{in_ports}x{out_ports}"
        area[key] = area.get(key, 0.0) + xbar.area_um2
        active[key] = active.get(key, 0.0) + xbar.energy_per_op_pj

    return VectorUnitCost(
        unit_name="nova",
        neurons=neurons,
        pe_frequency_ghz=pe_frequency_ghz,
        tech=tech,
        area_breakdown=area,
        clocked_energy_breakdown_pj=clocked,
        active_energy_breakdown_pj=active,
    )


def per_neuron_lut_cost(
    neurons: int,
    n_segments: int = 16,
    pe_frequency_ghz: float = 1.0,
    tech: TechNode = TECH_22NM,
) -> VectorUnitCost:
    """One core's per-neuron-LUT vector unit (one 64 B bank per neuron)."""
    if neurons < 1:
        raise ValueError(f"neurons must be >= 1, got {neurons}")
    lane_area, lane_clocked, lane_active = _lane_skeleton(n_segments, tech)
    bank_bytes = n_segments * 4  # 2 x 16-bit words per entry
    bank = sram_bank_cost(capacity_bytes=bank_bytes, n_ports=1, tech=tech)
    area = {k: v * neurons for k, v in lane_area.items()}
    area["sram_banks"] = bank.area_um2 * neurons
    clocked = {k: v * neurons for k, v in lane_clocked.items()}
    active = {k: v * neurons for k, v in lane_active.items()}
    active["sram_banks"] = bank.energy_per_op_pj * neurons
    return VectorUnitCost(
        unit_name="per_neuron_lut",
        neurons=neurons,
        pe_frequency_ghz=pe_frequency_ghz,
        tech=tech,
        area_breakdown=area,
        clocked_energy_breakdown_pj=clocked,
        active_energy_breakdown_pj=active,
    )


def per_core_lut_cost(
    neurons: int,
    n_segments: int = 16,
    pe_frequency_ghz: float = 1.0,
    tech: TechNode = TECH_22NM,
) -> VectorUnitCost:
    """One core's per-core-LUT unit (one ``neurons``-ported 64 B bank)."""
    if neurons < 1:
        raise ValueError(f"neurons must be >= 1, got {neurons}")
    lane_area, lane_clocked, lane_active = _lane_skeleton(n_segments, tech)
    bank_bytes = n_segments * 4
    bank = sram_bank_cost(capacity_bytes=bank_bytes, n_ports=neurons, tech=tech)
    area = {k: v * neurons for k, v in lane_area.items()}
    area["sram_banks"] = bank.area_um2
    clocked = {k: v * neurons for k, v in lane_clocked.items()}
    active = {k: v * neurons for k, v in lane_active.items()}
    # Every neuron reads through its own port each cycle; each read pays
    # the multi-ported access energy.
    active["sram_banks"] = bank.energy_per_op_pj * neurons
    return VectorUnitCost(
        unit_name="per_core_lut",
        neurons=neurons,
        pe_frequency_ghz=pe_frequency_ghz,
        tech=tech,
        area_breakdown=area,
        clocked_energy_breakdown_pj=clocked,
        active_energy_breakdown_pj=active,
    )


#: The SDP's post-processing datapath beyond the bare LUT path: two
#: scale/offset ALUs per lane plus a per-engine control/sequencing block
#: that toggles every cycle (DMA sequencing, register file, clocking).
SDP_ALU_AREA_UM2 = 300.0
SDP_ALU_ENERGY_PJ = 0.03
SDP_CONTROL_AREA_UM2 = 40_000.0
SDP_CONTROL_PJ_PER_CYCLE = 15.0


def sdp_cost(
    neurons: int = 16,
    n_segments: int = 16,
    pe_frequency_ghz: float = 1.0,
    tech: TechNode = TECH_22NM,
) -> VectorUnitCost:
    """NVDLA's LUT-based SDP engine for one convolution core."""
    base = per_core_lut_cost(
        neurons=neurons,
        n_segments=n_segments,
        pe_frequency_ghz=pe_frequency_ghz,
        tech=tech,
    )
    area = dict(base.area_breakdown)
    clocked = dict(base.clocked_energy_breakdown_pj)
    active = dict(base.active_energy_breakdown_pj)
    area["sdp_alus"] = 2 * SDP_ALU_AREA_UM2 * neurons
    area["sdp_control"] = SDP_CONTROL_AREA_UM2
    clocked["sdp_control"] = SDP_CONTROL_PJ_PER_CYCLE
    active["sdp_alus"] = 2 * SDP_ALU_ENERGY_PJ * neurons
    return VectorUnitCost(
        unit_name="nvdla_sdp",
        neurons=neurons,
        pe_frequency_ghz=pe_frequency_ghz,
        tech=tech,
        area_breakdown=area,
        clocked_energy_breakdown_pj=clocked,
        active_energy_breakdown_pj=active,
    )


def ibert_lane_cost(
    pe_frequency_ghz: float = 1.0, tech: TechNode = TECH_22NM
) -> VectorUnitCost:
    """One I-BERT integer-approximation lane (the Table IV comparator).

    Per the I-BERT pipeline: a 16-bit range-reduction multiplier (the
    divide-by-ln2 as multiplication by the reciprocal), the i-poly
    squaring datapath — which operates on the *requantised 24-bit*
    intermediate I-BERT's INT32 accumulation implies — adder/clip logic,
    a 6-stage barrel shifter, the softmax-normaliser **divider** the
    paper's §VI explicitly lists (an iterative integer divider, ~2x a
    16-bit multiplier), and pipeline registers.  All priced with the same
    component constants as NOVA's lane.
    """
    mult16 = mac_lane_cost(word_bits=16, tech=tech)
    mult24 = mac_lane_cost(word_bits=24, tech=tech)  # i-poly square stage
    adders_area = 200 * tech.nand2_area_um2
    shifter_area = 16 * 6 * tech.mux2_area_um2_per_bit  # 6-stage barrel
    pipe = register_bank_cost(bits=PIPELINE_REG_BITS, tech=tech)
    area = {
        "range_reduction_mult": mult16.area_um2,
        "poly_mult_24b": mult24.area_um2,
        "normaliser_divider": 2 * mult16.area_um2,
        "adders_clip": adders_area,
        "barrel_shifter": shifter_area,
        "pipeline_regs": pipe.area_um2,
    }
    clocked = {
        "pipeline_regs_clock": PIPELINE_REG_BITS * tech.ff_clock_pj_per_bit,
    }
    active = {
        "range_reduction_mult": mult16.energy_per_op_pj,
        "poly_mult_24b": mult24.energy_per_op_pj,
        # the divider is shared across a softmax row: charge 1/8 per query
        "normaliser_divider": 2 * mult16.energy_per_op_pj / 8.0,
        "adders_clip": 200 * 2 * tech.mux_pj_per_bit,
        "barrel_shifter": 16 * 6 * tech.mux_pj_per_bit,
        "pipeline_regs": pipe.energy_per_op_pj,
    }
    return VectorUnitCost(
        unit_name="ibert_lane",
        neurons=1,
        pe_frequency_ghz=pe_frequency_ghz,
        tech=tech,
        area_breakdown=area,
        clocked_energy_breakdown_pj=clocked,
        active_energy_breakdown_pj=active,
    )


def unit_cost(
    unit_name: str,
    neurons: int,
    n_segments: int = 16,
    pe_frequency_ghz: float = 1.0,
    hop_mm: float = 1.0,
    tech: TechNode = TECH_22NM,
    extra_crossbars: tuple[tuple[int, int, int], ...] = (),
) -> VectorUnitCost:
    """Dispatch by unit name (``nova`` / ``per_neuron_lut`` / ... )."""
    if unit_name == "nova":
        return nova_router_cost(
            neurons,
            n_segments,
            pe_frequency_ghz,
            hop_mm,
            tech,
            extra_crossbars=extra_crossbars,
        )
    if unit_name == "per_neuron_lut":
        return per_neuron_lut_cost(neurons, n_segments, pe_frequency_ghz, tech)
    if unit_name == "per_core_lut":
        return per_core_lut_cost(neurons, n_segments, pe_frequency_ghz, tech)
    if unit_name == "nvdla_sdp":
        return sdp_cost(neurons, n_segments, pe_frequency_ghz, tech)
    raise ValueError(
        f"unknown unit {unit_name!r}; expected one of nova, per_neuron_lut, "
        "per_core_lut, nvdla_sdp"
    )
