"""Energy accounting: event counters -> picojoules -> milliwatts.

The cycle simulations (:mod:`repro.core`, :mod:`repro.luts`) count events;
this module prices them.  Keeping the two separate lets one simulation run
be costed under different technology assumptions, and makes the energy
model unit-testable against the closed-form costs in
:mod:`repro.hw.costs` (the integration tests check that simulating N fully
utilised cycles and pricing the counters equals N x ``cycle_energy_pj``
within rounding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.components import (
    comparator_bank_cost,
    link_wire_cost,
    mac_lane_cost,
    register_bank_cost,
    sram_bank_cost,
    tag_match_cost,
)
from repro.hw.costs import LINK_BITS, PIPELINE_REG_BITS
from repro.hw.tech import TechNode, TECH_22NM
from repro.noc.stats import EventCounters

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies for one hardware configuration.

    Parameters describe the configuration the counters came from: table
    size (comparator count, bank bytes), link geometry, and — for LUT
    units — the bank port count.
    """

    n_segments: int = 16
    hop_mm: float = 1.0
    sram_ports: int = 1
    tech: TechNode = TECH_22NM

    def event_energy_pj(self, event: str) -> float:
        """Energy of one occurrence of ``event``."""
        t = self.tech
        n_beats = max(1, -(-self.n_segments // 8))
        if event == "comparator_eval":
            return comparator_bank_cost(self.n_segments - 1, tech=t).energy_per_op_pj
        if event == "mac_op":
            return (
                mac_lane_cost(tech=t).energy_per_op_pj
                + register_bank_cost(PIPELINE_REG_BITS, tech=t).energy_per_op_pj
            )
        if event == "tag_match":
            return tag_match_cost(
                tag_bits=max(1, (n_beats - 1).bit_length()), tech=t
            ).energy_per_op_pj
        if event == "pair_capture":
            return register_bank_cost(PIPELINE_REG_BITS, tech=t).energy_per_op_pj
        if event == "wire_hop":
            return link_wire_cost(LINK_BITS, self.hop_mm, tech=t).energy_per_op_pj
        if event in ("register_write", "beat_launch"):
            return register_bank_cost(LINK_BITS, tech=t).energy_per_op_pj
        if event == "lut_read":
            return sram_bank_cost(
                capacity_bytes=self.n_segments * 4, n_ports=self.sram_ports, tech=t
            ).energy_per_op_pj
        if event == "postscale_op":
            return 0.03  # SDP scale/offset ALU (see costs.SDP_ALU_ENERGY_PJ)
        raise KeyError(f"no energy model for event {event!r}")

    def energy_pj(self, counters: EventCounters) -> float:
        """Total dynamic energy of a counted simulation run."""
        return sum(
            self.event_energy_pj(event) * n for event, n in counters.counts.items()
        )

    def average_power_mw(
        self, counters: EventCounters, elapsed_cycles: int, frequency_ghz: float
    ) -> float:
        """Average dynamic power of a run of ``elapsed_cycles`` PE cycles."""
        if elapsed_cycles < 1:
            raise ValueError(f"elapsed_cycles must be >= 1, got {elapsed_cycles}")
        if frequency_ghz <= 0:
            raise ValueError(f"frequency_ghz must be > 0, got {frequency_ghz}")
        elapsed_ns = elapsed_cycles / frequency_ghz
        return self.energy_pj(counters) / elapsed_ns  # pJ/ns == mW
