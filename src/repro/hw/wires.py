"""Global-wire physics: repeater insertion, delay and energy.

The one-number-per-mm constants of :class:`repro.noc.link.RepeatedWire`
are *derived* here from first principles (Elmore delay with optimal
repeater insertion, Weste & Harris ch. 6), so the paper's §V-A corner —
10 routers at 1 mm pitch at 1.5 GHz — rests on a physical model rather
than a fitted constant.  The module also exposes the repeater
spacing/sizing trade-off as an ablation axis: NOVA's "store the values in
wires" idea lives or dies on repeated-wire delay and energy, which is why
the paper ran place-and-route specifically to capture it.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.utils.validation import check_positive

__all__ = ["WireTechnology", "RepeaterDesign", "design_repeated_wire"]


@dataclass(frozen=True)
class WireTechnology:
    """Electrical constants of a semi-global wire at 22 nm.

    Representative values for a relaxed-pitch routing layer (where a
    257-bit broadcast bus would be placed): resistance ~0.4 ohm/um,
    capacitance ~0.2 fF/um, an intrinsic inverter delay of ~6 ps and
    ~0.6 fF input capacitance per unit drive.  With optimal repeater
    insertion these give ~57 ps/mm — consistent with the 56 ps/mm
    constant that :class:`repro.noc.link.RepeatedWire` uses to reproduce
    the paper's 10-hops-at-1.5-GHz place-and-route corner (the
    consistency is pinned by a test).
    """

    resistance_ohm_per_um: float = 0.4
    capacitance_ff_per_um: float = 0.2
    inverter_delay_ps: float = 6.0
    inverter_cin_ff: float = 0.6
    inverter_rdrv_ohm: float = 3000.0  # unit-sized driver resistance
    voltage_v: float = 0.8

    def wire_rc_ps_per_um2(self) -> float:
        """Distributed RC delay coefficient: 0.38 * r * c (ps/um^2)."""
        r = self.resistance_ohm_per_um
        c = self.capacitance_ff_per_um * 1e-3  # fF -> pF/1000: ohm*fF = 1e-3 ps
        return 0.38 * r * c


@dataclass(frozen=True)
class RepeaterDesign:
    """A repeated-wire design point.

    ``spacing_um`` between repeaters, ``size`` in unit-inverter drives.
    """

    spacing_um: float
    size: float
    delay_ps_per_mm: float
    energy_pj_per_bit_mm: float

    def __post_init__(self) -> None:
        check_positive("spacing_um", self.spacing_um)
        check_positive("size", self.size)


def segment_delay_ps(tech: WireTechnology, spacing_um: float, size: float) -> float:
    """Elmore delay of one repeater + wire segment.

    ``t = R_drv/k * (C_wire + k*C_in) + 0.38*R_wire*C_wire +
    R_wire*k*C_in`` plus the repeater's intrinsic delay.
    """
    check_positive("spacing_um", spacing_um)
    check_positive("size", size)
    r_drv = tech.inverter_rdrv_ohm / size
    c_in = tech.inverter_cin_ff * size * 1e-3  # pF-equivalent scaling
    c_wire = tech.capacitance_ff_per_um * spacing_um * 1e-3
    r_wire = tech.resistance_ohm_per_um * spacing_um
    drive = r_drv * (c_wire + c_in)
    distributed = 0.38 * r_wire * c_wire
    load = r_wire * c_in
    return tech.inverter_delay_ps + drive + distributed + load


def design_repeated_wire(
    tech: WireTechnology | None = None,
    spacing_um: float | None = None,
    size: float | None = None,
    activity: float = 0.15,
) -> RepeaterDesign:
    """Pick (or evaluate) a repeater design for minimum delay.

    With both knobs free the classical optimum is used as the starting
    point and refined by local search; callers can pin either knob to
    explore the trade-off (the spacing ablation does).

    Energy per bit per mm: switched wire + repeater input capacitance at
    the given activity factor, ``E = a * C_total * V^2`` (full-swing
    repeated wire; the 0.5 factor is absorbed by the two transitions per
    toggle of an inverter chain).
    """
    tech = tech or WireTechnology()
    if spacing_um is None or size is None:
        # classical optima (Weste & Harris eq. 6.29/6.30) as the seed ...
        r = tech.resistance_ohm_per_um
        c = tech.capacitance_ff_per_um * 1e-3
        rd = tech.inverter_rdrv_ohm
        cin = tech.inverter_cin_ff * 1e-3
        seed_spacing = math.sqrt(2.0 * rd * cin / (0.38 * r * c))
        seed_size = math.sqrt(rd * c / (r * cin))
        # ... refined numerically, because the intrinsic inverter delay
        # (absent from the classical derivation) pushes the optimum to
        # longer segments.  Coordinate grid descent over the free knobs.
        fixed_spacing, fixed_size = spacing_um, size
        best = (float("inf"), seed_spacing, seed_size)
        for spacing_mult in (0.5, 0.7, 0.85, 1.0, 1.2, 1.5, 2.0, 2.8, 4.0):
            for size_mult in (0.5, 0.7, 0.85, 1.0, 1.2, 1.5, 2.0):
                s_um = (
                    fixed_spacing
                    if fixed_spacing is not None
                    else seed_spacing * spacing_mult
                )
                k = fixed_size if fixed_size is not None else seed_size * size_mult
                delay = segment_delay_ps(tech, s_um, k) / s_um
                if delay < best[0]:
                    best = (delay, s_um, k)
        spacing_um, size = best[1], best[2]

    delay_per_mm = (
        segment_delay_ps(tech, spacing_um, size) / spacing_um * 1000.0
    )
    c_wire_per_mm = tech.capacitance_ff_per_um * 1000.0  # fF
    n_repeaters_per_mm = 1000.0 / spacing_um
    c_rep_per_mm = tech.inverter_cin_ff * size * n_repeaters_per_mm
    total_c_pf = (c_wire_per_mm + c_rep_per_mm) * 1e-3
    energy = activity * total_c_pf * tech.voltage_v ** 2
    return RepeaterDesign(
        spacing_um=spacing_um,
        size=size,
        delay_ps_per_mm=delay_per_mm,
        energy_pj_per_bit_mm=energy,
    )
