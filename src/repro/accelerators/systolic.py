"""SCALE-Sim-style analytical timing for systolic GEMM arrays.

Re-implements the cycle model of SCALE-Sim (Samajdar et al., ISPASS
2020): an ``R x C`` MAC array executes a ``(M x K) @ (K x N)`` GEMM by
tiling it over the array under one of three dataflows.  Per tile/fold the
cycle counts are the standard fill + stream + drain expressions:

* **output-stationary (OS)** — each tile computes an ``R x C`` block of
  the output; operands stream for ``K`` cycles after a ``R + C - 2``
  skew fill: ``2R + C + K - 2`` cycles per tile,
  ``ceil(M/R) * ceil(N/C)`` tiles.
* **weight-stationary (WS)** — an ``R x C`` block of the weight matrix
  is preloaded (``R`` cycles), then ``M`` activation rows stream through
  with ``R + C - 1`` skew/drain: ``R + (M + R + C - 2)`` cycles per
  fold, ``ceil(K/R) * ceil(N/C)`` folds (the TPU's dataflow).
* **input-stationary (IS)** — symmetric to WS with inputs pinned:
  ``R + (N + R + C - 2)`` per fold, ``ceil(K/R) * ceil(M/C)`` folds.

SRAM traffic is counted as operands-loaded + outputs-stored per tile
(perfect reuse inside a tile, none across tiles — SCALE-Sim's default
double-buffered model).  The model is validated against hand-computed
small cases in the tests; its purpose here is relative runtimes and the
vector-unit duty cycle, exactly how the paper uses SCALE-Sim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.workloads.ops import MatMulOp

__all__ = ["Dataflow", "GemmTiming", "SystolicArray"]


class Dataflow(enum.Enum):
    """Systolic mapping strategy."""

    OUTPUT_STATIONARY = "os"
    WEIGHT_STATIONARY = "ws"
    INPUT_STATIONARY = "is"


@dataclass(frozen=True)
class GemmTiming:
    """Cycle/traffic result for one GEMM on one array."""

    op_name: str
    cycles: int
    tiles: int
    macs: int
    sram_reads: int
    sram_writes: int
    peak_macs_per_cycle: int

    @property
    def utilization(self) -> float:
        """Average MAC-array utilisation (0..1]."""
        peak = max(self.cycles, 1) * max(self.peak_macs_per_cycle, 1)
        return min(1.0, self.macs / peak)


@dataclass(frozen=True)
class SystolicArray:
    """One ``rows x cols`` systolic MAC array."""

    rows: int
    cols: int
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"array dims must be >= 1, got {self.rows}x{self.cols}"
            )

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput."""
        return self.rows * self.cols

    def gemm_timing(self, op: MatMulOp) -> GemmTiming:
        """Cycles and traffic for ``op`` under this array's dataflow."""
        r, c = self.rows, self.cols
        m, k, n = op.m, op.k, op.n
        if self.dataflow is Dataflow.OUTPUT_STATIONARY:
            tiles = -(-m // r) * (-(-n // c))
            cycles_per = 2 * r + c + k - 2
            # per tile: stream an (r x k) A-slab and (k x c) B-slab,
            # write back the (r x c) output block.
            reads_per = r * k + k * c
            writes_per = r * c
        elif self.dataflow is Dataflow.WEIGHT_STATIONARY:
            tiles = -(-k // r) * (-(-n // c))
            cycles_per = r + (m + r + c - 2)
            reads_per = r * c + m * r  # preload weights + stream activations
            writes_per = m * c  # partial sums to the accumulator SRAM
        elif self.dataflow is Dataflow.INPUT_STATIONARY:
            tiles = -(-k // r) * (-(-m // c))
            cycles_per = r + (n + r + c - 2)
            reads_per = r * c + n * r
            writes_per = n * c
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown dataflow {self.dataflow}")
        return GemmTiming(
            op_name=op.name,
            cycles=tiles * cycles_per,
            tiles=tiles,
            macs=op.macs,
            sram_reads=tiles * reads_per,
            sram_writes=tiles * writes_per,
            peak_macs_per_cycle=self.macs_per_cycle,
        )

    def gemm_cycles(self, op: MatMulOp) -> int:
        """Convenience: just the cycle count."""
        return self.gemm_timing(op).cycles
