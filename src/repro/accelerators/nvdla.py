"""NVDLA-like host: Jetson Xavier NX configuration (Table II).

"a smaller Nvidia Jetson NX configuration SoC with NVDLA cores is modeled
using the ESP tool" (§V-A).  Each convolution core is modelled as a MAC
cube producing 16 output neurons per emission — ``atomic_k = 16`` output
channels by ``atomic_c = 64`` input channels, NVDLA's 'small' direct-conv
datapath — so the vector unit sees one 16-wide activation vector only
once per ``ceil(K / atomic_c)`` accumulation cycles.  That low emission
duty cycle is what makes the always-clocked SDP so much more expensive
than event-driven NOVA in the §V-E comparison (37.8x power).
"""

from __future__ import annotations

from repro.accelerators.base import HostAccelerator
from repro.workloads.ops import MatMulOp, OpGraph

__all__ = ["NvdlaAccelerator"]


class NvdlaAccelerator(HostAccelerator):
    """2 convolution cores; 16 x 64 MACs each, at 1.4 GHz."""

    def __init__(
        self,
        name: str = "Jetson Xavier NX",
        n_cores: int = 2,
        atomic_k: int = 16,
        atomic_c: int = 64,
        frequency_ghz: float = 1.4,
    ) -> None:
        super().__init__(
            name=name,
            frequency_ghz=frequency_ghz,
            n_vector_units=n_cores,
            neurons_per_unit=atomic_k,
        )
        self.n_cores = n_cores
        self.atomic_k = atomic_k
        self.atomic_c = atomic_c

    @property
    def macs_per_core_cycle(self) -> int:
        """MACs one convolution core retires per cycle."""
        return self.atomic_k * self.atomic_c

    def _gemm_cycles(
        self, ops: list[MatMulOp]
    ) -> tuple[int, list[tuple[str, int]], int, int]:
        per_op = []
        total = 0
        reads = 0
        writes = 0
        rate = self.n_cores * self.macs_per_core_cycle
        for op in ops:
            cycles = max(1, -(-op.macs // rate))
            per_op.append((op.name, cycles))
            total += cycles
            reads += op.m * op.k + op.k * op.n
            writes += op.output_elements
        return total, per_op, reads, writes

    def activation_duty_cycle(self, graph: OpGraph) -> float:
        """Fraction of conv-core cycles that emit an activation vector.

        One 16-wide vector emerges per ``ceil(K / atomic_c)`` accumulation
        cycles, so for deep-channel convolutions the vector unit idles
        most of the time — the utilisation the NOVA power model applies
        in the Jetson configuration.
        """
        report = self.run(graph)
        if report.total_cycles == 0:
            return 0.0
        emissions = sum(
            -(-op.output_elements // self.atomic_k) for op in graph.matmuls
        )
        return min(1.0, emissions / report.total_cycles)
