"""Common accelerator interface and performance reporting.

Every host accelerator answers the same two questions about a workload:
how long do the GEMMs take (tensor time) and how long does the vector
unit spend answering non-linear queries (approximator time).  The energy
evaluation (Fig. 8) prices those two durations under different
approximator hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.ops import MatMulOp, NonLinearOp, OpGraph

__all__ = ["PerformanceReport", "HostAccelerator"]


@dataclass(frozen=True)
class PerformanceReport:
    """Timing result of one workload on one host accelerator.

    ``nonlinear_cycles`` assumes the vector unit processes
    ``n_vector_lanes`` queries per cycle (one per neuron lane, the
    steady-state throughput of both NOVA and the LUT baselines).
    ``total_cycles`` is the sequential sum — the paper's SCALE-Sim flow
    likewise serialises tensor and vector phases; the duty-cycle metric is
    what the energy model consumes, so overlap would only scale both.
    """

    workload: str
    accelerator: str
    frequency_ghz: float
    gemm_cycles: int
    nonlinear_cycles: int
    total_macs: int
    nonlinear_queries: int
    sram_reads: int = 0
    sram_writes: int = 0
    per_op_cycles: tuple[tuple[str, int], ...] = field(default=())

    @property
    def total_cycles(self) -> int:
        """Tensor + vector cycles."""
        return self.gemm_cycles + self.nonlinear_cycles

    @property
    def runtime_ms(self) -> float:
        """Wall-clock at the host clock."""
        return self.total_cycles / (self.frequency_ghz * 1e6)

    @property
    def vector_duty_cycle(self) -> float:
        """Fraction of runtime the vector unit is busy — the utilisation
        the power model applies to the approximator's active energy."""
        if self.total_cycles == 0:
            return 0.0
        return self.nonlinear_cycles / self.total_cycles

    @property
    def nonlinear_runtime_fraction(self) -> float:
        """Share of runtime spent in non-linear ops (paper §I: up to ~40%
        on attention-heavy models when the vector unit is underpowered)."""
        return self.vector_duty_cycle


class HostAccelerator:
    """Base: schedules GEMMs (subclass hook) + vector-unit query timing."""

    def __init__(
        self,
        name: str,
        frequency_ghz: float,
        n_vector_units: int,
        neurons_per_unit: int,
    ) -> None:
        if frequency_ghz <= 0:
            raise ValueError(f"frequency_ghz must be > 0, got {frequency_ghz}")
        if n_vector_units < 1 or neurons_per_unit < 1:
            raise ValueError("vector unit geometry must be >= 1")
        self.name = name
        self.frequency_ghz = frequency_ghz
        self.n_vector_units = n_vector_units
        self.neurons_per_unit = neurons_per_unit

    @property
    def n_vector_lanes(self) -> int:
        """Total approximator lanes (queries retired per cycle)."""
        return self.n_vector_units * self.neurons_per_unit

    # ------------------------------------------------------------------
    # Subclass hook.
    # ------------------------------------------------------------------

    def _gemm_cycles(self, ops: list[MatMulOp]) -> tuple[int, list[tuple[str, int]], int, int]:
        """(total_cycles, per_op, sram_reads, sram_writes) for the GEMMs."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared scheduling.
    # ------------------------------------------------------------------

    def nonlinear_cycles(self, op: NonLinearOp) -> int:
        """Cycles for one vector op at one query per lane per cycle."""
        return -(-op.queries // self.n_vector_lanes)

    def run(self, graph: OpGraph) -> PerformanceReport:
        """Time a workload end to end."""
        gemm_cycles, per_op, reads, writes = self._gemm_cycles(graph.matmuls)
        vec_cycles = sum(self.nonlinear_cycles(op) for op in graph.nonlinear_ops)
        per_op = per_op + [
            (op.name, self.nonlinear_cycles(op)) for op in graph.nonlinear_ops
        ]
        return PerformanceReport(
            workload=graph.name,
            accelerator=self.name,
            frequency_ghz=self.frequency_ghz,
            gemm_cycles=gemm_cycles,
            nonlinear_cycles=vec_cycles,
            total_macs=graph.total_macs,
            nonlinear_queries=graph.total_nonlinear_queries,
            sram_reads=reads,
            sram_writes=writes,
            per_op_cycles=tuple(per_op),
        )
