"""Accelerator factory keyed by the Table II configuration names."""

from __future__ import annotations

from collections.abc import Callable

from repro.accelerators.base import HostAccelerator
from repro.accelerators.nvdla import NvdlaAccelerator
from repro.accelerators.react import ReactAccelerator
from repro.accelerators.tpu import TpuLikeAccelerator

__all__ = ["ACCELERATOR_BUILDERS", "build_accelerator"]

ACCELERATOR_BUILDERS: dict[str, Callable[[], HostAccelerator]] = {
    "REACT": lambda: ReactAccelerator(),
    "TPU v3-like": lambda: TpuLikeAccelerator("TPU v3-like", n_mxus=4),
    "TPU v4-like": lambda: TpuLikeAccelerator("TPU v4-like", n_mxus=8),
    "Jetson Xavier NX": lambda: NvdlaAccelerator(),
}


def build_accelerator(name: str) -> HostAccelerator:
    """Instantiate the host accelerator for a Table II configuration."""
    try:
        builder = ACCELERATOR_BUILDERS[name]
    except KeyError:
        available = ", ".join(sorted(ACCELERATOR_BUILDERS))
        raise KeyError(
            f"unknown accelerator {name!r}; available: {available}"
        ) from None
    return builder()
