"""TPU v3/v4-like hosts: systolic MXUs + NOVA/LUT vector units.

"For TPU, we evaluated two configurations of the accelerator modeled
after the TPU-v3 and TPU-v4 configurations where each MXU is a 128 x 128
systolic array" (§V-A).  v3-like has 4 MXUs (4 NOVA routers in Table II),
v4-like has 8.  GEMMs are distributed over the MXUs with longest-
processing-time-first list scheduling (deterministic and within 4/3 of
optimal makespan), matching how independent attention-head GEMMs spread
across MXUs.
"""

from __future__ import annotations

import heapq

from repro.accelerators.base import HostAccelerator
from repro.accelerators.systolic import Dataflow, SystolicArray
from repro.workloads.ops import MatMulOp

__all__ = ["TpuLikeAccelerator"]


class TpuLikeAccelerator(HostAccelerator):
    """An ``n_mxus`` x (128 x 128 weight-stationary) tensor core."""

    def __init__(
        self,
        name: str,
        n_mxus: int,
        frequency_ghz: float = 1.4,
        array_rows: int = 128,
        array_cols: int = 128,
        neurons_per_unit: int = 128,
        dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY,
    ) -> None:
        super().__init__(
            name=name,
            frequency_ghz=frequency_ghz,
            n_vector_units=n_mxus,
            neurons_per_unit=neurons_per_unit,
        )
        self.array = SystolicArray(rows=array_rows, cols=array_cols, dataflow=dataflow)
        self.n_mxus = n_mxus

    def _gemm_cycles(
        self, ops: list[MatMulOp]
    ) -> tuple[int, list[tuple[str, int]], int, int]:
        timings = [self.array.gemm_timing(op) for op in ops]
        per_op = [(t.op_name, t.cycles) for t in timings]
        reads = sum(t.sram_reads for t in timings)
        writes = sum(t.sram_writes for t in timings)
        # LPT list scheduling across MXUs: longest first onto least-loaded.
        loads = [0] * self.n_mxus
        heapq.heapify(loads)
        for t in sorted(timings, key=lambda t: t.cycles, reverse=True):
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + t.cycles)
        makespan = max(loads) if loads else 0
        return makespan, per_op, reads, writes
