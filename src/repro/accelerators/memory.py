"""On-chip memory hierarchy: SRAM capacity and DRAM traffic.

Table II lists each host's on-chip memory (REACT 768 kB, TPU-like 42 MB,
Jetson 256 kB) but the paper's energy discussion never uses it; this
module closes that gap with SCALE-Sim's double-buffered traffic model so
the Fig. 8 "overhead vs host energy" metric can include DRAM, the true
dominant term on memory-bound workloads.

Model (per GEMM, following SCALE-Sim's analytical mode):

* every operand is read from DRAM at least once and the result written
  once;
* if the combined working set exceeds half the SRAM (double buffering),
  the GEMM is tiled on its output dimensions and the *streamed* operand
  (activations for a weight-stationary array) is re-fetched once per
  weight tile — the classic capacity-miss multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.ops import MatMulOp, OpGraph

__all__ = ["MemoryHierarchy", "TrafficReport"]

#: 16-bit words everywhere in the datapath.
WORD_BYTES = 2


@dataclass(frozen=True)
class TrafficReport:
    """DRAM word traffic of one workload."""

    workload: str
    dram_reads: int
    dram_writes: int
    refetch_reads: int  # subset of dram_reads caused by capacity misses

    @property
    def dram_words(self) -> int:
        return self.dram_reads + self.dram_writes

    @property
    def refetch_fraction(self) -> float:
        """Share of read traffic that is capacity-miss re-fetching."""
        if self.dram_reads == 0:
            return 0.0
        return self.refetch_reads / self.dram_reads


@dataclass(frozen=True)
class MemoryHierarchy:
    """One host's SRAM capacity plus per-word energies."""

    sram_kb: int
    sram_word_pj: float = 0.2
    dram_word_pj: float = 80.0  # ~5 pJ/bit LPDDR-class interface

    def __post_init__(self) -> None:
        if self.sram_kb < 1:
            raise ValueError(f"sram_kb must be >= 1, got {self.sram_kb}")
        if self.sram_word_pj < 0 or self.dram_word_pj < 0:
            raise ValueError("per-word energies must be >= 0")

    @property
    def usable_words(self) -> int:
        """Half the SRAM, in words (the other half double-buffers)."""
        return (self.sram_kb * 1024 // WORD_BYTES) // 2

    def gemm_traffic(self, op: MatMulOp) -> tuple[int, int, int]:
        """(dram_reads, dram_writes, refetch_reads) for one GEMM.

        Capacity misses tile the GEMM over its output columns: a column
        tile of width ``nc`` keeps its weight slab (``k x nc``) and
        output slab (``m x nc``) resident while the activation matrix
        streams through — so activations are re-fetched once per extra
        column tile (the weight-stationary re-fetch pattern).
        """
        a_words = op.m * op.k
        b_words = op.k * op.n
        out_words = op.m * op.n
        compulsory = a_words + b_words
        working_set = a_words + b_words + out_words
        refetch = 0
        if working_set > self.usable_words:
            cols_per_tile = max(self.usable_words // (op.k + op.m), 1)
            n_tiles = -(-op.n // cols_per_tile)
            refetch = a_words * max(n_tiles - 1, 0)
        return compulsory + refetch, out_words, refetch

    def graph_traffic(self, graph: OpGraph) -> TrafficReport:
        """Aggregate DRAM traffic of all GEMMs in a workload.

        Intermediate activations are conservatively spilled (written and
        re-read) when they exceed the usable SRAM — for the seq-1024
        BERT workloads on the small hosts that is the common case.
        """
        reads = 0
        writes = 0
        refetch = 0
        for op in graph.matmuls:
            r, w, f = self.gemm_traffic(op)
            reads += r
            writes += w
            refetch += f
        return TrafficReport(
            workload=graph.name,
            dram_reads=reads,
            dram_writes=writes,
            refetch_reads=refetch,
        )

    def dram_energy_mj(self, report: TrafficReport) -> float:
        """DRAM interface energy of a traffic report."""
        return report.dram_words * self.dram_word_pj * 1e-9
