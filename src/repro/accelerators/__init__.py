"""Host accelerator models (the substrates NOVA overlays).

:mod:`repro.accelerators.systolic` is a SCALE-Sim-style analytical timing
model for systolic GEMM arrays (the paper runs its Fig. 8 benchmarks
"in conjunction with the SCALE-Sim toolchain", §V-F); the TPU-like,
REACT-like and NVDLA-like accelerators compose it (or a coarse-grained
MAC-throughput model) with the Table II geometries, and report both GEMM
runtime and the vector-unit duty cycle the energy model needs.
"""

from repro.accelerators.systolic import (
    SystolicArray,
    Dataflow,
    GemmTiming,
)
from repro.accelerators.base import PerformanceReport, HostAccelerator
from repro.accelerators.tpu import TpuLikeAccelerator
from repro.accelerators.react import ReactAccelerator
from repro.accelerators.nvdla import NvdlaAccelerator
from repro.accelerators.configs import build_accelerator, ACCELERATOR_BUILDERS

__all__ = [
    "SystolicArray",
    "Dataflow",
    "GemmTiming",
    "PerformanceReport",
    "HostAccelerator",
    "TpuLikeAccelerator",
    "ReactAccelerator",
    "NvdlaAccelerator",
    "build_accelerator",
    "ACCELERATOR_BUILDERS",
]
