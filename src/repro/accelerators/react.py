"""REACT-like host: a coarse-grained reconfigurable edge accelerator.

REACT (Upadhyay et al., DAC 2022 — the paper's own prior work) is a
heterogeneous wearable-class accelerator whose PEs exchange partial sums
over a software-configured Weighted-Sum (WS) NoC.  For this evaluation
what matters is its throughput envelope and geometry (Table II: 10 cores,
256 output neurons each, 240 MHz, 768 kB on-chip): each core contributes
``macs_per_core`` multiply-accumulates per cycle and cores work on
independent output tiles, so GEMM time is compute-bound at the aggregate
MAC rate with an efficiency factor for tile skew (fill/drain of the WS
reduction chains).
"""

from __future__ import annotations

from repro.accelerators.base import HostAccelerator
from repro.workloads.ops import MatMulOp

__all__ = ["ReactAccelerator"]


class ReactAccelerator(HostAccelerator):
    """10 coarse-grained cores, 256 MAC lanes each, at 240 MHz."""

    def __init__(
        self,
        name: str = "REACT",
        n_cores: int = 10,
        macs_per_core: int = 256,
        frequency_ghz: float = 0.24,
        efficiency: float = 0.85,
    ) -> None:
        super().__init__(
            name=name,
            frequency_ghz=frequency_ghz,
            n_vector_units=n_cores,
            neurons_per_unit=macs_per_core,
        )
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        self.n_cores = n_cores
        self.macs_per_core = macs_per_core
        self.efficiency = efficiency

    @property
    def peak_macs_per_cycle(self) -> int:
        """Aggregate MAC throughput."""
        return self.n_cores * self.macs_per_core

    def _gemm_cycles(
        self, ops: list[MatMulOp]
    ) -> tuple[int, list[tuple[str, int]], int, int]:
        per_op = []
        total = 0
        reads = 0
        writes = 0
        effective_rate = self.peak_macs_per_cycle * self.efficiency
        for op in ops:
            cycles = max(1, int(-(-op.macs // effective_rate)))
            per_op.append((op.name, cycles))
            total += cycles
            # Operands stream once from the shared SRAM; outputs go back.
            reads += op.m * op.k + op.k * op.n
            writes += op.output_elements
        return total, per_op, reads, writes
