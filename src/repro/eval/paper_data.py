"""The paper's published numbers, transcribed for side-by-side reporting.

Everything the evaluation section of the paper reports, as plain data:
experiments compare their model outputs against these and the benchmark
harness prints both columns.  Keeping the transcription in one module
(with table/section provenance on every block) is what lets
EXPERIMENTS.md be generated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TABLE1_ACCURACY",
    "TABLE2_CONFIGS",
    "TABLE3_OVERHEAD",
    "TABLE4_RELATED",
    "HEADLINE_RATIOS",
    "SCALABILITY",
    "FIG8_BENCHMARKS",
    "AcceleratorConfig",
]

# ----------------------------------------------------------------------
# Table I: post-approximation accuracy (all 16 breakpoints except
# CIFAR-10 models, which use 8).
# (model, dataset, accuracy_with_softmax, accuracy_with_approx, breakpoints)
# ----------------------------------------------------------------------
TABLE1_ACCURACY: list[tuple[str, str, float, float, int]] = [
    ("MLP", "MNIST", 97.31, 97.31, 16),
    ("CNN", "CIFAR-10", 63.44, 63.44, 8),
    ("MobileNet v1", "CIFAR-10", 68.56, 68.56, 8),
    ("VGG-16", "CIFAR-10", 88.30, 88.30, 8),
    ("MobileBERT", "SQUAD", 89.30, 89.30, 16),
    ("RoBERTa", "SST-2", 94.60, 94.40, 16),
]


# ----------------------------------------------------------------------
# Table II: accelerator parameters integrated with NOVA.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AcceleratorConfig:
    """One row of Table II plus the geometry the cost model needs.

    ``hop_mm`` is our modelling choice (router pitch), documented in
    DESIGN.md: 1 mm for REACT (the paper's P&R corner), 0.5 mm for the
    TPU/NVDLA SoCs whose NOVA routers sit between adjacent MXUs / cores.
    ``utilization`` is the vector unit's duty cycle implied by the host's
    arithmetic intensity (an NVDLA conv core emits one 16-wide activation
    vector only once per many MAC cycles).
    """

    name: str
    n_routers: int
    neurons_per_router: int
    onchip_memory_kb: int
    frequency_mhz: float
    hop_mm: float = 1.0
    utilization: float = 1.0

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_mhz / 1000.0

    @property
    def total_neurons(self) -> int:
        return self.n_routers * self.neurons_per_router


TABLE2_CONFIGS: dict[str, AcceleratorConfig] = {
    "REACT": AcceleratorConfig(
        "REACT", 10, 256, 768, 240.0, hop_mm=1.0, utilization=1.0
    ),
    "TPU v3-like": AcceleratorConfig(
        "TPU v3-like", 4, 128, 43_008, 1400.0, hop_mm=0.5, utilization=1.0
    ),
    "TPU v4-like": AcceleratorConfig(
        "TPU v4-like", 8, 128, 43_008, 1400.0, hop_mm=0.5, utilization=1.0
    ),
    "Jetson Xavier NX": AcceleratorConfig(
        "Jetson Xavier NX", 2, 16, 256, 1400.0, hop_mm=0.5, utilization=0.05
    ),
}


# ----------------------------------------------------------------------
# Table III: hardware overhead (area mm^2, power mW) on top of each
# accelerator.  Keys: (accelerator, approximator).
# ----------------------------------------------------------------------
TABLE3_OVERHEAD: dict[tuple[str, str], tuple[float, float]] = {
    ("REACT", "per_neuron_lut"): (6.058, 289.08),
    ("REACT", "per_core_lut"): (3.226, 292.57),
    ("REACT", "nova"): (1.817, 117.51),
    ("TPU v3-like", "per_neuron_lut"): (1.267, 382.468),
    ("TPU v3-like", "per_core_lut"): (1.004, 862.472),
    ("TPU v3-like", "nova"): (0.414, 103.78),
    ("TPU v4-like", "per_neuron_lut"): (2.534, 764.936),
    ("TPU v4-like", "per_core_lut"): (2.008, 1724.94),
    ("TPU v4-like", "nova"): (0.82, 184.83),
    ("Jetson Xavier NX", "nvdla_sdp"): (0.1382, 48.867),
    ("Jetson Xavier NX", "nova"): (0.0276, 1.294),
}


# ----------------------------------------------------------------------
# Table IV: related-work hardware overhead, single approximator lane.
# (name, tech node, area um^2, power mW note)
# ----------------------------------------------------------------------
TABLE4_RELATED: list[dict[str, object]] = [
    {
        "name": "NACU",
        "tech_nm": 28,
        "area_um2": 9671.0,
        "power_mw": {"sigmoid": 2.159, "tanh": 1.95, "exp": 3.74},
    },
    {"name": "I-BERT", "tech_nm": 22, "area_um2": 2941.0, "power_mw": 0.201},
    {"name": "NOVA", "tech_nm": 22, "area_um2": 898.75, "power_mw": 0.046},
]


# ----------------------------------------------------------------------
# Headline ratios quoted in the running text (§V-C/D/E and abstract).
# ----------------------------------------------------------------------
HEADLINE_RATIOS: dict[str, float] = {
    # §V-C.1: REACT area savings vs the two LUT baselines
    "react_area_saving_vs_per_neuron": 3.34,
    "react_area_saving_vs_per_core": 1.78,
    # §V-C.2: REACT power saving (average over the two baselines)
    "react_power_saving_avg": 2.5,
    # §V-D: TPU
    "tpu_area_saving_min": 3.0,
    "tpu_power_saving_min": 9.4,
    # §V-E: NVDLA
    "nvdla_area_saving": 4.99,
    "nvdla_power_saving": 37.8,
    # abstract / intro
    "mean_area_saving": 3.23,
    "mean_power_saving": 16.56,
    "max_power_efficiency": 37.8,
    "energy_saving_vs_approximators": 9.4,
}


# ----------------------------------------------------------------------
# §V-A scalability: single-cycle multi-hop corner from P&R timing.
# ----------------------------------------------------------------------
SCALABILITY: dict[str, float] = {
    "max_routers_single_cycle": 10,
    "router_pitch_mm": 1.0,
    "noc_clock_ghz": 1.5,
}


# ----------------------------------------------------------------------
# Fig. 8: energy evaluation.  Benchmarks and sequence lengths; the figure
# reports per-inference energy overhead of each approximator on each
# accelerator, with LUT baselines up to 7.5x NOVA on systolic configs and
# 9.4x / 4.14x average overhead vs 0.5% for NOVA on TPU-v4 (§V-F).
# ----------------------------------------------------------------------
FIG8_BENCHMARKS: dict[str, dict[str, float]] = {
    # model dims: L = layers, H = hidden, A = heads, I = FFN intermediate
    "BERT-tiny": {"layers": 2, "hidden": 128, "heads": 2, "intermediate": 512},
    "BERT-mini": {"layers": 4, "hidden": 256, "heads": 4, "intermediate": 1024},
    "MobileBERT-tiny": {
        "layers": 24,
        "hidden": 128,
        "heads": 4,
        "intermediate": 512,
    },
    "MobileBERT-base": {
        "layers": 24,
        "hidden": 512,
        "heads": 4,
        "intermediate": 512,
    },
    "RoBERTa": {"layers": 12, "hidden": 768, "heads": 12, "intermediate": 3072},
}

#: §V-F: sequence lengths used per accelerator ("we use a sequence length
#: of 1024 for all the accelerator configurations except REACT where the
#: sequence length is kept at 128").
FIG8_SEQ_LEN: dict[str, int] = {
    "REACT": 128,
    "TPU v3-like": 1024,
    "TPU v4-like": 1024,
}

FIG8_HEADLINES: dict[str, float] = {
    "lut_vs_nova_energy_max": 7.5,
    "tpu_v4_nova_energy_overhead_pct": 0.5,
    "tpu_v4_per_neuron_overhead_x": 4.14,
    "tpu_v4_per_core_overhead_x": 9.4,
}
