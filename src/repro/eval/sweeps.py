"""Sweep experiments beyond the paper's fixed operating points.

Two sweeps that test how far the paper's conclusions travel:

* :func:`seq_len_sweep` — the intro's motivation ("non-linear operations
  can consume up to nearly 40% of the runtime", §I citing NN-LUT and
  Softermax) as a function of sequence length: softmax queries grow as
  S^2 while the GEMM work grows as S^2·H, so the vector unit's share of
  runtime rises with S until the per-head score GEMMs dominate.
* :func:`memory_energy_sweep` — Fig. 8's overhead metric with the host's
  DRAM traffic included (Table II capacities), the term the paper's
  MAC-only host energy omits; NOVA's relative overhead only shrinks.
"""

from __future__ import annotations

from repro.accelerators import build_accelerator
from repro.accelerators.memory import MemoryHierarchy
from repro.core.config import NovaConfig
from repro.eval.experiments import (
    ExperimentResult,
    HOST_MAC_PJ,
    HOST_SRAM_WORD_PJ,
    _inference_energy_mj,
)
from repro.eval.paper_data import TABLE2_CONFIGS
from repro.workloads.bert import bert_graph

__all__ = ["seq_len_sweep", "memory_energy_sweep", "lane_sizing_sweep"]


def seq_len_sweep(
    model_name: str = "BERT-tiny", accelerator: str = "TPU v4-like"
) -> ExperimentResult:
    """Vector-unit runtime share vs sequence length."""
    host = build_accelerator(accelerator)
    result = ExperimentResult(
        experiment_id="Sweep S1",
        title=f"Non-linear runtime share vs sequence length "
              f"({model_name} on {accelerator})",
        headers=[
            "Seq len", "GEMM cycles", "Vector cycles",
            "Vector share %", "Softmax queries",
        ],
        notes=(
            "The intro's motivation: softmax volume grows quadratically "
            "in S, so the vector unit's runtime share rises with "
            "sequence length (toward the ~40% figure §I cites) unless "
            "the vector unit keeps pace — which is the gap NOVA fills."
        ),
    )
    for seq_len in (64, 128, 256, 512, 1024, 2048):
        graph = bert_graph(model_name, seq_len=seq_len)
        report = host.run(graph)
        result.rows.append(
            [
                seq_len,
                report.gemm_cycles,
                report.nonlinear_cycles,
                round(100.0 * report.vector_duty_cycle, 2),
                graph.queries_by_function()["exp"],
            ]
        )
    return result


def lane_sizing_sweep(
    accelerator: str = "TPU v4-like", seq_len: int = 1024
) -> ExperimentResult:
    """How many approximator lanes does each benchmark actually need?

    Sizes the vector unit the way an architect would: for each Fig. 8
    benchmark, the average non-linear query rate (queries per GEMM cycle)
    is the demand; the Table II configuration provides ``routers x
    neurons`` lanes of supply.  The ratio shows the paper's 128
    lanes/MXU is comfortably provisioned for encoder workloads — and by
    how much causal (GPT-style) masking relaxes it further.
    """
    from repro.eval.paper_data import TABLE2_CONFIGS
    from repro.workloads.bert import BERT_MODELS
    from repro.workloads.transformer import (
        TransformerConfig,
        build_encoder_graph,
    )

    cfg = TABLE2_CONFIGS[accelerator]
    host = build_accelerator(accelerator)
    lanes = NovaConfig.from_accelerator(cfg).n_lanes
    result = ExperimentResult(
        experiment_id="Sweep S3",
        title=f"Vector-lane demand vs the {lanes} lanes of {accelerator}",
        headers=[
            "Benchmark", "Attention", "Queries/GEMM-cycle (demand)",
            "Lanes (supply)", "Headroom",
        ],
        notes=(
            "Demand = total non-linear queries / GEMM cycles: the lane "
            "count that would hide all non-linear work behind the tensor "
            "phases. Causal masking halves softmax demand."
        ),
    )
    for model_name, base in BERT_MODELS.items():
        for causal in (False, True):
            config = TransformerConfig(
                name=base.name,
                layers=base.layers,
                hidden=base.hidden,
                heads=base.heads,
                intermediate=base.intermediate,
                seq_len=seq_len,
                causal=causal,
            )
            graph = build_encoder_graph(config)
            report = host.run(graph)
            demand = graph.total_nonlinear_queries / max(report.gemm_cycles, 1)
            result.rows.append(
                [
                    model_name,
                    "causal" if causal else "full",
                    round(demand, 1),
                    lanes,
                    f"{lanes / max(demand, 1e-9):.2f}x",
                ]
            )
    return result


def memory_energy_sweep() -> ExperimentResult:
    """NOVA's energy overhead with DRAM included in the host energy."""
    result = ExperimentResult(
        experiment_id="Sweep S2",
        title="NOVA overhead with host DRAM traffic included",
        headers=[
            "Accelerator", "Benchmark", "Host MAC+SRAM (mJ)",
            "Host DRAM (mJ)", "Refetch share", "NOVA (mJ)",
            "Overhead vs MAC+SRAM", "Overhead vs total",
        ],
        notes=(
            "DRAM per Table II capacities (double-buffered SCALE-Sim "
            "traffic model); including it only shrinks NOVA's relative "
            "overhead — the paper's 0.5% TPU-v4 figure is conservative."
        ),
    )
    for acc_name, seq_len in (("TPU v4-like", 1024), ("REACT", 128)):
        cfg = TABLE2_CONFIGS[acc_name]
        host = build_accelerator(acc_name)
        memory = MemoryHierarchy(sram_kb=cfg.onchip_memory_kb)
        for model_name in ("BERT-tiny", "RoBERTa"):
            graph = bert_graph(model_name, seq_len=seq_len)
            report = host.run(graph)
            traffic = memory.graph_traffic(graph)
            host_core_mj = (
                report.total_macs * HOST_MAC_PJ
                + (report.sram_reads + report.sram_writes) * HOST_SRAM_WORD_PJ
            ) * 1e-9
            dram_mj = memory.dram_energy_mj(traffic)
            nova_mj = _inference_energy_mj(
                "nova", cfg, report.total_cycles, report.nonlinear_cycles
            )
            result.rows.append(
                [
                    acc_name,
                    model_name,
                    round(host_core_mj, 5),
                    round(dram_mj, 5),
                    f"{traffic.refetch_fraction * 100:.1f}%",
                    round(nova_mj, 5),
                    f"{100 * nova_mj / host_core_mj:.2f}%",
                    f"{100 * nova_mj / (host_core_mj + dram_mj):.2f}%",
                ]
            )
    return result
