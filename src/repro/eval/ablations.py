"""Ablation studies on the design choices behind the paper's numbers.

The paper fixes several knobs (16 breakpoints, 16-bit fixed point, MLP
fitting, 1 mm router pitch) with one-line justifications; these
experiments sweep each knob so the trade-off behind the choice is
visible.  Each returns an :class:`~repro.eval.experiments.
ExperimentResult` and has a benchmark in ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

import numpy as np

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl
from repro.core.mapper import NovaMapper
from repro.core.table_scheduler import TableScheduler
from repro.eval.experiments import ExperimentResult
from repro.hw.costs import nova_router_cost, per_core_lut_cost, per_neuron_lut_cost
from repro.utils.fixed_point import FixedPointFormat, Q1_14, Q5_10, Q7_8
from repro.workloads.bert import BERT_MODELS, bert_graph

__all__ = [
    "ablation_breakpoints",
    "ablation_fit_strategy",
    "ablation_fixed_point",
    "ablation_table_reload",
    "ablation_hop_length",
    "ablation_utilization",
    "related_softmax_comparison",
    "ablation_topology",
]


def ablation_breakpoints() -> ExperimentResult:
    """Table size sweep: approximation error vs broadcast cost.

    Shows why the paper picks 16: at 8 the error is already small for
    smooth activations, at 16 it is negligible, and beyond 16 every
    doubling doubles the NoC clock multiplier for almost no accuracy.
    """
    result = ExperimentResult(
        experiment_id="Ablation A1",
        title="Breakpoint count: error vs broadcast cost",
        headers=[
            "Segments", "exp max err", "gelu max err", "Beats",
            "NoC clock mult", "Energy/query (pJ)",
        ],
        notes=(
            "Errors from MLP-trained tables (float, before quantisation); "
            "energy from the 128-neuron NOVA router model at 1 GHz."
        ),
    )
    mapper = NovaMapper()
    for n_segments in (4, 8, 16, 32, 64):
        errors = {}
        for name in ("exp", "gelu"):
            spec = get_function(name)
            mlp = train_nnlut_mlp(spec, n_segments=n_segments, seed=0,
                                  epochs=150)
            pwl = mlp.to_piecewise_linear(n_segments=n_segments)
            errors[name] = pwl.max_error(spec.fn)
        n_beats = mapper.n_beats_for(n_segments)
        cost = nova_router_cost(128, n_segments=n_segments,
                                pe_frequency_ghz=1.0)
        result.rows.append(
            [
                n_segments,
                round(errors["exp"], 5),
                round(errors["gelu"], 5),
                n_beats,
                n_beats,
                round(cost.energy_per_query_pj(), 4),
            ]
        )
    return result


def ablation_fit_strategy() -> ExperimentResult:
    """Fitting flow ablation: NN-LUT MLP vs direct fits at 16 segments."""
    result = ExperimentResult(
        experiment_id="Ablation A2",
        title="Table fitting strategy: max |error| at 16 segments",
        headers=[
            "Function", "NN-LUT MLP", "Curvature interp", "Uniform interp",
            "Curvature lstsq",
        ],
        notes=(
            "The MLP flow (the paper's) matches the curvature-equalising "
            "direct fit; uniform placement is the naive baseline it beats."
        ),
    )
    for name in ("exp", "gelu", "tanh", "sigmoid"):
        spec = get_function(name)
        mlp_pwl = train_nnlut_mlp(
            spec, n_segments=16, seed=0
        ).to_piecewise_linear(16)
        curvature = PiecewiseLinear.fit(spec.fn, spec.domain, 16,
                                        strategy="curvature")
        uniform = PiecewiseLinear.fit(spec.fn, spec.domain, 16,
                                      strategy="uniform")
        lstsq = PiecewiseLinear.fit(spec.fn, spec.domain, 16,
                                    strategy="curvature", method="lstsq")
        result.rows.append(
            [
                name,
                round(mlp_pwl.max_error(spec.fn), 5),
                round(curvature.max_error(spec.fn), 5),
                round(uniform.max_error(spec.fn), 5),
                round(lstsq.max_error(spec.fn), 5),
            ]
        )
    return result


def ablation_fixed_point() -> ExperimentResult:
    """Word-format sweep: quantisation's contribution to total error."""
    result = ExperimentResult(
        experiment_id="Ablation A3",
        title="Fixed-point format: total error of the quantised gelu table",
        headers=[
            "Format", "LSB", "PWL-only max err", "Quantised max err",
            "Quantisation share",
        ],
        notes=(
            "16 segments; 'share' is the error added by quantisation on "
            "top of the PWL error. Q5.10 (the default) leaves the PWL "
            "error dominant, which is why 16-bit words suffice (Fig. 3)."
        ),
    )
    spec = get_function("gelu")
    pwl = PiecewiseLinear.fit(spec.fn, spec.domain, 16)
    pwl_err = pwl.max_error(spec.fn)
    xs = np.linspace(*spec.domain, 4096)
    # formats whose range covers the gelu domain (+-8); narrower formats
    # are rejected by QuantizedPwl (saturated cuts would collapse)
    for fmt in (Q7_8, Q5_10, FixedPointFormat(4, 11), FixedPointFormat(3, 12)):
        table = QuantizedPwl(pwl, input_format=fmt, coeff_format=fmt,
                             output_format=fmt)
        q_err = float(np.max(np.abs(table.evaluate(xs) - spec.fn(xs))))
        result.rows.append(
            [
                str(fmt),
                fmt.scale,
                round(pwl_err, 5),
                round(q_err, 5),
                f"{max(q_err - pwl_err, 0.0) / q_err * 100:.1f}%",
            ]
        )
    return result


def _phase_tables(n_segments: int = 16) -> dict[str, QuantizedPwl]:
    tables = {}
    for name in ("exp", "gelu", "rsqrt", "reciprocal"):
        spec = get_function(name)
        tables[name] = QuantizedPwl(
            PiecewiseLinear.fit(spec.fn, spec.domain, n_segments)
        )
    return tables


def ablation_table_reload() -> ExperimentResult:
    """Function-switching cost: NOVA's tables-on-wires vs SRAM reloads.

    The extension study the paper's mapper section implies: every encoder
    layer switches exp -> reciprocal -> rsqrt -> gelu -> rsqrt, and a LUT
    unit rewrites its banks at each switch while NOVA pays nothing.
    """
    result = ExperimentResult(
        experiment_id="Ablation A4",
        title="Table-reload overhead per inference (vector-unit cycles)",
        headers=[
            "Benchmark", "Seq len", "Compute cycles", "LUT reload cycles",
            "LUT overhead", "NOVA reload cycles",
        ],
        notes=(
            "1024 lanes (TPU v4-like); reload = 32 write cycles per "
            "switch (16 entries x 2 words, single write port)."
        ),
    )
    tables = _phase_tables()
    nova = TableScheduler(tables, n_lanes=1024, unit_kind="nova")
    lut = TableScheduler(tables, n_lanes=1024, unit_kind="per_neuron_lut")
    for model_name in BERT_MODELS:
        for seq_len in (128, 1024):
            graph = bert_graph(model_name, seq_len=seq_len)
            nova_report = nova.schedule(graph)
            lut_report = lut.schedule(graph)
            result.rows.append(
                [
                    model_name,
                    seq_len,
                    lut_report.compute_cycles,
                    lut_report.reload_cycles,
                    f"{lut_report.reload_overhead * 100:.2f}%",
                    nova_report.reload_cycles,
                ]
            )
    return result


def ablation_hop_length() -> ExperimentResult:
    """Router-pitch sweep: the wire term in NOVA's cost.

    NOVA trades SRAM for wires, so its cost is the only one sensitive to
    floorplan pitch; this sweep bounds how far the Table III conclusions
    travel to bigger/smaller hosts.
    """
    result = ExperimentResult(
        experiment_id="Ablation A5",
        title="NOVA router cost vs hop length (128 neurons, 1 GHz)",
        headers=[
            "Hop (mm)", "Area (um2)", "Wire share", "Power (mW)",
            "Still beats per-neuron LUT",
        ],
        notes="per-neuron LUT reference is pitch-independent.",
    )
    pn = per_neuron_lut_cost(128, pe_frequency_ghz=1.0)
    for hop_mm in (0.25, 0.5, 1.0, 2.0, 4.0):
        nova = nova_router_cost(128, pe_frequency_ghz=1.0, hop_mm=hop_mm)
        wire_share = nova.area_breakdown["link_wires"] / nova.area_um2
        result.rows.append(
            [
                hop_mm,
                round(nova.area_um2),
                f"{wire_share * 100:.1f}%",
                round(nova.power_mw(), 3),
                nova.area_um2 < pn.area_um2 and nova.power_mw() < pn.power_mw(),
            ]
        )
    return result


def ablation_topology() -> ExperimentResult:
    """Broadcast topology: the quantitative case for the paper's line.

    §III-A asserts the line topology "minimizes the complexity of the
    NoC"; over a row of cores the line is also *wire-optimal* and within
    2x of the tree's critical path — so the choice costs nothing.
    """
    from repro.noc.broadcast_topologies import compare_topologies

    result = ExperimentResult(
        experiment_id="Ablation A8",
        title="Broadcast topology over a row of routers (10 @ 1 mm pitch)",
        headers=[
            "Topology", "Total wire (mm)", "Critical path (mm)",
            "Critical delay (ps)", "Driver banks", "Router input ports",
        ],
        notes=(
            "Wire area/energy scale with total wire (257 bits each); the "
            "line minimises it while keeping a single input port per "
            "router — trees only pay off for 2-D router spreads."
        ),
    )
    for topo in compare_topologies(10, pitch_mm=1.0):
        result.rows.append(
            [
                topo.name,
                round(topo.total_wire_mm, 2),
                round(topo.critical_path_mm, 2),
                round(topo.critical_delay_ps(), 1),
                topo.n_drivers,
                topo.router_ports,
            ]
        )
    return result


def related_softmax_comparison() -> ExperimentResult:
    """All three *implemented* softmax approaches on one metric suite.

    NOVA's NN-LUT PWL flow, I-BERT's integer-only i-exp and Softermax's
    base-2 scheme are all implemented in this repository; this experiment
    runs them on identical attention-logit traces and reports probability
    error and argmax fidelity — the algorithmic side of the paper's
    related-work section, computed instead of cited.
    """
    from repro.approx.ibert import ibert_exp
    from repro.approx.softermax import softermax
    from repro.approx.softmax import approx_softmax, exact_softmax
    from repro.workloads.traces import attention_logit_trace

    logits = attention_logit_trace(64 * 256, seq_len=64, seed=0).reshape(256, 64)
    exact = exact_softmax(logits, axis=-1)

    spec = get_function("exp")
    nova_table = train_nnlut_mlp(spec, n_segments=16, seed=0)
    nova_pwl = nova_table.to_piecewise_linear(16)

    candidates = {
        "NOVA (PWL-16)": approx_softmax(logits, nova_pwl.evaluate, axis=-1),
        "I-BERT (i-exp)": approx_softmax(logits, ibert_exp, axis=-1),
        "Softermax (scaled)": softermax(logits, scale_scores=True),
        "Softermax (raw base-2)": softermax(logits, scale_scores=False),
    }
    result = ExperimentResult(
        experiment_id="Ablation A7",
        title="Implemented related-work softmax schemes on attention logits",
        headers=[
            "Scheme", "Max |p err|", "Mean |p err|", "Argmax match %",
        ],
        notes=(
            "256 rows of 64-wide post-max attention logits; raw base-2 "
            "Softermax computes an intentionally softer distribution "
            "(its deployments retrain), hence its larger 'error' vs true "
            "softmax with perfect argmax fidelity."
        ),
    )
    for name, probs in candidates.items():
        err = np.abs(probs - exact)
        match = float(
            np.mean(probs.argmax(axis=-1) == exact.argmax(axis=-1)) * 100
        )
        result.rows.append(
            [name, round(float(err.max()), 5), round(float(err.mean()), 6),
             round(match, 2)]
        )
    return result


def ablation_utilization() -> ExperimentResult:
    """Duty-cycle sweep: the clocked-vs-active power split made visible.

    Two opposite regimes at the Jetson geometry (16 lanes, 1.4 GHz):

    * **datapath-only LUT units** (per-core): their advantage-free SRAM
      reads scale with work, so the NOVA gap *grows* with duty cycle;
    * **engine-style units** (NVDLA's SDP, with always-on control and
      sequencing): the gap is *widest at low duty* — exactly the regime
      an NVDLA conv core's rare activation emissions create, which is
      the mechanism behind the paper's 37.8x (§V-E).
    """
    from repro.hw.costs import sdp_cost

    result = ExperimentResult(
        experiment_id="Ablation A6",
        title="Power vs vector-unit duty cycle (16 lanes @ 1.4 GHz, mW)",
        headers=[
            "Utilization", "NOVA", "Per-core LUT", "NVDLA SDP",
            "Per-core / NOVA", "SDP / NOVA",
        ],
        notes=(
            "leakage included; LUT/SDP clock trees and SDP control toggle "
            "every cycle regardless of work."
        ),
    )
    nova = nova_router_cost(16, pe_frequency_ghz=1.4, hop_mm=0.5)
    pc = per_core_lut_cost(16, pe_frequency_ghz=1.4)
    sdp = sdp_cost(16, pe_frequency_ghz=1.4)
    for utilization in (0.02, 0.1, 0.25, 0.5, 1.0):
        p_nova = nova.power_mw(utilization)
        p_pc = pc.power_mw(utilization)
        p_sdp = sdp.power_mw(utilization)
        result.rows.append(
            [
                utilization,
                round(p_nova, 3),
                round(p_pc, 3),
                round(p_sdp, 3),
                f"{p_pc / p_nova:.2f}x",
                f"{p_sdp / p_nova:.2f}x",
            ]
        )
    return result
