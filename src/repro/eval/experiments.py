"""One entry point per paper table/figure.

Each experiment returns an :class:`ExperimentResult` whose rows place the
model's output next to the paper's published value, so the benchmark
harness and EXPERIMENTS.md can always show both.  Shapes (who wins, by
what factor) come from the physical models; the per-unit-type calibration
of :mod:`repro.hw.calibration` sets the absolute gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerators import build_accelerator
from repro.accelerators.nvdla import NvdlaAccelerator
from repro.core.config import NovaConfig, as_config
from repro.eval import paper_data
from repro.hw.calibration import calibrated_cost
from repro.hw.costs import unit_cost
from repro.noc.link import RepeatedWire
from repro.workloads.bert import BERT_MODELS, bert_graph

__all__ = [
    "ExperimentResult",
    "table1_accuracy",
    "table2_configs",
    "table3_overhead",
    "table4_related_work",
    "fig6_area_scaling",
    "fig7_power_scaling",
    "fig8_energy",
    "scalability_sweep",
    "nvdla_duty_cycle_estimate",
    "batched_serving_throughput",
    "decode_serving_throughput",
    "kernel_backend_throughput",
    "paged_decode_utilization",
    "prefix_caching_residency",
]


@dataclass
class ExperimentResult:
    """A rendered-ready experiment outcome."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: str = ""

    def column(self, header: str) -> list[object]:
        """Extract one column by header name (for assertions in tests)."""
        try:
            idx = self.headers.index(header)
        except ValueError:
            raise KeyError(
                f"no column {header!r}; available: {self.headers}"
            ) from None
        return [row[idx] for row in self.rows]


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------

def table1_accuracy(max_models: int | None = None) -> ExperimentResult:
    """Exact vs PWL-softmax accuracy across the model zoo.

    ``max_models`` limits the zoo for quick runs (the full six models
    train in about a minute).
    """
    from repro.ml.approx_inference import accuracy_with_softmax, table1_model_zoo

    paper_rows = {
        (model, dataset): (exact, approx, bp)
        for model, dataset, exact, approx, bp in paper_data.TABLE1_ACCURACY
    }
    result = ExperimentResult(
        experiment_id="Table I",
        title="Post-approximation accuracy (exact vs approx softmax)",
        headers=[
            "Model", "Dataset", "Breakpoints",
            "Paper exact %", "Paper approx %",
            "Ours exact %", "Ours approx %", "Ours delta",
            "Ours approx (softmax+GeLU) %",
        ],
        notes=(
            "Synthetic-dataset substitution (DESIGN.md): same architectural "
            "families, same breakpoint budgets, accuracy bands tuned to the "
            "paper's. The reproduced claim is the ~zero exact-to-approx "
            "delta; the final column additionally approximates GeLU (our "
            "stricter extension beyond Table I's softmax-only setting)."
        ),
    )
    zoo = table1_model_zoo()
    if max_models is not None:
        zoo = zoo[:max_models]
    for entry in zoo:
        ours = accuracy_with_softmax(entry)
        p_exact, p_approx, p_bp = paper_rows[(entry.model_name, entry.dataset_name)]
        result.rows.append(
            [
                entry.model_name,
                entry.dataset_name,
                entry.breakpoints,
                p_exact,
                p_approx,
                round(ours["exact"], 2),
                round(ours["approx"], 2),
                round(ours["approx"] - ours["exact"], 2),
                round(ours["approx_all"], 2),
            ]
        )
    return result


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------

def table2_configs() -> ExperimentResult:
    """Accelerator parameters plus the mapper's derived broadcast plan."""
    result = ExperimentResult(
        experiment_id="Table II",
        title="Accelerator parameters integrated with NOVA",
        headers=[
            "Accelerator", "NOVA routers", "Neurons/router", "Memory (kB)",
            "Freq (MHz)", "Beats", "NoC clock (MHz)", "Single-cycle",
        ],
        notes=(
            "Beats / NoC clock / single-cycle traversal are derived by the "
            "NOVA mapper (16 breakpoints => 2 beats => 2x clock, paper §IV)."
        ),
    )
    for cfg in paper_data.TABLE2_CONFIGS.values():
        schedule = NovaConfig.from_accelerator(cfg).schedule()
        result.rows.append(
            [
                cfg.name,
                cfg.n_routers,
                cfg.neurons_per_router,
                cfg.onchip_memory_kb,
                cfg.frequency_mhz,
                schedule.n_beats,
                round(schedule.noc_frequency_ghz * 1000.0),
                schedule.single_cycle_broadcast,
            ]
        )
    return result


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------

def _units_for(accelerator: str) -> list[str]:
    if accelerator == "Jetson Xavier NX":
        return ["nvdla_sdp", "nova"]
    return ["per_neuron_lut", "per_core_lut", "nova"]


def table3_overhead(calibrated: bool = True) -> ExperimentResult:
    """Area/power overhead of every approximator on every accelerator."""
    cost_fn = calibrated_cost if calibrated else unit_cost
    result = ExperimentResult(
        experiment_id="Table III",
        title="Hardware overhead of NOVA vs LUT-based approximators",
        headers=[
            "Accelerator", "Approximator",
            "Area mm2 (model)", "Area mm2 (paper)",
            "Power mW (model)", "Power mW (paper)",
        ],
        notes=(
            "Model values from the component-level 22nm cost model"
            + (" with per-unit-type calibration" if calibrated else " (raw)")
            + "; NOVA power uses each accelerator's vector-unit duty cycle "
            "(NVDLA's conv cores emit activations rarely)."
        ),
    )
    for cfg in paper_data.TABLE2_CONFIGS.values():
        for unit in _units_for(cfg.name):
            cost = cost_fn(
                unit,
                cfg.neurons_per_router,
                n_segments=16,
                pe_frequency_ghz=cfg.frequency_ghz,
                hop_mm=cfg.hop_mm,
            )
            utilization = cfg.utilization if unit == "nova" else 1.0
            area = cost.area_mm2 * cfg.n_routers
            power = cost.power_mw(utilization) * cfg.n_routers
            p_area, p_power = paper_data.TABLE3_OVERHEAD[(cfg.name, unit)]
            result.rows.append(
                [cfg.name, unit, round(area, 4), p_area, round(power, 2), p_power]
            )
    return result


# ----------------------------------------------------------------------
# Table IV
# ----------------------------------------------------------------------

def table4_related_work() -> ExperimentResult:
    """NOVA lane vs NACU / I-BERT (single approximator lane).

    The I-BERT row is *computed*: its integer-only exp kernel
    (:mod:`repro.approx.ibert`) is implemented and measured for accuracy,
    and its datapath (two integer multipliers, adders, a barrel shifter)
    is priced with the same component model as NOVA.  NACU carries its
    published numbers only (its internal microarchitecture is not
    specified to reproducible depth).
    """
    import numpy as np

    from repro.approx.functions import get_function
    from repro.approx.ibert import ibert_exp
    from repro.approx.nnlut_mlp import train_nnlut_mlp
    from repro.hw.costs import ibert_lane_cost

    # One NOVA lane: the per-neuron slice plus a 1/128 share of the fixed
    # router (the TPU-like sharing ratio the paper's Table IV uses).
    neurons = 128
    cost = calibrated_cost(
        "nova", neurons, n_segments=16, pe_frequency_ghz=1.4, hop_mm=0.5
    )
    lane_area = cost.area_um2 / neurons
    lane_power = cost.power_mw(1.0) / neurons

    ibert = ibert_lane_cost(pe_frequency_ghz=1.4)

    # measured exp error of both implemented approximators
    spec = get_function("exp")
    xs = np.linspace(*spec.domain, 4096)
    nova_table = train_nnlut_mlp(spec, n_segments=16, seed=0)
    nova_err = float(
        np.max(np.abs(nova_table.to_piecewise_linear(16).evaluate(xs)
                      - spec.fn(xs)))
    )
    ibert_err = float(np.max(np.abs(ibert_exp(xs) - spec.fn(xs))))

    result = ExperimentResult(
        experiment_id="Table IV",
        title="Hardware overhead of NOVA vs related approximators (per lane)",
        headers=[
            "Approximator", "Tech node", "Area um2 (model)",
            "Area um2 (paper)", "Power mW (model)", "Power mW (paper)",
            "exp max err (measured)",
        ],
        notes=(
            "I-BERT's integer-only kernels are implemented "
            "(repro.approx.ibert) and its lane priced with our component "
            "model; NACU carries its published numbers. NOVA lane at the "
            "TPU sharing ratio."
        ),
    )
    for row in paper_data.TABLE4_RELATED:
        if row["name"] == "NOVA":
            result.rows.append(
                [
                    "NOVA", "22 nm", round(lane_area, 1),
                    row["area_um2"], round(lane_power, 4), row["power_mw"],
                    round(nova_err, 5),
                ]
            )
        elif row["name"] == "I-BERT":
            result.rows.append(
                [
                    "I-BERT", "22 nm", round(ibert.area_um2, 1),
                    row["area_um2"],
                    round(ibert.power_mw(1.0), 4),
                    row["power_mw"],
                    round(ibert_err, 5),
                ]
            )
        else:
            power = row["power_mw"]
            if isinstance(power, dict):
                power = max(power.values())
            result.rows.append(
                [
                    row["name"], f"{row['tech_nm']} nm", "-",
                    row["area_um2"], "-", power, "-",
                ]
            )
    return result


# ----------------------------------------------------------------------
# Figs 6 and 7
# ----------------------------------------------------------------------

NEURON_SWEEP = (16, 32, 64, 128, 256)


def fig6_area_scaling(calibrated: bool = True) -> ExperimentResult:
    """Router/unit area vs neurons mapped per router."""
    cost_fn = calibrated_cost if calibrated else unit_cost
    result = ExperimentResult(
        experiment_id="Fig 6",
        title="Router area vs neurons mapped per router (um2)",
        headers=[
            "Neurons", "NOVA router", "Per-neuron LUT", "Per-core LUT",
            "NOVA saving vs per-neuron",
        ],
        notes="16 breakpoints, 22 nm, 1 mm hop; areas per router/core.",
    )
    for neurons in NEURON_SWEEP:
        nova = cost_fn("nova", neurons, pe_frequency_ghz=1.0, hop_mm=1.0)
        pn = cost_fn("per_neuron_lut", neurons, pe_frequency_ghz=1.0)
        pc = cost_fn("per_core_lut", neurons, pe_frequency_ghz=1.0)
        result.rows.append(
            [
                neurons,
                round(nova.area_um2),
                round(pn.area_um2),
                round(pc.area_um2),
                f"{pn.area_um2 / nova.area_um2:.2f}x",
            ]
        )
    return result


def fig7_power_scaling(
    frequency_ghz: float = 1.0, calibrated: bool = True
) -> ExperimentResult:
    """Router/unit power vs neurons mapped per router."""
    cost_fn = calibrated_cost if calibrated else unit_cost
    result = ExperimentResult(
        experiment_id="Fig 7",
        title=f"Router power vs neurons per router (mW @ {frequency_ghz} GHz)",
        headers=[
            "Neurons", "NOVA router", "Per-neuron LUT", "Per-core LUT",
            "NOVA saving vs per-core",
        ],
        notes=(
            "Full utilisation; the per-core curve's multi-ported reads make "
            "it the most power-hungry at scale (paper §V-B)."
        ),
    )
    for neurons in NEURON_SWEEP:
        nova = cost_fn("nova", neurons, pe_frequency_ghz=frequency_ghz, hop_mm=1.0)
        pn = cost_fn("per_neuron_lut", neurons, pe_frequency_ghz=frequency_ghz)
        pc = cost_fn("per_core_lut", neurons, pe_frequency_ghz=frequency_ghz)
        result.rows.append(
            [
                neurons,
                round(nova.power_mw(), 3),
                round(pn.power_mw(), 3),
                round(pc.power_mw(), 3),
                f"{pc.power_mw() / nova.power_mw():.2f}x",
            ]
        )
    return result


# ----------------------------------------------------------------------
# Fig 8
# ----------------------------------------------------------------------

#: Host-side energy constants for the overhead-percent metric: one MAC in
#: the tensor array and one 16-bit word of SRAM traffic.
HOST_MAC_PJ = 0.04
HOST_SRAM_WORD_PJ = 0.2


def _inference_energy_mj(
    unit: str,
    cfg: paper_data.AcceleratorConfig,
    total_cycles: int,
    busy_cycles: int,
) -> float:
    """Per-inference energy of one approximator variant (mJ)."""
    cost = calibrated_cost(
        unit,
        cfg.neurons_per_router,
        n_segments=16,
        pe_frequency_ghz=cfg.frequency_ghz,
        hop_mm=cfg.hop_mm,
    )
    time_s = total_cycles / (cfg.frequency_ghz * 1e9)
    busy = min(busy_cycles, total_cycles)
    dynamic_pj = cfg.n_routers * (
        cost.clocked_energy_pj * total_cycles + cost.active_energy_pj * busy
    )
    leak_mj = cost.leakage_power_mw() * cfg.n_routers * time_s
    return dynamic_pj * 1e-9 + leak_mj


def _paper_method_energy_mj(
    unit: str, cfg: paper_data.AcceleratorConfig, total_cycles: int
) -> float:
    """Energy the way the paper computes it: synthesis power x runtime.

    '"The energy consumption numbers are calculated using the respective
    power consumption number from the synthesis results" (§V-F) — i.e.
    full-activity power held for the whole inference, which makes the
    energy ratio equal the Table III power ratio.
    """
    cost = calibrated_cost(
        unit,
        cfg.neurons_per_router,
        n_segments=16,
        pe_frequency_ghz=cfg.frequency_ghz,
        hop_mm=cfg.hop_mm,
    )
    time_s = total_cycles / (cfg.frequency_ghz * 1e9)
    utilization = cfg.utilization if unit == "nova" else 1.0
    return cost.power_mw(utilization) * cfg.n_routers * time_s


def fig8_energy() -> ExperimentResult:
    """Per-inference approximator energy for the 5 BERT-family models.

    Two accountings per row: *paper-method* (synthesis power x runtime,
    reproducing the paper's 4.14x / 9.3x TPU-v4 ratios exactly, since
    under that method energy ratios equal power ratios) and our finer
    *activity-aware* model (clocked energy every cycle, active energy only
    on busy cycles), which narrows the gap but preserves the ordering.
    """
    result = ExperimentResult(
        experiment_id="Fig 8",
        title="Energy per inference for different approximator hardware",
        headers=[
            "Accelerator", "Benchmark", "Seq len",
            "NOVA (mJ)", "Per-neuron LUT (mJ)", "Per-core LUT (mJ)",
            "PN/NOVA", "PC/NOVA",
            "PN/NOVA (paper method)", "PC/NOVA (paper method)",
            "NOVA overhead %",
        ],
        notes=(
            "Activity-aware columns: LUT baselines keep paying their "
            "clocked energy during tensor phases; NOVA's wires only toggle "
            "on queries. Paper-method columns hold full synthesis power for "
            "the whole runtime, as §V-F does. Overhead % is vs the host's "
            "MAC+SRAM energy for the same inference."
        ),
    )
    units = ("nova", "per_neuron_lut", "per_core_lut")
    for acc_name, seq_len in paper_data.FIG8_SEQ_LEN.items():
        cfg = paper_data.TABLE2_CONFIGS[acc_name]
        host = build_accelerator(acc_name)
        for model_name in BERT_MODELS:
            graph = bert_graph(model_name, seq_len=seq_len)
            report = host.run(graph)
            host_energy_mj = (
                report.total_macs * HOST_MAC_PJ
                + (report.sram_reads + report.sram_writes) * HOST_SRAM_WORD_PJ
            ) * 1e-9
            energies = {
                unit: _inference_energy_mj(
                    unit, cfg, report.total_cycles, report.nonlinear_cycles
                )
                for unit in units
            }
            paper_energies = {
                unit: _paper_method_energy_mj(unit, cfg, report.total_cycles)
                for unit in units
            }
            result.rows.append(
                [
                    acc_name,
                    model_name,
                    seq_len,
                    round(energies["nova"], 5),
                    round(energies["per_neuron_lut"], 5),
                    round(energies["per_core_lut"], 5),
                    f"{energies['per_neuron_lut'] / energies['nova']:.2f}x",
                    f"{energies['per_core_lut'] / energies['nova']:.2f}x",
                    f"{paper_energies['per_neuron_lut'] / paper_energies['nova']:.2f}x",
                    f"{paper_energies['per_core_lut'] / paper_energies['nova']:.2f}x",
                    round(100.0 * energies["nova"] / host_energy_mj, 3),
                ]
            )
    return result


# ----------------------------------------------------------------------
# §V-A scalability
# ----------------------------------------------------------------------

def scalability_sweep() -> ExperimentResult:
    """Max single-cycle line length vs NoC clock (the 10 @ 1.5 GHz claim)."""
    wire = RepeatedWire()
    result = ExperimentResult(
        experiment_id="Scalability",
        title="Single-cycle multi-hop reach vs NoC clock (1 mm hops)",
        headers=["NoC clock (GHz)", "Max routers in one cycle", "Paper point"],
        notes=(
            "Paper §V-A: 10 routers at 1 mm pitch traversable at 1.5 GHz; "
            "beyond that the mapper falls back to multi-cycle traversal."
        ),
    )
    for freq in (0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.8):
        reach = wire.max_hops_per_cycle(freq, hop_mm=1.0)
        marker = ""
        if freq == paper_data.SCALABILITY["noc_clock_ghz"]:
            marker = f"paper: {int(paper_data.SCALABILITY['max_routers_single_cycle'])}"
        result.rows.append([freq, reach, marker])
    return result


def batched_serving_throughput(
    model_name: str = "BERT-tiny",
    batch_size: int = 8,
    seq_len: int = 32,
    config: "NovaConfig | str" = "jetson-nx",
    seed: int | None = None,
    warmup: bool = True,
) -> ExperimentResult:
    """Sequential vs batched attention serving on one overlay geometry.

    Not a paper figure — this is the ROADMAP's serving direction: the
    same batch of attention requests is run once through the
    cycle-accurate single-request engine (looped) and once through the
    batched serving engine (lane-packed, vectorised), and the table
    reports wall-clock throughput, per-request vector cycles and the
    packing win.  ``config`` is a :class:`repro.core.config.NovaConfig`
    or preset name (default: the Jetson-like Table II geometry); ``seed``
    seeds both the synthetic requests and the engines' compile-time
    tables and defaults to the config's own seed (so ``--override
    seed=N`` on the CLI takes effect).  Before the table is built,
    outputs, per-request cycle
    counts and per-request event counters are checked identical between
    the two paths (``RuntimeError`` on divergence).  ``warmup`` runs
    each path once first so the timings are steady-state (first-call
    allocator growth and table/schedule cache population excluded);
    this is also the single harness behind
    ``benchmarks/bench_batched_serving.py``.
    """
    import time

    import numpy as np

    from repro.core.session import NovaSession
    from repro.workloads.bert import bert_attention_batch

    cfg = as_config(config)
    if seed is None:
        seed = cfg.seed
    elif cfg.seed != seed:
        cfg = cfg.replace(seed=seed)
    requests = bert_attention_batch(
        model_name, batch_size, seq_len=seq_len, seed=seed
    )
    session = NovaSession(cfg)
    sequential = session.reference
    batched = session.server

    if warmup:
        first = requests[0]
        sequential.attention_layer(
            first.x, first.wq, first.wk, first.wv, first.wo,
            n_heads=first.n_heads,
        )
        batched.attention_batch(requests)

    t0 = time.perf_counter()
    seq_results = [
        sequential.attention_layer(
            r.x, r.wq, r.wk, r.wv, r.wo, n_heads=r.n_heads
        )
        for r in requests
    ]
    t_sequential = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch = batched.attention_batch(requests)
    t_batched = time.perf_counter() - t0

    for i, (got, ref) in enumerate(zip(batch.results, seq_results)):
        if (
            not np.array_equal(got.outputs, ref.outputs)
            or got.vector_cycles != ref.vector_cycles
            or got.counters.as_dict() != ref.counters.as_dict()
        ):
            raise RuntimeError(
                f"batched serving diverged from the sequential engine on "
                f"request {i}: the bit-exact/cycle-exact contract is broken"
            )
    seq_cycles = sum(r.vector_cycles for r in seq_results)

    result = ExperimentResult(
        experiment_id="Serving",
        title=(
            f"Batched attention serving: {batch_size} x {model_name} "
            f"(seq {seq_len}) on {cfg.n_routers}x{cfg.neurons_per_router} "
            "lanes"
        ),
        headers=[
            "Path", "Wall s", "Requests/s", "Vector cycles",
            "Cycles/request", "Speedup",
        ],
        notes=(
            "Outputs bit-identical, per-request vector_cycles and event "
            "counters identical across both paths (checked). Sequential "
            "drives every query through the beat-level NoC simulation; "
            "batched packs all requests' queries into one lane stream on "
            "a single shared overlay with cached tables and schedules. "
            "Packing saves "
            f"{batch.sequential_vector_cycles - batch.packed_vector_cycles} "
            "vector cycles of per-request tail padding across the batch."
        ),
    )
    result.rows.append(
        [
            "sequential (cycle-accurate)",
            round(t_sequential, 4),
            round(batch_size / t_sequential, 2),
            seq_cycles,
            round(seq_cycles / batch_size, 1),
            "1.00x",
        ]
    )
    result.rows.append(
        [
            "batched (lane-packed)",
            round(t_batched, 4),
            round(batch_size / t_batched, 2),
            batch.packed_vector_cycles,
            round(batch.packed_vector_cycles / batch_size, 1),
            f"{t_sequential / t_batched:.2f}x",
        ]
    )
    return result


def decode_serving_throughput(
    model_name="GPT-2-small",
    batch_size: int = 8,
    prompt_len: int = 16,
    max_new_tokens: int = 16,
    config: "NovaConfig | str" = "jetson-nx",
    seed: int | None = None,
    max_active: int = 8,
    warmup: bool = True,
) -> ExperimentResult:
    """One-at-a-time vs continuously batched autoregressive decode.

    The decode-side companion of :func:`batched_serving_throughput`: the
    same batch of causal decode requests (prompt + ``max_new_tokens``
    generation budget each) is served once by looping
    :meth:`repro.core.decode.NovaDecodeEngine.generate` per request and
    once through the :class:`repro.core.decode.ContinuousBatchScheduler`
    (prefill and decode rows of different requests fused into shared
    lane streams each scheduler step), and the table reports wall-clock
    tokens/sec, vector cycles/token and the packing win.  Before the
    table is built, every request's generated tokens, per-step
    sequential-equivalent cycles and event counters are checked
    identical between the two paths (``RuntimeError`` on divergence).
    ``model_name`` is a causal :data:`repro.workloads.bert.SERVING_MODELS`
    key or a :class:`repro.workloads.transformer.TransformerConfig`
    directly; ``seed`` defaults to the config's own seed; ``warmup``
    runs each path once first so the timings are steady-state.  This is
    also the single harness behind
    ``benchmarks/bench_decode_serving.py``.
    """
    import time

    import numpy as np

    from repro.core.decode import ContinuousBatchScheduler
    from repro.core.session import NovaSession
    from repro.workloads.bert import decode_batch, serving_config
    from repro.workloads.transformer import TransformerConfig

    if max_new_tokens < 1:
        raise ValueError(
            "decode_serving_throughput measures tokens/sec over generated "
            f"tokens, so max_new_tokens must be >= 1 (got {max_new_tokens})"
        )
    cfg = as_config(config)
    if seed is None:
        seed = cfg.seed
    elif cfg.seed != seed:
        cfg = cfg.replace(seed=seed)
    model = (
        model_name
        if isinstance(model_name, TransformerConfig)
        else serving_config(model_name)
    )
    requests = decode_batch(
        model, batch_size, prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed,
    )
    session = NovaSession(cfg)
    engine = session.decoder

    if warmup:
        engine.generate(requests[0])
        ContinuousBatchScheduler(engine, max_active=max_active).run(requests)

    t0 = time.perf_counter()
    solo = [engine.generate(r) for r in requests]
    t_solo = time.perf_counter() - t0

    scheduler = ContinuousBatchScheduler(engine, max_active=max_active)
    t0 = time.perf_counter()
    batch = scheduler.run(requests)
    t_batched = time.perf_counter() - t0

    for i, (ref, got) in enumerate(zip(solo, batch.results)):
        if (
            not np.array_equal(got.generated, ref.generated)
            or not np.array_equal(got.prefill.outputs, ref.prefill.outputs)
            or got.vector_cycles != ref.vector_cycles
            or got.counters.as_dict() != ref.counters.as_dict()
        ):
            raise RuntimeError(
                f"continuous batching diverged from one-at-a-time decode on "
                f"request {i}: the bit-exact/cycle-exact contract is broken"
            )

    tokens = batch.total_generated_tokens
    solo_cycles = sum(r.vector_cycles for r in solo)
    result = ExperimentResult(
        experiment_id="Decode serving",
        title=(
            f"Continuous-batching decode: {batch_size} x {model.name} "
            f"(prompt {prompt_len} + {max_new_tokens} new) on "
            f"{cfg.n_routers}x{cfg.neurons_per_router} lanes"
        ),
        headers=[
            "Path", "Wall s", "Tokens/s", "Vector cycles",
            "Cycles/token", "Speedup",
        ],
        notes=(
            "Generated tokens, per-step vector_cycles and event counters "
            "identical across both paths (checked). One-at-a-time runs "
            "prefill + every decode step as its own hardware stream; "
            "continuous batching fuses all in-flight requests' rows into "
            "one stream per scheduler step on the shared overlay. "
            f"Packing saves {batch.sequential_vector_cycles - batch.packed_vector_cycles} "
            f"vector cycles; {batch.pages_recycled} cache pages recycled "
            f"across {batch.scheduler_steps} scheduler steps."
        ),
    )
    result.rows.append(
        [
            "one-at-a-time (KV-cached)",
            round(t_solo, 4),
            round(tokens / t_solo, 2),
            solo_cycles,
            round(solo_cycles / tokens, 2),
            "1.00x",
        ]
    )
    result.rows.append(
        [
            "continuous batching",
            round(t_batched, 4),
            round(tokens / t_batched, 2),
            batch.packed_vector_cycles,
            round(batch.packed_vector_cycles / tokens, 2),
            f"{t_solo / t_batched:.2f}x",
        ]
    )
    return result


def kernel_backend_throughput(
    model_name="GPT-2-small",
    batch_size: int = 6,
    prompt_len: int = 8,
    max_new_tokens: int = 64,
    config: "NovaConfig | str" = "jetson-nx",
    seed: int | None = None,
    max_active: int = 8,
    backends: "tuple[str, ...] | list[str] | None" = None,
    warmup: bool = True,
) -> ExperimentResult:
    """Kernel backends racing the pinned per-token loopback reference.

    The same long-decode continuous-batch sweep (``batch_size`` causal
    requests, ``prompt_len`` + ``max_new_tokens`` tokens each, served
    through the :class:`~repro.core.decode.ContinuousBatchScheduler`)
    runs once per kernel backend, and the table reports wall-clock
    tokens/sec plus the speedup over the first row.  ``backends``
    defaults to ``loopback`` (the pre-kernel per-token execution,
    pinned as the denominator) followed by every other backend
    installed in this process (:func:`repro.core.kernels.
    available_backends`); the first entry is always the baseline.

    Before the table is built, every backend's results are checked
    bit/cycle/counter-identical to the baseline's (``RuntimeError`` on
    divergence) — backends are an execution-speed lever only, and this
    harness enforces it before reporting any speedup.  This is also the
    single harness behind ``benchmarks/bench_kernel_backends.py``.
    """
    import time

    import numpy as np

    from repro.core.decode import ContinuousBatchScheduler
    from repro.core.kernels import available_backends, kernel_cache_info
    from repro.core.session import NovaSession
    from repro.workloads.bert import decode_batch, serving_config
    from repro.workloads.transformer import TransformerConfig

    if max_new_tokens < 1:
        raise ValueError(
            "kernel_backend_throughput measures tokens/sec over generated "
            f"tokens, so max_new_tokens must be >= 1 (got {max_new_tokens})"
        )
    cfg = as_config(config)
    if seed is None:
        seed = cfg.seed
    elif cfg.seed != seed:
        cfg = cfg.replace(seed=seed)
    if backends is None:
        names = ["loopback"] + [
            name for name in available_backends() if name != "loopback"
        ]
    else:
        names = list(backends)
    if not names:
        raise ValueError("kernel_backend_throughput needs >= 1 backend")
    model = (
        model_name
        if isinstance(model_name, TransformerConfig)
        else serving_config(model_name)
    )
    requests = decode_batch(
        model, batch_size, prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed,
    )

    runs = []
    for name in names:
        # cfg validation rejects unknown names; missing optional deps
        # fall back to numpy inside resolve_backend (with a warning)
        session = NovaSession(cfg.replace(kernel_backend=name))
        engine = session.decoder
        scheduler = ContinuousBatchScheduler(engine, max_active=max_active)
        if warmup:
            scheduler.run(requests)
            scheduler = ContinuousBatchScheduler(
                engine, max_active=max_active
            )
        resolved = engine.unit.backend.name
        before = (
            kernel_cache_info()["backends"]
            .get(resolved, {})
            .get("launches", 0)
        )
        t0 = time.perf_counter()
        batch = scheduler.run(requests)
        wall = time.perf_counter() - t0
        launches = (
            kernel_cache_info()["backends"][resolved]["launches"] - before
        )
        runs.append((name, resolved, wall, batch, launches))

    _, _, _, reference, _ = runs[0]
    for name, _, _, batch, _ in runs[1:]:
        for i, (ref, got) in enumerate(
            zip(reference.results, batch.results)
        ):
            if (
                not np.array_equal(got.generated, ref.generated)
                or not np.array_equal(
                    got.prefill.outputs, ref.prefill.outputs
                )
                or got.vector_cycles != ref.vector_cycles
                or got.counters.as_dict() != ref.counters.as_dict()
            ):
                raise RuntimeError(
                    f"kernel backend {name!r} diverged from "
                    f"{runs[0][0]!r} on request {i}: the bit-exact/"
                    "cycle-exact contract is broken"
                )

    tokens = reference.total_generated_tokens
    base_wall = runs[0][2]
    result = ExperimentResult(
        experiment_id="Kernel backends",
        title=(
            f"Kernel backends: {batch_size} x {model.name} (prompt "
            f"{prompt_len} + {max_new_tokens} new) continuously batched "
            f"on {cfg.n_routers}x{cfg.neurons_per_router} lanes"
        ),
        headers=[
            "Backend", "Wall s", "Tokens/s", "Vector cycles",
            "Kernel launches", "Speedup",
        ],
        notes=(
            "Generated tokens, per-step vector_cycles and event counters "
            "identical across every backend (checked against the first "
            "row before reporting). The loopback backend pins the "
            "pre-kernel per-token execution as the wall-clock "
            "denominator; accelerated rows differ only in how the "
            "whole-batch gather/MAC primitives execute. "
            f"{reference.scheduler_steps} scheduler steps per run."
        ),
    )
    for name, resolved, wall, batch, launches in runs:
        label = name if name == resolved else f"{name} (-> {resolved})"
        result.rows.append(
            [
                label,
                round(wall, 4),
                round(tokens / wall, 2),
                batch.packed_vector_cycles,
                launches,
                f"{base_wall / wall:.2f}x",
            ]
        )
    return result


def paged_decode_utilization(
    model_name=None,
    batch_size: int = 16,
    config: "NovaConfig | str" = "jetson-nx",
    pool_pages: int = 4,
    block_size: int | None = None,
    prompt_lens=(4, 8, 12, 16),
    new_tokens=(4, 8, 12),
    seed: int | None = None,
    warmup: bool = True,
) -> ExperimentResult:
    """Contiguous pages vs paged KV blocks at one fixed pool byte budget.

    The memory-utilization experiment behind ``nova-repro serve-decode
    --paged`` and ``benchmarks/bench_paged_admission.py``: a
    *mixed-length* batch of causal decode requests (every request
    declares the model's full ``max_seq_len`` worst case but actually
    uses only a short prompt + budget) is served twice through
    :class:`repro.core.decode.ContinuousBatchScheduler` under the same
    pool byte budget — once with contiguous worst-case pages (admission
    reserves a whole page; ``pool_pages`` of them fit) and once with
    the paged KV cache (fixed ``block_size``-token blocks allocated
    lazily from one shared :class:`repro.core.paging.BlockPool`;
    admission needs only the first block).  The table compares **max
    concurrent requests** (the admission-capacity win), peak reserved
    KV slots, fragmentation (reserved-but-unused slots) and wall-clock
    throughput.  Both paths are checked bit-identical to one-at-a-time
    :meth:`~repro.core.decode.NovaDecodeEngine.generate` before the
    table is built (``RuntimeError`` on divergence).  ``block_size``
    defaults to the config's ``kv_block_size``.
    """
    import time

    import numpy as np

    from repro.core.decode import ContinuousBatchScheduler
    from repro.core.session import NovaSession
    from repro.workloads.bert import mixed_decode_batch, serving_config
    from repro.workloads.transformer import TransformerConfig

    if pool_pages < 1:
        raise ValueError(f"pool_pages must be >= 1, got {pool_pages}")
    cfg = as_config(config)
    if seed is None:
        seed = cfg.seed
    elif cfg.seed != seed:
        cfg = cfg.replace(seed=seed)
    if model_name is None:
        # GPT-2 family shape scaled down (same rationale as the decode
        # benchmark: at full width numpy GEMVs dominate both paths and
        # the harness would measure numpy, not the memory model), with
        # a real 256-token context so worst-case pages are 10-60x the
        # tokens a mixed request actually caches.
        model = TransformerConfig(
            "gpt2-mini", layers=1, hidden=64, heads=4, intermediate=256,
            seq_len=256, causal=True,
        )
    elif isinstance(model_name, TransformerConfig):
        model = model_name
    else:
        model = serving_config(model_name)
    requests = mixed_decode_batch(
        model, batch_size, prompt_lens=prompt_lens, new_tokens=new_tokens,
        seed=seed,
    )
    session = NovaSession(cfg)
    engine = session.decoder
    bs = cfg.kv_block_size if block_size is None else block_size

    head_dim = model.hidden // model.heads
    page_bytes = 2 * 8 * model.heads * head_dim * model.seq_len
    pool_bytes = pool_pages * page_bytes

    def run_path(paged: bool):
        scheduler = ContinuousBatchScheduler(
            engine, max_active=batch_size, paged=paged,
            block_size=bs if paged else None, pool_bytes=pool_bytes,
        )
        t0 = time.perf_counter()
        batch = scheduler.run(requests)
        return batch, time.perf_counter() - t0

    if warmup:
        engine.generate(requests[0])
        run_path(False)
        run_path(True)

    solo = [engine.generate(r) for r in requests]
    contiguous, t_contiguous = run_path(False)
    paged, t_paged = run_path(True)

    for label, batch in (("contiguous", contiguous), ("paged", paged)):
        for i, (ref, got) in enumerate(zip(solo, batch.results)):
            if (
                not np.array_equal(got.generated, ref.generated)
                or got.vector_cycles != ref.vector_cycles
                or got.counters.as_dict() != ref.counters.as_dict()
            ):
                raise RuntimeError(
                    f"{label} scheduling diverged from one-at-a-time "
                    f"decode on request {i}: the bit-exact contract is "
                    "broken"
                )

    tokens = contiguous.total_generated_tokens
    result = ExperimentResult(
        experiment_id="Paged KV",
        title=(
            f"KV admission capacity at a fixed {pool_bytes // 1024} KiB "
            f"pool: {batch_size} mixed-length x {model.name} on "
            f"{cfg.n_routers}x{cfg.neurons_per_router} lanes"
        ),
        headers=[
            "Memory model", "Peak concurrent", "Peak KV slots",
            "Peak fragmentation", "Steps", "Wall s", "Tokens/s",
            "Admission gain",
        ],
        notes=(
            "Same pool byte budget both rows; outputs, per-step cycles "
            "and counters bit-identical to one-at-a-time generate on "
            "both paths (checked). Contiguous reserves a whole "
            f"{model.seq_len}-slot worst-case page per request "
            f"({page_bytes} B; {pool_pages} fit); paged allocates "
            f"{bs}-token blocks lazily from one shared pool "
            f"({paged.paging['n_blocks']} blocks), admitting any request "
            "whose first block fits. Fragmentation is "
            "reserved-but-unused token slots at the worst step. Paged "
            f"run: {paged.deferrals} deferrals, {paged.preemptions} "
            "preemptions."
        ),
    )
    for label, batch, wall in (
        ("contiguous pages", contiguous, t_contiguous),
        ("paged KV blocks", paged, t_paged),
    ):
        result.rows.append(
            [
                label,
                batch.peak_active,
                batch.peak_kv_slots,
                batch.peak_fragmentation_slots,
                batch.scheduler_steps,
                round(wall, 4),
                round(tokens / wall, 2),
                f"{batch.peak_active / contiguous.peak_active:.2f}x",
            ]
        )
    return result


def prefix_caching_residency(
    model_name=None,
    batch_size: int = 8,
    prefix_tokens: int = 64,
    suffix_tokens: int = 2,
    max_new_tokens: int = 4,
    config: "NovaConfig | str" = "jetson-nx",
    block_size: int | None = None,
    seed: int | None = None,
    warmup: bool = True,
) -> ExperimentResult:
    """Shared-prefix pool residency, with and without prefix caching.

    The memory-deduplication experiment behind ``nova-repro
    serve-decode --prefix-caching`` and
    ``benchmarks/bench_prefix_caching.py``: ``batch_size`` causal decode
    requests whose prompts share the same ``prefix_tokens``-token
    preamble (a system prompt; each request appends its own
    ``suffix_tokens`` rows) are served twice through the paged
    :class:`repro.core.decode.ContinuousBatchScheduler` — once with the
    prefix index off, once on.  With caching on, the first request's
    prefill publishes the prefix blocks and every later arrival adopts
    them under a refcount, so the batch pays roughly **one** prefix's
    pool residency instead of ``batch_size``; the table compares peak
    reserved KV slots and reports the hit/share/copy-on-write counters.
    Both paths are checked bit-identical to one-at-a-time
    :meth:`~repro.core.decode.NovaDecodeEngine.generate` before the
    table is built (``RuntimeError`` on divergence) — prefix caching is
    a pure residency win with zero numeric or accounting drift.
    ``block_size`` defaults to the config's ``kv_block_size``; siblings
    arrive one cycle after the leader so adoption happens against a
    published prefix rather than racing the leader's prefill.
    """
    import time

    import numpy as np

    from repro.core.decode import ContinuousBatchScheduler, SequenceMeta
    from repro.core.session import NovaSession
    from repro.workloads.bert import serving_config, shared_prefix_decode_batch
    from repro.workloads.transformer import TransformerConfig

    if batch_size < 2:
        raise ValueError(
            f"batch_size must be >= 2 (nothing shares below that), "
            f"got {batch_size}"
        )
    cfg = as_config(config)
    if seed is None:
        seed = cfg.seed
    elif cfg.seed != seed:
        cfg = cfg.replace(seed=seed)
    bs = cfg.kv_block_size if block_size is None else block_size
    if prefix_tokens < bs:
        raise ValueError(
            f"prefix_tokens must span at least one {bs}-token block "
            f"(nothing below a full block is shareable), got "
            f"{prefix_tokens}"
        )
    if model_name is None:
        # Same scaled-down GPT-2 shape as paged_decode_utilization, and
        # for the same reason: at full width numpy GEMVs dominate both
        # paths and the harness would measure numpy, not the pool.
        model = TransformerConfig(
            "gpt2-mini", layers=1, hidden=64, heads=4, intermediate=256,
            seq_len=256, causal=True,
        )
    elif isinstance(model_name, TransformerConfig):
        model = model_name
    else:
        model = serving_config(model_name)
    requests = shared_prefix_decode_batch(
        model, batch_size, prefix_len=prefix_tokens,
        suffix_len=suffix_tokens, max_new_tokens=max_new_tokens, seed=seed,
    )
    # The leader arrives at cycle 0; every sibling one cycle later, so
    # its admission sees the leader's published prefix blocks.
    metas = [SequenceMeta(arrival=0.0)] + [
        SequenceMeta(arrival=1.0) for _ in requests[1:]
    ]
    session = NovaSession(cfg)
    engine = session.decoder

    def run_path(prefix: bool):
        scheduler = ContinuousBatchScheduler(
            engine, max_active=batch_size, paged=True, block_size=bs,
            prefix_caching=prefix,
        )
        t0 = time.perf_counter()
        batch = scheduler.run(requests, meta=metas)
        return batch, time.perf_counter() - t0

    if warmup:
        engine.generate(requests[0])
        run_path(False)
        run_path(True)

    solo = [engine.generate(r) for r in requests]
    plain, t_plain = run_path(False)
    cached, t_cached = run_path(True)

    for label, batch in (("uncached", plain), ("prefix-cached", cached)):
        for i, (ref, got) in enumerate(zip(solo, batch.results)):
            if (
                not np.array_equal(got.generated, ref.generated)
                or got.vector_cycles != ref.vector_cycles
                or got.counters.as_dict() != ref.counters.as_dict()
            ):
                raise RuntimeError(
                    f"{label} scheduling diverged from one-at-a-time "
                    f"decode on request {i}: the bit-exact contract is "
                    "broken"
                )
    paging = cached.paging
    assert paging is not None and plain.paging is not None
    if paging["prefix_hits"] == 0:
        raise RuntimeError(
            "the trace never hit the prefix index: check that "
            "prefix_tokens spans a full block and that arrivals are "
            "staggered past the leader's prefill"
        )
    for label, batch in (("uncached", plain), ("prefix-cached", cached)):
        info = batch.paging
        assert info is not None
        if info["in_use"] != 0 or info["blocks_allocated"] != info[
            "blocks_freed"
        ]:
            raise RuntimeError(
                f"{label} run leaked blocks: block conservation is broken"
            )

    result = ExperimentResult(
        experiment_id="Prefix caching",
        title=(
            f"KV residency with a shared {prefix_tokens}-token prefix: "
            f"{batch_size} x {model.name} on "
            f"{cfg.n_routers}x{cfg.neurons_per_router} lanes"
        ),
        headers=[
            "Memory model", "Peak KV slots", "Blocks allocated",
            "Prefix hits", "Blocks shared", "CoW copies", "Wall s",
            "Residency",
        ],
        notes=(
            f"All {batch_size} prompts share the first {prefix_tokens} "
            f"tokens ({prefix_tokens // bs} x {bs}-token blocks) and "
            f"append {suffix_tokens} private tokens + {max_new_tokens} "
            "generated. Outputs, per-step cycles and counters "
            "bit-identical to one-at-a-time generate on both rows "
            "(checked); both pools drain to zero live blocks. With the "
            "prefix index on, the leader's prefill publishes the shared "
            "blocks and every sibling adopts them under a refcount — "
            "the win is pure pool residency, never tokens or cycles. "
            f"Cached run: {paging['prefix_misses']} prefix miss(es), "
            f"{paging['shared_frees']} shared frees."
        ),
    )
    for label, batch, wall in (
        ("paged, no sharing", plain, t_plain),
        ("paged + prefix cache", cached, t_cached),
    ):
        info = batch.paging
        assert info is not None
        result.rows.append(
            [
                label,
                batch.peak_kv_slots,
                info["blocks_allocated"],
                info["prefix_hits"],
                info["blocks_shared"],
                info["cow_copies"],
                round(wall, 4),
                f"{plain.peak_kv_slots / batch.peak_kv_slots:.2f}x",
            ]
        )
    return result


def speculative_decode_speedup(
    model_name=None,
    batch_size: int = 8,
    prompt_len: int = 16,
    max_new_tokens: int = 32,
    config: "NovaConfig | str" = "jetson-nx",
    spec_k: int | None = None,
    acceptance_rate: float = 0.9,
    seed: int | None = None,
    max_active: int = 8,
    warmup: bool = True,
) -> ExperimentResult:
    """Plain vs speculative draft-and-verify decode, solo and batched.

    The speculative-serving study behind ``nova-repro serve-decode
    --speculative`` and ``benchmarks/bench_speculative.py``: one batch
    of causal decode requests is served three ways — plain one-at-a-time
    :meth:`~repro.core.decode.NovaDecodeEngine.generate`, speculative
    one-at-a-time :meth:`~repro.core.speculative.SpeculativeDecodeEngine.
    generate` (``spec_k`` drafts per packed verification pass, drafted
    by a :class:`~repro.core.speculative.TruncatedTableDraft` whose
    fidelity is solved from ``acceptance_rate`` by
    :func:`repro.workloads.bert.fidelity_for_acceptance`), and
    speculative **continuous batching**
    (:class:`~repro.core.decode.ContinuousBatchScheduler` with
    ``speculative=True``, verification passes of different requests
    fused into shared lane streams).  Before the table is built, every
    speculative path's generated tokens are checked bit-identical to the
    plain path and each speculative result's closed-form
    ``sequential_vector_cycles`` is checked equal to the plain run's
    ``vector_cycles`` (``RuntimeError`` on divergence) — rollback can
    waste cycles, never change tokens.  The table reports wall-clock
    tokens/sec, overlay cycles/token, the measured acceptance rate and
    committed tokens per pass.
    """
    import time

    import numpy as np

    from repro.core.decode import ContinuousBatchScheduler
    from repro.core.session import NovaSession
    from repro.core.speculative import SpeculativeDecodeEngine
    from repro.workloads.bert import serving_config, speculative_decode_batch
    from repro.workloads.transformer import TransformerConfig

    if max_new_tokens < 1:
        raise ValueError(
            "speculative_decode_speedup measures tokens/sec over generated "
            f"tokens, so max_new_tokens must be >= 1 (got {max_new_tokens})"
        )
    cfg = as_config(config)
    if seed is None:
        seed = cfg.seed
    elif cfg.seed != seed:
        cfg = cfg.replace(seed=seed)
    if spec_k is None:
        spec_k = cfg.spec_k
    if model_name is None:
        # GPT-2 family shape scaled down (same rationale as the other
        # decode harnesses: at full width numpy GEMVs dominate every
        # path and the harness would measure numpy, not the serving
        # machinery).
        model = TransformerConfig(
            "gpt2-mini", layers=1, hidden=64, heads=4, intermediate=256,
            seq_len=256, causal=True,
        )
    elif isinstance(model_name, TransformerConfig):
        model = model_name
    else:
        model = serving_config(model_name)
    requests, draft_factory = speculative_decode_batch(
        model, batch_size, acceptance_rate=acceptance_rate,
        prompt_len=prompt_len, max_new_tokens=max_new_tokens, seed=seed,
        config=cfg, spec_k=spec_k,
    )
    session = NovaSession(cfg)
    engine = session.decoder
    speculator = SpeculativeDecodeEngine(engine, spec_k=spec_k)

    def run_scheduler():
        scheduler = ContinuousBatchScheduler(
            engine, max_active=max_active, speculative=True,
            spec_k=spec_k, draft_factory=draft_factory,
        )
        t0 = time.perf_counter()
        batch = scheduler.run(requests)
        return batch, time.perf_counter() - t0

    if warmup:
        engine.generate(requests[0])
        speculator.generate(requests[0], draft=draft_factory())
        run_scheduler()

    t0 = time.perf_counter()
    plain = [engine.generate(r) for r in requests]
    t_plain = time.perf_counter() - t0

    t0 = time.perf_counter()
    solo = [speculator.generate(r, draft=draft_factory()) for r in requests]
    t_solo = time.perf_counter() - t0

    batch, t_batched = run_scheduler()

    for label, results in (("solo", solo), ("batched", batch.results)):
        for i, (ref, got) in enumerate(zip(plain, results)):
            if (
                not np.array_equal(got.generated, ref.generated)
                or got.sequential_vector_cycles != ref.vector_cycles
            ):
                raise RuntimeError(
                    f"speculative decode ({label}) diverged from plain "
                    f"generate on request {i}: the bit-exact contract is "
                    "broken"
                )

    tokens = sum(r.n_generated for r in plain)
    plain_cycles = sum(r.vector_cycles for r in plain)
    drafted = sum(r.drafted_tokens for r in solo)
    accepted = sum(r.accepted_tokens for r in solo)
    rolled_back = sum(r.rolled_back_tokens for r in solo)
    measured_acceptance = accepted / drafted if drafted else 0.0
    result = ExperimentResult(
        experiment_id="Speculative decode",
        title=(
            f"Draft-and-verify decode: {batch_size} x {model.name} "
            f"(prompt {prompt_len} + {max_new_tokens} new, spec_k={spec_k}, "
            f"target acceptance {acceptance_rate:g}) on "
            f"{cfg.n_routers}x{cfg.neurons_per_router} lanes"
        ),
        headers=[
            "Path", "Wall s", "Tokens/s", "Vector cycles",
            "Cycles/token", "Acceptance", "Tokens/pass", "Speedup",
        ],
        notes=(
            "Generated tokens bit-identical across all three paths and "
            "each speculative result's closed-form sequential-equivalent "
            "cycles equal the plain run's (checked): a rejected draft "
            "costs rolled-back work, never correctness. One verification "
            f"pass scores up to spec_k+1={spec_k + 1} positions in a "
            "single overlay traversal instead of one traversal per "
            f"token. Solo speculative: {drafted} drafted, {accepted} "
            f"accepted, {rolled_back} rolled back "
            f"({measured_acceptance:.0%} measured acceptance)."
        ),
    )
    result.rows.append(
        [
            "plain (KV-cached)",
            round(t_plain, 4),
            round(tokens / t_plain, 2),
            plain_cycles,
            round(plain_cycles / tokens, 2),
            "-",
            "1.00",
            "1.00x",
        ]
    )
    solo_cycles = sum(r.vector_cycles for r in solo)
    solo_passes = sum(r.verify_passes for r in solo)
    result.rows.append(
        [
            "speculative (draft-and-verify)",
            round(t_solo, 4),
            round(tokens / t_solo, 2),
            solo_cycles,
            round(solo_cycles / tokens, 2),
            f"{measured_acceptance:.2f}",
            round(tokens / solo_passes, 2),
            f"{t_plain / t_solo:.2f}x",
        ]
    )
    batch_drafted = sum(r.drafted_tokens for r in batch.results)
    batch_accepted = sum(r.accepted_tokens for r in batch.results)
    batch_passes = sum(r.verify_passes for r in batch.results)
    result.rows.append(
        [
            "speculative + continuous batching",
            round(t_batched, 4),
            round(tokens / t_batched, 2),
            batch.packed_vector_cycles,
            round(batch.packed_vector_cycles / tokens, 2),
            f"{batch_accepted / batch_drafted if batch_drafted else 0.0:.2f}",
            round(tokens / batch_passes, 2),
            f"{t_plain / t_batched:.2f}x",
        ]
    )
    return result


def tree_speculation_speedup(
    model_name=None,
    batch_size: int = 8,
    prompt_len: int = 16,
    max_new_tokens: int = 32,
    config: "NovaConfig | str" = "jetson-nx",
    spec_tree: str | None = None,
    fidelity: float = 0.45,
    seed: int | None = None,
    max_active: int = 8,
    warmup: bool = True,
) -> ExperimentResult:
    """Linear chain vs draft tree at the same verification budget.

    The tree-speculation study behind ``nova-repro serve-decode
    --speculative-tree`` and ``benchmarks/bench_tree_speculation.py``:
    one batch of causal decode requests is decoded plain once (the
    bit-exact reference) and then served two ways through the paged
    :class:`~repro.core.decode.ContinuousBatchScheduler` — a
    **linear** draft chain and a **draft tree** (``spec_tree``, e.g.
    ``"4x1,2x1,1x1"``) — where the linear
    chain's depth is pinned to the tree's node count, so both
    speculative paths stake the *same number of provisional tokens per
    verification pass* and differ only in how the budget is shaped.
    Every draft candidate flips the same per-position fidelity coin
    (one :class:`~repro.core.speculative.TruncatedTableDraft` per
    request at the given ``fidelity``), which is the regime trees are
    for: when a single draft is often wrong, a deep chain dies at its
    first miss while a wide first level usually has *some* branch
    survive, so the tree commits more tokens per pass from the same
    budget.

    Before the table is built, both speculative paths' generated
    tokens are checked bit-identical to plain solo
    :meth:`~repro.core.decode.NovaDecodeEngine.generate`
    (``RuntimeError`` on divergence) — branching changes which work
    rolls back, never the tokens.  The table reports wall-clock
    tokens/sec, packed cycles/token, measured acceptance, committed
    tokens per pass, and each speculative path's speedup over the
    linear chain.
    """
    import itertools
    import time

    import numpy as np

    from repro.core.decode import ContinuousBatchScheduler
    from repro.core.session import NovaSession
    from repro.core.speculative import DraftTree, TruncatedTableDraft
    from repro.workloads.bert import decode_batch, serving_config
    from repro.workloads.transformer import TransformerConfig

    if max_new_tokens < 1:
        raise ValueError(
            "tree_speculation_speedup measures tokens/sec over generated "
            f"tokens, so max_new_tokens must be >= 1 (got {max_new_tokens})"
        )
    if not 0.0 <= fidelity <= 1.0:
        raise ValueError(f"fidelity must be in [0, 1], got {fidelity}")
    cfg = as_config(config)
    if seed is None:
        seed = cfg.seed
    elif cfg.seed != seed:
        cfg = cfg.replace(seed=seed)
    if spec_tree is None:
        spec_tree = cfg.spec_tree if cfg.spec_tree is not None else "4x1,2x1,1x1"
    tree = DraftTree.parse(spec_tree)
    # the linear baseline stakes exactly as many provisional tokens per
    # pass as the tree has nodes: same budget, different shape
    spec_k = tree.max_nodes
    if model_name is None:
        model = TransformerConfig(
            "gpt2-mini", layers=1, hidden=64, heads=4, intermediate=256,
            seq_len=256, causal=True,
        )
    elif isinstance(model_name, TransformerConfig):
        model = model_name
    else:
        model = serving_config(model_name)
    requests = decode_batch(
        model, batch_size, prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, seed=seed,
    )
    session = NovaSession(cfg)
    engine = session.decoder
    plain = [engine.generate(r) for r in requests]

    def run_scheduler(shape: str | None):
        # successive drafts draw successive seeds, same rationale as
        # speculative_decode_batch: one coin sequence per request
        draft_seeds = itertools.count(seed)
        # pool sized so provisional branches never hit the fallback
        # path: the study measures budget shape, not memory pressure
        scheduler = ContinuousBatchScheduler(
            engine, max_active=max_active, paged=True, speculative=True,
            spec_k=spec_k, spec_tree=shape, pool_blocks=1024,
            draft_factory=lambda: TruncatedTableDraft(
                cfg, fidelity=fidelity, seed=next(draft_seeds)
            ),
        )
        t0 = time.perf_counter()
        batch = scheduler.run(requests)
        return batch, time.perf_counter() - t0

    if warmup:
        run_scheduler(None)
        run_scheduler(spec_tree)

    linear, t_linear = run_scheduler(None)
    treed, t_tree = run_scheduler(spec_tree)

    for label, batch in (("linear", linear), ("tree", treed)):
        for i, (ref, got) in enumerate(zip(plain, batch.results)):
            if not np.array_equal(got.generated, ref.generated):
                raise RuntimeError(
                    f"speculative decode ({label}) diverged from plain "
                    f"generate on request {i}: the bit-exact contract is "
                    "broken"
                )

    tokens = sum(r.n_generated for r in plain)
    result = ExperimentResult(
        experiment_id="Tree speculation",
        title=(
            f"Draft tree vs linear chain: {batch_size} x {model.name} "
            f"(prompt {prompt_len} + {max_new_tokens} new, tree "
            f"{tree.spec} = {spec_k} nodes, candidate fidelity "
            f"{fidelity:g}) on {cfg.n_routers}x{cfg.neurons_per_router} "
            "lanes"
        ),
        headers=[
            "Path", "Wall s", "Tokens/s", "Packed cycles",
            "Cycles/token", "Acceptance", "Tokens/pass", "vs linear",
        ],
        notes=(
            "Both speculative paths stake the same provisional-token "
            f"budget per verification pass ({spec_k} drafts) and both "
            "are bit-identical to plain generate (checked). At low "
            "candidate fidelity the linear chain dies at its first "
            "rejected draft; the tree's wide first level usually keeps "
            "one branch alive, so the same budget commits more tokens "
            "per pass."
        ),
    )
    for label, batch, dt, base in (
        ("linear chain (spec_k)", linear, t_linear, None),
        (f"draft tree ({tree.spec})", treed, t_tree, t_linear),
    ):
        drafted = sum(r.drafted_tokens for r in batch.results)
        accepted = sum(r.accepted_tokens for r in batch.results)
        passes = sum(r.verify_passes for r in batch.results)
        result.rows.append(
            [
                label,
                round(dt, 4),
                round(tokens / dt, 2),
                batch.packed_vector_cycles,
                round(batch.packed_vector_cycles / tokens, 2),
                f"{accepted / drafted if drafted else 0.0:.2f}",
                round(tokens / passes, 2),
                "1.00x" if base is None else f"{base / dt:.2f}x",
            ]
        )
    return result


def serving_slo_comparison(
    n_requests: int = 48,
    config: "NovaConfig | str" = "jetson-nx",
    seed: int = 4,
    max_active: int = 2,
    paged: bool = False,
    pool_blocks: int | None = None,
    deadline_slack: float = 2.0,
    policies=("fcfs", "priority-preemptive", "slo-aware", "tenant-fair"),
) -> ExperimentResult:
    """Scheduling policies head-to-head on one heavy-tailed trace.

    The experiment behind ``nova-repro serve-async`` and
    ``benchmarks/bench_frontdoor.py``: one seeded bursty heavy-tailed
    trace (:func:`repro.serving.arrivals.build_trace` — Pareto prompt
    lengths and token budgets, flash-crowd arrivals, two tenants, two
    priority levels, per-request deadlines at ``deadline_slack``x the
    fair solo service time) is served through the async front door
    (:class:`repro.serving.frontdoor.FrontDoor`) once per policy, at
    the same ``max_active`` slot budget and memory mode.  Every time
    is virtual cycles on the scheduler's deterministic clock, so the
    whole table is reproducible byte-for-byte.

    Before the table is built, every policy's per-request outputs,
    cycles and counters are checked bit-identical to solo
    :meth:`repro.core.decode.NovaDecodeEngine.generate`
    (``RuntimeError`` on divergence): policies may only move *when*
    work happens.  The headline contrast is FCFS vs SLO-aware — under
    a heavy tail, earliest-deadline-first admission stops one giant
    request from head-of-line-blocking a crowd of short ones, which
    collapses p50/p99 TTFT and raises goodput at the same slot budget.
    """
    import numpy as np

    from repro.core.session import NovaSession
    from repro.serving.arrivals import (
        build_trace,
        estimate_cycles_per_token,
    )
    from repro.serving.frontdoor import FrontDoor

    cfg = as_config(config)
    session = NovaSession(cfg)
    engine = session.decoder

    hidden, n_heads = 16, 2
    cpt = estimate_cycles_per_token(
        engine, hidden=hidden, n_heads=n_heads, seed=seed
    )
    trace = build_trace(
        n_requests,
        hidden=hidden,
        n_heads=n_heads,
        process="bursty",
        mean_gap=cpt * 2,
        prompt_range=(2, 10),
        tokens_range=(2, 48),
        tail_alpha=1.05,
        max_burst=12,
        priorities=(0, 1),
        deadline_slack=deadline_slack,
        cycles_per_token=cpt,
        seed=seed,
    )
    solo = {t.request_id: engine.generate(t.request) for t in trace}

    result = ExperimentResult(
        experiment_id="Async serving SLOs",
        title=(
            f"Front-door policies on a bursty heavy-tailed trace: "
            f"{n_requests} requests, {max_active} slots, "
            f"{'paged' if paged else 'contiguous'} KV on "
            f"{cfg.n_routers}x{cfg.neurons_per_router} lanes"
        ),
        headers=[
            "Policy", "p50 TTFT", "p99 TTFT", "p99 latency",
            "Goodput tok/kcyc", "SLO attain", "Defer", "Preempt",
        ],
        notes=(
            "All times in virtual cycles (deterministic clock; no "
            "wall-clock anywhere in repro.serving). Per-request outputs, "
            "cycles and counters checked bit-identical to solo generate "
            "under every policy. Goodput counts only tokens of requests "
            f"that met their deadline (slack {deadline_slack}x fair solo "
            "service time); the heavy tail is what separates FCFS from "
            "SLO-aware admission."
        ),
    )
    for name in policies:
        door = FrontDoor(
            engine,
            policy=name,
            max_active=max_active,
            paged=paged,
            pool_blocks=pool_blocks,
        )
        report = door.serve(trace)
        for rid, got in door.last_results().items():
            ref = solo[rid]
            if (
                not np.array_equal(got.generated, ref.generated)
                or got.vector_cycles != ref.vector_cycles
                or got.counters.as_dict() != ref.counters.as_dict()
            ):
                raise RuntimeError(
                    f"policy {name!r} diverged from solo generate on "
                    f"request {rid}: the bit-exact contract is broken"
                )
        result.rows.append(
            [
                report.policy,
                round(report.p50_ttft, 1),
                round(report.p99_ttft, 1),
                round(report.p99_latency, 1),
                round(report.goodput_tokens_per_kcycle, 3),
                f"{report.slo_attainment:.2f}",
                report.deferrals,
                report.preemptions,
            ]
        )
    return result


def nvdla_duty_cycle_estimate() -> float:
    """Vector-unit duty cycle of the NVDLA host on its native workload.

    Justifies the Jetson configuration's ``utilization`` field: an
    ImageNet-scale convolution accumulates ``K = C_in * k * k`` products
    (hundreds to thousands) per output, so the conv cores emit one
    16-wide activation vector only once per many MAC cycles and the
    approximator idles in between.  The emission duty is ~``2048 / K``.
    """
    from repro.workloads.ops import MatMulOp, OpGraph

    host = NvdlaAccelerator()
    graph = OpGraph("imagenet-conv-stage")
    # A representative mid-network layer: 256 -> 256 channels, 3x3 kernel,
    # 14x14 feature map (K = 256 * 9 = 2304).
    graph.add(MatMulOp("conv", m=14 * 14, k=256 * 9, n=256))
    return host.activation_duty_cycle(graph)
