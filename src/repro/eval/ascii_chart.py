"""ASCII charts for the figure-shaped experiments.

Fig. 6/7/8 are plots in the paper; the benchmark harness renders their
series as horizontal bar charts next to the numeric tables so the *shape*
claims (who grows how fast, where curves cross) are visible in a terminal
without matplotlib.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["bar_chart", "multi_series_chart"]


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """One horizontal bar per (label, value), scaled to ``width`` chars."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels vs {len(values)} values"
        )
    if not values:
        return title or ""
    peak = max(float(v) for v in values)
    if peak <= 0:
        raise ValueError("bar chart needs at least one positive value")
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(float(value) / peak * width))
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {float(value):g}{unit}"
        )
    return "\n".join(lines)


def multi_series_chart(
    x_labels: Sequence[object],
    series: dict[str, Sequence[float]],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Grouped bar chart: one block per x value, one bar per series.

    All series share one scale so relative magnitudes (e.g. NOVA vs the
    LUT baselines at each neuron count) are comparable.
    """
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x labels"
            )
    peak = max(
        float(v) for values in series.values() for v in values
    )
    if peak <= 0:
        raise ValueError("chart needs at least one positive value")
    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
    for i, x in enumerate(x_labels):
        lines.append(f"{x}:")
        for name, values in series.items():
            value = float(values[i])
            bar = "#" * max(1, round(value / peak * width))
            lines.append(
                f"  {name.ljust(name_width)} | {bar} {value:g}{unit}"
            )
    return "\n".join(lines)
