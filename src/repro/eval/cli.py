"""Command-line entry point: regenerate any paper table/figure.

Installed as ``nova-repro``::

    nova-repro table2            # one experiment
    nova-repro all               # every paper table/figure except Table I
    nova-repro all --with-table1 # the full paper evaluation
    nova-repro ablations         # the A1-A6 design-knob studies
    nova-repro sweeps            # the S1-S2 extension sweeps
    nova-repro geometries        # list the Table II geometry presets

    nova-repro serving-batched   # batched full-prefill attention serving
    nova-repro serve-decode      # KV-cached continuous-batching decode
    nova-repro serve-decode --paged  # paged-KV admission capacity study
    nova-repro serve-decode --speculative  # draft-and-verify speedup study
    nova-repro serve-decode --prefix-caching  # shared-prefix residency study
    nova-repro serve-decode --backend numba   # pick the kernel backend
    nova-repro serve-async       # async front door: policies vs SLOs
    nova-repro serve-async --paged  # same trace, paged-KV memory mode

    nova-repro lint              # novalint static analysis (NV001-NV009)
    nova-repro lint --strict --format json  # the CI gate invocation

Geometry selection
------------------
Config-aware experiments (``serving-batched``, ``serve-decode``) take
their overlay geometry as a :class:`repro.core.config.NovaConfig`.  Pick a
Table II preset with ``--geometry`` — one of ``jetson-nx`` (2 routers x
16 lanes @ 1.4 GHz), ``react`` (10 x 256 @ 0.24 GHz), ``tpu-v3``
(4 x 128 @ 1.4 GHz) or ``tpu-v4`` (8 x 128 @ 1.4 GHz) — and adjust any
field with repeatable ``--override FIELD=VALUE`` flags::

    nova-repro serving-batched --geometry jetson-nx --override n_routers=16
    nova-repro serving-batched --override hop_mm=1.0 --override n_segments=8

Overridable fields: ``n_routers``, ``neurons_per_router``,
``pe_frequency_ghz``, ``hop_mm``, ``n_segments``, ``seed``,
``kv_block_size``, ``spec_k``, ``draft_kind``, ``kernel_backend``,
``host``.  ``nova-repro geometries`` prints every preset with its
geometry and host accelerator.  Passing ``--geometry``/``--override``
to an experiment that has a fixed, paper-defined geometry is an error.

``serve-decode``/``serve-async`` also take ``--backend`` — shorthand
for ``--override kernel_backend=NAME``, validated against the
:data:`repro.core.config.KERNEL_BACKENDS` registry (a typo exits 2
listing the known backends).  Every backend is bit/cycle/counter
exact; ``numba``/``jax`` fall back to numpy (with a warning) when the
package is not installed.

``serve-decode --paged`` swaps the throughput harness for the paged-KV
memory-utilization study
(:func:`repro.eval.experiments.paged_decode_utilization`): contiguous
worst-case pages vs fixed-size blocks from one shared pool, compared at
the same pool byte budget (``--override kv_block_size=N`` picks the
block granularity).  ``serve-decode --speculative`` swaps in the
draft-and-verify study
(:func:`repro.eval.experiments.speculative_decode_speedup`): plain vs
speculative decode, solo and continuously batched, bit-identical tokens
on every path (``--override spec_k=N`` picks the draft depth).
``serve-decode --prefix-caching`` swaps in the shared-prefix residency
study (:func:`repro.eval.experiments.prefix_caching_residency`): a
batch of requests sharing one prompt prefix served with the prefix
index off and on, bit-identical outputs both ways, the win reported as
peak pool residency (``--override kv_block_size=N`` picks the block
granularity).

``serve-async`` runs the scheduling-policy comparison
(:func:`repro.eval.experiments.serving_slo_comparison`): one seeded
bursty heavy-tailed trace served through the async front door
(:mod:`repro.serving`) under every policy — FCFS, priority-preemptive,
SLO-aware, tenant-fair — reporting TTFT percentiles, goodput and SLO
attainment on the deterministic virtual clock, with per-request outputs
checked bit-identical to solo generation.  ``--paged`` serves the same
trace in the paged-KV memory mode.
"""

from __future__ import annotations

import argparse
import functools
import sys
from collections.abc import Callable

from repro.core.config import KERNEL_BACKENDS, NovaConfig, PRESETS, preset
from repro.eval import ablations, experiments, sweeps
from repro.eval.report import render_experiment

__all__ = ["main"]

#: The paper's own tables and figures.
PAPER_EXPERIMENTS: dict[str, Callable[[], experiments.ExperimentResult]] = {
    "table1": experiments.table1_accuracy,
    "table2": experiments.table2_configs,
    "table3": experiments.table3_overhead,
    "table4": experiments.table4_related_work,
    "fig6": experiments.fig6_area_scaling,
    "fig7": experiments.fig7_power_scaling,
    "fig8": experiments.fig8_energy,
    "scalability": experiments.scalability_sweep,
}

#: Extension studies (see EXPERIMENTS.md).
EXTENSION_EXPERIMENTS: dict[str, Callable[[], experiments.ExperimentResult]] = {
    "ablation-breakpoints": ablations.ablation_breakpoints,
    "ablation-fit": ablations.ablation_fit_strategy,
    "ablation-fixedpoint": ablations.ablation_fixed_point,
    "ablation-reload": ablations.ablation_table_reload,
    "ablation-hop": ablations.ablation_hop_length,
    "ablation-utilization": ablations.ablation_utilization,
    "ablation-related-softmax": ablations.related_softmax_comparison,
    "ablation-topology": ablations.ablation_topology,
    "sweep-seqlen": sweeps.seq_len_sweep,
    "sweep-memory": sweeps.memory_energy_sweep,
    "sweep-lanes": sweeps.lane_sizing_sweep,
    "serving-batched": experiments.batched_serving_throughput,
    "serve-decode": experiments.decode_serving_throughput,
    "serve-async": experiments.serving_slo_comparison,
}

EXPERIMENTS: dict[str, Callable[[], experiments.ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
}

#: Experiments that accept a ``config=NovaConfig`` kwarg, with the
#: preset each defaults to when only ``--override`` is given.
CONFIGURABLE_EXPERIMENTS: dict[str, str] = {
    "serving-batched": "jetson-nx",
    "serve-decode": "jetson-nx",
    "serve-async": "jetson-nx",
}


def render_geometries() -> str:
    """The ``nova-repro geometries`` listing: every preset, one line."""
    lines = ["Geometry presets (repro.core.config.PRESETS):", ""]
    header = (
        f"  {'name':<10} {'routers':>7} {'neurons':>7} {'PE GHz':>7} "
        f"{'hop mm':>7} {'segments':>8}  host accelerator"
    )
    lines.append(header)
    for name in sorted(PRESETS):
        cfg = PRESETS[name]
        lines.append(
            f"  {name:<10} {cfg.n_routers:>7} {cfg.neurons_per_router:>7} "
            f"{cfg.pe_frequency_ghz:>7.2f} {cfg.hop_mm:>7.2f} "
            f"{cfg.n_segments:>8}  {cfg.host or '-'}"
        )
    lines.append("")
    lines.append(
        "Use with a config-aware experiment, e.g.:\n"
        "  nova-repro serving-batched --geometry jetson-nx "
        "--override n_routers=16"
    )
    return "\n".join(lines)


def _resolve_config(
    names: list[str],
    geometry: str | None,
    overrides: list[str],
    parser: argparse.ArgumentParser,
) -> NovaConfig | None:
    """Build the run's NovaConfig, or None when no flags were given."""
    if geometry is None and not overrides:
        return None
    unsupported = [n for n in names if n not in CONFIGURABLE_EXPERIMENTS]
    if unsupported:
        parser.error(
            f"--geometry/--override only apply to config-aware experiments "
            f"({', '.join(sorted(CONFIGURABLE_EXPERIMENTS))}); "
            f"got: {', '.join(unsupported)}"
        )
    base = geometry if geometry is not None else (
        CONFIGURABLE_EXPERIMENTS[names[0]]
    )
    try:
        return preset(base).with_overrides(overrides)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))


def _lint_main(argv: list[str]) -> int:
    """The ``nova-repro lint`` subcommand (novalint front end).

    Imported lazily so the experiment paths never pay for it; the
    argument surface is defined once in :mod:`repro.analysis.cli` and
    shared with ``python -m repro.analysis``.
    """
    from repro.analysis.cli import add_lint_arguments, run_from_args

    parser = argparse.ArgumentParser(
        prog="nova-repro lint",
        description=(
            "novalint: AST invariant analyzer for the NOVA stack "
            "(rules NV001-NV009; see README 'Static analysis')."
        ),
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


def main(argv: list[str] | None = None) -> int:
    """Run one or all experiments and print their reports."""
    args_in = list(sys.argv[1:]) if argv is None else list(argv)
    if args_in and args_in[0] == "lint":
        return _lint_main(args_in[1:])
    argv = args_in
    parser = argparse.ArgumentParser(
        prog="nova-repro",
        description=(
            "Regenerate the NOVA paper's tables and figures.  "
            "('nova-repro lint' runs the novalint static analyzer; "
            "see 'nova-repro lint --help'.)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "ablations", "sweeps",
                                       "geometries"],
        help="which table/figure (or group) to regenerate; 'geometries' "
             "lists the NovaConfig presets",
    )
    parser.add_argument(
        "--with-table1",
        action="store_true",
        help="include Table I (trains the model zoo; ~1 minute) in 'all'",
    )
    parser.add_argument(
        "--geometry",
        choices=sorted(PRESETS),
        help="overlay geometry preset for config-aware experiments "
             "(see 'nova-repro geometries')",
    )
    parser.add_argument(
        "--override",
        metavar="FIELD=VALUE",
        action="append",
        default=[],
        help="override one NovaConfig field, e.g. n_routers=16 "
             "(repeatable; config-aware experiments only)",
    )
    parser.add_argument(
        "--paged",
        action="store_true",
        help="with serve-decode: run the paged-KV admission-capacity "
             "study (contiguous pages vs block pool at a fixed byte "
             "budget) instead of the throughput harness; with "
             "serve-async: serve the policy-comparison trace in the "
             "paged-KV memory mode",
    )
    parser.add_argument(
        "--speculative",
        action="store_true",
        help="with serve-decode: run the speculative draft-and-verify "
             "study (plain vs speculative decode, solo and continuously "
             "batched; --override spec_k=N picks the draft depth) "
             "instead of the throughput harness",
    )
    parser.add_argument(
        "--speculative-tree",
        metavar="SPEC",
        help="with serve-decode: run the tree-speculation study (a "
             "draft tree, e.g. 4x1,2x1,1x1, vs a linear chain staking "
             "the same number of provisional tokens per verification "
             "pass) instead of the throughput harness",
    )
    parser.add_argument(
        "--prefix-caching",
        action="store_true",
        help="with serve-decode: run the shared-prefix residency study "
             "(the same batch served with the prefix index off and on, "
             "bit-identical outputs, the win measured in peak pool "
             "residency) instead of the throughput harness",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(KERNEL_BACKENDS),
        help="kernel backend for serve-decode/serve-async (shorthand for "
             "--override kernel_backend=NAME); every backend is "
             "bit/cycle/counter-exact — numba/jax fall back to numpy "
             "when not installed",
    )
    args = parser.parse_args(argv)

    if args.paged and args.experiment not in ("serve-decode", "serve-async"):
        parser.error("--paged only applies to serve-decode/serve-async")
    if args.backend is not None and args.experiment not in (
        "serve-decode", "serve-async"
    ):
        parser.error("--backend only applies to serve-decode/serve-async")
    if args.speculative and args.experiment != "serve-decode":
        parser.error("--speculative only applies to serve-decode")
    if args.speculative_tree is not None and args.experiment != "serve-decode":
        parser.error("--speculative-tree only applies to serve-decode")
    if args.prefix_caching and args.experiment != "serve-decode":
        parser.error("--prefix-caching only applies to serve-decode")
    if sum(
        (
            args.paged,
            args.speculative,
            args.speculative_tree is not None,
            args.prefix_caching,
        )
    ) > 1:
        parser.error(
            "pass --paged, --speculative, --speculative-tree or "
            "--prefix-caching, not both (one study at a time)"
        )

    if args.experiment == "geometries":
        print(render_geometries())
        return 0

    if args.experiment == "all":
        names = [n for n in sorted(PAPER_EXPERIMENTS) if n != "table1"]
        if args.with_table1:
            names.insert(0, "table1")
    elif args.experiment == "ablations":
        names = sorted(n for n in EXTENSION_EXPERIMENTS if n.startswith("abl"))
    elif args.experiment == "sweeps":
        names = sorted(n for n in EXTENSION_EXPERIMENTS if n.startswith("sweep"))
    else:
        names = [args.experiment]

    overrides = list(args.override)
    if args.backend is not None:
        overrides.append(f"kernel_backend={args.backend}")
    config = _resolve_config(names, args.geometry, overrides, parser)

    for name in names:
        runner = EXPERIMENTS[name]
        if name == "serve-decode" and args.paged:
            runner = experiments.paged_decode_utilization
        elif name == "serve-decode" and args.speculative:
            runner = experiments.speculative_decode_speedup
        elif name == "serve-decode" and args.speculative_tree is not None:
            runner = functools.partial(
                experiments.tree_speculation_speedup,
                spec_tree=args.speculative_tree,
            )
        elif name == "serve-decode" and args.prefix_caching:
            runner = experiments.prefix_caching_residency
        elif name == "serve-async" and args.paged:
            runner = functools.partial(
                experiments.serving_slo_comparison, paged=True
            )
        if config is not None and name in CONFIGURABLE_EXPERIMENTS:
            result = runner(config=config)
        else:
            result = runner()
        print(render_experiment(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
