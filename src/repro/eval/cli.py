"""Command-line entry point: regenerate any paper table/figure.

Installed as ``nova-repro``::

    nova-repro table2            # one experiment
    nova-repro all               # every paper table/figure except Table I
    nova-repro all --with-table1 # the full paper evaluation
    nova-repro ablations         # the A1-A6 design-knob studies
    nova-repro sweeps            # the S1-S2 extension sweeps
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro.eval import ablations, experiments, sweeps
from repro.eval.report import render_experiment

__all__ = ["main"]

#: The paper's own tables and figures.
PAPER_EXPERIMENTS: dict[str, Callable[[], experiments.ExperimentResult]] = {
    "table1": experiments.table1_accuracy,
    "table2": experiments.table2_configs,
    "table3": experiments.table3_overhead,
    "table4": experiments.table4_related_work,
    "fig6": experiments.fig6_area_scaling,
    "fig7": experiments.fig7_power_scaling,
    "fig8": experiments.fig8_energy,
    "scalability": experiments.scalability_sweep,
}

#: Extension studies (see EXPERIMENTS.md).
EXTENSION_EXPERIMENTS: dict[str, Callable[[], experiments.ExperimentResult]] = {
    "ablation-breakpoints": ablations.ablation_breakpoints,
    "ablation-fit": ablations.ablation_fit_strategy,
    "ablation-fixedpoint": ablations.ablation_fixed_point,
    "ablation-reload": ablations.ablation_table_reload,
    "ablation-hop": ablations.ablation_hop_length,
    "ablation-utilization": ablations.ablation_utilization,
    "ablation-related-softmax": ablations.related_softmax_comparison,
    "ablation-topology": ablations.ablation_topology,
    "sweep-seqlen": sweeps.seq_len_sweep,
    "sweep-memory": sweeps.memory_energy_sweep,
    "sweep-lanes": sweeps.lane_sizing_sweep,
    "serving-batched": experiments.batched_serving_throughput,
}

EXPERIMENTS: dict[str, Callable[[], experiments.ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
}


def main(argv: list[str] | None = None) -> int:
    """Run one or all experiments and print their reports."""
    parser = argparse.ArgumentParser(
        prog="nova-repro",
        description="Regenerate the NOVA paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "ablations", "sweeps"],
        help="which table/figure (or group) to regenerate",
    )
    parser.add_argument(
        "--with-table1",
        action="store_true",
        help="include Table I (trains the model zoo; ~1 minute) in 'all'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "all":
        names = [n for n in sorted(PAPER_EXPERIMENTS) if n != "table1"]
        if args.with_table1:
            names.insert(0, "table1")
    elif args.experiment == "ablations":
        names = sorted(n for n in EXTENSION_EXPERIMENTS if n.startswith("abl"))
    elif args.experiment == "sweeps":
        names = sorted(n for n in EXTENSION_EXPERIMENTS if n.startswith("sweep"))
    else:
        names = [args.experiment]

    for name in names:
        result = EXPERIMENTS[name]()
        print(render_experiment(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
