"""Experiment harness: one entry point per paper table/figure.

Every experiment returns structured rows and can render itself as a text
table; :mod:`repro.eval.paper_data` carries the paper's published values
so reports always show model-vs-paper side by side.  The benchmark suite
(``benchmarks/``) wraps these entry points in pytest-benchmark fixtures.
"""

from repro.eval import paper_data
from repro.eval.experiments import (
    table1_accuracy,
    table2_configs,
    table3_overhead,
    table4_related_work,
    fig6_area_scaling,
    fig7_power_scaling,
    fig8_energy,
    scalability_sweep,
)
from repro.eval.report import render_experiment

__all__ = [
    "paper_data",
    "table1_accuracy",
    "table2_configs",
    "table3_overhead",
    "table4_related_work",
    "fig6_area_scaling",
    "fig7_power_scaling",
    "fig8_energy",
    "scalability_sweep",
    "render_experiment",
]
