"""Rendering experiments as text reports."""

from __future__ import annotations

from repro.eval.experiments import ExperimentResult
from repro.utils.tables import format_table

__all__ = ["render_experiment"]


def render_experiment(result: ExperimentResult, precision: int = 4) -> str:
    """One experiment as a titled text table plus its notes."""
    table = format_table(
        headers=result.headers,
        rows=result.rows,
        title=f"{result.experiment_id}: {result.title}",
        precision=precision,
    )
    if result.notes:
        return f"{table}\n\nNotes: {result.notes}"
    return table
